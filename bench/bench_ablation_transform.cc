// Ablation of FDX's design choices (DESIGN.md):
//   1. pair transform vs raw-encoding structure learning (§4.3 claim);
//   2. covariance normalization on vs off;
//   3. zero-mean covariance vs empirical-mean covariance of the
//      transformed samples (the robust-statistics argument of §4.3).
// Each variant shares the identical glasso + U D U^T + generation tail.

#include <cstdio>

#include "bench_util.h"
#include "bn/networks.h"
#include "core/fdx.h"
#include "core/transform.h"
#include "eval/report.h"
#include "linalg/stats.h"
#include "synth/generator.h"

namespace {

using namespace fdx;

double ScoreVariant(const Table& noisy, const FdSet& truth,
                    const std::string& variant) {
  FdxOptions options;
  FdxDiscoverer discoverer(options);
  if (variant == "fdx") {
    auto result = discoverer.Discover(noisy);
    return result.ok() ? ScoreFdsUndirected(result->fds, truth).f1 : -1.0;
  }
  if (variant == "raw") {
    const EncodedTable encoded = EncodedTable::Encode(noisy);
    Matrix samples(encoded.num_rows(), encoded.num_columns());
    for (size_t c = 0; c < encoded.num_columns(); ++c) {
      for (size_t r = 0; r < encoded.num_rows(); ++r) {
        samples(r, c) = static_cast<double>(encoded.code(r, c));
      }
    }
    StandardizeColumns(&samples);
    auto cov = Covariance(samples);
    if (!cov.ok()) return -1.0;
    auto result = discoverer.DiscoverFromCovariance(*cov);
    return result.ok() ? ScoreFdsUndirected(result->fds, truth).f1 : -1.0;
  }
  if (variant == "no-normalize") {
    FdxOptions no_norm;
    no_norm.normalize_covariance = false;
    no_norm.lambda = 0.002;  // covariance-scale penalty (paper Table 8)
    FdxDiscoverer raw_scale(no_norm);
    auto result = raw_scale.Discover(noisy);
    return result.ok() ? ScoreFdsUndirected(result->fds, truth).f1 : -1.0;
  }
  if (variant == "pooled") {
    FdxOptions pooled;
    pooled.transform.pooled_covariance = true;
    FdxDiscoverer within_pass(pooled);
    auto result = within_pass.Discover(noisy);
    return result.ok() ? ScoreFdsUndirected(result->fds, truth).f1 : -1.0;
  }
  if (variant == "seq-lasso") {
    FdxOptions seq;
    seq.estimator = StructureEstimator::kSequentialLasso;
    FdxDiscoverer sequential(seq);
    auto result = sequential.Discover(noisy);
    return result.ok() ? ScoreFdsUndirected(result->fds, truth).f1 : -1.0;
  }
  if (variant == "zero-mean") {
    auto transformed = PairTransform(noisy, {});
    if (!transformed.ok()) return -1.0;
    Vector zero(transformed->cols(), 0.0);
    auto cov = CovarianceWithMean(*transformed, zero);
    if (!cov.ok()) return -1.0;
    auto result = discoverer.DiscoverFromCovariance(*cov);
    return result.ok() ? ScoreFdsUndirected(result->fds, truth).f1 : -1.0;
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const size_t tuples = flags.GetSize("tuples", 2000);
  const std::vector<std::string> variants = {
      "fdx", "raw", "no-normalize", "zero-mean", "pooled", "seq-lasso"};
  std::vector<std::string> header = {"Workload"};
  for (const auto& v : variants) header.push_back(v);
  ReportTable table(header);

  // Synthetic workloads across noise levels.
  for (double noise : {0.01, 0.1, 0.3}) {
    std::vector<std::vector<double>> scores(variants.size());
    for (uint64_t seed : {51, 52, 53}) {
      SyntheticConfig config;
      config.num_tuples = tuples;
      config.num_attributes = 10;
      config.noise_rate = noise;
      config.seed = seed;
      auto ds = GenerateSynthetic(config);
      if (!ds.ok()) continue;
      for (size_t v = 0; v < variants.size(); ++v) {
        const double f1 = ScoreVariant(ds->noisy, ds->true_fds, variants[v]);
        if (f1 >= 0.0) scores[v].push_back(f1);
      }
    }
    std::vector<std::string> row = {"synthetic n=" + FormatDouble(noise, 2)};
    for (auto& s : scores) {
      row.push_back(s.empty() ? "-" : bench::Score3(Median(s)));
    }
    table.AddRow(row);
  }
  // Benchmark networks.
  for (auto& bn : MakeAllBenchmarkNetworks()) {
    Rng rng(99);
    auto sample = bn.net.Sample(5000, &rng);
    if (!sample.ok()) continue;
    std::vector<std::string> row = {bn.name};
    for (const auto& variant : variants) {
      const double f1 =
          ScoreVariant(*sample, bn.net.GroundTruthFds(), variant);
      row.push_back(f1 < 0.0 ? "-" : bench::Score3(f1));
    }
    table.AddRow(row);
  }
  std::printf(
      "Ablation: FDX vs raw-encoding structure learning vs\n"
      "unnormalized covariance vs zero-mean covariance (median F1)\n%s",
      table.ToString().c_str());
  return 0;
}
