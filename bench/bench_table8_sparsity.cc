// Reproduces paper Table 8: FDX under different sparsity settings on
// the known-structure benchmarks. The paper sweeps its sparsity
// hyper-parameter over {0, .002, ..., .010} on the raw-covariance
// scale; our pipeline normalizes the covariance to a correlation
// matrix, so the equivalent knob is the absolute threshold tau on the
// autoregression weights, swept over a correlation-scale grid.

#include <cstdio>

#include "bench_util.h"
#include "bn/networks.h"
#include "core/fdx.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace fdx;
  const bench::Flags flags(argc, argv);
  const size_t tuples = flags.GetSize("tuples", 10000);
  const double taus[] = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};

  std::vector<std::string> header = {"Data set", "Metric"};
  for (double tau : taus) header.push_back(bench::Score3(tau));
  ReportTable table(header);

  for (auto& bn : MakeAllBenchmarkNetworks()) {
    Rng rng(99);
    auto sample = bn.net.Sample(tuples, &rng);
    if (!sample.ok()) continue;
    const FdSet truth = bn.net.GroundTruthFds();
    std::vector<std::string> p_row = {bn.name, "Precision"};
    std::vector<std::string> r_row = {"", "Recall"};
    std::vector<std::string> f_row = {"", "F1-score"};
    std::vector<std::string> n_row = {"", "# of FDs"};
    for (double tau : taus) {
      FdxOptions options;
      options.sparsity_threshold = tau;
      FdxDiscoverer discoverer(options);
      auto result = discoverer.Discover(*sample);
      if (!result.ok()) {
        p_row.push_back("-");
        r_row.push_back("-");
        f_row.push_back("-");
        n_row.push_back("-");
        continue;
      }
      const FdScore score = ScoreFdsUndirected(result->fds, truth);
      p_row.push_back(bench::Score3(score.precision));
      r_row.push_back(bench::Score3(score.recall));
      f_row.push_back(bench::Score3(score.f1));
      n_row.push_back(std::to_string(result->fds.size()));
    }
    table.AddRow(p_row);
    table.AddRow(r_row);
    table.AddRow(f_row);
    table.AddRow(n_row);
  }
  std::printf(
      "Table 8: FDX under different sparsity settings (absolute tau on\n"
      "the autoregression weights; the paper's {0..0.010} grid lives on\n"
      "the unnormalized covariance scale)\n%s",
      table.ToString().c_str());
  return 0;
}
