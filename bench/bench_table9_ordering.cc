// Reproduces paper Table 9: FDX under the different column-ordering
// heuristics used for the sparsity-inducing U D U^T decomposition.

#include <cstdio>

#include "bench_util.h"
#include "bn/networks.h"
#include "core/fdx.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace fdx;
  const bench::Flags flags(argc, argv);
  const size_t tuples = flags.GetSize("tuples", 10000);
  const OrderingMethod methods[] = {
      OrderingMethod::kMinDegree, OrderingMethod::kNatural,
      OrderingMethod::kAmd,       OrderingMethod::kColamd,
      OrderingMethod::kMetis,     OrderingMethod::kNesdis};

  std::vector<std::string> header = {"Data set", "Metric"};
  for (OrderingMethod m : methods) header.push_back(OrderingMethodName(m));
  ReportTable table(header);

  for (auto& bn : MakeAllBenchmarkNetworks()) {
    Rng rng(99);
    auto sample = bn.net.Sample(tuples, &rng);
    if (!sample.ok()) continue;
    const FdSet truth = bn.net.GroundTruthFds();
    std::vector<std::string> p_row = {bn.name, "P"};
    std::vector<std::string> r_row = {"", "R"};
    std::vector<std::string> f_row = {"", "F1"};
    for (OrderingMethod m : methods) {
      FdxOptions options;
      options.ordering = m;
      FdxDiscoverer discoverer(options);
      auto result = discoverer.Discover(*sample);
      if (!result.ok()) {
        p_row.push_back("-");
        r_row.push_back("-");
        f_row.push_back("-");
        continue;
      }
      const FdScore score = ScoreFdsUndirected(result->fds, truth);
      p_row.push_back(bench::Score3(score.precision));
      r_row.push_back(bench::Score3(score.recall));
      f_row.push_back(bench::Score3(score.f1));
    }
    table.AddRow(p_row);
    table.AddRow(r_row);
    table.AddRow(f_row);
  }
  std::printf(
      "Table 9: FDX under different column-ordering methods\n%s",
      table.ToString().c_str());
  return 0;
}
