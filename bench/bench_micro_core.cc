// Core benchmarks in two modes:
//
//   bench_micro_core [--rows=N] [--attrs=K] [--reps=R] [--out=PATH]
//     Thread-scaling report (the default): wall time of the pair
//     transform, covariance, and end-to-end FdxDiscover at 1, 2, 8, and
//     hardware threads, written as a text table and as BENCH_core.json
//     so the perf trajectory is tracked PR over PR.
//
//   bench_micro_core --micro [--benchmark_filter=...]
//     The original google-benchmark micro-benchmarks for the FDX
//     building blocks: pair transform, covariance, graphical lasso,
//     U D U^T factorization, stripped partitions, and entropy.
//
//   bench_micro_core --glasso [--kmax=K] [--reps=R] [--out=PATH]
//     Graphical-lasso solver scaling: the decomposed fast path vs the
//     dense reference solver at k in {20, 50, 100, 200} across sparsity
//     structures (block-diagonal, banded, dense, mixed), plus a
//     warm-start cold-vs-warm cell, written as BENCH_glasso.json with a
//     per-stage breakdown (screen / decompose / solve / assemble).
//
//   bench_micro_core --oocore [--rows-max=N] [--attrs=K] [--out=PATH]
//     Out-of-core columnar store: CSV ingest throughput into a spilled
//     chunk store, streaming-transform time vs the in-memory transform
//     (bit-identity checked), and process peak RSS, at 100k / 1M / 5M
//     rows, written as BENCH_store.json. --max-in-memory-rows caps the
//     in-memory leg (skipped above it); --cache-mb bounds the decoded
//     column cache of the streaming leg.

#include <benchmark/benchmark.h>
#include <sys/resource.h>
#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/cords.h"
#include "baselines/info_theory.h"
#include "baselines/tane.h"
#include "bench_util.h"
#include "core/fdx.h"
#include "core/transform.h"
#include "data/csv.h"
#include "eval/report.h"
#include "fd/partition.h"
#include "linalg/bitmatrix.h"
#include "linalg/factorization.h"
#include "linalg/glasso.h"
#include "linalg/simd.h"
#include "linalg/stats.h"
#include "store/chunked_table.h"
#include "store/stream_transform.h"
#include "synth/generator.h"
#include "util/file_io.h"
#include "util/json_writer.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace fdx {
namespace {

SyntheticDataset MakeData(size_t tuples, size_t attributes) {
  SyntheticConfig config;
  config.num_tuples = tuples;
  config.num_attributes = attributes;
  config.seed = 77;
  auto ds = GenerateSynthetic(config);
  return *std::move(ds);
}

void BM_PairTransformMoments(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)),
               static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto moments = PairTransformMoments(ds.noisy, {});
    benchmark::DoNotOptimize(moments);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_PairTransformMoments)
    ->Args({1000, 8})
    ->Args({1000, 32})
    ->Args({10000, 8})
    ->Args({10000, 32});

void BM_PairTransformPacked(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)),
               static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto packed = PairTransformPacked(ds.noisy, {});
    benchmark::DoNotOptimize(packed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_PairTransformPacked)->Args({10000, 8})->Args({10000, 32});

void BM_PairTransformPackedScalar(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)),
               static_cast<size_t>(state.range(1)));
  const SimdLevel ambient = ActiveSimdLevel();
  SetSimdLevel(SimdLevel::kScalar);
  for (auto _ : state) {
    auto packed = PairTransformPacked(ds.noisy, {});
    benchmark::DoNotOptimize(packed);
  }
  SetSimdLevel(ambient);
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_PairTransformPackedScalar)->Args({10000, 8})->Args({10000, 32});

void BM_BitMatrixUnpackRows(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t cols = static_cast<size_t>(state.range(1));
  Rng rng(9);
  BitMatrix bits(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (rng.NextBernoulli(0.5)) bits.Set(r, c);
    }
  }
  Matrix dense(rows, cols);
  for (auto _ : state) {
    bits.UnpackRows(0, rows, &dense);
    benchmark::DoNotOptimize(dense);
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_BitMatrixUnpackRows)->Args({100000, 16})->Args({100000, 64});

void BM_PairTransformCounts(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)),
               static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto counts = PairTransformCounts(ds.noisy, {});
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_PairTransformCounts)->Args({10000, 8})->Args({10000, 32});

void BM_GraphicalLasso(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const SyntheticDataset ds = MakeData(2000, k);
  auto moments = PairTransformMoments(ds.noisy, {});
  GlassoOptions options;
  for (auto _ : state) {
    auto result = GraphicalLasso(moments->cov, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GraphicalLasso)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_UdutFactor(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Rng rng(3);
  Matrix m(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) m(i, j) = rng.NextGaussian();
  }
  Matrix spd = m.Multiply(m.Transpose());
  for (size_t i = 0; i < k; ++i) spd(i, i) += static_cast<double>(k);
  for (auto _ : state) {
    auto result = UdutFactor(spd);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UdutFactor)->Arg(16)->Arg(64)->Arg(128);

void BM_PartitionProduct(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)), 8);
  const EncodedTable encoded = EncodedTable::Encode(ds.noisy);
  StrippedPartition a = StrippedPartition::FromColumn(encoded, 0);
  StrippedPartition b = StrippedPartition::FromColumn(encoded, 1);
  for (auto _ : state) {
    StrippedPartition product = StrippedPartition::Multiply(a, b);
    benchmark::DoNotOptimize(product);
  }
}
BENCHMARK(BM_PartitionProduct)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Entropy(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)), 8);
  const EncodedTable encoded = EncodedTable::Encode(ds.noisy);
  const AttributeSet set = AttributeSet::FromIndices({0, 1, 2});
  for (auto _ : state) {
    const double h = Entropy(encoded, set);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_Entropy)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Covariance(benchmark::State& state) {
  Rng rng(4);
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  Matrix samples(n, k);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < k; ++j) samples(i, j) = rng.NextDouble();
  }
  for (auto _ : state) {
    auto cov = Covariance(samples);
    benchmark::DoNotOptimize(cov);
  }
}
BENCHMARK(BM_Covariance)->Args({10000, 16})->Args({10000, 64});

void BM_FdxEndToEnd(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)),
               static_cast<size_t>(state.range(1)));
  FdxDiscoverer discoverer;
  for (auto _ : state) {
    auto result = discoverer.Discover(ds.noisy);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FdxEndToEnd)->Args({1000, 8})->Args({1000, 32})->Args({5000, 16});

void BM_TaneEndToEnd(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)), 8);
  TaneOptions options;
  options.max_lhs_size = 3;
  for (auto _ : state) {
    auto result = DiscoverTane(ds.noisy, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TaneEndToEnd)->Arg(1000)->Arg(5000);

void BM_CordsEndToEnd(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)), 12);
  for (auto _ : state) {
    auto result = DiscoverCords(ds.noisy, {});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CordsEndToEnd)->Arg(1000)->Arg(10000);

void BM_PermutationBias(benchmark::State& state) {
  const SyntheticDataset ds = MakeData(1000, 6);
  const EncodedTable encoded = EncodedTable::Encode(ds.noisy);
  Rng rng(11);
  const AttributeSet lhs = AttributeSet::FromIndices({0, 1});
  for (auto _ : state) {
    const double bias =
        PermutationBias(encoded, lhs, 3, static_cast<size_t>(state.range(0)),
                        &rng);
    benchmark::DoNotOptimize(bias);
  }
}
BENCHMARK(BM_PermutationBias)->Arg(1)->Arg(3)->Arg(10);

void BM_ExactPermutationBias(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)), 6);
  const EncodedTable encoded = EncodedTable::Encode(ds.noisy);
  const AttributeSet lhs = AttributeSet::FromIndices({0, 1});
  for (auto _ : state) {
    const double bias = ExactPermutationBias(encoded, lhs, 3);
    benchmark::DoNotOptimize(bias);
  }
}
BENCHMARK(BM_ExactPermutationBias)->Arg(500)->Arg(2000);

/// One stage x thread-count cell of the scaling report.
struct ScalingResult {
  size_t threads = 0;
  double seconds = 0.0;
};

struct ScalingStage {
  std::string name;
  std::vector<ScalingResult> results;
};

/// Median wall time of `reps` runs of `body`.
template <typename Fn>
double MedianSeconds(size_t reps, Fn&& body) {
  std::vector<double> times;
  times.reserve(reps);
  for (size_t r = 0; r < reps; ++r) {
    Stopwatch watch;
    body();
    times.push_back(watch.ElapsedSeconds());
  }
  return Median(times);
}

int RunScalingReport(const bench::Flags& flags) {
  const size_t rows = flags.GetSize("rows", 100000);
  const size_t attrs = flags.GetSize("attrs", 20);
  const size_t reps = flags.GetSize("reps", 3);
  const std::string out_path = flags.GetString("out", "BENCH_core.json");

  std::vector<size_t> thread_counts = {1, 2, 8, DefaultThreadCount()};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  std::printf("Generating synthetic table: %zu rows x %zu attributes...\n",
              rows, attrs);
  const SyntheticDataset ds = MakeData(rows, attrs);

  // Covariance input: a dense gaussian sample matrix of the same shape.
  Rng rng(21);
  Matrix samples(rows, attrs);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < attrs; ++j) samples(i, j) = rng.NextGaussian();
  }

  // The three transform_* stages break pair_transform_moments into its
  // packed-engine phases (counting sort / bit packing / popcount
  // accumulation). They are *CPU* seconds summed across worker threads,
  // so at T threads they can exceed the stage's wall time.
  std::vector<ScalingStage> stages = {{"pair_transform_moments", {}},
                                      {"transform_sort", {}},
                                      {"transform_pack", {}},
                                      {"transform_accumulate", {}},
                                      {"covariance", {}},
                                      {"fdx_discover", {}}};
  bool deterministic = true;
  Matrix reference_cov;  // transform covariance at 1 thread

  for (size_t threads : thread_counts) {
    TransformOptions transform;
    transform.threads = threads;
    std::vector<double> total_times, sort_times, pack_times, acc_times;
    for (size_t r = 0; r < reps; ++r) {
      TransformProfile profile;
      transform.profile = &profile;
      Stopwatch watch;
      auto moments = PairTransformMoments(ds.noisy, transform);
      benchmark::DoNotOptimize(moments);
      total_times.push_back(watch.ElapsedSeconds());
      sort_times.push_back(profile.sort_seconds);
      pack_times.push_back(profile.pack_seconds);
      acc_times.push_back(profile.accumulate_seconds);
    }
    transform.profile = nullptr;
    stages[0].results.push_back({threads, Median(total_times)});
    stages[1].results.push_back({threads, Median(sort_times)});
    stages[2].results.push_back({threads, Median(pack_times)});
    stages[3].results.push_back({threads, Median(acc_times)});
    // Determinism check rides along: the moments at every thread count
    // must match the 1-thread reference bitwise.
    auto moments = PairTransformMoments(ds.noisy, transform);
    if (moments.ok()) {
      if (reference_cov.empty()) {
        reference_cov = moments->cov;
      } else if (moments->cov.Subtract(reference_cov).MaxAbs() != 0.0) {
        deterministic = false;
      }
    }

    const double cov_secs = MedianSeconds(reps, [&] {
      auto cov = Covariance(samples, threads);
      benchmark::DoNotOptimize(cov);
    });
    stages[4].results.push_back({threads, cov_secs});

    FdxOptions fdx_options;
    fdx_options.threads = threads;
    FdxDiscoverer discoverer(fdx_options);
    const double e2e_secs = MedianSeconds(reps, [&] {
      auto result = discoverer.Discover(ds.noisy);
      benchmark::DoNotOptimize(result);
    });
    stages[5].results.push_back({threads, e2e_secs});
  }

  // SIMD cell: the packed transform at the scalar fallback vs the
  // runtime-dispatched level, single-threaded so the kernel dominates.
  // Bit-identity of the packed output rides along.
  const SimdLevel simd_ambient = ActiveSimdLevel();
  TransformOptions simd_transform;
  simd_transform.threads = 1;
  SetSimdLevel(SimdLevel::kScalar);
  const double pack_scalar_secs = MedianSeconds(reps, [&] {
    auto packed = PairTransformPacked(ds.noisy, simd_transform);
    benchmark::DoNotOptimize(packed);
  });
  auto simd_scalar_packed = PairTransformPacked(ds.noisy, simd_transform);
  SetSimdLevel(simd_ambient);
  const double pack_simd_secs = MedianSeconds(reps, [&] {
    auto packed = PairTransformPacked(ds.noisy, simd_transform);
    benchmark::DoNotOptimize(packed);
  });
  auto simd_active_packed = PairTransformPacked(ds.noisy, simd_transform);
  const bool simd_bit_identical =
      simd_scalar_packed.ok() && simd_active_packed.ok() &&
      simd_active_packed->IdenticalTo(*simd_scalar_packed);
  if (!simd_bit_identical) deterministic = false;

  ReportTable table({"Stage", "Threads", "Seconds", "Speedup"});
  for (const ScalingStage& stage : stages) {
    const double base = stage.results.front().seconds;
    for (size_t i = 0; i < stage.results.size(); ++i) {
      const ScalingResult& r = stage.results[i];
      table.AddRow({i == 0 ? stage.name : "", std::to_string(r.threads),
                    bench::Score3(r.seconds),
                    r.seconds > 0.0 ? bench::Score3(base / r.seconds) : "-"});
    }
  }
  std::printf(
      "Core thread-scaling (%zu rows x %zu attrs, median of %zu reps, "
      "hardware threads: %zu)\n%s"
      "Transform determinism across thread counts: %s\n"
      "SIMD pack (1 thread): scalar %ss, %s %ss (%sx, %s)\n",
      rows, attrs, reps, DefaultThreadCount(), table.ToString().c_str(),
      deterministic ? "bit-identical" : "MISMATCH",
      bench::Score3(pack_scalar_secs).c_str(), SimdLevelName(simd_ambient),
      bench::Score3(pack_simd_secs).c_str(),
      pack_simd_secs > 0.0 ? bench::Score3(pack_scalar_secs / pack_simd_secs)
                                 .c_str()
                           : "-",
      simd_bit_identical ? "bit-identical" : "MISMATCH");
  if (DefaultThreadCount() < 8) {
    std::printf(
        "Note: only %zu hardware thread(s) available; the 2- and 8-thread "
        "cells are oversubscribed and do not reflect parallel speedup.\n",
        DefaultThreadCount());
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("core_scaling");
  json.Key("rows");
  json.Integer(static_cast<int64_t>(rows));
  json.Key("attrs");
  json.Integer(static_cast<int64_t>(attrs));
  json.Key("reps");
  json.Integer(static_cast<int64_t>(reps));
  json.Key("hardware_threads");
  json.Integer(static_cast<int64_t>(DefaultThreadCount()));
  if (DefaultThreadCount() < 8) {
    // Thread cells beyond the core count are oversubscription, not
    // parallel speedup; record the caveat next to the numbers.
    json.Key("hardware_threads_note");
    json.String("thread counts above hardware_threads are oversubscribed");
  }
  json.Key("transform_deterministic");
  json.Bool(deterministic);
  json.Key("simd");
  json.BeginObject();
  json.Key("level");
  json.String(SimdLevelName(simd_ambient));
  json.Key("detected_level");
  json.String(SimdLevelName(DetectedSimdLevel()));
  json.Key("pack_scalar_seconds");
  json.Number(pack_scalar_secs);
  json.Key("pack_simd_seconds");
  json.Number(pack_simd_secs);
  json.Key("pack_speedup");
  json.Number(pack_simd_secs > 0.0 ? pack_scalar_secs / pack_simd_secs : 0.0);
  json.Key("bit_identical");
  json.Bool(simd_bit_identical);
  json.EndObject();
  json.Key("stages");
  json.BeginArray();
  for (const ScalingStage& stage : stages) {
    json.BeginObject();
    json.Key("name");
    json.String(stage.name);
    json.Key("results");
    json.BeginArray();
    const double base = stage.results.front().seconds;
    for (const ScalingResult& r : stage.results) {
      json.BeginObject();
      json.Key("threads");
      json.Integer(static_cast<int64_t>(r.threads));
      json.Key("seconds");
      json.Number(r.seconds);
      json.Key("speedup_vs_1");
      json.Number(r.seconds > 0.0 ? base / r.seconds : 0.0);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  const std::string& path = out_path;
  const std::string doc = json.TakeString();
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("Wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "Could not write %s\n", path.c_str());
    return 1;
  }
  return deterministic ? 0 : 2;
}

/// Deterministic correlation-style inputs for the solver scaling report.
/// All are symmetric positive definite by construction, so the bench
/// exercises the solver, not input pathology.
Matrix BlockCorrelation(size_t k, size_t block, double rho) {
  Matrix s(k, k);
  for (size_t i = 0; i < k; ++i) {
    s(i, i) = 1.0;
    for (size_t j = i + 1; j < k; ++j) {
      if (i / block == j / block) {
        s(i, j) = rho;
        s(j, i) = rho;
      }
    }
  }
  return s;
}

Matrix BandedCorrelation(size_t k, double rho) {
  Matrix s(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      s(i, j) = std::pow(rho, std::fabs(static_cast<double>(i) -
                                        static_cast<double>(j)));
    }
  }
  return s;
}

Matrix DenseCorrelation(size_t k, double rho) {
  Matrix s(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) s(i, j) = i == j ? 1.0 : rho;
  }
  return s;
}

/// Half coupled blocks, half free-standing variables: exercises the
/// O(1) singleton closure alongside real block solves.
Matrix MixedCorrelation(size_t k, size_t block, double rho) {
  Matrix s = BlockCorrelation(k, block, rho);
  for (size_t i = k / 2; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      if (i != j) {
        s(i, j) = 0.0;
        s(j, i) = 0.0;
      }
    }
  }
  return s;
}

struct GlassoCase {
  std::string structure;
  size_t k = 0;
  double reference_seconds = 0.0;
  double fast_seconds = 0.0;     ///< fast path (auto solver), 1 thread
  double fast_mt_seconds = 0.0;  ///< fast path, hardware threads
  double cd_seconds = 0.0;       ///< solver forced to coordinate descent
  double max_abs_diff = 0.0;     ///< |theta_fast - theta_reference|
  GlassoStats stats;             ///< from a single-thread fast solve
};

int RunGlassoReport(const bench::Flags& flags) {
  const size_t kmax = flags.GetSize("kmax", 200);
  const size_t reps = flags.GetSize("reps", 3);
  const std::string out_path = flags.GetString("out", "BENCH_glasso.json");

  const std::vector<size_t> sizes = {20, 50, 100, 200};
  const std::vector<std::string> structures = {"block", "banded", "dense",
                                               "mixed"};
  GlassoOptions options;  // defaults: lambda 0.05, tolerance 1e-4

  std::vector<GlassoCase> cases;
  for (size_t k : sizes) {
    if (k > kmax) continue;
    for (const std::string& structure : structures) {
      Matrix s;
      if (structure == "block") {
        s = BlockCorrelation(k, 10, 0.4);
      } else if (structure == "banded") {
        s = BandedCorrelation(k, 0.5);
      } else if (structure == "dense") {
        s = DenseCorrelation(k, 0.3);
      } else {
        s = MixedCorrelation(k, 10, 0.4);
      }

      GlassoCase cell;
      cell.structure = structure;
      cell.k = k;
      cell.reference_seconds = MedianSeconds(reps, [&] {
        auto result = GraphicalLassoReference(s, options);
        benchmark::DoNotOptimize(result);
      });
      GlassoOptions fast_options = options;
      fast_options.threads = 1;
      cell.fast_seconds = MedianSeconds(reps, [&] {
        auto result = GraphicalLasso(s, fast_options);
        benchmark::DoNotOptimize(result);
      });
      GlassoOptions mt_options = options;
      mt_options.threads = 0;  // FDX_THREADS / hardware concurrency
      cell.fast_mt_seconds = MedianSeconds(reps, [&] {
        auto result = GraphicalLasso(s, mt_options);
        benchmark::DoNotOptimize(result);
      });
      GlassoOptions cd_options = fast_options;
      cd_options.solver = GlassoSolver::kCoordinateDescent;
      cell.cd_seconds = MedianSeconds(reps, [&] {
        auto result = GraphicalLasso(s, cd_options);
        benchmark::DoNotOptimize(result);
      });
      // Accuracy cell: both solvers at a tight verification tolerance,
      // so the diff measures solver disagreement rather than how far
      // each stops from the optimum at the default (loose) tolerance.
      // Timing above stays at the default options.
      GlassoOptions verify_options = fast_options;
      verify_options.tolerance = std::min(options.tolerance, 1e-6);
      verify_options.lasso_tolerance =
          std::min(options.lasso_tolerance, 1e-9);
      // The reference is the measuring stick, so it runs an order
      // tighter than the solver under test. Its inner lasso must be
      // tightened along with the sweep tolerance: each sweep's W is
      // only as accurate as the inner solve, and a loose inner floor
      // masquerades as (very slow) outer progress.
      GlassoOptions verify_ref_options = options;
      verify_ref_options.tolerance = 0.1 * verify_options.tolerance;
      verify_ref_options.lasso_tolerance = verify_options.lasso_tolerance;
      verify_ref_options.max_iterations = options.max_iterations * 8;
      auto fast = GraphicalLasso(s, verify_options);
      auto reference = GraphicalLassoReference(s, verify_ref_options);
      if (!fast.ok() || !reference.ok()) {
        std::fprintf(stderr, "glasso bench solve failed: %s\n",
                     (!fast.ok() ? fast : reference).status().ToString().c_str());
        return 1;
      }
      cell.max_abs_diff =
          fast->theta.Subtract(reference->theta).MaxAbs();
      cell.stats = fast->stats;
      cases.push_back(std::move(cell));
    }
  }

  // Warm-start cell: solve the perturbed problem cold vs seeded with the
  // solution of the unperturbed one (the IncrementalFdx::Append pattern).
  const size_t warm_k = std::min<size_t>(kmax, 200);
  const Matrix warm_base = BlockCorrelation(warm_k, 10, 0.4);
  const Matrix warm_next = BlockCorrelation(warm_k, 10, 0.403);
  auto seed_solve = GraphicalLasso(warm_base, options);
  if (!seed_solve.ok()) {
    std::fprintf(stderr, "glasso bench warm seed failed: %s\n",
                 seed_solve.status().ToString().c_str());
    return 1;
  }
  GlassoOptions cold_options = options;
  cold_options.threads = 1;
  const double cold_seconds = MedianSeconds(reps, [&] {
    auto result = GraphicalLasso(warm_next, cold_options);
    benchmark::DoNotOptimize(result);
  });
  GlassoOptions warm_options = cold_options;
  warm_options.warm_w = &seed_solve->w;
  warm_options.warm_theta = &seed_solve->theta;
  const double warm_seconds = MedianSeconds(reps, [&] {
    auto result = GraphicalLasso(warm_next, warm_options);
    benchmark::DoNotOptimize(result);
  });
  auto cold_run = GraphicalLasso(warm_next, cold_options);
  auto warm_run = GraphicalLasso(warm_next, warm_options);
  if (!cold_run.ok() || !warm_run.ok()) {
    std::fprintf(stderr, "glasso bench warm cell failed\n");
    return 1;
  }

  ReportTable table({"Structure", "k", "Reference s", "Fast s", "CD s",
                     "Speedup", "vs CD", "Solver", "NIters", "MaxDiff"});
  for (const GlassoCase& cell : cases) {
    table.AddRow({cell.structure, std::to_string(cell.k),
                  bench::Score3(cell.reference_seconds),
                  bench::Score3(cell.fast_seconds),
                  bench::Score3(cell.cd_seconds),
                  cell.fast_seconds > 0.0
                      ? bench::Score3(cell.reference_seconds /
                                      cell.fast_seconds)
                      : "-",
                  cell.fast_seconds > 0.0
                      ? bench::Score3(cell.cd_seconds / cell.fast_seconds)
                      : "-",
                  cell.stats.SolverBackend(),
                  std::to_string(cell.stats.newton_iterations),
                  bench::Score3(cell.max_abs_diff)});
  }
  std::printf(
      "Graphical-lasso solver scaling (median of %zu reps, hardware "
      "threads: %zu)\n%s"
      "Warm start at k=%zu block: cold %ss, warm %ss (%s sweeps -> %s)\n",
      reps, DefaultThreadCount(), table.ToString().c_str(), warm_k,
      bench::Score3(cold_seconds).c_str(), bench::Score3(warm_seconds).c_str(),
      std::to_string(cold_run->sweeps).c_str(),
      std::to_string(warm_run->sweeps).c_str());

  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("glasso_scaling");
  json.Key("reps");
  json.Integer(static_cast<int64_t>(reps));
  json.Key("hardware_threads");
  json.Integer(static_cast<int64_t>(DefaultThreadCount()));
  json.Key("simd_level");
  json.String(SimdLevelName(ActiveSimdLevel()));
  json.Key("lambda");
  json.Number(options.lambda);
  json.Key("diff_tolerance");
  json.Number(std::min(options.tolerance, 1e-6));
  json.Key("cases");
  json.BeginArray();
  for (const GlassoCase& cell : cases) {
    json.BeginObject();
    json.Key("structure");
    json.String(cell.structure);
    json.Key("k");
    json.Integer(static_cast<int64_t>(cell.k));
    json.Key("reference_seconds");
    json.Number(cell.reference_seconds);
    json.Key("fast_seconds");
    json.Number(cell.fast_seconds);
    json.Key("fast_mt_seconds");
    json.Number(cell.fast_mt_seconds);
    json.Key("cd_seconds");
    json.Number(cell.cd_seconds);
    json.Key("speedup");
    json.Number(cell.fast_seconds > 0.0
                    ? cell.reference_seconds / cell.fast_seconds
                    : 0.0);
    json.Key("speedup_mt");
    json.Number(cell.fast_mt_seconds > 0.0
                    ? cell.reference_seconds / cell.fast_mt_seconds
                    : 0.0);
    json.Key("speedup_vs_cd");
    json.Number(cell.fast_seconds > 0.0
                    ? cell.cd_seconds / cell.fast_seconds
                    : 0.0);
    json.Key("max_abs_diff");
    json.Number(cell.max_abs_diff);
    json.Key("solver");
    json.String(cell.stats.SolverBackend());
    json.Key("newton_iterations");
    json.Integer(static_cast<int64_t>(cell.stats.newton_iterations));
    json.Key("newton_path_stages");
    json.Integer(static_cast<int64_t>(cell.stats.newton_path_stages));
    json.Key("components");
    json.Integer(static_cast<int64_t>(cell.stats.components));
    json.Key("singletons");
    json.Integer(static_cast<int64_t>(cell.stats.singletons));
    json.Key("sweeps");
    json.Integer(static_cast<int64_t>(cell.stats.sweeps));
    json.Key("active_hit_rate");
    json.Number(cell.stats.ActiveHitRate());
    json.Key("breakdown");
    json.BeginObject();
    json.Key("screen_seconds");
    json.Number(cell.stats.screen_seconds);
    json.Key("decompose_seconds");
    json.Number(cell.stats.decompose_seconds);
    json.Key("solve_seconds");
    json.Number(cell.stats.solve_seconds);
    json.Key("assemble_seconds");
    json.Number(cell.stats.assemble_seconds);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.Key("warm_start");
  json.BeginObject();
  json.Key("structure");
  json.String("block");
  json.Key("k");
  json.Integer(static_cast<int64_t>(warm_k));
  json.Key("cold_seconds");
  json.Number(cold_seconds);
  json.Key("warm_seconds");
  json.Number(warm_seconds);
  json.Key("speedup");
  json.Number(warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0);
  json.Key("cold_sweeps");
  json.Integer(static_cast<int64_t>(cold_run->sweeps));
  json.Key("warm_sweeps");
  json.Integer(static_cast<int64_t>(warm_run->sweeps));
  json.Key("warm_start_used");
  json.Bool(warm_run->stats.warm_start_used);
  json.EndObject();
  json.EndObject();

  const std::string doc = json.TakeString();
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("Wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "Could not write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}

/// Process-lifetime peak RSS in bytes (ru_maxrss is KiB on Linux).
uint64_t PeakRssBytes() {
  struct rusage usage = {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

/// On-disk footprint of a chunk store (manifest + chunk files).
uint64_t DirectoryBytes(const std::string& dir) {
  auto listing = ListDirectory(dir);
  if (!listing.ok()) return 0;
  uint64_t total = 0;
  for (const std::string& name : *listing) {
    struct stat st = {};
    if (::stat((dir + "/" + name).c_str(), &st) == 0) {
      total += static_cast<uint64_t>(st.st_size);
    }
  }
  return total;
}

/// One transform-mode cell: which read path, which bounded schedule,
/// which payload codec.
struct OocoreModeSpec {
  const char* name;
  StoreIo io;
  BoundedSchedule schedule;
  bool compressed;
};

constexpr OocoreModeSpec kOocoreModes[] = {
    {"read_serial_raw", StoreIo::kRead, BoundedSchedule::kSerial, false},
    {"mmap_serial_raw", StoreIo::kMmap, BoundedSchedule::kSerial, false},
    {"mmap_wave_raw", StoreIo::kMmap, BoundedSchedule::kWave, false},
    {"mmap_wave_varint", StoreIo::kMmap, BoundedSchedule::kWave, true},
};

struct OocoreModeCell {
  double transform_seconds = 0.0;
  bool bit_identical = true;
};

/// One row-count cell of the out-of-core report.
struct OocoreCase {
  size_t rows = 0;
  size_t chunks = 0;
  double ingest_seconds = 0.0;          ///< raw store
  double ingest_varint_seconds = 0.0;   ///< varint-compressed store
  uint64_t store_bytes_raw = 0;
  uint64_t store_bytes_varint = 0;
  double chunked_transform_seconds = 0.0;  ///< the mmap_wave_raw mode
  double in_memory_transform_seconds = -1.0;  ///< < 0 means skipped
  OocoreModeCell modes[4];
  bool bit_identical = true;  ///< every mode matches the reference
  uint64_t peak_rss_bytes = 0;
};

int RunOocoreReport(const bench::Flags& flags) {
  const size_t rows_max = flags.GetSize("rows-max", 5000000);
  const size_t attrs = flags.GetSize("attrs", 12);
  const size_t chunk_rows = flags.GetSize("chunk-rows", 65536);
  const size_t max_in_memory_rows =
      flags.GetSize("max-in-memory-rows", 5000000);
  const uint64_t cache_bytes =
      static_cast<uint64_t>(flags.GetSize("cache-mb", 64)) * 1024 * 1024;
  const std::string out_path = flags.GetString("out", "BENCH_store.json");
  const std::string work_dir = flags.GetString("work-dir", "bench_oocore");

  (void)RemoveDirectoryRecursive(work_dir);
  Status made = EnsureDirectory(work_dir);
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.ToString().c_str());
    return 1;
  }
  const size_t threads = flags.GetSize("threads", 0);
  const std::string csv_path = work_dir + "/oocore.csv";
  const std::string store_dir = work_dir + "/store";
  const std::string store_dir_varint = work_dir + "/store-varint";

  // Streams one CSV into a spilled store under the named codec.
  const auto ingest_store = [&](const std::string& dir,
                                const std::string& codec,
                                ChunkedTable* store) -> Status {
    (void)RemoveDirectoryRecursive(dir);
    bool created = false;
    return ReadCsvChunked(
        csv_path, {}, chunk_rows, [&](Table&& chunk) -> Status {
          if (!created) {
            FDX_ASSIGN_OR_RETURN(
                *store, ChunkedTable::Create(chunk.schema(), dir, codec));
            created = true;
          }
          if (chunk.num_rows() == 0) return Status::OK();
          return store->AppendBatch(chunk);
        });
  };

  std::vector<OocoreCase> cases;
  for (size_t rows : std::vector<size_t>{100000, 1000000, 5000000}) {
    if (rows > rows_max) continue;
    OocoreCase cell;
    cell.rows = rows;

    std::printf("oocore %zu rows x %zu attrs: generating...\n", rows, attrs);
    const SyntheticDataset ds = MakeData(rows, attrs);
    Status written = WriteCsv(ds.noisy, csv_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }

    // Ingest legs: the same CSV into a raw and a varint-compressed
    // store (identical fingerprints, different bytes on disk).
    ChunkedTable store;
    Stopwatch ingest_watch;
    Status ingest = ingest_store(store_dir, "", &store);
    if (!ingest.ok()) {
      std::fprintf(stderr, "%s\n", ingest.ToString().c_str());
      return 1;
    }
    cell.ingest_seconds = ingest_watch.ElapsedSeconds();
    cell.chunks = store.num_chunks();
    cell.store_bytes_raw = DirectoryBytes(store_dir);

    ChunkedTable store_varint;
    ingest_watch.Reset();
    ingest = ingest_store(store_dir_varint, "varint", &store_varint);
    if (!ingest.ok()) {
      std::fprintf(stderr, "%s\n", ingest.ToString().c_str());
      return 1;
    }
    cell.ingest_varint_seconds = ingest_watch.ElapsedSeconds();
    cell.store_bytes_varint = DirectoryBytes(store_dir_varint);

    // Transform legs: every (read path, bounded schedule, codec) mode,
    // decoded columns bounded by --cache-mb. The first mode is the
    // reference; every other mode must reproduce its bits exactly.
    Matrix reference_cov;
    for (size_t m = 0; m < 4; ++m) {
      const OocoreModeSpec& spec = kOocoreModes[m];
      ChunkedTable& mode_store = spec.compressed ? store_varint : store;
      mode_store.set_io_mode(spec.io);
      StreamTransformOptions stream;
      stream.transform.threads = threads;
      stream.column_cache_bytes = cache_bytes;
      stream.bounded_schedule = spec.schedule;
      Stopwatch mode_watch;
      auto moments = StreamTransformMoments(mode_store, stream);
      cell.modes[m].transform_seconds = mode_watch.ElapsedSeconds();
      if (!moments.ok()) {
        std::fprintf(stderr, "%s: %s\n", spec.name,
                     moments.status().ToString().c_str());
        return 1;
      }
      if (m == 0) {
        reference_cov = moments->cov;
      } else {
        cell.modes[m].bit_identical =
            moments->cov.Subtract(reference_cov).MaxAbs() == 0.0;
      }
      if (std::strcmp(spec.name, "mmap_wave_raw") == 0) {
        cell.chunked_transform_seconds = cell.modes[m].transform_seconds;
      }
    }

    // In-memory leg (skipped above the cap; the point of the store is
    // tables where this leg would not fit).
    if (rows <= max_in_memory_rows) {
      TransformOptions in_memory_options;
      in_memory_options.threads = threads;
      Stopwatch in_memory_watch;
      auto in_memory = PairTransformMoments(ds.noisy, in_memory_options);
      cell.in_memory_transform_seconds = in_memory_watch.ElapsedSeconds();
      if (!in_memory.ok()) {
        std::fprintf(stderr, "%s\n", in_memory.status().ToString().c_str());
        return 1;
      }
      cell.modes[0].bit_identical =
          reference_cov.Subtract(in_memory->cov).MaxAbs() == 0.0;
    }
    cell.bit_identical = true;
    for (const OocoreModeCell& mode : cell.modes) {
      if (!mode.bit_identical) cell.bit_identical = false;
    }
    cell.peak_rss_bytes = PeakRssBytes();
    cases.push_back(cell);
  }
  (void)RemoveDirectoryRecursive(work_dir);

  bool all_identical = true;
  ReportTable table({"Rows", "Chunks", "Ingest s", "Rows/s", "Read+serial s",
                     "Mmap+serial s", "Mmap+wave s", "Wave+varint s",
                     "In-memory s", "Identical", "Peak RSS MB"});
  for (const OocoreCase& cell : cases) {
    if (!cell.bit_identical) all_identical = false;
    table.AddRow(
        {std::to_string(cell.rows), std::to_string(cell.chunks),
         bench::Score3(cell.ingest_seconds),
         bench::Score3(cell.ingest_seconds > 0.0
                           ? static_cast<double>(cell.rows) /
                                 cell.ingest_seconds
                           : 0.0),
         bench::Score3(cell.modes[0].transform_seconds),
         bench::Score3(cell.modes[1].transform_seconds),
         bench::Score3(cell.modes[2].transform_seconds),
         bench::Score3(cell.modes[3].transform_seconds),
         cell.in_memory_transform_seconds < 0.0
             ? "skipped"
             : bench::Score3(cell.in_memory_transform_seconds),
         cell.bit_identical ? "yes" : "NO",
         std::to_string(cell.peak_rss_bytes / (1024 * 1024))});
  }
  std::printf("Out-of-core store (%zu attrs, chunk %zu rows, cache %zu MB)\n%s",
              attrs, chunk_rows,
              static_cast<size_t>(cache_bytes / (1024 * 1024)),
              table.ToString().c_str());

  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("store_oocore");
  json.Key("attrs");
  json.Integer(static_cast<int64_t>(attrs));
  json.Key("chunk_rows");
  json.Integer(static_cast<int64_t>(chunk_rows));
  json.Key("column_cache_bytes");
  json.Integer(static_cast<int64_t>(cache_bytes));
  json.Key("threads");
  json.Integer(static_cast<int64_t>(ResolveThreadCount(threads)));
  json.Key("hardware_threads");
  json.Integer(static_cast<int64_t>(DefaultThreadCount()));
  if (ResolveThreadCount(threads) > DefaultThreadCount()) {
    json.Key("hardware_threads_note");
    json.String("thread counts above hardware_threads are oversubscribed");
  }
  json.Key("bit_identical");
  json.Bool(all_identical);
  json.Key("cases");
  json.BeginArray();
  for (const OocoreCase& cell : cases) {
    json.BeginObject();
    json.Key("rows");
    json.Integer(static_cast<int64_t>(cell.rows));
    json.Key("chunks");
    json.Integer(static_cast<int64_t>(cell.chunks));
    json.Key("ingest_seconds");
    json.Number(cell.ingest_seconds);
    json.Key("ingest_rows_per_second");
    json.Number(cell.ingest_seconds > 0.0
                    ? static_cast<double>(cell.rows) / cell.ingest_seconds
                    : 0.0);
    json.Key("ingest_varint_seconds");
    json.Number(cell.ingest_varint_seconds);
    json.Key("store_bytes_raw");
    json.Integer(static_cast<int64_t>(cell.store_bytes_raw));
    json.Key("store_bytes_varint");
    json.Integer(static_cast<int64_t>(cell.store_bytes_varint));
    json.Key("chunked_transform_seconds");
    json.Number(cell.chunked_transform_seconds);
    json.Key("modes");
    json.BeginObject();
    for (size_t m = 0; m < 4; ++m) {
      json.Key(kOocoreModes[m].name);
      json.BeginObject();
      json.Key("transform_seconds");
      json.Number(cell.modes[m].transform_seconds);
      json.Key("bit_identical");
      json.Bool(cell.modes[m].bit_identical);
      json.EndObject();
    }
    json.EndObject();
    json.Key("in_memory_transform_seconds");
    if (cell.in_memory_transform_seconds < 0.0) {
      json.Null();
    } else {
      json.Number(cell.in_memory_transform_seconds);
    }
    json.Key("bit_identical");
    json.Bool(cell.bit_identical);
    json.Key("peak_rss_bytes");
    json.Integer(static_cast<int64_t>(cell.peak_rss_bytes));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  const std::string doc = json.TakeString();
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("Wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "Could not write %s\n", out_path.c_str());
    return 1;
  }
  return all_identical ? 0 : 2;
}

}  // namespace
}  // namespace fdx

int main(int argc, char** argv) {
  const fdx::bench::Flags flags(argc, argv);
  if (flags.Has("micro")) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  if (flags.Has("glasso")) {
    return fdx::RunGlassoReport(flags);
  }
  if (flags.Has("oocore")) {
    return fdx::RunOocoreReport(flags);
  }
  return fdx::RunScalingReport(flags);
}
