// Core benchmarks in two modes:
//
//   bench_micro_core [--rows=N] [--attrs=K] [--reps=R] [--out=PATH]
//     Thread-scaling report (the default): wall time of the pair
//     transform, covariance, and end-to-end FdxDiscover at 1, 2, 8, and
//     hardware threads, written as a text table and as BENCH_core.json
//     so the perf trajectory is tracked PR over PR.
//
//   bench_micro_core --micro [--benchmark_filter=...]
//     The original google-benchmark micro-benchmarks for the FDX
//     building blocks: pair transform, covariance, graphical lasso,
//     U D U^T factorization, stripped partitions, and entropy.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/cords.h"
#include "baselines/info_theory.h"
#include "baselines/tane.h"
#include "bench_util.h"
#include "core/fdx.h"
#include "core/transform.h"
#include "eval/report.h"
#include "fd/partition.h"
#include "linalg/factorization.h"
#include "linalg/glasso.h"
#include "linalg/stats.h"
#include "synth/generator.h"
#include "util/json_writer.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace fdx {
namespace {

SyntheticDataset MakeData(size_t tuples, size_t attributes) {
  SyntheticConfig config;
  config.num_tuples = tuples;
  config.num_attributes = attributes;
  config.seed = 77;
  auto ds = GenerateSynthetic(config);
  return *std::move(ds);
}

void BM_PairTransformMoments(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)),
               static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto moments = PairTransformMoments(ds.noisy, {});
    benchmark::DoNotOptimize(moments);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_PairTransformMoments)
    ->Args({1000, 8})
    ->Args({1000, 32})
    ->Args({10000, 8})
    ->Args({10000, 32});

void BM_PairTransformPacked(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)),
               static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto packed = PairTransformPacked(ds.noisy, {});
    benchmark::DoNotOptimize(packed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_PairTransformPacked)->Args({10000, 8})->Args({10000, 32});

void BM_PairTransformCounts(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)),
               static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto counts = PairTransformCounts(ds.noisy, {});
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_PairTransformCounts)->Args({10000, 8})->Args({10000, 32});

void BM_GraphicalLasso(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const SyntheticDataset ds = MakeData(2000, k);
  auto moments = PairTransformMoments(ds.noisy, {});
  GlassoOptions options;
  for (auto _ : state) {
    auto result = GraphicalLasso(moments->cov, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GraphicalLasso)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_UdutFactor(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Rng rng(3);
  Matrix m(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) m(i, j) = rng.NextGaussian();
  }
  Matrix spd = m.Multiply(m.Transpose());
  for (size_t i = 0; i < k; ++i) spd(i, i) += static_cast<double>(k);
  for (auto _ : state) {
    auto result = UdutFactor(spd);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UdutFactor)->Arg(16)->Arg(64)->Arg(128);

void BM_PartitionProduct(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)), 8);
  const EncodedTable encoded = EncodedTable::Encode(ds.noisy);
  StrippedPartition a = StrippedPartition::FromColumn(encoded, 0);
  StrippedPartition b = StrippedPartition::FromColumn(encoded, 1);
  for (auto _ : state) {
    StrippedPartition product = StrippedPartition::Multiply(a, b);
    benchmark::DoNotOptimize(product);
  }
}
BENCHMARK(BM_PartitionProduct)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Entropy(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)), 8);
  const EncodedTable encoded = EncodedTable::Encode(ds.noisy);
  const AttributeSet set = AttributeSet::FromIndices({0, 1, 2});
  for (auto _ : state) {
    const double h = Entropy(encoded, set);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_Entropy)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Covariance(benchmark::State& state) {
  Rng rng(4);
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  Matrix samples(n, k);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < k; ++j) samples(i, j) = rng.NextDouble();
  }
  for (auto _ : state) {
    auto cov = Covariance(samples);
    benchmark::DoNotOptimize(cov);
  }
}
BENCHMARK(BM_Covariance)->Args({10000, 16})->Args({10000, 64});

void BM_FdxEndToEnd(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)),
               static_cast<size_t>(state.range(1)));
  FdxDiscoverer discoverer;
  for (auto _ : state) {
    auto result = discoverer.Discover(ds.noisy);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FdxEndToEnd)->Args({1000, 8})->Args({1000, 32})->Args({5000, 16});

void BM_TaneEndToEnd(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)), 8);
  TaneOptions options;
  options.max_lhs_size = 3;
  for (auto _ : state) {
    auto result = DiscoverTane(ds.noisy, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TaneEndToEnd)->Arg(1000)->Arg(5000);

void BM_CordsEndToEnd(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)), 12);
  for (auto _ : state) {
    auto result = DiscoverCords(ds.noisy, {});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CordsEndToEnd)->Arg(1000)->Arg(10000);

void BM_PermutationBias(benchmark::State& state) {
  const SyntheticDataset ds = MakeData(1000, 6);
  const EncodedTable encoded = EncodedTable::Encode(ds.noisy);
  Rng rng(11);
  const AttributeSet lhs = AttributeSet::FromIndices({0, 1});
  for (auto _ : state) {
    const double bias =
        PermutationBias(encoded, lhs, 3, static_cast<size_t>(state.range(0)),
                        &rng);
    benchmark::DoNotOptimize(bias);
  }
}
BENCHMARK(BM_PermutationBias)->Arg(1)->Arg(3)->Arg(10);

void BM_ExactPermutationBias(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)), 6);
  const EncodedTable encoded = EncodedTable::Encode(ds.noisy);
  const AttributeSet lhs = AttributeSet::FromIndices({0, 1});
  for (auto _ : state) {
    const double bias = ExactPermutationBias(encoded, lhs, 3);
    benchmark::DoNotOptimize(bias);
  }
}
BENCHMARK(BM_ExactPermutationBias)->Arg(500)->Arg(2000);

/// One stage x thread-count cell of the scaling report.
struct ScalingResult {
  size_t threads = 0;
  double seconds = 0.0;
};

struct ScalingStage {
  std::string name;
  std::vector<ScalingResult> results;
};

/// Median wall time of `reps` runs of `body`.
template <typename Fn>
double MedianSeconds(size_t reps, Fn&& body) {
  std::vector<double> times;
  times.reserve(reps);
  for (size_t r = 0; r < reps; ++r) {
    Stopwatch watch;
    body();
    times.push_back(watch.ElapsedSeconds());
  }
  return Median(times);
}

int RunScalingReport(const bench::Flags& flags) {
  const size_t rows = flags.GetSize("rows", 100000);
  const size_t attrs = flags.GetSize("attrs", 20);
  const size_t reps = flags.GetSize("reps", 3);
  const std::string out_path = flags.GetString("out", "BENCH_core.json");

  std::vector<size_t> thread_counts = {1, 2, 8, DefaultThreadCount()};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  std::printf("Generating synthetic table: %zu rows x %zu attributes...\n",
              rows, attrs);
  const SyntheticDataset ds = MakeData(rows, attrs);

  // Covariance input: a dense gaussian sample matrix of the same shape.
  Rng rng(21);
  Matrix samples(rows, attrs);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < attrs; ++j) samples(i, j) = rng.NextGaussian();
  }

  // The three transform_* stages break pair_transform_moments into its
  // packed-engine phases (counting sort / bit packing / popcount
  // accumulation). They are *CPU* seconds summed across worker threads,
  // so at T threads they can exceed the stage's wall time.
  std::vector<ScalingStage> stages = {{"pair_transform_moments", {}},
                                      {"transform_sort", {}},
                                      {"transform_pack", {}},
                                      {"transform_accumulate", {}},
                                      {"covariance", {}},
                                      {"fdx_discover", {}}};
  bool deterministic = true;
  Matrix reference_cov;  // transform covariance at 1 thread

  for (size_t threads : thread_counts) {
    TransformOptions transform;
    transform.threads = threads;
    std::vector<double> total_times, sort_times, pack_times, acc_times;
    for (size_t r = 0; r < reps; ++r) {
      TransformProfile profile;
      transform.profile = &profile;
      Stopwatch watch;
      auto moments = PairTransformMoments(ds.noisy, transform);
      benchmark::DoNotOptimize(moments);
      total_times.push_back(watch.ElapsedSeconds());
      sort_times.push_back(profile.sort_seconds);
      pack_times.push_back(profile.pack_seconds);
      acc_times.push_back(profile.accumulate_seconds);
    }
    transform.profile = nullptr;
    stages[0].results.push_back({threads, Median(total_times)});
    stages[1].results.push_back({threads, Median(sort_times)});
    stages[2].results.push_back({threads, Median(pack_times)});
    stages[3].results.push_back({threads, Median(acc_times)});
    // Determinism check rides along: the moments at every thread count
    // must match the 1-thread reference bitwise.
    auto moments = PairTransformMoments(ds.noisy, transform);
    if (moments.ok()) {
      if (reference_cov.empty()) {
        reference_cov = moments->cov;
      } else if (moments->cov.Subtract(reference_cov).MaxAbs() != 0.0) {
        deterministic = false;
      }
    }

    const double cov_secs = MedianSeconds(reps, [&] {
      auto cov = Covariance(samples, threads);
      benchmark::DoNotOptimize(cov);
    });
    stages[4].results.push_back({threads, cov_secs});

    FdxOptions fdx_options;
    fdx_options.threads = threads;
    FdxDiscoverer discoverer(fdx_options);
    const double e2e_secs = MedianSeconds(reps, [&] {
      auto result = discoverer.Discover(ds.noisy);
      benchmark::DoNotOptimize(result);
    });
    stages[5].results.push_back({threads, e2e_secs});
  }

  ReportTable table({"Stage", "Threads", "Seconds", "Speedup"});
  for (const ScalingStage& stage : stages) {
    const double base = stage.results.front().seconds;
    for (size_t i = 0; i < stage.results.size(); ++i) {
      const ScalingResult& r = stage.results[i];
      table.AddRow({i == 0 ? stage.name : "", std::to_string(r.threads),
                    bench::Score3(r.seconds),
                    r.seconds > 0.0 ? bench::Score3(base / r.seconds) : "-"});
    }
  }
  std::printf(
      "Core thread-scaling (%zu rows x %zu attrs, median of %zu reps, "
      "hardware threads: %zu)\n%s"
      "Transform determinism across thread counts: %s\n",
      rows, attrs, reps, DefaultThreadCount(), table.ToString().c_str(),
      deterministic ? "bit-identical" : "MISMATCH");

  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("core_scaling");
  json.Key("rows");
  json.Integer(static_cast<int64_t>(rows));
  json.Key("attrs");
  json.Integer(static_cast<int64_t>(attrs));
  json.Key("reps");
  json.Integer(static_cast<int64_t>(reps));
  json.Key("hardware_threads");
  json.Integer(static_cast<int64_t>(DefaultThreadCount()));
  json.Key("transform_deterministic");
  json.Bool(deterministic);
  json.Key("stages");
  json.BeginArray();
  for (const ScalingStage& stage : stages) {
    json.BeginObject();
    json.Key("name");
    json.String(stage.name);
    json.Key("results");
    json.BeginArray();
    const double base = stage.results.front().seconds;
    for (const ScalingResult& r : stage.results) {
      json.BeginObject();
      json.Key("threads");
      json.Integer(static_cast<int64_t>(r.threads));
      json.Key("seconds");
      json.Number(r.seconds);
      json.Key("speedup_vs_1");
      json.Number(r.seconds > 0.0 ? base / r.seconds : 0.0);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  const std::string& path = out_path;
  const std::string doc = json.TakeString();
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("Wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "Could not write %s\n", path.c_str());
    return 1;
  }
  return deterministic ? 0 : 2;
}

}  // namespace
}  // namespace fdx

int main(int argc, char** argv) {
  const fdx::bench::Flags flags(argc, argv);
  if (flags.Has("micro")) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return fdx::RunScalingReport(flags);
}
