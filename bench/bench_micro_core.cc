// Google-benchmark micro-benchmarks for the FDX building blocks:
// pair transform, covariance, graphical lasso, U D U^T factorization,
// stripped partitions, and entropy estimation.

#include <benchmark/benchmark.h>

#include "baselines/cords.h"
#include "baselines/info_theory.h"
#include "baselines/tane.h"
#include "core/fdx.h"
#include "core/transform.h"
#include "fd/partition.h"
#include "linalg/factorization.h"
#include "linalg/glasso.h"
#include "linalg/stats.h"
#include "synth/generator.h"

namespace fdx {
namespace {

SyntheticDataset MakeData(size_t tuples, size_t attributes) {
  SyntheticConfig config;
  config.num_tuples = tuples;
  config.num_attributes = attributes;
  config.seed = 77;
  auto ds = GenerateSynthetic(config);
  return *std::move(ds);
}

void BM_PairTransformMoments(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)),
               static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto moments = PairTransformMoments(ds.noisy, {});
    benchmark::DoNotOptimize(moments);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_PairTransformMoments)
    ->Args({1000, 8})
    ->Args({1000, 32})
    ->Args({10000, 8})
    ->Args({10000, 32});

void BM_GraphicalLasso(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const SyntheticDataset ds = MakeData(2000, k);
  auto moments = PairTransformMoments(ds.noisy, {});
  GlassoOptions options;
  for (auto _ : state) {
    auto result = GraphicalLasso(moments->cov, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GraphicalLasso)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_UdutFactor(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Rng rng(3);
  Matrix m(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) m(i, j) = rng.NextGaussian();
  }
  Matrix spd = m.Multiply(m.Transpose());
  for (size_t i = 0; i < k; ++i) spd(i, i) += static_cast<double>(k);
  for (auto _ : state) {
    auto result = UdutFactor(spd);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UdutFactor)->Arg(16)->Arg(64)->Arg(128);

void BM_PartitionProduct(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)), 8);
  const EncodedTable encoded = EncodedTable::Encode(ds.noisy);
  StrippedPartition a = StrippedPartition::FromColumn(encoded, 0);
  StrippedPartition b = StrippedPartition::FromColumn(encoded, 1);
  for (auto _ : state) {
    StrippedPartition product = StrippedPartition::Multiply(a, b);
    benchmark::DoNotOptimize(product);
  }
}
BENCHMARK(BM_PartitionProduct)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Entropy(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)), 8);
  const EncodedTable encoded = EncodedTable::Encode(ds.noisy);
  const AttributeSet set = AttributeSet::FromIndices({0, 1, 2});
  for (auto _ : state) {
    const double h = Entropy(encoded, set);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_Entropy)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Covariance(benchmark::State& state) {
  Rng rng(4);
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  Matrix samples(n, k);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < k; ++j) samples(i, j) = rng.NextDouble();
  }
  for (auto _ : state) {
    auto cov = Covariance(samples);
    benchmark::DoNotOptimize(cov);
  }
}
BENCHMARK(BM_Covariance)->Args({10000, 16})->Args({10000, 64});

void BM_FdxEndToEnd(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)),
               static_cast<size_t>(state.range(1)));
  FdxDiscoverer discoverer;
  for (auto _ : state) {
    auto result = discoverer.Discover(ds.noisy);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FdxEndToEnd)->Args({1000, 8})->Args({1000, 32})->Args({5000, 16});

void BM_TaneEndToEnd(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)), 8);
  TaneOptions options;
  options.max_lhs_size = 3;
  for (auto _ : state) {
    auto result = DiscoverTane(ds.noisy, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TaneEndToEnd)->Arg(1000)->Arg(5000);

void BM_CordsEndToEnd(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)), 12);
  for (auto _ : state) {
    auto result = DiscoverCords(ds.noisy, {});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CordsEndToEnd)->Arg(1000)->Arg(10000);

void BM_PermutationBias(benchmark::State& state) {
  const SyntheticDataset ds = MakeData(1000, 6);
  const EncodedTable encoded = EncodedTable::Encode(ds.noisy);
  Rng rng(11);
  const AttributeSet lhs = AttributeSet::FromIndices({0, 1});
  for (auto _ : state) {
    const double bias =
        PermutationBias(encoded, lhs, 3, static_cast<size_t>(state.range(0)),
                        &rng);
    benchmark::DoNotOptimize(bias);
  }
}
BENCHMARK(BM_PermutationBias)->Arg(1)->Arg(3)->Arg(10);

void BM_ExactPermutationBias(benchmark::State& state) {
  const SyntheticDataset ds =
      MakeData(static_cast<size_t>(state.range(0)), 6);
  const EncodedTable encoded = EncodedTable::Encode(ds.noisy);
  const AttributeSet lhs = AttributeSet::FromIndices({0, 1});
  for (auto _ : state) {
    const double bias = ExactPermutationBias(encoded, lhs, 3);
    benchmark::DoNotOptimize(bias);
  }
}
BENCHMARK(BM_ExactPermutationBias)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace fdx

BENCHMARK_MAIN();
