// Reproduces paper Figure 6: column-wise scalability of FDX. Sweeps the
// attribute count, reporting the mean total runtime (data generation
// excluded; loading + transform + learning included) and the mean
// structure-learning ("model") runtime, validating the quadratic
// complexity claim of §5.7.1.
//
// Quick defaults sweep r = 4..100 step 8 with 2 repetitions; pass
// --full for the paper's 4..190 step 2 with 5 repetitions.

#include <cstdio>

#include "bench_util.h"
#include "core/fdx.h"
#include "eval/report.h"
#include "synth/generator.h"

int main(int argc, char** argv) {
  using namespace fdx;
  const bench::Flags flags(argc, argv);
  const bool full = flags.Has("full");
  const size_t max_columns = flags.GetSize("max-columns", full ? 190 : 100);
  const size_t step = flags.GetSize("step", full ? 2 : 8);
  const size_t reps = flags.GetSize("reps", full ? 5 : 2);
  const size_t tuples = flags.GetSize("tuples", 1000);

  ReportTable table(
      {"# columns", "total runtime (s)", "model runtime (s)"});
  for (size_t columns = 4; columns <= max_columns; columns += step) {
    double total = 0.0, model = 0.0;
    size_t completed = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
      SyntheticConfig config;
      config.num_tuples = tuples;
      config.num_attributes = columns;
      config.seed = 100 * rep + columns;
      auto ds = GenerateSynthetic(config);
      if (!ds.ok()) continue;
      FdxDiscoverer discoverer;
      auto result = discoverer.Discover(ds->noisy);
      if (!result.ok()) continue;
      total += result->transform_seconds + result->learning_seconds;
      model += result->learning_seconds;
      ++completed;
    }
    if (completed == 0) continue;
    table.AddRow({std::to_string(columns),
                  FormatDouble(total / completed, 4),
                  FormatDouble(model / completed, 4)});
  }
  std::printf(
      "Figure 6: column-wise scalability of FDX (mean over %zu reps,\n"
      "%zu tuples; expect roughly quadratic growth in the column count)\n%s",
      reps, tuples, table.ToString().c_str());
  return 0;
}
