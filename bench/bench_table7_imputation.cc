// Reproduces paper Table 7: missing-value imputation F1 (median) for
// attributes that participate in an FDX-discovered FD (w) versus
// attributes that do not (w/o), under random and systematic corruption,
// for both imputation models (tree ensemble = XGBoost substitute,
// multinomial logistic = AimNet substitute; see DESIGN.md).
//
// Flags: --max-rows=N (default 4000; caps NYPD), --skip-nypd.

#include <cstdio>
#include <memory>
#include <set>

#include "bench_util.h"
#include "core/fdx.h"
#include "datasets/real_world.h"
#include "eval/report.h"
#include "imputation/decision_tree.h"
#include "imputation/harness.h"
#include "imputation/logistic.h"

namespace {

using namespace fdx;

struct GroupScores {
  std::vector<double> with_fd;
  std::vector<double> without_fd;
};

GroupScores RunModel(const RealWorldDataset& ds,
                     const std::set<size_t>& fd_attrs,
                     const ClassifierFactory& factory,
                     CorruptionKind corruption, size_t max_rows) {
  GroupScores scores;
  for (size_t target = 0; target < ds.table.num_columns(); ++target) {
    ImputationConfig config;
    config.corruption = corruption;
    config.max_rows = max_rows;
    config.seed = 500 + target;
    auto score = EvaluateImputation(ds.table, target, factory, config);
    if (!score.ok()) continue;  // constant / too-sparse targets skipped
    if (fd_attrs.count(target) > 0) {
      scores.with_fd.push_back(score->macro_f1);
    } else {
      scores.without_fd.push_back(score->macro_f1);
    }
  }
  return scores;
}

std::string Cell(const std::vector<double>& values) {
  return values.empty() ? "-" : bench::Score3(Median(values));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const size_t max_rows = flags.GetSize("max-rows", 4000);

  const ClassifierFactory logistic = [] {
    return std::make_unique<LogisticClassifier>();
  };
  const ClassifierFactory forest = [] {
    return std::make_unique<RandomForestClassifier>();
  };

  ReportTable table({"Data set", "Rand Logit w/o", "Rand Logit w",
                     "Rand Forest w/o", "Rand Forest w", "Sys Logit w/o",
                     "Sys Logit w", "Sys Forest w/o", "Sys Forest w"});

  for (auto& ds : MakeAllRealWorldDatasets()) {
    if (flags.Has("skip-nypd") && ds.name == "NYPD") continue;
    // Partition attributes by participation in FDX's output (the
    // profiling signal Table 7 validates).
    FdxOptions fdx_options;
    fdx_options.transform.max_pairs_per_attribute = 20000;
    FdxDiscoverer discoverer(fdx_options);
    auto result = discoverer.Discover(ds.table);
    if (!result.ok()) continue;
    std::set<size_t> fd_attrs;
    for (const auto& fd : result->fds) {
      fd_attrs.insert(fd.rhs);
      fd_attrs.insert(fd.lhs.begin(), fd.lhs.end());
    }
    std::vector<std::string> row = {ds.name};
    for (CorruptionKind kind :
         {CorruptionKind::kRandom, CorruptionKind::kSystematic}) {
      for (const ClassifierFactory* factory : {&logistic, &forest}) {
        GroupScores scores =
            RunModel(ds, fd_attrs, *factory, kind, max_rows);
        row.push_back(Cell(scores.without_fd));
        row.push_back(Cell(scores.with_fd));
      }
    }
    table.AddRow(row);
  }
  std::printf(
      "Table 7: median imputation F1 for attributes outside (w/o) and\n"
      "inside (w) FDX-discovered FDs; Logit = multinomial logistic\n"
      "regression (AimNet substitute), Forest = bagged decision trees\n"
      "(XGBoost substitute). Rand/Sys = corruption kind.\n%s",
      table.ToString().c_str());
  return 0;
}
