// Reproduces paper Table 1: the benchmark data sets with known
// dependencies (attribute, FD and FD-edge counts per network).

#include <cstdio>

#include "bn/networks.h"
#include "eval/report.h"

int main() {
  using namespace fdx;
  ReportTable table({"Data set", "Attributes", "# FDs", "# Edges in FDs"});
  for (auto& bn : MakeAllBenchmarkNetworks()) {
    const FdSet fds = bn.net.GroundTruthFds();
    table.AddRow({bn.name, std::to_string(bn.net.num_nodes()),
                  std::to_string(fds.size()),
                  std::to_string(FdEdges(fds).size())});
  }
  std::printf("Table 1: benchmark data sets with known dependencies\n%s",
              table.ToString().c_str());
  std::printf(
      "\nNote: structures follow the published bnlearn networks; the\n"
      "paper's Table 1 reports slightly different FD counts for Child\n"
      "and Alarm (15/24 FDs) than the raw parent-set counts.\n");
  return 0;
}
