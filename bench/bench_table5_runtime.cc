// Reproduces paper Table 5: end-to-end runtime (seconds) of every
// method on the benchmark data sets with known FDs.
//
// Flags: --budget=SECONDS (default 30), --tuples=N (default 10000),
//        --threads=N (default 1: per-method wall times stay undistorted;
//        raise it to fan the sweep's cells out concurrently).

#include <cstdio>

#include "bench_util.h"
#include "bn/networks.h"
#include "eval/report.h"
#include "eval/runner.h"

int main(int argc, char** argv) {
  using namespace fdx;
  const bench::Flags flags(argc, argv);
  const double budget = flags.GetDouble("budget", 30.0);
  const size_t tuples = flags.GetSize("tuples", 10000);

  RunnerConfig config;
  config.time_budget_seconds = budget;
  config.expected_error = 0.05;
  config.threads = flags.GetSize("threads", 1);

  std::vector<std::string> header = {"Data set"};
  for (MethodId m : AllMethods()) header.push_back(MethodName(m));
  ReportTable table(header);

  for (auto& bn : MakeAllBenchmarkNetworks()) {
    Rng rng(99);
    auto sample = bn.net.Sample(tuples, &rng);
    if (!sample.ok()) continue;
    std::vector<std::string> row = {bn.name};
    for (const RunOutcome& outcome : bench::RunAllMethods(*sample, config)) {
      row.push_back(outcome.ok ? bench::Secs(outcome.seconds) : "-");
    }
    table.AddRow(row);
  }
  std::printf(
      "Table 5: runtime (seconds) on benchmark data sets\n"
      "(budget %.0fs per run; '-' = exceeded budget or failed)\n%s",
      budget, table.ToString().c_str());
  return 0;
}
