// Reproduces paper Table 4: precision / recall / F1 of every method on
// the benchmark data sets with known FDs. Methods that exceed the time
// budget print '-' rows, mirroring the paper's 8-hour cap.
//
// Flags: --budget=SECONDS (default 30), --tuples=N (default 10000),
//        --threads=N (default auto; cells of one dataset run concurrently).

#include <cstdio>

#include "bench_util.h"
#include "bn/networks.h"
#include "eval/report.h"
#include "eval/runner.h"

int main(int argc, char** argv) {
  using namespace fdx;
  const bench::Flags flags(argc, argv);
  const double budget = flags.GetDouble("budget", 30.0);
  const size_t tuples = flags.GetSize("tuples", 10000);

  RunnerConfig config;
  config.time_budget_seconds = budget;
  config.expected_error = 0.05;  // CPT epsilon of the generators
  config.threads = flags.GetSize("threads", 0);

  std::vector<std::string> header = {"Data set", "Metric"};
  for (MethodId m : AllMethods()) header.push_back(MethodName(m));
  ReportTable table(header);

  for (auto& bn : MakeAllBenchmarkNetworks()) {
    Rng rng(99);
    auto sample = bn.net.Sample(tuples, &rng);
    if (!sample.ok()) continue;
    const FdSet truth = bn.net.GroundTruthFds();
    std::vector<std::string> p_row = {bn.name, "P"};
    std::vector<std::string> r_row = {"", "R"};
    std::vector<std::string> f_row = {"", "F1"};
    for (const RunOutcome& outcome : bench::RunAllMethods(*sample, config)) {
      if (!outcome.ok) {
        p_row.push_back("-");
        r_row.push_back("-");
        f_row.push_back("-");
        continue;
      }
      const FdScore score = ScoreFdsUndirected(outcome.fds, truth);
      p_row.push_back(bench::Score3(score.precision));
      r_row.push_back(bench::Score3(score.recall));
      f_row.push_back(bench::Score3(score.f1));
    }
    table.AddRow(p_row);
    table.AddRow(r_row);
    table.AddRow(f_row);
  }
  std::printf(
      "Table 4: evaluation on benchmark data sets with known FDs\n"
      "(budget %.0fs per run; '-' = exceeded budget or failed)\n%s",
      budget, table.ToString().c_str());
  return 0;
}
