// Reproduces paper Figure 4: the FDs discovered by RFI on Hospital with
// their reliable-fraction-of-information scores.
//
// Flags: --budget=SECONDS (default 60), --max-lhs=K (default 2; the
// original unbounded search needs the paper's multi-hour budget).

#include <cstdio>

#include "baselines/rfi.h"
#include "bench_util.h"
#include "datasets/real_world.h"

int main(int argc, char** argv) {
  using namespace fdx;
  const bench::Flags flags(argc, argv);
  RealWorldDataset hospital = MakeHospitalDataset();

  RfiOptions options;
  options.alpha = 1.0;  // the paper shows the highest-alpha run
  options.max_lhs_size = flags.GetSize("max-lhs", 2);
  options.time_budget_seconds = flags.GetDouble("budget", 60.0);
  options.return_partial_on_timeout = true;
  auto scored = DiscoverRfiScored(hospital.table, options);
  if (!scored.ok()) {
    std::printf("RFI failed: %s\n", scored.status().ToString().c_str());
    return 1;
  }
  std::printf("Figure 4: FDs discovered by RFI(1.0) on Hospital\n\n");
  for (const auto& entry : *scored) {
    std::printf("%s ( %.6f )\n",
                entry.fd.ToString(hospital.table.schema()).c_str(),
                entry.score);
  }
  std::printf(
      "\nPaper behaviour to compare: ~16 FDs, mostly meaningful, plus\n"
      "overfitted ones like 'ZipCode -> EmergencyService' (a huge-domain\n"
      "determinant of a binary attribute).\n");
  return 0;
}
