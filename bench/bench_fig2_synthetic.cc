// Reproduces paper Figure 2: median F1 of every method across the
// Table 2 synthetic settings (tuples/attributes/domain x noise).
//
// Quick defaults keep the full sweep to a few minutes: t=large is
// 20,000 tuples and 3 instances per setting; pass --full for the
// paper-scale 100,000 tuples and 5 instances.
//
// Flags: --budget=SECONDS (default 10), --instances=K, --full.

#include <cstdio>

#include "bench_util.h"
#include "eval/report.h"
#include "eval/runner.h"
#include "synth/generator.h"

namespace {

struct Setting {
  const char* label;
  bool t_large;
  bool r_large;
  bool d_large;
  double noise;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fdx;
  const bench::Flags flags(argc, argv);
  const bool full = flags.Has("full");
  const double budget = flags.GetDouble("budget", full ? 300.0 : 10.0);
  const size_t instances = flags.GetSize("instances", full ? 5 : 3);
  const size_t t_large = full ? 100000 : 20000;

  // The eight settings plotted in Figure 2 (a)-(h).
  const Setting settings[] = {
      {"t=large r=large d=large n=high", true, true, true, 0.30},
      {"t=large r=large d=large n=low", true, true, true, 0.01},
      {"t=large r=small d=large n=high", true, false, true, 0.30},
      {"t=large r=small d=large n=low", true, false, true, 0.01},
      {"t=small r=small d=large n=high", false, false, true, 0.30},
      {"t=small r=small d=large n=low", false, false, true, 0.01},
      {"t=small r=small d=small n=high", false, false, false, 0.30},
      {"t=small r=small d=small n=low", false, false, false, 0.01},
  };

  std::vector<std::string> header = {"Setting"};
  for (MethodId m : AllMethods()) header.push_back(MethodName(m));
  ReportTable table(header);

  for (const Setting& setting : settings) {
    // Per-method F1 samples across instances; median reported (§5.1).
    std::vector<std::vector<double>> scores(AllMethods().size());
    std::vector<bool> timed_out(AllMethods().size(), false);
    for (size_t instance = 0; instance < instances; ++instance) {
      SyntheticConfig config;
      config.num_tuples = setting.t_large ? t_large : 1000;
      config.noise_rate = setting.noise;
      config.seed = 1000 + instance;
      Rng size_rng(2000 + instance);
      config = setting.r_large ? LargeAttributes(config, &size_rng)
                               : SmallAttributes(config, &size_rng);
      config = setting.d_large ? LargeDomain(config) : SmallDomain(config);
      auto ds = GenerateSynthetic(config);
      if (!ds.ok()) continue;
      RunnerConfig runner;
      runner.expected_error = setting.noise;
      runner.time_budget_seconds = budget;
      runner.fdx.transform.max_pairs_per_attribute = full ? 0 : 20000;
      size_t index = 0;
      for (MethodId m : AllMethods()) {
        RunOutcome outcome = RunMethod(m, ds->noisy, runner);
        if (outcome.ok) {
          scores[index].push_back(
              ScoreFdsUndirected(outcome.fds, ds->true_fds).f1);
        } else {
          timed_out[index] = true;
        }
        ++index;
      }
    }
    std::vector<std::string> row = {setting.label};
    for (size_t index = 0; index < scores.size(); ++index) {
      row.push_back(scores[index].empty()
                        ? "-"
                        : bench::Score3(Median(scores[index])) +
                              (timed_out[index] ? "*" : ""));
    }
    table.AddRow(row);
  }
  std::printf(
      "Figure 2: median F1 across synthetic settings\n"
      "(budget %.0fs/run, %zu instances; '-' = no run finished,\n"
      " '*' = some instances exceeded the budget)\n%s",
      budget, instances, table.ToString().c_str());
  return 0;
}
