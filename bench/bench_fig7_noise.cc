// Reproduces paper Figure 7: the effect of increasing noise rates on
// FDX's F1 across the eight synthetic settings of Table 2.
//
// Flags: --instances=K (default 3; paper uses 5), --full.

#include <cstdio>

#include "bench_util.h"
#include "core/fdx.h"
#include "eval/report.h"
#include "synth/generator.h"

namespace {

struct Setting {
  const char* label;
  bool t_large;
  bool r_large;
  bool d_large;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fdx;
  const bench::Flags flags(argc, argv);
  const bool full = flags.Has("full");
  const size_t instances = flags.GetSize("instances", full ? 5 : 3);
  const size_t t_large = full ? 100000 : 20000;
  const double noise_rates[] = {0.01, 0.05, 0.1, 0.3, 0.5};

  const Setting settings[] = {
      {"tlarge_rlarge_dlarge", true, true, true},
      {"tlarge_rlarge_dsmall", true, true, false},
      {"tlarge_rsmall_dlarge", true, false, true},
      {"tlarge_rsmall_dsmall", true, false, false},
      {"tsmall_rlarge_dlarge", false, true, true},
      {"tsmall_rlarge_dsmall", false, true, false},
      {"tsmall_rsmall_dlarge", false, false, true},
      {"tsmall_rsmall_dsmall", false, false, false},
  };

  std::vector<std::string> header = {"Setting"};
  for (double rate : noise_rates) header.push_back(FormatDouble(rate, 2));
  ReportTable table(header);

  for (const Setting& setting : settings) {
    std::vector<std::string> row = {setting.label};
    for (double rate : noise_rates) {
      std::vector<double> scores;
      for (size_t instance = 0; instance < instances; ++instance) {
        SyntheticConfig config;
        config.num_tuples = setting.t_large ? t_large : 1000;
        config.noise_rate = rate;
        config.seed = 3000 + instance;
        Rng size_rng(4000 + instance);
        config = setting.r_large ? LargeAttributes(config, &size_rng)
                                 : SmallAttributes(config, &size_rng);
        config = setting.d_large ? LargeDomain(config) : SmallDomain(config);
        auto ds = GenerateSynthetic(config);
        if (!ds.ok()) continue;
        FdxOptions options;
        if (!full) options.transform.max_pairs_per_attribute = 20000;
        FdxDiscoverer discoverer(options);
        auto result = discoverer.Discover(ds->noisy);
        if (!result.ok()) continue;
        scores.push_back(ScoreFdsUndirected(result->fds, ds->true_fds).f1);
      }
      row.push_back(scores.empty() ? "-" : bench::Score3(Median(scores)));
    }
    table.AddRow(row);
  }
  std::printf(
      "Figure 7: effect of noise on FDX (median F1, %zu instances per\n"
      "cell; columns are noise rates)\n%s",
      instances, table.ToString().c_str());
  return 0;
}
