// Reproduces paper Figure 3: the autoregression matrix estimated by FDX
// for the Hospital data set (rendered as a text heatmap) and the
// corresponding discovered FDs.

#include <cmath>
#include <cstdio>

#include "core/fdx.h"
#include "datasets/real_world.h"

namespace {

/// Text heatmap glyph for a weight in [0, 1].
char Glyph(double value) {
  static const char kScale[] = " .:-=+*#%@";
  const double v = std::min(1.0, std::max(0.0, value));
  return kScale[static_cast<size_t>(v * 9.0)];
}

}  // namespace

int main() {
  using namespace fdx;
  RealWorldDataset hospital = MakeHospitalDataset();
  FdxDiscoverer discoverer;
  auto result = discoverer.Discover(hospital.table);
  if (!result.ok()) {
    std::printf("FDX failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const Schema& schema = hospital.table.schema();
  const size_t k = schema.size();
  std::printf(
      "Figure 3: FDX autoregression matrix for Hospital\n"
      "(rows determine columns; darker = larger weight)\n\n    ");
  for (size_t j = 0; j < k; ++j) std::printf("%2zu ", j);
  std::printf("\n");
  for (size_t i = 0; i < k; ++i) {
    std::printf("%2zu  ", i);
    for (size_t j = 0; j < k; ++j) {
      std::printf(" %c ", Glyph(result->autoregression(i, j)));
    }
    std::printf(" %s\n", schema.name(i).c_str());
  }
  std::printf("\nDiscovered FDs:\n%s",
              FdSetToString(result->fds, schema).c_str());
  std::printf(
      "\nPaper Figure 3 reference FDs (for comparison):\n"
      "  ProviderNumber -> ZipCode / HospitalName\n"
      "  ProviderNumber,HospitalName -> Address1\n"
      "  ProviderNumber,HospitalName,Address1 -> City / PhoneNumber\n"
      "  City -> CountyName\n"
      "  PhoneNumber -> HospitalOwner\n"
      "  MeasureCode -> MeasureName\n"
      "  MeasureCode,MeasureName -> Stateavg\n"
      "  MeasureCode,MeasureName,Stateavg -> Condition\n");
  return 0;
}
