#ifndef FDX_BENCH_BENCH_UTIL_H_
#define FDX_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>
#include <vector>

#include "eval/runner.h"
#include "util/string_util.h"

namespace fdx::bench {

/// Minimal --key=value flag reader shared by the benchmark drivers.
/// Every driver accepts:
///   --budget=SECONDS   per-run time budget (like the paper's 8h cap)
///   --tuples=N         rows sampled per dataset
///   --instances=K      instances per synthetic setting (paper: 5)
///   --threads=N        fan-out width for method sweeps (0 = FDX_THREADS
///                      env or hardware concurrency)
///   --full             paper-scale parameters instead of quick defaults
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool Has(const std::string& name) const {
    for (const auto& arg : args_) {
      if (arg == "--" + name) return true;
    }
    return false;
  }

  double GetDouble(const std::string& name, double fallback) const {
    const std::string prefix = "--" + name + "=";
    for (const auto& arg : args_) {
      if (arg.rfind(prefix, 0) == 0) {
        return std::atof(arg.substr(prefix.size()).c_str());
      }
    }
    return fallback;
  }

  size_t GetSize(const std::string& name, size_t fallback) const {
    return static_cast<size_t>(GetDouble(name, static_cast<double>(fallback)));
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    const std::string prefix = "--" + name + "=";
    for (const auto& arg : args_) {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    }
    return fallback;
  }

 private:
  std::vector<std::string> args_;
};

/// Renders a score to the paper's 3-decimal convention.
inline std::string Score3(double v) { return FormatDouble(v, 3); }
inline std::string Secs(double v) { return FormatDouble(v, 2); }

/// Fans one dataset's row of the (method, dataset) sweep out over
/// `config.threads` workers. Outcomes come back in AllMethods() order,
/// so drivers can zip them against their table columns.
inline std::vector<RunOutcome> RunAllMethods(const Table& table,
                                             const RunnerConfig& config) {
  std::vector<MethodTask> tasks;
  for (MethodId m : AllMethods()) tasks.push_back({m, &table});
  return RunMethodsParallel(tasks, config);
}

}  // namespace fdx::bench

#endif  // FDX_BENCH_BENCH_UTIL_H_
