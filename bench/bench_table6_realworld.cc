// Reproduces paper Table 6: runtime and number of discovered FDs on the
// real-world dataset replicas with naturally occurring missing values.
//
// Flags: --budget=SECONDS (default 30; the paper used 8 hours),
//        --skip-nypd (drop the 34k-row dataset for quick runs).

#include <cstdio>

#include "bench_util.h"
#include "datasets/real_world.h"
#include "eval/report.h"
#include "eval/runner.h"

int main(int argc, char** argv) {
  using namespace fdx;
  const bench::Flags flags(argc, argv);
  const double budget = flags.GetDouble("budget", 30.0);

  RunnerConfig config;
  config.time_budget_seconds = budget;
  config.expected_error = 0.02;  // replicas carry ~2% corruption
  // Paper §5.4: FDX on NYPD spends its time in the self-join transform;
  // sampling bounds it (we cap pairs per attribute on tall tables).
  config.fdx.transform.max_pairs_per_attribute = 20000;

  std::vector<std::string> header = {"Data set", "Measure"};
  for (MethodId m : AllMethods()) header.push_back(MethodName(m));
  ReportTable table(header);

  for (auto& ds : MakeAllRealWorldDatasets()) {
    if (flags.Has("skip-nypd") && ds.name == "NYPD") continue;
    std::vector<std::string> time_row = {ds.name, "time (sec)"};
    std::vector<std::string> count_row = {"", "# of FDs"};
    for (MethodId m : AllMethods()) {
      RunOutcome outcome = RunMethod(m, ds.table, config);
      if (!outcome.ok) {
        time_row.push_back("-");
        count_row.push_back("-");
        continue;
      }
      time_row.push_back(bench::Secs(outcome.seconds));
      count_row.push_back(std::to_string(outcome.fds.size()));
    }
    table.AddRow(time_row);
    table.AddRow(count_row);
  }
  std::printf(
      "Table 6: runtime and number of discovered FDs on real-world\n"
      "dataset replicas (budget %.0fs per run; '-' = exceeded budget)\n%s",
      budget, table.ToString().c_str());
  return 0;
}
