// Reproduces paper Figure 5: the autoregression matrices FDX estimates
// for the Australian Credit Approval and Mammographic data sets, used
// for feature engineering: the determinants of the goal attribute are
// its most informative features.

#include <cmath>
#include <cstdio>

#include "core/fdx.h"
#include "datasets/real_world.h"

namespace {

using namespace fdx;

char Glyph(double value) {
  static const char kScale[] = " .:-=+*#%@";
  const double v = std::min(1.0, std::max(0.0, value));
  return kScale[static_cast<size_t>(v * 9.0)];
}

void Show(const RealWorldDataset& ds, const std::string& goal) {
  FdxDiscoverer discoverer;
  auto result = discoverer.Discover(ds.table);
  if (!result.ok()) {
    std::printf("%s: FDX failed: %s\n", ds.name.c_str(),
                result.status().ToString().c_str());
    return;
  }
  const Schema& schema = ds.table.schema();
  std::printf("\n%s (goal attribute: %s)\n", ds.name.c_str(), goal.c_str());
  for (size_t i = 0; i < schema.size(); ++i) {
    std::printf("  ");
    for (size_t j = 0; j < schema.size(); ++j) {
      std::printf(" %c ", Glyph(result->autoregression(i, j)));
    }
    std::printf(" %s\n", schema.name(i).c_str());
  }
  std::printf("Discovered FDs:\n%s",
              FdSetToString(result->fds, schema).c_str());
  // Determinants of the goal attribute = suggested features.
  const int goal_index = schema.Find(goal);
  if (goal_index >= 0) {
    for (const auto& fd : result->fds) {
      if (fd.rhs == static_cast<size_t>(goal_index)) {
        std::printf("=> features for predicting %s: %s\n", goal.c_str(),
                    fd.ToString(schema).c_str());
      }
    }
  }
}

}  // namespace

int main() {
  std::printf(
      "Figure 5: FDX autoregression matrices for feature engineering\n"
      "(paper findings: A8 determines A15 on Australian; shape+margin\n"
      " determine severity, and severity determines rads, on\n"
      " Mammographic)\n");
  Show(MakeAustralianDataset(), "A15");
  Show(MakeMammographicDataset(), "severity");
  return 0;
}
