// Data profiling for data-preparation pipelines (paper §5.5): run FDX
// on a noisy hospital-style dataset, show the learned structure, and
// predict which attributes automated data cleaning will handle well —
// without training any cleaning model.

#include <cstdio>
#include <set>

#include "core/fdx.h"
#include "datasets/real_world.h"
#include "fd/fd.h"

int main() {
  using namespace fdx;
  RealWorldDataset hospital = MakeHospitalDataset();
  std::printf("Profiling %s (%zu rows, %zu attributes, ~2%% missing)\n\n",
              hospital.name.c_str(), hospital.table.num_rows(),
              hospital.table.num_columns());

  FdxDiscoverer discoverer;
  auto result = discoverer.Discover(hospital.table);
  if (!result.ok()) {
    std::fprintf(stderr, "discovery failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Discovered dependencies:\n%s\n",
              FdSetToString(result->fds, hospital.table.schema()).c_str());

  // Attributes covered by a dependency are good candidates for
  // automated repair; isolated attributes are not (Table 7's insight).
  std::set<size_t> covered;
  for (const auto& fd : result->fds) {
    covered.insert(fd.rhs);
    covered.insert(fd.lhs.begin(), fd.lhs.end());
  }
  std::printf("Cleaning-tool guidance:\n");
  for (size_t c = 0; c < hospital.table.num_columns(); ++c) {
    std::printf("  %-18s %s\n", hospital.table.schema().name(c).c_str(),
                covered.count(c) > 0
                    ? "repairable: participates in a dependency"
                    : "hard to repair automatically: no dependency found");
  }

  // Validate each reported FD against the data (g3 error) so a human
  // reviewer can triage the suggestions.
  std::printf("\nValidation against the instance (g3 error):\n");
  const EncodedTable encoded = EncodedTable::Encode(hospital.table);
  for (const auto& fd : result->fds) {
    std::printf("  %-55s %.4f\n",
                fd.ToString(hospital.table.schema()).c_str(),
                FdG3Error(encoded, fd));
  }
  return 0;
}
