// Feature engineering with FDX (paper §5.5 / Figure 5): discover the
// determinants of a prediction target and verify — by actually training
// a classifier — that those determinants are the informative features.

#include <cstdio>
#include <memory>

#include "core/fdx.h"
#include "datasets/real_world.h"
#include "imputation/decision_tree.h"
#include "imputation/harness.h"

namespace {

using namespace fdx;

/// Hold-out F1 of a forest that predicts `target` from `features` only.
double ScoreFeatureSet(const Table& table, size_t target,
                       const std::vector<size_t>& features) {
  std::vector<size_t> columns = features;
  columns.push_back(target);
  const Table restricted = table.SelectColumns(columns);
  ImputationConfig config;
  config.missing_fraction = 0.3;
  config.seed = 17;
  auto score = EvaluateImputation(
      restricted, columns.size() - 1,
      [] { return std::make_unique<RandomForestClassifier>(); }, config);
  return score.ok() ? score->macro_f1 : 0.0;
}

}  // namespace

int main() {
  RealWorldDataset mammographic = MakeMammographicDataset();
  const Schema& schema = mammographic.table.schema();
  const int target = schema.Find("severity");
  std::printf("Feature engineering on %s; target attribute: severity\n\n",
              mammographic.name.c_str());

  FdxDiscoverer discoverer;
  auto result = discoverer.Discover(mammographic.table);
  if (!result.ok()) {
    std::fprintf(stderr, "discovery failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Discovered dependencies:\n%s\n",
              FdSetToString(result->fds, schema).c_str());

  // Features suggested by FDX: the determinants of the target.
  std::vector<size_t> suggested;
  for (const auto& fd : result->fds) {
    if (static_cast<int>(fd.rhs) == target) suggested = fd.lhs;
  }
  if (suggested.empty()) {
    std::printf("FDX found no determinant set for the target.\n");
    return 0;
  }
  std::printf("FDX-suggested features:");
  for (size_t f : suggested) std::printf(" %s", schema.name(f).c_str());
  std::printf("\n\n");

  // Compare against every other feature set of the same size 1.
  std::printf("Hold-out macro-F1 when predicting severity from ...\n");
  const double suggested_f1 = ScoreFeatureSet(
      mammographic.table, static_cast<size_t>(target), suggested);
  std::printf("  %-28s %.3f   <- FDX suggestion\n", "suggested determinants",
              suggested_f1);
  for (size_t c = 0; c < schema.size(); ++c) {
    if (static_cast<int>(c) == target) continue;
    const double f1 = ScoreFeatureSet(mammographic.table,
                                      static_cast<size_t>(target), {c});
    std::printf("  %-28s %.3f\n", ("{" + schema.name(c) + "} only").c_str(),
                f1);
  }
  std::printf(
      "\nExpected outcome (paper Figure 5b): shape and margin are the\n"
      "clinically informative features; age and density are not.\n");
  return 0;
}
