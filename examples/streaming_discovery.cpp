// Streaming FD discovery with IncrementalFdx: batches of tuples arrive
// over time and the dependency estimate is refreshed after each one
// without rescanning history — the dynamic-data setting of DynFD
// (paper §6), powered by the additivity of the pair-transform moments.

#include <cstdio>

#include "core/incremental.h"
#include "synth/generator.h"

int main() {
  using namespace fdx;
  SyntheticConfig config;
  config.num_tuples = 6000;
  config.num_attributes = 10;
  config.noise_rate = 0.02;
  config.seed = 15;
  auto ds = GenerateSynthetic(config);
  if (!ds.ok()) return 1;
  std::printf("Planted FDs:\n%s\n",
              FdSetToString(ds->true_fds, ds->noisy.schema()).c_str());

  IncrementalFdx incremental(ds->noisy.schema(), FdxOptions{});
  const size_t batch_size = 500;
  std::printf("%-8s %-8s %-10s %s\n", "rows", "#fds", "F1", "current estimate");
  for (size_t start = 0; start < ds->noisy.num_rows(); start += batch_size) {
    Table batch{ds->noisy.schema()};
    const size_t end = std::min(start + batch_size, ds->noisy.num_rows());
    for (size_t r = start; r < end; ++r) {
      std::vector<Value> row;
      for (size_t c = 0; c < ds->noisy.num_columns(); ++c) {
        row.push_back(ds->noisy.cell(r, c));
      }
      batch.AppendRow(std::move(row));
    }
    if (!incremental.Append(batch).ok()) continue;
    auto estimate = incremental.CurrentFds();
    if (!estimate.ok()) continue;
    const FdScore score =
        ScoreFdsUndirected(estimate->fds, ds->true_fds);
    std::string rendered;
    for (const auto& fd : estimate->fds) {
      if (!rendered.empty()) rendered += "; ";
      rendered += fd.ToString(ds->noisy.schema());
    }
    std::printf("%-8zu %-8zu %-10.3f %s\n", incremental.total_rows(),
                estimate->fds.size(), score.f1, rendered.c_str());
  }
  std::printf(
      "\nThe estimate stabilizes once enough batches accumulate; each\n"
      "refresh costs one structure-learning run, independent of the\n"
      "stream length.\n");
  return 0;
}
