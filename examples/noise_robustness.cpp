// Robustness demo: how FDX and the enumeration baseline (TANE) degrade
// as cell corruption increases — the experiment behind the paper's
// headline claim that statistical FD discovery is noise-robust.

#include <cstdio>

#include "baselines/tane.h"
#include "core/fdx.h"
#include "eval/report.h"
#include "synth/generator.h"
#include "util/string_util.h"

int main() {
  using namespace fdx;
  ReportTable table({"noise rate", "FDX F1", "FDX #fds", "TANE F1",
                     "TANE #fds"});
  for (double noise : {0.0, 0.01, 0.05, 0.1, 0.2, 0.3}) {
    SyntheticConfig config;
    config.num_tuples = 2000;
    config.num_attributes = 10;
    config.noise_rate = noise;
    config.seed = 61;
    auto ds = GenerateSynthetic(config);
    if (!ds.ok()) continue;

    FdxDiscoverer fdx;
    auto fdx_result = fdx.Discover(ds->noisy);

    TaneOptions tane_options;
    tane_options.max_error = noise;  // best case: TANE knows the rate
    auto tane_result = DiscoverTane(ds->noisy, tane_options);

    std::vector<std::string> row = {FormatDouble(noise, 2)};
    if (fdx_result.ok()) {
      row.push_back(FormatDouble(
          ScoreFdsUndirected(fdx_result->fds, ds->true_fds).f1, 3));
      row.push_back(std::to_string(fdx_result->fds.size()));
    } else {
      row.insert(row.end(), {"-", "-"});
    }
    if (tane_result.ok()) {
      row.push_back(FormatDouble(
          ScoreFdsUndirected(*tane_result, ds->true_fds).f1, 3));
      row.push_back(std::to_string(tane_result->size()));
    } else {
      row.insert(row.end(), {"-", "-"});
    }
    table.AddRow(row);
  }
  std::printf(
      "FDX vs TANE as noise grows (10 attributes, 2000 tuples; TANE is\n"
      "given the true noise rate as its error threshold — the tuning\n"
      "FDX does not need):\n%s",
      table.ToString().c_str());
  std::printf(
      "\nTakeaway: the enumeration method's FD count explodes and its\n"
      "F1 collapses as noise grows, while FDX stays parsimonious.\n");
  return 0;
}
