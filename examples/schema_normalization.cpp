// Schema normalization driven by discovered dependencies — the paper's
// opening motivation ("FDs are used in database normalization"). The
// pipeline: discover FDs on a denormalized noisy table with FDX, reduce
// them to a minimal cover, compute candidate keys, and decompose the
// schema into BCNF.

#include <cstdio>

#include "core/fdx.h"
#include "datasets/real_world.h"
#include "fd/normalization.h"

int main() {
  using namespace fdx;
  RealWorldDataset hospital = MakeHospitalDataset();
  const Schema& schema = hospital.table.schema();
  std::printf(
      "Normalizing the (denormalized) Hospital table: %zu rows, %zu "
      "attributes\n\n",
      hospital.table.num_rows(), hospital.table.num_columns());

  // 1. Discover dependencies statistically.
  FdxDiscoverer discoverer;
  auto result = discoverer.Discover(hospital.table);
  if (!result.ok()) {
    std::fprintf(stderr, "discovery failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Discovered FDs:\n%s\n",
              FdSetToString(result->fds, schema).c_str());

  // 2. Minimal cover: the non-redundant core of the dependency set.
  const FdSet cover = MinimalCover(result->fds, schema.size());
  std::printf("Minimal cover (%zu of %zu FDs):\n%s\n", cover.size(),
              result->fds.size(), FdSetToString(cover, schema).c_str());

  // 3. Candidate keys of the universal relation.
  const auto keys = CandidateKeys(schema.size(), cover);
  std::printf("Candidate keys:\n");
  for (const auto& key : keys) {
    std::printf("  {");
    const auto indices = key.ToIndices();
    for (size_t i = 0; i < indices.size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : "", schema.name(indices[i]).c_str());
    }
    std::printf("}\n");
  }

  // 4. BCNF decomposition.
  const auto decomposition = DecomposeBcnf(schema.size(), cover);
  std::printf("\nBCNF decomposition (%zu relations, %s):\n",
              decomposition.size(),
              IsBcnf(decomposition, cover) ? "verified BCNF"
                                           : "NOT fully normalized");
  for (size_t i = 0; i < decomposition.size(); ++i) {
    std::printf("  %s\n", decomposition[i].ToString(schema, i + 1).c_str());
  }
  std::printf(
      "\nEach provider-level and measure-level fragment now stores its\n"
      "facts once; the original wide table was repeating them per row.\n");
  return 0;
}
