// Quickstart: discover functional dependencies in a CSV file (or in a
// small built-in example) with FDX.
//
// Usage:
//   quickstart [data.csv]
//
// The example mirrors the paper's Figure 1 walkthrough: a noisy
// hospital-style table goes in, a parsimonious set of FDs comes out.

#include <cstdio>
#include <string>

#include "core/fdx.h"
#include "data/csv.h"

namespace {

/// The Figure 1 running example: a handful of hospital tuples with a
/// typo ("Cicago") and a wrong address, which FDX should shrug off.
const char kDemoCsv[] =
    "DBAName,Address,City,State,ZipCode\n"
    "Mity Nice Bar,835 N Michigan Av,Chicago,IL,60611\n"
    "Graft,835 N Michigan Av,Chicago,IL,60611\n"
    "Foodlife,835 N Michigan Av,Chicago,IL,60611\n"
    "Pierrot,3494 W Washington,Chicago,IL,60612\n"
    "Pierrot,3435 W Washington,Cicago,IL,60612\n"
    "Harry Caray's,3493 Washington,Chicago,IL,60608\n"
    "Mity Nice Bar,835 N Michigan Av,Chicago,IL,60611\n"
    "Graft,835 N Michigan Av,Chicago,IL,60611\n"
    "Foodlife,835 N Michigan Av,Chicago,IL,60611\n"
    "Pierrot,3494 W Washington,Chicago,IL,60612\n"
    "Harry Caray's,3493 Washington,Chicago,IL,60608\n"
    "Mity Nice Bar,835 N Michigan Av,Chicago,IL,60611\n"
    "Graft,835 N Michigan Av,Chicago,IL,60611\n"
    "Pierrot,3494 W Washington,Chicago,IL,60612\n"
    "Harry Caray's,3493 Washington,Chicago,IL,60608\n"
    "Foodlife,835 N Michigan Av,Chicago,IL,60611\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace fdx;

  // 1. Load data: a CSV path if given, the built-in demo otherwise.
  Result<Table> table = argc > 1 ? ReadCsv(argv[1]) : ParseCsv(kDemoCsv);
  if (!table.ok()) {
    std::fprintf(stderr, "failed to load data: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded %zu rows x %zu columns\n", table->num_rows(),
              table->num_columns());

  // 2. Configure and run the discoverer. The defaults are calibrated on
  // the paper's benchmarks; the knobs that matter most are `lambda`
  // (structure sparsity) and `sparsity_threshold` (FD pruning).
  FdxOptions options;
  FdxDiscoverer discoverer(options);
  Result<FdxResult> result = discoverer.Discover(*table);
  if (!result.ok()) {
    std::fprintf(stderr, "discovery failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 3. Inspect the output.
  const std::string rendered =
      result->fds.empty() ? "(none)\n"
                          : FdSetToString(result->fds, table->schema());
  std::printf(
      "Pair transform produced %zu samples in %.3fs; structure learning "
      "took %.3fs\n\nDiscovered FDs:\n%s",
      result->transform_samples, result->transform_seconds,
      result->learning_seconds, rendered.c_str());
  return 0;
}
