// End-to-end FD-driven data cleaning: discover dependencies with FDX on
// a corrupted dataset, validate them, and repair violating cells by
// majority vote — the light-weight version of the cleaning pipelines
// (HoloClean et al.) the paper positions FDX to optimize.

#include <cstdio>

#include "core/fdx.h"
#include "fd/validation.h"
#include "synth/generator.h"

int main() {
  using namespace fdx;

  // 1. A clean dataset with planted FDs; corrupt the *dependent*
  // columns at 8% — the typo-style error channel FD repair is designed
  // for. (Corrupted determinant cells shuffle rows into wrong groups
  // and need probabilistic, multi-constraint cleaners instead; see the
  // scorecard discussion below.)
  SyntheticConfig config;
  config.num_tuples = 3000;
  config.num_attributes = 10;
  config.noise_rate = 0.0;
  config.seed = 7;
  auto ds = GenerateSynthetic(config);
  if (!ds.ok()) return 1;
  std::vector<size_t> dependent_columns;
  for (const auto& fd : ds->true_fds) dependent_columns.push_back(fd.rhs);
  Rng corruption_rng(8);
  ds->noisy = FlipCells(ds->clean, dependent_columns, 0.08, &corruption_rng);
  std::printf(
      "Dataset: %zu rows, %zu attributes; 8%% of the dependent columns' "
      "cells corrupted\n",
      ds->noisy.num_rows(), ds->noisy.num_columns());

  // 2. Discover dependencies on the *corrupted* instance.
  FdxDiscoverer discoverer;
  auto result = discoverer.Discover(ds->noisy);
  if (!result.ok()) return 1;
  std::printf("\nFDX discovered:\n%s",
              FdSetToString(result->fds, ds->noisy.schema()).c_str());

  // 3. Validate and repair, one FD at a time.
  Table current = ds->noisy;
  ValidationOptions options;
  options.max_violations = 0;
  for (const auto& fd : result->fds) {
    EncodedTable encoded = EncodedTable::Encode(current);
    auto report = ValidateFd(encoded, fd, options);
    if (!report.ok()) continue;
    auto repairs = SuggestRepairs(encoded, fd, options);
    if (!repairs.ok()) continue;
    std::printf("\n%-28s g3=%.4f, %zu violating groups, %zu repairs",
                fd.ToString(current.schema()).c_str(), report->g3_error,
                report->violating_groups, repairs->size());
    current = ApplyRepairs(current, *repairs);
  }

  // 4. Score the repairs against the hidden clean data.
  size_t corrupted_cells = 0, fixed_cells = 0, broken_cells = 0;
  for (size_t r = 0; r < current.num_rows(); ++r) {
    for (size_t c = 0; c < current.num_columns(); ++c) {
      const bool was_wrong =
          !ds->noisy.cell(r, c).EqualsStrict(ds->clean.cell(r, c));
      const bool is_wrong =
          !current.cell(r, c).EqualsStrict(ds->clean.cell(r, c));
      if (was_wrong) {
        ++corrupted_cells;
        if (!is_wrong) ++fixed_cells;
      } else if (is_wrong) {
        ++broken_cells;
      }
    }
  }
  std::printf(
      "\n\nCleaning scorecard: %zu corrupted cells, %zu repaired "
      "correctly, %zu clean cells broken\n",
      corrupted_cells, fixed_cells, broken_cells);
  std::printf(
      "\nNote: majority-vote repair is only sound for errors on the\n"
      "dependent side of an FD. Corrupted *determinant* cells shuffle\n"
      "rows into foreign groups and require probabilistic cleaners\n"
      "(HoloClean-style) that weigh evidence across constraints —\n"
      "exactly the systems the paper feeds FDX's output into.\n");
  return 0;
}
