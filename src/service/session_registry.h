#ifndef FDX_SERVICE_SESSION_REGISTRY_H_
#define FDX_SERVICE_SESSION_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/incremental.h"
#include "store/chunked_table.h"
#include "util/fingerprint.h"
#include "util/status.h"

namespace fdx {

/// One open dataset: an IncrementalFdx accumulator plus a running
/// content fingerprint over everything appended so far (the dataset
/// half of the result-cache key for session discovers). The embedded
/// mutex serializes appends and discovers on the same session; distinct
/// sessions proceed in parallel.
struct DatasetSession {
  DatasetSession(std::string session_id, Schema schema, FdxOptions options)
      : id(std::move(session_id)), fdx(std::move(schema), std::move(options)) {
    content.UpdateString("session");
  }

  const std::string id;
  std::mutex mu;        ///< serializes fdx + content mutations
  IncrementalFdx fdx;   ///< guarded by mu
  Fingerprint content;  ///< guarded by mu; framed per appended batch
  /// Durability hooks (set by the server when --state-dir is active;
  /// both guarded by mu). IncrementalFdx folds batches into moments and
  /// drops the rows, so a crash-safe server keeps each batch's encoded
  /// rows alongside — the snapshot file is the only place they survive.
  bool retain_batches = false;
  std::vector<std::string> batches_json;  ///< EncodeBatchRows per append
  /// Out-of-core sessions ("storage":"chunked" at open): every appended
  /// batch also lands in this chunk store, and durability snapshots
  /// reference the store's manifest instead of embedding the rows.
  /// Guarded by mu; null for memory sessions.
  std::string storage = "memory";
  std::unique_ptr<ChunkedTable> store;
};

/// Session table with a hard cap and idle-TTL eviction. Ids are
/// deterministic ("s-1", "s-2", ...) so tests and logs are stable.
/// Sessions are handed out as shared_ptr: an in-flight append on a
/// session the TTL sweep just evicted finishes safely against its own
/// reference, it is merely no longer reachable by id.
///
/// Mutex-striped: ids hash onto `shards` independent tables, each with
/// its own lock, so lookups for different sessions never contend. The
/// `max_sessions` cap stays *global and exact* — admission goes through
/// a compare-exchange loop on an atomic live count, so two racing Opens
/// at the cap cannot both succeed. Get() sweeps only the target id's
/// shard for TTL expiry; Open() sweeps every shard when the cap is hit
/// (an expired slot anywhere should free admission). Thread-safe.
class SessionRegistry {
 public:
  /// `ttl_seconds <= 0` disables idle eviction. `shards` is rounded up
  /// to a power of two.
  SessionRegistry(size_t max_sessions, double ttl_seconds, size_t shards = 1);

  /// Creates a session, evicting idle-expired ones first. Returns
  /// kUnavailable once `max_sessions` live sessions exist — the caller
  /// should retry after the TTL frees a slot.
  Result<std::shared_ptr<DatasetSession>> Open(Schema schema,
                                               FdxOptions options);

  /// Re-creates a session under its *original* id (crash recovery from
  /// a snapshot). Bumps the id counter past the restored id so future
  /// Open() calls can never collide with it, enforces the same global
  /// cap as Open(), and rejects duplicate ids. Ids must look like
  /// "s-<n>" (anything a prior run could have handed out).
  Result<std::shared_ptr<DatasetSession>> Restore(const std::string& id,
                                                  Schema schema,
                                                  FdxOptions options);

  /// Looks up a session and marks it used now. kNotFound covers both
  /// never-existed and already-evicted ids.
  Result<std::shared_ptr<DatasetSession>> Get(const std::string& id);

  /// Drops a session by id; returns false if it was not present.
  bool Close(const std::string& id);

  /// Evicts every session idle past the TTL; returns how many.
  size_t EvictExpired();

  /// Called with the ids of TTL-evicted sessions, after the shard locks
  /// are released (the listener may do file I/O). Set once, before the
  /// registry sees traffic; the server uses it to delete snapshot files
  /// of sessions that no longer exist.
  void SetEvictionListener(
      std::function<void(const std::vector<std::string>&)> listener) {
    eviction_listener_ = std::move(listener);
  }

  /// Solver-reuse counters summed over the currently open sessions
  /// (closed and evicted sessions drop out of the totals). Reads only
  /// the sessions' atomic counters under each shard lock — it never
  /// takes a session's mutex, so it cannot stall behind a long solve.
  struct SolverTotals {
    uint64_t solves = 0;        ///< completed structure-learning solves
    uint64_t warm_solves = 0;   ///< subset seeded from the previous solve
    uint64_t memo_hits = 0;     ///< discovers answered without solving
    uint64_t newton_solves = 0; ///< subset that ran the Newton backend
  };
  SolverTotals SolverStats() const;

  size_t size() const;
  size_t max_sessions() const { return max_sessions_; }
  double ttl_seconds() const { return ttl_seconds_; }
  size_t shards() const { return shards_.size(); }
  uint64_t opened() const { return opened_.load(std::memory_order_relaxed); }
  uint64_t evicted() const { return evicted_.load(std::memory_order_relaxed); }

 private:
  using Clock = std::chrono::steady_clock;

  struct Slot {
    std::shared_ptr<DatasetSession> session;
    Clock::time_point last_used;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Slot> slots;  ///< guarded by mu
  };

  Shard& ShardFor(const std::string& id);
  const Shard& ShardFor(const std::string& id) const;

  /// Sweeps one shard; caller holds its lock. Decrements live_. Evicted
  /// ids are appended to `evicted_ids` (when non-null) so the caller
  /// can notify the eviction listener after unlocking.
  size_t EvictExpiredLocked(Shard* shard, Clock::time_point now,
                            std::vector<std::string>* evicted_ids = nullptr);

  /// Fires the eviction listener. Call with no shard lock held.
  void NotifyEvicted(const std::vector<std::string>& ids);

  /// Tries to reserve one slot of the global cap; false when full.
  bool TryReserveSlot();

  const size_t max_sessions_;
  const double ttl_seconds_;
  size_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<size_t> live_{0};  ///< exact count of open sessions
  std::atomic<uint64_t> opened_{0};
  std::atomic<uint64_t> evicted_{0};
  std::function<void(const std::vector<std::string>&)> eviction_listener_;
};

}  // namespace fdx

#endif  // FDX_SERVICE_SESSION_REGISTRY_H_
