#ifndef FDX_SERVICE_SNAPSHOT_H_
#define FDX_SERVICE_SNAPSHOT_H_

#include <string>
#include <utility>
#include <vector>

#include "core/fdx.h"
#include "data/table.h"
#include "util/status.h"

namespace fdx {

/// Durable on-disk form of one fdxd session (see DESIGN.md §13). The
/// codec round-trips everything a discover result depends on — schema,
/// the full FdxOptions, and the raw batches — so a restarted daemon can
/// replay the appends and serve bit-identical results.
///
/// Encoding rules (all deliberate, all verified on decode):
///  - Doubles are JSON *strings* rendered with %.17g. JsonWriter's
///    Number() is %.12g, which would silently perturb options and cell
///    values across a restart; strings keep every bit.
///  - The transform seed (uint64) is a string too — values above 2^53
///    do not survive a double round-trip.
///  - Cells are type-tagged: null, ["i","<int64>"], ["d","<%.17g>"],
///    ["s",text]. The protocol's JsonCellToValue would re-type an
///    integral double as an int and change the table fingerprint.
struct SessionSnapshot {
  std::string id;            ///< registry id, e.g. "s-3"
  Schema schema;
  FdxOptions options;
  std::string options_key;   ///< CanonicalOptionsKey at encode time
  std::string content_hex;   ///< session fingerprint after all batches
  std::vector<Table> batches;
  /// "memory" (default; batches embedded above) or "chunked" (batches
  /// live in the session's ChunkedTable store directory — the snapshot
  /// only references them, and the expected content fingerprint is
  /// verified by the server after replaying the chunks).
  std::string storage = "memory";
};

/// Renders one session to its snapshot file contents (single-line
/// JSON). `batches_json` holds each batch pre-encoded by
/// EncodeBatchRows — the live server keeps those strings instead of the
/// row data (IncrementalFdx folds batches into moments and drops the
/// rows), so the encoder splices rather than re-encodes. With storage
/// "chunked" no batches are embedded (the chunk store is the durable
/// copy; pass an empty `batches_json`) and a "storage" key is written;
/// memory snapshots stay byte-identical to the historical format.
std::string EncodeSessionSnapshot(
    const std::string& id, const Schema& schema, const FdxOptions& options,
    const std::string& options_key, const std::string& content_hex,
    const std::vector<std::string>& batches_json,
    const std::string& storage = "memory");

/// Parses and *verifies* a snapshot: the decoded options must reproduce
/// the stored canonical options key, and the decoded batches must
/// reproduce the stored session fingerprint. Any mismatch — codec
/// drift, truncation, manual edits — fails loudly instead of reviving a
/// session that would serve different bytes than before the crash.
/// Chunked snapshots carry no batches; their content verification
/// happens in the server once the chunk store has been replayed.
Result<SessionSnapshot> DecodeSessionSnapshot(const std::string& text);

/// Renders one batch's rows as the type-tagged cell arrays described
/// above (exposed for the append path, which persists incrementally).
std::string EncodeBatchRows(const Table& batch);

/// ResultCache spill: (key, payload) pairs, LRU-first so re-inserting
/// in order reproduces the recency order.
std::string EncodeCacheSnapshot(
    const std::vector<std::pair<std::string, std::string>>& entries);
Result<std::vector<std::pair<std::string, std::string>>> DecodeCacheSnapshot(
    const std::string& text);

}  // namespace fdx

#endif  // FDX_SERVICE_SNAPSHOT_H_
