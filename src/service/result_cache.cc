#include "service/result_cache.h"

namespace fdx {

ResultCache::ResultCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool ResultCache::Lookup(const std::string& key, std::string* payload) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *payload = it->second->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResultCache::Insert(const std::string& key, std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(payload));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace fdx
