#include "service/result_cache.h"

#include <functional>

namespace fdx {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ResultCache::ResultCache(size_t capacity, size_t shards)
    : capacity_(capacity == 0 ? 1 : capacity) {
  size_t count = RoundUpPow2(shards == 0 ? 1 : shards);
  // Never more shards than capacity: each shard must hold >= 1 entry.
  while (count > 1 && count > capacity_) count >>= 1;
  shard_mask_ = count - 1;
  shard_capacity_ = (capacity_ + count - 1) / count;
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key)&shard_mask_];
}

const ResultCache::Shard& ResultCache::ShardFor(const std::string& key) const {
  return *shards_[std::hash<std::string>{}(key)&shard_mask_];
}

bool ResultCache::Lookup(const std::string& key, std::string* payload) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *payload = it->second->second;
  ++shard.hits;
  return true;
}

void ResultCache::Insert(const std::string& key, std::string payload) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(payload);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(payload));
  shard.index[key] = shard.lru.begin();
  if (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

std::vector<std::pair<std::string, std::string>> ResultCache::Snapshot()
    const {
  std::vector<std::pair<std::string, std::string>> entries;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    // Walk back-to-front (LRU first): re-inserting in snapshot order
    // then rebuilds the same recency order.
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
      entries.push_back(*it);
    }
  }
  return entries;
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

ResultCache::ShardStats ResultCache::shard_stats(size_t shard) const {
  const Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  return ShardStats{s.lru.size(), s.hits, s.misses, s.evictions};
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

uint64_t ResultCache::hits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->hits;
  }
  return total;
}

uint64_t ResultCache::misses() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->misses;
  }
  return total;
}

uint64_t ResultCache::evictions() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->evictions;
  }
  return total;
}

}  // namespace fdx
