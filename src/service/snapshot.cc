#include "service/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/ordering.h"
#include "util/json_parser.h"
#include "service/protocol.h"
#include "util/fingerprint.h"
#include "util/json_writer.h"

namespace fdx {

namespace {

constexpr int kSnapshotVersion = 1;

std::string ExactDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string ExactU64(uint64_t value) { return std::to_string(value); }

/// Parses a %.17g string back to the identical double.
Result<double> ParseExactDouble(const JsonValue* value,
                                const std::string& field) {
  if (value == nullptr || !value->is_string()) {
    return Status::InvalidArgument("snapshot: missing double field '" + field +
                                   "'");
  }
  const std::string& text = value->string_value();
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("snapshot: malformed double in '" + field +
                                   "': '" + text + "'");
  }
  return parsed;
}

Result<uint64_t> ParseExactU64(const JsonValue* value,
                               const std::string& field) {
  if (value == nullptr || !value->is_string()) {
    return Status::InvalidArgument("snapshot: missing integer field '" +
                                   field + "'");
  }
  const std::string& text = value->string_value();
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("snapshot: malformed integer in '" + field +
                                   "': '" + text + "'");
  }
  return static_cast<uint64_t>(parsed);
}

Result<bool> ParseBool(const JsonValue* value, const std::string& field) {
  if (value == nullptr || !value->is_bool()) {
    return Status::InvalidArgument("snapshot: missing bool field '" + field +
                                   "'");
  }
  return value->bool_value();
}

void WriteOptionsJson(JsonWriter* json, const FdxOptions& o) {
  json->BeginObject();
  json->Key("estimator");
  json->String(o.estimator == StructureEstimator::kGraphicalLasso
                   ? "glasso"
                   : "seqlasso");
  json->Key("lambda");
  json->String(ExactDouble(o.lambda));
  json->Key("sparsity_threshold");
  json->String(ExactDouble(o.sparsity_threshold));
  json->Key("relative_threshold");
  json->String(ExactDouble(o.relative_threshold));
  json->Key("minimum_column_weight");
  json->String(ExactDouble(o.minimum_column_weight));
  json->Key("zero_tolerance");
  json->String(ExactDouble(o.zero_tolerance));
  json->Key("normalize_covariance");
  json->Bool(o.normalize_covariance);
  json->Key("ordering");
  json->String(OrderingMethodName(o.ordering));
  json->Key("transform");
  json->BeginObject();
  json->Key("seed");
  json->String(ExactU64(o.transform.seed));
  json->Key("max_pairs_per_attribute");
  json->String(ExactU64(o.transform.max_pairs_per_attribute));
  json->Key("pooled_covariance");
  json->Bool(o.transform.pooled_covariance);
  json->Key("threads");
  json->String(ExactU64(o.transform.threads));
  json->EndObject();
  json->Key("glasso");
  json->BeginObject();
  json->Key("lambda");
  json->String(ExactDouble(o.glasso.lambda));
  json->Key("max_iterations");
  json->String(ExactU64(o.glasso.max_iterations));
  json->Key("tolerance");
  json->String(ExactDouble(o.glasso.tolerance));
  json->Key("diagonal_ridge");
  json->String(ExactDouble(o.glasso.diagonal_ridge));
  json->Key("lasso_max_iterations");
  json->String(ExactU64(o.glasso.lasso_max_iterations));
  json->Key("lasso_tolerance");
  json->String(ExactDouble(o.glasso.lasso_tolerance));
  json->EndObject();
  json->Key("threads");
  json->String(ExactU64(o.threads));
  json->Key("time_budget_seconds");
  json->String(ExactDouble(o.time_budget_seconds));
  json->Key("reuse_solver_state");
  json->Bool(o.reuse_solver_state);
  json->Key("recovery");
  json->BeginObject();
  json->Key("enabled");
  json->Bool(o.recovery.enabled);
  json->Key("max_ridge_retries");
  json->String(ExactU64(o.recovery.max_ridge_retries));
  json->Key("ridge_multiplier");
  json->String(ExactDouble(o.recovery.ridge_multiplier));
  json->Key("max_ridge");
  json->String(ExactDouble(o.recovery.max_ridge));
  json->Key("allow_estimator_fallback");
  json->Bool(o.recovery.allow_estimator_fallback);
  json->Key("allow_quarantine");
  json->Bool(o.recovery.allow_quarantine);
  json->Key("degenerate_variance_floor");
  json->String(ExactDouble(o.recovery.degenerate_variance_floor));
  json->EndObject();
  json->EndObject();
}

#define FDX_SNAP_DOUBLE(target, parent, field)                       \
  do {                                                               \
    FDX_ASSIGN_OR_RETURN(target, ParseExactDouble((parent)->Find(field), \
                                                  field));           \
  } while (false)

#define FDX_SNAP_U64(target, type, parent, field)                        \
  do {                                                                   \
    uint64_t fdx_snap_u64_tmp = 0;                                       \
    FDX_ASSIGN_OR_RETURN(fdx_snap_u64_tmp,                               \
                         ParseExactU64((parent)->Find(field), field));   \
    target = static_cast<type>(fdx_snap_u64_tmp);                        \
  } while (false)

#define FDX_SNAP_BOOL(target, parent, field)                           \
  do {                                                                 \
    FDX_ASSIGN_OR_RETURN(target, ParseBool((parent)->Find(field), field)); \
  } while (false)

Result<FdxOptions> ParseOptionsSnapshot(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("snapshot: options must be an object");
  }
  FdxOptions o;
  const std::string estimator = json.StringOr("estimator", "");
  if (estimator == "glasso") {
    o.estimator = StructureEstimator::kGraphicalLasso;
  } else if (estimator == "seqlasso") {
    o.estimator = StructureEstimator::kSequentialLasso;
  } else {
    return Status::InvalidArgument("snapshot: unknown estimator '" +
                                   estimator + "'");
  }
  FDX_SNAP_DOUBLE(o.lambda, &json, "lambda");
  FDX_SNAP_DOUBLE(o.sparsity_threshold, &json, "sparsity_threshold");
  FDX_SNAP_DOUBLE(o.relative_threshold, &json, "relative_threshold");
  FDX_SNAP_DOUBLE(o.minimum_column_weight, &json, "minimum_column_weight");
  FDX_SNAP_DOUBLE(o.zero_tolerance, &json, "zero_tolerance");
  FDX_SNAP_BOOL(o.normalize_covariance, &json, "normalize_covariance");
  FDX_ASSIGN_OR_RETURN(o.ordering,
                       ParseOrderingMethod(json.StringOr("ordering", "")));
  const JsonValue* transform = json.Find("transform");
  if (transform == nullptr || !transform->is_object()) {
    return Status::InvalidArgument("snapshot: missing transform options");
  }
  FDX_SNAP_U64(o.transform.seed, uint64_t, transform, "seed");
  FDX_SNAP_U64(o.transform.max_pairs_per_attribute, size_t, transform,
               "max_pairs_per_attribute");
  FDX_SNAP_BOOL(o.transform.pooled_covariance, transform,
                "pooled_covariance");
  FDX_SNAP_U64(o.transform.threads, size_t, transform, "threads");
  const JsonValue* glasso = json.Find("glasso");
  if (glasso == nullptr || !glasso->is_object()) {
    return Status::InvalidArgument("snapshot: missing glasso options");
  }
  FDX_SNAP_DOUBLE(o.glasso.lambda, glasso, "lambda");
  FDX_SNAP_U64(o.glasso.max_iterations, size_t, glasso, "max_iterations");
  FDX_SNAP_DOUBLE(o.glasso.tolerance, glasso, "tolerance");
  FDX_SNAP_DOUBLE(o.glasso.diagonal_ridge, glasso, "diagonal_ridge");
  FDX_SNAP_U64(o.glasso.lasso_max_iterations, size_t, glasso,
               "lasso_max_iterations");
  FDX_SNAP_DOUBLE(o.glasso.lasso_tolerance, glasso, "lasso_tolerance");
  FDX_SNAP_U64(o.threads, size_t, &json, "threads");
  FDX_SNAP_DOUBLE(o.time_budget_seconds, &json, "time_budget_seconds");
  FDX_SNAP_BOOL(o.reuse_solver_state, &json, "reuse_solver_state");
  const JsonValue* recovery = json.Find("recovery");
  if (recovery == nullptr || !recovery->is_object()) {
    return Status::InvalidArgument("snapshot: missing recovery options");
  }
  FDX_SNAP_BOOL(o.recovery.enabled, recovery, "enabled");
  FDX_SNAP_U64(o.recovery.max_ridge_retries, size_t, recovery,
               "max_ridge_retries");
  FDX_SNAP_DOUBLE(o.recovery.ridge_multiplier, recovery, "ridge_multiplier");
  FDX_SNAP_DOUBLE(o.recovery.max_ridge, recovery, "max_ridge");
  FDX_SNAP_BOOL(o.recovery.allow_estimator_fallback, recovery,
                "allow_estimator_fallback");
  FDX_SNAP_BOOL(o.recovery.allow_quarantine, recovery, "allow_quarantine");
  FDX_SNAP_DOUBLE(o.recovery.degenerate_variance_floor, recovery,
                  "degenerate_variance_floor");
  return o;
}

#undef FDX_SNAP_DOUBLE
#undef FDX_SNAP_U64
#undef FDX_SNAP_BOOL

void WriteCellJson(JsonWriter* json, const Value& cell) {
  switch (cell.type()) {
    case ValueType::kNull:
      json->Null();
      return;
    case ValueType::kInt:
      json->BeginArray();
      json->String("i");
      json->String(std::to_string(cell.AsInt()));
      json->EndArray();
      return;
    case ValueType::kDouble:
      json->BeginArray();
      json->String("d");
      json->String(ExactDouble(cell.AsDouble()));
      json->EndArray();
      return;
    case ValueType::kString:
      json->BeginArray();
      json->String("s");
      json->String(cell.AsString());
      json->EndArray();
      return;
  }
}

Result<Value> ParseCellJson(const JsonValue& cell) {
  if (cell.is_null()) return Value::Null();
  if (!cell.is_array() || cell.array().size() != 2 ||
      !cell.array()[0].is_string() || !cell.array()[1].is_string()) {
    return Status::InvalidArgument(
        "snapshot: cell must be null or a [tag, text] pair");
  }
  const std::string& tag = cell.array()[0].string_value();
  const std::string& text = cell.array()[1].string_value();
  errno = 0;
  char* end = nullptr;
  if (tag == "i") {
    const long long parsed = std::strtoll(text.c_str(), &end, 10);
    if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
      return Status::InvalidArgument("snapshot: malformed int cell '" + text +
                                     "'");
    }
    return Value(static_cast<int64_t>(parsed));
  }
  if (tag == "d") {
    const double parsed = std::strtod(text.c_str(), &end);
    if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
      return Status::InvalidArgument("snapshot: malformed double cell '" +
                                     text + "'");
    }
    return Value(parsed);
  }
  if (tag == "s") return Value(text);
  return Status::InvalidArgument("snapshot: unknown cell tag '" + tag + "'");
}

void WriteBatchRowsJson(JsonWriter* json, const Table& batch) {
  json->BeginArray();
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    json->BeginArray();
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      WriteCellJson(json, batch.cell(r, c));
    }
    json->EndArray();
  }
  json->EndArray();
}

Result<Table> ParseBatchJson(const JsonValue& rows, const Schema& schema) {
  if (!rows.is_array()) {
    return Status::InvalidArgument("snapshot: batch must be an array of rows");
  }
  Table batch(schema);
  for (const JsonValue& row_json : rows.array()) {
    if (!row_json.is_array() || row_json.array().size() != schema.size()) {
      return Status::InvalidArgument(
          "snapshot: row width does not match the schema");
    }
    std::vector<Value> row;
    row.reserve(schema.size());
    for (const JsonValue& cell_json : row_json.array()) {
      FDX_ASSIGN_OR_RETURN(Value cell, ParseCellJson(cell_json));
      row.push_back(std::move(cell));
    }
    batch.AppendRow(std::move(row));
  }
  return batch;
}

/// The session fingerprint a live registry would hold after replaying
/// `batches` (see DatasetSession: seeded with "session", then "batch" +
/// table fingerprint per append).
std::string ReplayContentHex(const std::vector<Table>& batches) {
  Fingerprint content;
  content.UpdateString("session");
  for (const Table& batch : batches) {
    content.UpdateString("batch");
    UpdateTableFingerprint(&content, batch);
  }
  return content.Hex();
}

}  // namespace

std::string EncodeSessionSnapshot(
    const std::string& id, const Schema& schema, const FdxOptions& options,
    const std::string& options_key, const std::string& content_hex,
    const std::vector<std::string>& batches_json,
    const std::string& storage) {
  JsonWriter json;
  json.BeginObject();
  json.Key("version");
  json.Integer(kSnapshotVersion);
  json.Key("session");
  json.String(id);
  if (storage != "memory") {
    json.Key("storage");
    json.String(storage);
  }
  json.Key("schema");
  json.BeginArray();
  for (const std::string& name : schema.names()) json.String(name);
  json.EndArray();
  json.Key("options");
  WriteOptionsJson(&json, options);
  json.Key("options_key");
  json.String(options_key);
  json.Key("content");
  json.String(content_hex);
  json.EndObject();
  if (storage != "memory") {
    // Chunked sessions keep their rows in the chunk store; the snapshot
    // is a manifest reference, not a copy of the data.
    return json.TakeString();
  }
  // Splice the pre-encoded batch arrays in front of the closing brace;
  // the key itself needs no escaping.
  std::string text = json.TakeString();
  text.pop_back();  // trailing '}'
  text += ",\"batches\":[";
  for (size_t b = 0; b < batches_json.size(); ++b) {
    if (b > 0) text += ',';
    text += batches_json[b];
  }
  text += "]}";
  return text;
}

std::string EncodeBatchRows(const Table& batch) {
  JsonWriter json;
  WriteBatchRowsJson(&json, batch);
  return json.TakeString();
}

Result<SessionSnapshot> DecodeSessionSnapshot(const std::string& text) {
  FDX_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(text));
  if (!root.is_object()) {
    return Status::InvalidArgument("snapshot: document must be an object");
  }
  const int64_t version = static_cast<int64_t>(root.NumberOr("version", 0));
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("snapshot: unsupported version " +
                                   std::to_string(version));
  }
  SessionSnapshot snapshot;
  snapshot.id = root.StringOr("session", "");
  if (snapshot.id.empty()) {
    return Status::InvalidArgument("snapshot: missing session id");
  }
  const JsonValue* schema_json = root.Find("schema");
  if (schema_json == nullptr || !schema_json->is_array() ||
      schema_json->array().empty()) {
    return Status::InvalidArgument("snapshot: missing schema");
  }
  std::vector<std::string> names;
  names.reserve(schema_json->array().size());
  for (const JsonValue& name : schema_json->array()) {
    if (!name.is_string() || name.string_value().empty()) {
      return Status::InvalidArgument("snapshot: schema names must be strings");
    }
    names.push_back(name.string_value());
  }
  snapshot.schema = Schema(std::move(names));
  const JsonValue* options_json = root.Find("options");
  if (options_json == nullptr) {
    return Status::InvalidArgument("snapshot: missing options");
  }
  FDX_ASSIGN_OR_RETURN(snapshot.options, ParseOptionsSnapshot(*options_json));
  snapshot.options_key = root.StringOr("options_key", "");
  if (CanonicalOptionsKey(snapshot.options) != snapshot.options_key) {
    return Status::InvalidArgument(
        "snapshot: decoded options do not reproduce the stored options key "
        "(codec drift or corrupted file)");
  }
  snapshot.storage = root.StringOr("storage", "memory");
  if (snapshot.storage != "memory" && snapshot.storage != "chunked") {
    return Status::InvalidArgument("snapshot: unknown storage \"" +
                                   snapshot.storage + "\"");
  }
  snapshot.content_hex = root.StringOr("content", "");
  if (snapshot.storage == "chunked") {
    // The rows live in the chunk store; the server replays them from
    // there and verifies the replayed fingerprint against content_hex.
    if (snapshot.content_hex.empty()) {
      return Status::InvalidArgument(
          "snapshot: chunked session missing content fingerprint");
    }
    return snapshot;
  }
  const JsonValue* batches_json = root.Find("batches");
  if (batches_json == nullptr || !batches_json->is_array()) {
    return Status::InvalidArgument("snapshot: missing batches");
  }
  snapshot.batches.reserve(batches_json->array().size());
  for (const JsonValue& batch_json : batches_json->array()) {
    FDX_ASSIGN_OR_RETURN(Table batch,
                         ParseBatchJson(batch_json, snapshot.schema));
    snapshot.batches.push_back(std::move(batch));
  }
  if (ReplayContentHex(snapshot.batches) != snapshot.content_hex) {
    return Status::InvalidArgument(
        "snapshot: replayed batches do not reproduce the stored content "
        "fingerprint (corrupted or truncated file)");
  }
  return snapshot;
}

std::string EncodeCacheSnapshot(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  JsonWriter json;
  json.BeginObject();
  json.Key("version");
  json.Integer(kSnapshotVersion);
  json.Key("entries");
  json.BeginArray();
  for (const auto& [key, payload] : entries) {
    json.BeginArray();
    json.String(key);
    json.String(payload);
    json.EndArray();
  }
  json.EndArray();
  json.EndObject();
  return json.TakeString();
}

Result<std::vector<std::pair<std::string, std::string>>> DecodeCacheSnapshot(
    const std::string& text) {
  FDX_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(text));
  if (!root.is_object()) {
    return Status::InvalidArgument("cache snapshot: document must be an object");
  }
  const int64_t version = static_cast<int64_t>(root.NumberOr("version", 0));
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("cache snapshot: unsupported version " +
                                   std::to_string(version));
  }
  const JsonValue* entries_json = root.Find("entries");
  if (entries_json == nullptr || !entries_json->is_array()) {
    return Status::InvalidArgument("cache snapshot: missing entries");
  }
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(entries_json->array().size());
  for (const JsonValue& entry : entries_json->array()) {
    if (!entry.is_array() || entry.array().size() != 2 ||
        !entry.array()[0].is_string() || !entry.array()[1].is_string()) {
      return Status::InvalidArgument(
          "cache snapshot: entries must be [key, payload] string pairs");
    }
    entries.emplace_back(entry.array()[0].string_value(),
                         entry.array()[1].string_value());
  }
  return entries;
}

}  // namespace fdx
