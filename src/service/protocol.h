#ifndef FDX_SERVICE_PROTOCOL_H_
#define FDX_SERVICE_PROTOCOL_H_

#include <string>

#include "core/fdx.h"
#include "data/table.h"
#include "util/json_parser.h"
#include "util/fingerprint.h"
#include "util/status.h"

namespace fdx {

/// Shared vocabulary of the fdxd wire protocol: one JSON object per
/// line in each direction. Requests carry an `"op"`; responses always
/// carry `"ok"` and echo the op. This header holds everything both the
/// daemon and tests need — option decoding, cache-key construction, and
/// the response renderers — so the framing logic in server.cc stays
/// free of JSON details.

/// Decodes an `"options"` object into FdxOptions on top of `base`.
/// Unknown keys are rejected (a typo'd option silently falling back to
/// the default is the worst failure mode a service knob can have).
/// Supported keys: estimator ("glasso"|"seqlasso"), lambda, tau,
/// relative_threshold, minimum_column_weight, normalize, ordering,
/// seed, max_pairs, pooled_covariance, time_budget_seconds, threads,
/// recovery (bool: master switch).
Result<FdxOptions> ParseOptionsJson(const JsonValue& json,
                                    const FdxOptions& base);

/// Canonical result-affecting encoding of FdxOptions — one half of the
/// result-cache key. Two option structs map to the same key iff every
/// field that can change discovery *output bytes* matches; knobs that
/// are output-invariant by the determinism contract (threads) or only
/// bound wall-clock (time_budget_seconds) are deliberately excluded,
/// so a re-run with a different budget still hits the cache.
std::string CanonicalOptionsKey(const FdxOptions& options);

/// Content fingerprint of a table: schema names, dimensions, and every
/// cell with a type tag (null, "" and 0 all hash differently). The
/// other half of the cache key.
std::string FingerprintTable(const Table& table);

/// Folds a table's schema, dimensions and cells into an existing
/// fingerprint. Used to maintain a running content hash over a dataset
/// session's appended batches; the per-call framing means batch
/// boundaries hash differently, matching the fact that batch-local
/// pairing makes them result-relevant.
void UpdateTableFingerprint(Fingerprint* fp, const Table& table);

/// Converts one JSON cell (null / number / string) to a Value. Strings
/// go through Value::Parse so `"1"` means the same thing it means in a
/// CSV upload; numbers stay numeric (integral doubles become ints).
Result<Value> JsonCellToValue(const JsonValue& cell);

/// Renders the deterministic `discover` success response (no timings,
/// no server state — byte-identical across runs on identical input).
/// `rows` is the table (or session stream) row count.
std::string RenderDiscoverResponse(const Schema& schema, size_t rows,
                                   const FdxResult& result);

/// Renders a failure response: `{"ok":false,"op":...,"error":{...}}`.
/// Unavailable errors additionally carry `"retry":true` — the HTTP-429
/// analogue clients key their backoff on. A positive
/// `retry_after_seconds` (load shedding, expired server deadlines)
/// additionally emits `"retry":true` and `"retry_after":<seconds>` —
/// the server's backoff hint — regardless of the status code.
std::string RenderErrorResponse(const std::string& op, const Status& status,
                                double retry_after_seconds = 0.0);

/// Status-code name used on the wire ("InvalidArgument", "Timeout", ...).
std::string StatusCodeName(StatusCode code);

/// Renders a parsed `status` response as a human-readable multi-line
/// report (what `fdxctl status --text` prints): I/O mode and live
/// connection count, cumulative requests by op, queue depth, per-shard
/// cache hit/miss counters, session and solver totals. Missing members
/// render as zeros so reports against older daemons stay readable.
std::string RenderStatusTextReport(const JsonValue& status);

}  // namespace fdx

#endif  // FDX_SERVICE_PROTOCOL_H_
