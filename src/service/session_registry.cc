#include "service/session_registry.h"

#include <cstdlib>
#include <functional>
#include <utility>

namespace fdx {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SessionRegistry::SessionRegistry(size_t max_sessions, double ttl_seconds,
                                 size_t shards)
    : max_sessions_(max_sessions == 0 ? 1 : max_sessions),
      ttl_seconds_(ttl_seconds) {
  const size_t count = RoundUpPow2(shards == 0 ? 1 : shards);
  shard_mask_ = count - 1;
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SessionRegistry::Shard& SessionRegistry::ShardFor(const std::string& id) {
  return *shards_[std::hash<std::string>{}(id)&shard_mask_];
}

const SessionRegistry::Shard& SessionRegistry::ShardFor(
    const std::string& id) const {
  return *shards_[std::hash<std::string>{}(id)&shard_mask_];
}

bool SessionRegistry::TryReserveSlot() {
  size_t live = live_.load(std::memory_order_relaxed);
  while (live < max_sessions_) {
    if (live_.compare_exchange_weak(live, live + 1,
                                    std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

Result<std::shared_ptr<DatasetSession>> SessionRegistry::Open(
    Schema schema, FdxOptions options) {
  if (!TryReserveSlot()) {
    // At capacity: a TTL sweep across every shard may free admission.
    EvictExpired();
    if (!TryReserveSlot()) {
      return Status::Unavailable(
          "session limit reached (" + std::to_string(max_sessions_) +
          " open); close or let one expire, then retry");
    }
  }
  const std::string id =
      "s-" + std::to_string(next_id_.fetch_add(1, std::memory_order_relaxed));
  auto session = std::make_shared<DatasetSession>(id, std::move(schema),
                                                  std::move(options));
  Shard& shard = ShardFor(id);
  std::vector<std::string> evicted_ids;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    EvictExpiredLocked(&shard, Clock::now(), &evicted_ids);
    shard.slots[id] = Slot{session, Clock::now()};
  }
  NotifyEvicted(evicted_ids);
  opened_.fetch_add(1, std::memory_order_relaxed);
  return session;
}

Result<std::shared_ptr<DatasetSession>> SessionRegistry::Restore(
    const std::string& id, Schema schema, FdxOptions options) {
  // Only ids a prior run could have issued are restorable.
  if (id.size() < 3 || id.compare(0, 2, "s-") != 0) {
    return Status::InvalidArgument("cannot restore session id \"" + id +
                                   "\": not of the form s-<n>");
  }
  char* end = nullptr;
  const unsigned long long n = std::strtoull(id.c_str() + 2, &end, 10);
  if (end == nullptr || *end != '\0' || n == 0) {
    return Status::InvalidArgument("cannot restore session id \"" + id +
                                   "\": not of the form s-<n>");
  }
  // Reserve the id range first — even if the restore fails below, a
  // future Open() must never re-issue this id.
  uint64_t next = next_id_.load(std::memory_order_relaxed);
  while (next <= n && !next_id_.compare_exchange_weak(
                          next, n + 1, std::memory_order_relaxed)) {
  }
  if (!TryReserveSlot()) {
    return Status::Unavailable(
        "session limit reached (" + std::to_string(max_sessions_) +
        " open); cannot restore \"" + id + "\"");
  }
  auto session = std::make_shared<DatasetSession>(id, std::move(schema),
                                                  std::move(options));
  Shard& shard = ShardFor(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.slots.emplace(id, Slot{session, Clock::now()});
    if (!inserted) {
      live_.fetch_sub(1, std::memory_order_relaxed);
      return Status::InvalidArgument("session \"" + id +
                                     "\" already exists; not restored");
    }
  }
  opened_.fetch_add(1, std::memory_order_relaxed);
  return session;
}

Result<std::shared_ptr<DatasetSession>> SessionRegistry::Get(
    const std::string& id) {
  Shard& shard = ShardFor(id);
  std::vector<std::string> evicted_ids;
  Result<std::shared_ptr<DatasetSession>> result = [&] {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto now = Clock::now();
    EvictExpiredLocked(&shard, now, &evicted_ids);
    auto it = shard.slots.find(id);
    if (it == shard.slots.end()) {
      return Result<std::shared_ptr<DatasetSession>>(
          Status::NotFound("unknown or expired session \"" + id + "\""));
    }
    it->second.last_used = now;
    return Result<std::shared_ptr<DatasetSession>>(it->second.session);
  }();
  NotifyEvicted(evicted_ids);
  return result;
}

bool SessionRegistry::Close(const std::string& id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.slots.erase(id) == 0) return false;
  live_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

size_t SessionRegistry::EvictExpired() {
  size_t evicted = 0;
  const auto now = Clock::now();
  std::vector<std::string> evicted_ids;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    evicted += EvictExpiredLocked(shard.get(), now, &evicted_ids);
  }
  NotifyEvicted(evicted_ids);
  return evicted;
}

size_t SessionRegistry::EvictExpiredLocked(
    Shard* shard, Clock::time_point now,
    std::vector<std::string>* evicted_ids) {
  if (ttl_seconds_ <= 0.0) return 0;
  size_t evicted = 0;
  for (auto it = shard->slots.begin(); it != shard->slots.end();) {
    const std::chrono::duration<double> idle = now - it->second.last_used;
    if (idle.count() > ttl_seconds_) {
      if (evicted_ids != nullptr) evicted_ids->push_back(it->first);
      it = shard->slots.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  if (evicted > 0) {
    live_.fetch_sub(evicted, std::memory_order_relaxed);
    evicted_.fetch_add(evicted, std::memory_order_relaxed);
  }
  return evicted;
}

void SessionRegistry::NotifyEvicted(const std::vector<std::string>& ids) {
  if (ids.empty() || !eviction_listener_) return;
  eviction_listener_(ids);
}

SessionRegistry::SolverTotals SessionRegistry::SolverStats() const {
  SolverTotals totals;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, slot] : shard->slots) {
      totals.solves += slot.session->fdx.solves();
      totals.warm_solves += slot.session->fdx.warm_solves();
      totals.memo_hits += slot.session->fdx.memo_hits();
      totals.newton_solves += slot.session->fdx.newton_solves();
    }
  }
  return totals;
}

size_t SessionRegistry::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->slots.size();
  }
  return total;
}

}  // namespace fdx
