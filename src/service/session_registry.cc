#include "service/session_registry.h"

#include <functional>
#include <utility>

namespace fdx {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SessionRegistry::SessionRegistry(size_t max_sessions, double ttl_seconds,
                                 size_t shards)
    : max_sessions_(max_sessions == 0 ? 1 : max_sessions),
      ttl_seconds_(ttl_seconds) {
  const size_t count = RoundUpPow2(shards == 0 ? 1 : shards);
  shard_mask_ = count - 1;
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SessionRegistry::Shard& SessionRegistry::ShardFor(const std::string& id) {
  return *shards_[std::hash<std::string>{}(id)&shard_mask_];
}

const SessionRegistry::Shard& SessionRegistry::ShardFor(
    const std::string& id) const {
  return *shards_[std::hash<std::string>{}(id)&shard_mask_];
}

bool SessionRegistry::TryReserveSlot() {
  size_t live = live_.load(std::memory_order_relaxed);
  while (live < max_sessions_) {
    if (live_.compare_exchange_weak(live, live + 1,
                                    std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

Result<std::shared_ptr<DatasetSession>> SessionRegistry::Open(
    Schema schema, FdxOptions options) {
  if (!TryReserveSlot()) {
    // At capacity: a TTL sweep across every shard may free admission.
    EvictExpired();
    if (!TryReserveSlot()) {
      return Status::Unavailable(
          "session limit reached (" + std::to_string(max_sessions_) +
          " open); close or let one expire, then retry");
    }
  }
  const std::string id =
      "s-" + std::to_string(next_id_.fetch_add(1, std::memory_order_relaxed));
  auto session = std::make_shared<DatasetSession>(id, std::move(schema),
                                                  std::move(options));
  Shard& shard = ShardFor(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    EvictExpiredLocked(&shard, Clock::now());
    shard.slots[id] = Slot{session, Clock::now()};
  }
  opened_.fetch_add(1, std::memory_order_relaxed);
  return session;
}

Result<std::shared_ptr<DatasetSession>> SessionRegistry::Get(
    const std::string& id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto now = Clock::now();
  EvictExpiredLocked(&shard, now);
  auto it = shard.slots.find(id);
  if (it == shard.slots.end()) {
    return Status::NotFound("unknown or expired session \"" + id + "\"");
  }
  it->second.last_used = now;
  return it->second.session;
}

bool SessionRegistry::Close(const std::string& id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.slots.erase(id) == 0) return false;
  live_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

size_t SessionRegistry::EvictExpired() {
  size_t evicted = 0;
  const auto now = Clock::now();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    evicted += EvictExpiredLocked(shard.get(), now);
  }
  return evicted;
}

size_t SessionRegistry::EvictExpiredLocked(Shard* shard,
                                           Clock::time_point now) {
  if (ttl_seconds_ <= 0.0) return 0;
  size_t evicted = 0;
  for (auto it = shard->slots.begin(); it != shard->slots.end();) {
    const std::chrono::duration<double> idle = now - it->second.last_used;
    if (idle.count() > ttl_seconds_) {
      it = shard->slots.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  if (evicted > 0) {
    live_.fetch_sub(evicted, std::memory_order_relaxed);
    evicted_.fetch_add(evicted, std::memory_order_relaxed);
  }
  return evicted;
}

SessionRegistry::SolverTotals SessionRegistry::SolverStats() const {
  SolverTotals totals;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, slot] : shard->slots) {
      totals.solves += slot.session->fdx.solves();
      totals.warm_solves += slot.session->fdx.warm_solves();
      totals.memo_hits += slot.session->fdx.memo_hits();
    }
  }
  return totals;
}

size_t SessionRegistry::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->slots.size();
  }
  return total;
}

}  // namespace fdx
