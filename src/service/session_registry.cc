#include "service/session_registry.h"

#include <utility>

namespace fdx {

SessionRegistry::SessionRegistry(size_t max_sessions, double ttl_seconds)
    : max_sessions_(max_sessions == 0 ? 1 : max_sessions),
      ttl_seconds_(ttl_seconds) {}

Result<std::shared_ptr<DatasetSession>> SessionRegistry::Open(
    Schema schema, FdxOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = Clock::now();
  EvictExpiredLocked(now);
  if (slots_.size() >= max_sessions_) {
    return Status::Unavailable(
        "session limit reached (" + std::to_string(max_sessions_) +
        " open); close or let one expire, then retry");
  }
  const std::string id = "s-" + std::to_string(next_id_++);
  auto session = std::make_shared<DatasetSession>(id, std::move(schema),
                                                  std::move(options));
  slots_[id] = Slot{session, now};
  opened_.fetch_add(1, std::memory_order_relaxed);
  return session;
}

Result<std::shared_ptr<DatasetSession>> SessionRegistry::Get(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = Clock::now();
  EvictExpiredLocked(now);
  auto it = slots_.find(id);
  if (it == slots_.end()) {
    return Status::NotFound("unknown or expired session \"" + id + "\"");
  }
  it->second.last_used = now;
  return it->second.session;
}

bool SessionRegistry::Close(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.erase(id) > 0;
}

size_t SessionRegistry::EvictExpired() {
  std::lock_guard<std::mutex> lock(mu_);
  return EvictExpiredLocked(Clock::now());
}

size_t SessionRegistry::EvictExpiredLocked(Clock::time_point now) {
  if (ttl_seconds_ <= 0.0) return 0;
  size_t evicted = 0;
  for (auto it = slots_.begin(); it != slots_.end();) {
    const std::chrono::duration<double> idle = now - it->second.last_used;
    if (idle.count() > ttl_seconds_) {
      it = slots_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  if (evicted > 0) evicted_.fetch_add(evicted, std::memory_order_relaxed);
  return evicted;
}

SessionRegistry::SolverTotals SessionRegistry::SolverStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SolverTotals totals;
  for (const auto& [id, slot] : slots_) {
    totals.solves += slot.session->fdx.solves();
    totals.warm_solves += slot.session->fdx.warm_solves();
    totals.memo_hits += slot.session->fdx.memo_hits();
  }
  return totals;
}

size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace fdx
