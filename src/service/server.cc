#include "service/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <set>
#include <utility>

#include "data/csv.h"
#include "store/chunk_codec.h"
#include "util/json_parser.h"
#include "service/protocol.h"
#include "service/snapshot.h"
#include "util/fault_injection.h"
#include "util/file_io.h"
#include "util/json_writer.h"

namespace fdx {

namespace {

/// Builds a Table from an inline JSON row block: `rows` is an array of
/// arrays whose cells are null / number / string. `schema` is the
/// authoritative width.
Result<Table> RowsToTable(const Schema& schema, const JsonValue& rows) {
  if (!rows.is_array()) {
    return Status::InvalidArgument("\"rows\" must be an array of arrays");
  }
  Table table(schema);
  for (size_t r = 0; r < rows.array().size(); ++r) {
    const JsonValue& row = rows.array()[r];
    if (!row.is_array() || row.array().size() != schema.size()) {
      return Status::InvalidArgument(
          "row " + std::to_string(r) + " must be an array of " +
          std::to_string(schema.size()) + " cells");
    }
    std::vector<Value> cells;
    cells.reserve(schema.size());
    for (const JsonValue& cell : row.array()) {
      FDX_ASSIGN_OR_RETURN(Value value, JsonCellToValue(cell));
      cells.push_back(std::move(value));
    }
    table.AppendRow(std::move(cells));
  }
  return table;
}

/// Decodes a request's `schema` member (non-empty array of unique,
/// non-empty strings).
Result<Schema> ParseSchemaJson(const JsonValue& schema_json) {
  if (!schema_json.is_array() || schema_json.array().empty()) {
    return Status::InvalidArgument(
        "\"schema\" must be a non-empty array of column names");
  }
  std::vector<std::string> names;
  std::set<std::string> seen;
  names.reserve(schema_json.array().size());
  for (const JsonValue& name : schema_json.array()) {
    if (!name.is_string() || name.string_value().empty()) {
      return Status::InvalidArgument("schema names must be non-empty strings");
    }
    if (!seen.insert(name.string_value()).second) {
      return Status::InvalidArgument("duplicate schema name \"" +
                                     name.string_value() + "\"");
    }
    names.push_back(name.string_value());
  }
  return Schema(std::move(names));
}

/// A validated append: the target session and the decoded batch. Built
/// outside any lock so both I/O paths (blocking and event-loop) share
/// the parse and only diverge in how they take the session mutex.
struct AppendPlan {
  std::shared_ptr<DatasetSession> session;
  Table batch;
};

Result<AppendPlan> PlanAppend(const JsonValue& request,
                              SessionRegistry* sessions) {
  const std::string id = request.StringOr("session", "");
  if (id.empty()) {
    return Status::InvalidArgument("append needs a \"session\" id");
  }
  FDX_ASSIGN_OR_RETURN(std::shared_ptr<DatasetSession> session,
                       sessions->Get(id));

  const JsonValue* rows = request.Find("rows");
  const JsonValue* csv = request.Find("csv");
  if ((rows == nullptr) == (csv == nullptr)) {
    return Status::InvalidArgument(
        "append needs exactly one of \"rows\" or \"csv\"");
  }

  Result<Table> batch_or = Status::Internal("unreachable");
  if (rows != nullptr) {
    batch_or = RowsToTable(session->fdx.schema(), *rows);
  } else {
    if (!csv->is_string()) {
      return Status::InvalidArgument("\"csv\" must be a string");
    }
    // Headerless by design: the session schema was fixed at open.
    CsvOptions csv_options;
    csv_options.has_header = false;
    batch_or = ReadCsvFromString(csv->string_value(), csv_options);
  }
  FDX_ASSIGN_OR_RETURN(Table batch, std::move(batch_or));
  if (csv != nullptr) {
    const Schema& schema = session->fdx.schema();
    if (batch.num_columns() != schema.size()) {
      return Status::InvalidArgument(
          "csv batch has " + std::to_string(batch.num_columns()) +
          " columns; session schema has " + std::to_string(schema.size()));
    }
    // Headerless CSV parsing invents positional column names, but the
    // batch belongs to the schema fixed at open. Rebind it so every
    // fingerprint of this batch — including the durability replay that
    // recomputes it from a snapshot — sees the same table.
    batch.ReplaceSchema(schema);
  }
  return AppendPlan{std::move(session), std::move(batch)};
}

/// A validated discover: either a session (session != nullptr) or a
/// one-shot table plus its layered options and cache key.
struct DiscoverPlan {
  std::shared_ptr<DatasetSession> session;
  std::shared_ptr<const Table> table;
  FdxOptions table_options;
  std::string table_key;
};

Result<DiscoverPlan> PlanDiscover(const JsonValue& request,
                                  SessionRegistry* sessions,
                                  const FdxOptions& base_options) {
  if (const JsonValue* session_id = request.Find("session")) {
    if (!session_id->is_string()) {
      return Status::InvalidArgument("\"session\" must be a string");
    }
    if (request.Find("options") != nullptr) {
      return Status::InvalidArgument(
          "session options are fixed at open; omit \"options\"");
    }
    FDX_ASSIGN_OR_RETURN(std::shared_ptr<DatasetSession> session,
                         sessions->Get(session_id->string_value()));
    DiscoverPlan plan;
    plan.session = std::move(session);
    return plan;
  }

  // One-shot table: exactly one of csv / csv_path / table.
  const JsonValue* csv = request.Find("csv");
  const JsonValue* csv_path = request.Find("csv_path");
  const JsonValue* table_json = request.Find("table");
  const int sources = (csv != nullptr) + (csv_path != nullptr) +
                      (table_json != nullptr);
  if (sources != 1) {
    return Status::InvalidArgument(
        "discover needs exactly one of \"session\", \"csv\", \"csv_path\", "
        "or \"table\"");
  }

  Result<Table> table_or = Status::Internal("unreachable");
  if (csv != nullptr) {
    if (!csv->is_string()) {
      return Status::InvalidArgument("\"csv\" must be a string");
    }
    table_or = ReadCsvFromString(csv->string_value());
  } else if (csv_path != nullptr) {
    if (!csv_path->is_string()) {
      return Status::InvalidArgument("\"csv_path\" must be a string");
    }
    table_or = ReadCsv(csv_path->string_value());
  } else {
    const JsonValue* schema_json = table_json->Find("schema");
    const JsonValue* rows_json = table_json->Find("rows");
    if (schema_json == nullptr || rows_json == nullptr) {
      return Status::InvalidArgument(
          "\"table\" needs \"schema\" and \"rows\" members");
    }
    FDX_ASSIGN_OR_RETURN(Schema schema, ParseSchemaJson(*schema_json));
    table_or = RowsToTable(schema, *rows_json);
  }
  FDX_ASSIGN_OR_RETURN(Table table, std::move(table_or));

  FdxOptions fdx_options = base_options;
  if (const JsonValue* options_json = request.Find("options")) {
    FDX_ASSIGN_OR_RETURN(fdx_options,
                         ParseOptionsJson(*options_json, fdx_options));
  }

  DiscoverPlan plan;
  plan.table = std::make_shared<const Table>(std::move(table));
  plan.table_options = std::move(fdx_options);
  plan.table_key = "tbl|" + FingerprintTable(*plan.table) + "|" +
                   CanonicalOptionsKey(plan.table_options);
  return plan;
}

std::string RenderShutdownResponse() {
  JsonWriter json;
  json.BeginObject();
  json.Key("ok");
  json.Bool(true);
  json.Key("op");
  json.String("shutdown");
  json.Key("draining");
  json.Bool(true);
  json.EndObject();
  return json.TakeString();
}

/// Worker-side body of the debug `sleep` op.
std::string SleepBody(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  if (seconds > 30.0) seconds = 30.0;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  JsonWriter json;
  json.BeginObject();
  json.Key("ok");
  json.Bool(true);
  json.Key("op");
  json.String("sleep");
  json.EndObject();
  return json.TakeString();
}

}  // namespace

const char* RequestKindName(FdxServer::RequestKind kind) {
  switch (kind) {
    case FdxServer::RequestKind::kOpen:
      return "open";
    case FdxServer::RequestKind::kAppend:
      return "append";
    case FdxServer::RequestKind::kDiscover:
      return "discover";
    case FdxServer::RequestKind::kStatus:
      return "status";
    case FdxServer::RequestKind::kSleep:
      return "sleep";
    case FdxServer::RequestKind::kShutdown:
      return "shutdown";
    case FdxServer::RequestKind::kInvalid:
      return "invalid";
    case FdxServer::RequestKind::kCount:
      break;
  }
  return "invalid";
}

FdxServer::FdxServer(ServerOptions options) : options_(std::move(options)) {}

FdxServer::~FdxServer() { Shutdown(); }

Status FdxServer::Start() {
  // A bad codec name should fail startup, not the first chunked open.
  FDX_RETURN_IF_ERROR(FindChunkCodec(options_.store_compression).status());
  FDX_ASSIGN_OR_RETURN(listener_, ListenSocket::BindLoopback(options_.port));
  port_ = listener_.port();
  queue_ = std::make_unique<JobQueue>(options_.workers, options_.queue_capacity);
  cache_ = std::make_unique<ResultCache>(options_.cache_capacity,
                                         options_.cache_shards);
  sessions_ = std::make_unique<SessionRegistry>(options_.max_sessions,
                                                options_.session_ttl_seconds,
                                                options_.session_shards);
  if (durable()) {
    FDX_RETURN_IF_ERROR(EnsureDirectory(options_.state_dir));
    FDX_RETURN_IF_ERROR(EnsureDirectory(SessionsDir()));
    FDX_RETURN_IF_ERROR(EnsureDirectory(StoresDir()));
    // Replay before the listener serves anything: restored sessions and
    // cache entries must be visible to the very first request.
    FDX_RETURN_IF_ERROR(RestoreState());
    sessions_->SetEvictionListener([this](const std::vector<std::string>& ids) {
      for (const std::string& id : ids) {
        (void)RemoveFile(SessionSnapshotPath(id));
        (void)RemoveDirectoryRecursive(SessionStoreDir(id));
      }
    });
    snapshot_thread_ = std::thread(&FdxServer::SnapshotSpillLoop, this);
  }
  uptime_.Reset();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    accepting_ = true;
  }
  if (options_.io_mode == IoMode::kEventLoop) {
    EventLoop::Options loop_options;
    loop_options.max_pipeline_depth = std::max<size_t>(
        1, options_.max_pipeline_depth);
    EventLoop::Callbacks callbacks;
    callbacks.dispatch = [this](std::string line, EventLoop::DoneFn done) {
      DispatchAsync(std::move(line), std::move(done));
    };
    callbacks.on_accept = [this](Socket sock) { OnAccept(std::move(sock)); };
    const size_t loops = std::max<size_t>(1, options_.io_threads);
    for (size_t i = 0; i < loops; ++i) {
      event_loops_.push_back(
          std::make_unique<EventLoop>(loop_options, callbacks));
    }
    event_loops_.front()->AttachListener(&listener_);
    for (auto& loop : event_loops_) {
      FDX_RETURN_IF_ERROR(loop->Start());
    }
  } else {
    accept_thread_ = std::thread(&FdxServer::AcceptLoop, this);
  }
  return Status::OK();
}

void FdxServer::OnAccept(Socket sock) {
  if (FaultTriggered(kFaultServiceAccept)) {
    // Drop the connection on the floor: the client sees EOF and the
    // next connect succeeds — the transient-network failure mode.
    accept_faults_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!accepting_) return;  // teardown raced this accept; drop it
  }
  connections_.fetch_add(1, std::memory_order_relaxed);
  const size_t target = next_loop_.fetch_add(1, std::memory_order_relaxed) %
                        event_loops_.size();
  event_loops_[target]->AdoptConnection(std::move(sock));
}

void FdxServer::AcceptLoop() {
  while (true) {
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kIOError) {
        // Transient failure (ECONNABORTED, EMFILE, ...): intake must
        // survive it. Back off briefly so an fd drought does not turn
        // into a hot accept/fail spin, then keep accepting.
        accept_transient_legacy_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // listener shut down
    }
    ReapFinishedConnThreads();
    if (FaultTriggered(kFaultServiceAccept)) {
      accept_faults_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!accepting_) continue;  // teardown raced this accept; drop it
    const uint64_t id = next_conn_id_++;
    conn_sockets_[id] =
        std::make_shared<Socket>(std::move(accepted).value());
    connections_.fetch_add(1, std::memory_order_relaxed);
    conn_threads_.emplace(id,
                          std::thread(&FdxServer::ServeConnection, this, id));
  }
}

void FdxServer::ReapFinishedConnThreads() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    finished.reserve(finished_conn_ids_.size());
    for (const uint64_t id : finished_conn_ids_) {
      auto it = conn_threads_.find(id);
      if (it == conn_threads_.end()) continue;
      finished.push_back(std::move(it->second));
      conn_threads_.erase(it);
    }
    finished_conn_ids_.clear();
  }
  // Joining outside the lock: the handler already ran its last line, so
  // each join completes promptly, but it must not block the accept path
  // from admitting sockets meanwhile.
  for (std::thread& thread : finished) {
    if (thread.joinable()) thread.join();
  }
}

void FdxServer::ServeConnection(uint64_t conn_id) {
  std::shared_ptr<Socket> sock;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    auto it = conn_sockets_.find(conn_id);
    if (it == conn_sockets_.end()) return;
    sock = it->second;
  }
  std::string line;
  while (sock->ReadLine(&line).ok()) {
    if (line.empty()) continue;  // tolerate blank keep-alive lines
    std::string response;
    const bool keep_open = HandleRequest(line, &response);
    response += '\n';
    if (!sock->SendAll(response).ok()) break;
    if (!keep_open) break;
  }
  sock->ShutdownBoth();
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_sockets_.erase(conn_id);
  // The accept loop joins this thread on its next pass (or teardown
  // catches whatever is left).
  finished_conn_ids_.push_back(conn_id);
}

FdxServer::RequestKind FdxServer::RecordRequest(const std::string& op) {
  RequestKind kind = RequestKind::kInvalid;
  if (op == "open") {
    kind = RequestKind::kOpen;
  } else if (op == "append") {
    kind = RequestKind::kAppend;
  } else if (op == "discover") {
    kind = RequestKind::kDiscover;
  } else if (op == "status") {
    kind = RequestKind::kStatus;
  } else if (op == "sleep" && options_.enable_debug_ops) {
    kind = RequestKind::kSleep;
  } else if (op == "shutdown") {
    kind = RequestKind::kShutdown;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  requests_by_kind_[static_cast<size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);
  return kind;
}

bool FdxServer::HandleRequest(const std::string& line, std::string* response) {
  Result<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    RecordRequest("");
    *response = RenderErrorResponse("request", parsed.status());
    return true;
  }
  const JsonValue& request = parsed.value();
  const std::string op = request.StringOr("op", "");
  RecordRequest(op);
  if (op.empty()) {
    *response = RenderErrorResponse(
        "request", Status::InvalidArgument("request needs a string \"op\""));
    return true;
  }
  if (op == "open") {
    *response = HandleOpen(request);
  } else if (op == "append") {
    *response = HandleAppend(request);
  } else if (op == "discover") {
    *response = HandleDiscover(request);
  } else if (op == "status") {
    *response = HandleStatus();
  } else if (op == "sleep" && options_.enable_debug_ops) {
    *response = HandleSleep(request);
  } else if (op == "shutdown") {
    *response = RenderShutdownResponse();
    RequestShutdown();
    return false;
  } else {
    *response = RenderErrorResponse(
        op, Status::InvalidArgument("unknown op \"" + op + "\""));
  }
  return true;
}

void FdxServer::DispatchAsync(std::string line, EventLoop::DoneFn done) {
  Result<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    RecordRequest("");
    done(RenderErrorResponse("request", parsed.status()), true);
    return;
  }
  const JsonValue& request = parsed.value();
  const std::string op = request.StringOr("op", "");
  RecordRequest(op);
  if (op.empty()) {
    done(RenderErrorResponse(
             "request",
             Status::InvalidArgument("request needs a string \"op\"")),
         true);
    return;
  }
  if (op == "open") {
    done(HandleOpen(request), true);
  } else if (op == "append") {
    HandleAppendAsync(request, std::move(done));
  } else if (op == "discover") {
    HandleDiscoverAsync(request, std::move(done));
  } else if (op == "status") {
    done(HandleStatus(), true);
  } else if (op == "sleep" && options_.enable_debug_ops) {
    const double seconds = request.NumberOr("seconds", 0.05);
    SubmitJobAsync("sleep",
                   WithDeadline("sleep", RequestDeadlineSeconds(request),
                                [seconds](double /*remaining*/) {
                                  return SleepBody(seconds);
                                }),
                   std::move(done));
  } else if (op == "shutdown") {
    done(RenderShutdownResponse(), false);
    RequestShutdown();
  } else {
    done(RenderErrorResponse(
             op, Status::InvalidArgument("unknown op \"" + op + "\"")),
         true);
  }
}

std::string FdxServer::HandleOpen(const JsonValue& request) {
  const JsonValue* schema_json = request.Find("schema");
  if (schema_json == nullptr) {
    return RenderErrorResponse(
        "open", Status::InvalidArgument("open needs a \"schema\" array"));
  }
  Result<Schema> schema = ParseSchemaJson(*schema_json);
  if (!schema.ok()) return RenderErrorResponse("open", schema.status());

  FdxOptions fdx_options = options_.fdx;
  if (const JsonValue* options_json = request.Find("options")) {
    Result<FdxOptions> parsed = ParseOptionsJson(*options_json, fdx_options);
    if (!parsed.ok()) return RenderErrorResponse("open", parsed.status());
    fdx_options = std::move(parsed).value();
  }

  const std::string storage = request.StringOr("storage", "memory");
  if (storage != "memory" && storage != "chunked") {
    return RenderErrorResponse(
        "open", Status::InvalidArgument("open: unknown storage \"" + storage +
                                        "\" (want \"memory\" or \"chunked\")"));
  }

  Result<std::shared_ptr<DatasetSession>> session =
      sessions_->Open(std::move(schema).value(), fdx_options);
  if (!session.ok()) return RenderErrorResponse("open", session.status());

  if (storage == "chunked" || durable()) {
    std::lock_guard<std::mutex> lock(session.value()->mu);
    if (storage == "chunked") {
      // Batches land in a chunk store (spilled to disk in durable mode,
      // in-memory chunks otherwise); snapshots then reference the store
      // manifest instead of embedding the rows.
      Result<ChunkedTable> store = ChunkedTable::Create(
          session.value()->fdx.schema(),
          durable() ? SessionStoreDir(session.value()->id) : "",
          options_.store_compression);
      if (!store.ok()) {
        sessions_->Close(session.value()->id);
        return RenderErrorResponse("open", store.status());
      }
      session.value()->storage = "chunked";
      session.value()->store =
          std::make_unique<ChunkedTable>(std::move(store).value());
    } else {
      session.value()->retain_batches = true;
    }
    if (durable()) PersistSessionLocked(session.value().get());
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("ok");
  json.Bool(true);
  json.Key("op");
  json.String("open");
  json.Key("session");
  json.String(session.value()->id);
  if (storage != "memory") {
    json.Key("storage");
    json.String(storage);
  }
  json.Key("columns");
  json.Integer(static_cast<int64_t>(session.value()->fdx.schema().size()));
  json.EndObject();
  return json.TakeString();
}

std::string FdxServer::ApplyAppendLocked(DatasetSession* session, Table batch) {
  Status appended = session->fdx.Append(batch);
  if (!appended.ok()) return RenderErrorResponse("append", appended);
  session->content.UpdateString("batch");
  UpdateTableFingerprint(&session->content, batch);
  if (session->store != nullptr) {
    // Chunked session: the store is the durable copy of the rows. A
    // failed spill degrades durability only (counted like any snapshot
    // failure); restart-time fingerprint verification then drops the
    // stale session instead of reviving inconsistent state.
    if (session->store->AppendBatch(batch).ok()) {
      if (durable()) PersistSessionLocked(session);
    } else {
      snapshot_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (session->retain_batches) {
    // Persist before answering: once the client sees ok:true the batch
    // must survive a crash (write-temp-then-rename keeps the previous
    // snapshot intact if this write dies half-way).
    session->batches_json.push_back(EncodeBatchRows(batch));
    PersistSessionLocked(session);
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("ok");
  json.Bool(true);
  json.Key("op");
  json.String("append");
  json.Key("session");
  json.String(session->id);
  json.Key("rows");
  json.Integer(static_cast<int64_t>(batch.num_rows()));
  json.Key("total_rows");
  json.Integer(static_cast<int64_t>(session->fdx.total_rows()));
  json.Key("batches");
  json.Integer(static_cast<int64_t>(session->fdx.total_batches()));
  json.EndObject();
  return json.TakeString();
}

std::string FdxServer::HandleAppend(const JsonValue& request) {
  Result<AppendPlan> plan_or = PlanAppend(request, sessions_.get());
  if (!plan_or.ok()) return RenderErrorResponse("append", plan_or.status());
  AppendPlan plan = std::move(plan_or).value();
  std::lock_guard<std::mutex> lock(plan.session->mu);
  return ApplyAppendLocked(plan.session.get(), std::move(plan.batch));
}

void FdxServer::HandleAppendAsync(const JsonValue& request,
                                  EventLoop::DoneFn done) {
  Result<AppendPlan> plan_or = PlanAppend(request, sessions_.get());
  if (!plan_or.ok()) {
    done(RenderErrorResponse("append", plan_or.status()), true);
    return;
  }
  AppendPlan plan = std::move(plan_or).value();
  // An append is cheap, but the session mutex may be held for a whole
  // solve by a worker. try_lock keeps the fast case on the I/O thread
  // and moves the contended case to the queue instead of stalling every
  // connection on this loop behind one session.
  std::unique_lock<std::mutex> lock(plan.session->mu, std::try_to_lock);
  if (lock.owns_lock()) {
    std::string response =
        ApplyAppendLocked(plan.session.get(), std::move(plan.batch));
    lock.unlock();
    done(std::move(response), true);
    return;
  }
  std::shared_ptr<DatasetSession> session = plan.session;
  auto batch = std::make_shared<Table>(std::move(plan.batch));
  SubmitJobAsync(
      "append",
      [this, session, batch] {
        std::lock_guard<std::mutex> job_lock(session->mu);
        return ApplyAppendLocked(session.get(), std::move(*batch));
      },
      std::move(done));
}

std::string FdxServer::SessionDiscoverKeyLocked(const DatasetSession& session) {
  // The solve lineage is part of the key because warm-started solves are
  // tolerance-equal, not byte-equal, to cold ones; the current lineage
  // is only valid for lookup when no new solve would run, which is
  // exactly the repeat-discover case the cache exists for.
  return "sess|" + session.content.Hex() + "|" +
         CanonicalOptionsKey(session.fdx.options()) + "|" +
         session.fdx.SolveStateKey();
}

std::string FdxServer::RunSessionDiscover(
    const std::shared_ptr<DatasetSession>& session) {
  // Solve under the session lock, then file the payload under the
  // post-solve key: the content and lineage the result was actually
  // produced with. A batch appended between admission and execution
  // therefore cannot file the newer result under the older
  // fingerprint, and payloads from different solve histories never
  // collide.
  std::lock_guard<std::mutex> lock(session->mu);
  Result<FdxResult> result = session->fdx.CurrentFds();
  if (!result.ok()) return RenderErrorResponse("discover", result.status());
  const std::string job_key = SessionDiscoverKeyLocked(*session);
  std::string rendered = RenderDiscoverResponse(
      session->fdx.schema(), session->fdx.total_rows(), result.value());
  cache_->Insert(job_key, rendered);
  return rendered;
}

std::string FdxServer::RunTableDiscover(
    const std::shared_ptr<const Table>& table, const FdxOptions& options,
    const std::string& key) {
  FdxDiscoverer discoverer(options);
  Result<FdxResult> result = discoverer.Discover(*table);
  if (!result.ok()) return RenderErrorResponse("discover", result.status());
  std::string rendered = RenderDiscoverResponse(
      table->schema(), table->num_rows(), result.value());
  cache_->Insert(key, rendered);
  return rendered;
}

std::string FdxServer::HandleDiscover(const JsonValue& request) {
  Result<DiscoverPlan> plan_or =
      PlanDiscover(request, sessions_.get(), options_.fdx);
  if (!plan_or.ok()) return RenderErrorResponse("discover", plan_or.status());
  DiscoverPlan plan = std::move(plan_or).value();
  const double deadline_seconds = RequestDeadlineSeconds(request);

  if (plan.session != nullptr) {
    // Fast path: a cache hit skips the job queue entirely — it is also
    // exempt from shedding, because serving it costs less than the
    // rejection would.
    std::string key;
    {
      std::lock_guard<std::mutex> lock(plan.session->mu);
      key = SessionDiscoverKeyLocked(*plan.session);
    }
    std::string payload;
    if (cache_->Lookup(key, &payload)) return payload;

    Status shed = CheckShed();
    if (!shed.ok()) {
      return RenderErrorResponse("discover", shed,
                                 options_.shed_retry_after_seconds);
    }
    Result<std::string> response = RunJob(
        "discover",
        WithDeadline("discover", deadline_seconds,
                     [this, session = plan.session](double /*remaining*/) {
                       return RunSessionDiscover(session);
                     }));
    if (!response.ok()) {
      return RenderErrorResponse("discover", response.status());
    }
    return std::move(response).value();
  }

  std::string payload;
  if (cache_->Lookup(plan.table_key, &payload)) return payload;

  Status shed = CheckShed();
  if (!shed.ok()) {
    return RenderErrorResponse("discover", shed,
                               options_.shed_retry_after_seconds);
  }
  Result<std::string> response = RunJob(
      "discover",
      WithDeadline("discover", deadline_seconds,
                   [this, table = plan.table, options = plan.table_options,
                    key = plan.table_key](double remaining) mutable {
                     // Feed what is left of the request deadline into the
                     // solver's own wall-clock budget so an in-flight job
                     // cannot overrun the deadline it was admitted under.
                     if (remaining > 0.0 &&
                         (options.time_budget_seconds <= 0.0 ||
                          options.time_budget_seconds > remaining)) {
                       options.time_budget_seconds = remaining;
                     }
                     return RunTableDiscover(table, options, key);
                   }));
  if (!response.ok()) return RenderErrorResponse("discover", response.status());
  return std::move(response).value();
}

void FdxServer::HandleDiscoverAsync(const JsonValue& request,
                                    EventLoop::DoneFn done) {
  Result<DiscoverPlan> plan_or =
      PlanDiscover(request, sessions_.get(), options_.fdx);
  if (!plan_or.ok()) {
    done(RenderErrorResponse("discover", plan_or.status()), true);
    return;
  }
  DiscoverPlan plan = std::move(plan_or).value();
  const double deadline_seconds = RequestDeadlineSeconds(request);

  if (plan.session != nullptr) {
    // The cache fast path needs the session lock to render the key, and
    // on the I/O thread only a try_lock is affordable — a worker may
    // hold the mutex for a whole solve, and a blocking lock here would
    // stall every connection on this loop behind one session. On
    // contention the discover goes straight to the queue, which is
    // where a non-cached discover was headed anyway.
    std::unique_lock<std::mutex> lock(plan.session->mu, std::try_to_lock);
    if (lock.owns_lock()) {
      const std::string key = SessionDiscoverKeyLocked(*plan.session);
      lock.unlock();
      std::string payload;
      if (cache_->Lookup(key, &payload)) {
        done(std::move(payload), true);
        return;
      }
    }
    Status shed = CheckShed();
    if (!shed.ok()) {
      done(RenderErrorResponse("discover", shed,
                               options_.shed_retry_after_seconds),
           true);
      return;
    }
    SubmitJobAsync(
        "discover",
        WithDeadline("discover", deadline_seconds,
                     [this, session = plan.session](double /*remaining*/) {
                       return RunSessionDiscover(session);
                     }),
        std::move(done));
    return;
  }

  std::string payload;
  if (cache_->Lookup(plan.table_key, &payload)) {
    done(std::move(payload), true);
    return;
  }
  Status shed = CheckShed();
  if (!shed.ok()) {
    done(RenderErrorResponse("discover", shed,
                             options_.shed_retry_after_seconds),
         true);
    return;
  }
  SubmitJobAsync(
      "discover",
      WithDeadline("discover", deadline_seconds,
                   [this, table = plan.table, options = plan.table_options,
                    key = plan.table_key](double remaining) mutable {
                     if (remaining > 0.0 &&
                         (options.time_budget_seconds <= 0.0 ||
                          options.time_budget_seconds > remaining)) {
                       options.time_budget_seconds = remaining;
                     }
                     return RunTableDiscover(table, options, key);
                   }),
      std::move(done));
}

std::string FdxServer::HandleStatus() {
  JsonWriter json;
  json.BeginObject();
  json.Key("ok");
  json.Bool(true);
  json.Key("op");
  json.String("status");
  json.Key("uptime_seconds");
  json.Number(uptime_.ElapsedSeconds());
  json.Key("connections");
  json.Integer(static_cast<int64_t>(connections_.load()));
  json.Key("requests");
  json.Integer(static_cast<int64_t>(requests_.load()));
  json.Key("requests_by_op");
  json.BeginObject();
  for (size_t k = 0; k < static_cast<size_t>(RequestKind::kCount); ++k) {
    json.Key(RequestKindName(static_cast<RequestKind>(k)));
    json.Integer(static_cast<int64_t>(
        requests_by_kind_[k].load(std::memory_order_relaxed)));
  }
  json.EndObject();
  json.Key("accept_faults");
  json.Integer(static_cast<int64_t>(accept_faults_.load()));
  json.Key("io");
  json.BeginObject();
  json.Key("mode");
  json.String(options_.io_mode == IoMode::kEventLoop ? "epoll" : "threads");
  json.Key("io_threads");
  json.Integer(static_cast<int64_t>(event_loops_.size()));
  json.Key("connections_live");
  json.Integer(static_cast<int64_t>(live_connections()));
  json.Key("max_pipeline_depth");
  json.Integer(static_cast<int64_t>(options_.max_pipeline_depth));
  json.Key("accept_transient_errors");
  json.Integer(static_cast<int64_t>(accept_transient_errors()));
  json.Key("connections_aborted");
  json.Integer(static_cast<int64_t>(aborted_connections()));
  json.EndObject();
  json.Key("queue");
  json.BeginObject();
  json.Key("workers");
  json.Integer(static_cast<int64_t>(queue_->workers()));
  json.Key("capacity");
  json.Integer(static_cast<int64_t>(queue_->capacity()));
  json.Key("active");
  json.Integer(static_cast<int64_t>(queue_->active()));
  json.Key("executed");
  json.Integer(static_cast<int64_t>(queue_->executed()));
  json.Key("rejected");
  json.Integer(static_cast<int64_t>(queue_->rejected()));
  json.EndObject();
  json.Key("cache");
  json.BeginObject();
  json.Key("size");
  json.Integer(static_cast<int64_t>(cache_->size()));
  json.Key("capacity");
  json.Integer(static_cast<int64_t>(cache_->capacity()));
  json.Key("hits");
  json.Integer(static_cast<int64_t>(cache_->hits()));
  json.Key("misses");
  json.Integer(static_cast<int64_t>(cache_->misses()));
  json.Key("evictions");
  json.Integer(static_cast<int64_t>(cache_->evictions()));
  json.Key("shards");
  json.BeginArray();
  for (size_t shard = 0; shard < cache_->shards(); ++shard) {
    const ResultCache::ShardStats stats = cache_->shard_stats(shard);
    json.BeginObject();
    json.Key("size");
    json.Integer(static_cast<int64_t>(stats.size));
    json.Key("hits");
    json.Integer(static_cast<int64_t>(stats.hits));
    json.Key("misses");
    json.Integer(static_cast<int64_t>(stats.misses));
    json.Key("evictions");
    json.Integer(static_cast<int64_t>(stats.evictions));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.Key("sessions");
  json.BeginObject();
  json.Key("open");
  json.Integer(static_cast<int64_t>(sessions_->size()));
  json.Key("max");
  json.Integer(static_cast<int64_t>(sessions_->max_sessions()));
  json.Key("shards");
  json.Integer(static_cast<int64_t>(sessions_->shards()));
  json.Key("opened");
  json.Integer(static_cast<int64_t>(sessions_->opened()));
  json.Key("evicted");
  json.Integer(static_cast<int64_t>(sessions_->evicted()));
  json.EndObject();
  const SessionRegistry::SolverTotals solver = sessions_->SolverStats();
  json.Key("solver");
  json.BeginObject();
  json.Key("solves");
  json.Integer(static_cast<int64_t>(solver.solves));
  json.Key("warm_started");
  json.Integer(static_cast<int64_t>(solver.warm_solves));
  json.Key("memo_hits");
  json.Integer(static_cast<int64_t>(solver.memo_hits));
  json.Key("newton_solves");
  json.Integer(static_cast<int64_t>(solver.newton_solves));
  json.EndObject();
  json.Key("shed");
  json.BeginObject();
  json.Key("queue");
  json.Integer(static_cast<int64_t>(shed_queue()));
  json.Key("memory");
  json.Integer(static_cast<int64_t>(shed_memory()));
  json.Key("deadline");
  json.Integer(static_cast<int64_t>(shed_deadline()));
  json.EndObject();
  json.Key("durability");
  json.BeginObject();
  json.Key("enabled");
  json.Bool(durable());
  json.Key("sessions_recovered");
  json.Integer(static_cast<int64_t>(sessions_recovered()));
  json.Key("sessions_recovery_failed");
  json.Integer(static_cast<int64_t>(sessions_recovery_failed()));
  json.Key("cache_entries_restored");
  json.Integer(static_cast<int64_t>(cache_entries_restored()));
  json.Key("snapshot_writes");
  json.Integer(static_cast<int64_t>(snapshot_writes()));
  json.Key("snapshot_failures");
  json.Integer(static_cast<int64_t>(snapshot_failures()));
  json.EndObject();
  json.EndObject();
  return json.TakeString();
}

std::string FdxServer::HandleSleep(const JsonValue& request) {
  const double seconds = request.NumberOr("seconds", 0.05);
  Result<std::string> response =
      RunJob("sleep", WithDeadline("sleep", RequestDeadlineSeconds(request),
                                   [seconds](double /*remaining*/) {
                                     return SleepBody(seconds);
                                   }));
  if (!response.ok()) return RenderErrorResponse("sleep", response.status());
  return std::move(response).value();
}

std::string FdxServer::SessionsDir() const {
  return options_.state_dir + "/sessions";
}

std::string FdxServer::SessionSnapshotPath(const std::string& id) const {
  return SessionsDir() + "/" + id + ".json";
}

std::string FdxServer::CacheSnapshotPath() const {
  return options_.state_dir + "/cache.json";
}

std::string FdxServer::StoresDir() const {
  return options_.state_dir + "/stores";
}

std::string FdxServer::SessionStoreDir(const std::string& id) const {
  return StoresDir() + "/" + id;
}

Status FdxServer::RestoreState() {
  FDX_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       ListDirectory(SessionsDir()));
  for (const std::string& name : names) {
    // Skip leftovers of interrupted atomic writes ("*.json.tmp.<pid>")
    // and anything else that is not a snapshot.
    if (name.size() < 6 || name.compare(name.size() - 5, 5, ".json") != 0) {
      continue;
    }
    const std::string path = SessionsDir() + "/" + name;
    auto drop = [&](const Status& why) {
      std::fprintf(stderr, "fdxd: dropping snapshot %s: %s\n", path.c_str(),
                   why.ToString().c_str());
      (void)RemoveFile(path);
      sessions_recovery_failed_.fetch_add(1, std::memory_order_relaxed);
    };
    Result<std::string> text = ReadFileToString(path);
    if (!text.ok()) {
      drop(text.status());
      continue;
    }
    Result<SessionSnapshot> snapshot_or = DecodeSessionSnapshot(text.value());
    if (!snapshot_or.ok()) {
      drop(snapshot_or.status());
      continue;
    }
    SessionSnapshot snapshot = std::move(snapshot_or).value();
    if (snapshot.storage == "chunked") {
      // The rows live in the session's chunk store; Open() verifies
      // every chunk fingerprint, and the replayed content fingerprint
      // must reproduce the snapshot's — otherwise the whole session
      // (snapshot + store) is dropped rather than revived wrong.
      const std::string store_dir = SessionStoreDir(snapshot.id);
      auto drop_chunked = [&](const Status& why) {
        drop(why);
        (void)RemoveDirectoryRecursive(store_dir);
      };
      Result<ChunkedTable> store_or = ChunkedTable::Open(store_dir);
      if (!store_or.ok()) {
        drop_chunked(store_or.status());
        continue;
      }
      if (store_or.value().schema().names() != snapshot.schema.names()) {
        drop_chunked(Status::Internal(
            "chunk store schema disagrees with the session snapshot"));
        continue;
      }
      Result<std::shared_ptr<DatasetSession>> restored =
          sessions_->Restore(snapshot.id, snapshot.schema, snapshot.options);
      if (!restored.ok()) {
        drop_chunked(restored.status());
        continue;
      }
      DatasetSession* session = restored.value().get();
      Status replay = Status::OK();
      {
        std::lock_guard<std::mutex> lock(session->mu);
        session->storage = "chunked";
        for (size_t i = 0; i < store_or.value().num_chunks(); ++i) {
          Result<Table> batch = store_or.value().ReadChunkValues(i);
          replay = batch.status();
          if (!replay.ok()) break;
          replay = session->fdx.Append(batch.value());
          if (!replay.ok()) break;
          session->content.UpdateString("batch");
          UpdateTableFingerprint(&session->content, batch.value());
        }
        if (replay.ok() && session->content.Hex() != snapshot.content_hex) {
          replay = Status::Internal(
              "replayed chunks do not reproduce the stored content "
              "fingerprint");
        }
        if (replay.ok()) {
          session->store =
              std::make_unique<ChunkedTable>(std::move(store_or).value());
        }
      }
      if (!replay.ok()) {
        sessions_->Close(snapshot.id);
        drop_chunked(replay);
        continue;
      }
      sessions_recovered_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Result<std::shared_ptr<DatasetSession>> restored =
        sessions_->Restore(snapshot.id, snapshot.schema, snapshot.options);
    if (!restored.ok()) {
      drop(restored.status());
      continue;
    }
    DatasetSession* session = restored.value().get();
    bool replayed = true;
    {
      std::lock_guard<std::mutex> lock(session->mu);
      session->retain_batches = true;
      for (const Table& batch : snapshot.batches) {
        Status appended = session->fdx.Append(batch);
        if (!appended.ok()) {
          replayed = false;
          break;
        }
        session->content.UpdateString("batch");
        UpdateTableFingerprint(&session->content, batch);
        session->batches_json.push_back(EncodeBatchRows(batch));
      }
    }
    if (!replayed) {
      sessions_->Close(snapshot.id);
      drop(Status::Internal("batch replay failed"));
      continue;
    }
    sessions_recovered_.fetch_add(1, std::memory_order_relaxed);
  }

  Result<std::string> cache_text = ReadFileToString(CacheSnapshotPath());
  if (cache_text.ok()) {
    Result<std::vector<std::pair<std::string, std::string>>> entries =
        DecodeCacheSnapshot(cache_text.value());
    if (entries.ok()) {
      for (auto& [key, payload] : entries.value()) {
        cache_->Insert(key, std::move(payload));
      }
      cache_entries_restored_.fetch_add(entries.value().size(),
                                        std::memory_order_relaxed);
    } else {
      // A torn cache spill only costs warm starts, never correctness.
      (void)RemoveFile(CacheSnapshotPath());
    }
  }
  return Status::OK();
}

void FdxServer::PersistSessionLocked(DatasetSession* session) {
  const FdxOptions& options = session->fdx.options();
  const std::string text = EncodeSessionSnapshot(
      session->id, session->fdx.schema(), options, CanonicalOptionsKey(options),
      session->content.Hex(), session->batches_json, session->storage);
  if (WriteFileAtomic(SessionSnapshotPath(session->id), text).ok()) {
    snapshot_writes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    snapshot_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FdxServer::PersistCache() {
  if (!durable() || cache_ == nullptr) return;
  const std::string text = EncodeCacheSnapshot(cache_->Snapshot());
  if (WriteFileAtomic(CacheSnapshotPath(), text).ok()) {
    snapshot_writes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    snapshot_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FdxServer::SnapshotSpillLoop() {
  const auto interval = std::chrono::duration<double>(
      options_.snapshot_interval_seconds > 0.0
          ? options_.snapshot_interval_seconds
          : 5.0);
  std::unique_lock<std::mutex> lock(snapshot_mu_);
  while (!snapshot_stop_) {
    snapshot_cv_.wait_for(lock, interval, [this] { return snapshot_stop_; });
    if (snapshot_stop_) break;
    lock.unlock();
    PersistCache();
    lock.lock();
  }
}

double FdxServer::RequestDeadlineSeconds(const JsonValue& request) const {
  return request.NumberOr("deadline_seconds",
                          options_.default_deadline_seconds);
}

std::function<std::string()> FdxServer::WithDeadline(
    std::string op, double deadline_seconds,
    std::function<std::string(double)> body) {
  if (deadline_seconds <= 0.0) {
    return [body = std::move(body)] { return body(0.0); };
  }
  // The deadline starts at admission; by the time a worker picks the
  // job up it may already be hopeless — answering Timeout immediately
  // is cheaper for everyone than computing a result the client gave up
  // on (and it frees the worker for requests that can still make it).
  auto deadline = std::make_shared<Deadline>(deadline_seconds);
  return [this, op = std::move(op), deadline, body = std::move(body)] {
    if (deadline->Expired()) {
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      return RenderErrorResponse(
          op,
          Status::Timeout("server deadline (" +
                          std::to_string(deadline->budget_seconds()) +
                          "s) expired while the request was queued"),
          options_.shed_retry_after_seconds);
    }
    const double left = deadline->remaining_seconds();
    return body(left > 0.0 ? left : 1e-9);
  };
}

Status FdxServer::CheckShed() {
  if (options_.shed_queue_watermark > 0.0 && queue_ != nullptr) {
    const size_t limit = std::max<size_t>(
        1, static_cast<size_t>(options_.shed_queue_watermark *
                               static_cast<double>(queue_->capacity())));
    if (queue_->active() >= limit) {
      shed_queue_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "overloaded: queue depth " + std::to_string(queue_->active()) +
          " crossed the shed watermark (" + std::to_string(limit) + " of " +
          std::to_string(queue_->capacity()) + "); retry later");
    }
  }
  if (options_.shed_max_rss_mb > 0) {
    const uint64_t rss = CurrentRssBytes();
    const uint64_t limit =
        static_cast<uint64_t>(options_.shed_max_rss_mb) * 1024 * 1024;
    if (rss > limit) {
      shed_memory_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "overloaded: resident memory " + std::to_string(rss >> 20) +
          " MiB crossed the shed watermark (" +
          std::to_string(options_.shed_max_rss_mb) + " MiB); retry later");
    }
  }
  return Status::OK();
}

Result<std::string> FdxServer::RunJob(const std::string& op,
                                      std::function<std::string()> job) {
  (void)op;
  FDX_INJECT_FAULT(kFaultServiceEnqueue,
                   Status::Internal("injected fault at service.enqueue"));
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();
  FDX_RETURN_IF_ERROR(queue_->Submit(
      [promise, job = std::move(job)] { promise->set_value(job()); }));
  // The connection thread parks here; the worker's response is relayed
  // from this thread so every socket write has a single writer.
  return future.get();
}

void FdxServer::SubmitJobAsync(const std::string& op,
                               std::function<std::string()> body,
                               EventLoop::DoneFn done) {
  if (FaultTriggered(kFaultServiceEnqueue)) {
    done(RenderErrorResponse(
             op, Status::Internal("injected fault at service.enqueue")),
         true);
    return;
  }
  // The completion is shared between the job and the rejection path;
  // exactly one of them runs.
  auto done_ptr = std::make_shared<EventLoop::DoneFn>(std::move(done));
  Status submitted = queue_->Submit(
      [body = std::move(body), done_ptr] { (*done_ptr)(body(), true); });
  if (!submitted.ok()) {
    (*done_ptr)(RenderErrorResponse(op, submitted), true);
  }
}

size_t FdxServer::live_connections() const {
  size_t live = 0;
  for (const auto& loop : event_loops_) live += loop->live_connections();
  std::lock_guard<std::mutex> lock(conn_mu_);
  return live + conn_sockets_.size();
}

uint64_t FdxServer::accept_transient_errors() const {
  uint64_t total = accept_transient_legacy_.load(std::memory_order_relaxed);
  for (const auto& loop : event_loops_) total += loop->accept_transient_errors();
  return total;
}

uint64_t FdxServer::aborted_connections() const {
  uint64_t total = 0;
  for (const auto& loop : event_loops_) total += loop->aborted_connections();
  return total;
}

void FdxServer::RequestShutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

void FdxServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(shutdown_mu_);
    shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
  }
  std::lock_guard<std::mutex> lock(teardown_mu_);
  if (!teardown_done_) {
    TeardownLocked();
    teardown_done_ = true;
  }
}

void FdxServer::Shutdown() {
  RequestShutdown();
  std::lock_guard<std::mutex> lock(teardown_mu_);
  if (!teardown_done_) {
    TeardownLocked();
    teardown_done_ = true;
  }
}

void FdxServer::TeardownLocked() {
  // 1. Stop admitting connections and jobs. In-flight requests from live
  //    connections now get structured "draining" rejections.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    accepting_ = false;
  }
  if (queue_) queue_->CloseIntake();

  // 2. Wake the accept path and retire it. The event loops discover the
  //    dead listener on their next poll; the legacy accept thread is
  //    joined here.
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();

  // 3. Drain in-flight jobs under the budget; their responses are still
  //    deliverable because client sockets are untouched so far. In
  //    event mode every job's completion is in a loop mailbox once
  //    Drain returns (jobs post before they count as finished).
  if (queue_) {
    drained_cleanly_.store(queue_->Drain(options_.drain_seconds));
  }

  // 3b. Durable mode: retire the periodic spill thread and take one
  //     final cache snapshot now that the queue is quiet. Session
  //     snapshots need no flush — they are written synchronously on
  //     every open/append.
  if (durable()) {
    {
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      snapshot_stop_ = true;
    }
    snapshot_cv_.notify_all();
    if (snapshot_thread_.joinable()) snapshot_thread_.join();
    PersistCache();
  }

  // 4a. Event mode: ask each loop to deliver queued completions, flush
  //     write buffers to slow readers (bounded), close, and exit.
  for (auto& loop : event_loops_) loop->RequestStop();
  for (auto& loop : event_loops_) loop->Join();

  // 4b. Legacy mode: unblock connection readers and join every
  //     connection thread. Read-side only: Drain() returns once a job's
  //     *body* finishes, but the connection thread may still be waking
  //     from future.get() to send that job's response — a full
  //     SHUT_RDWR here would cut it off mid-flight. SHUT_RD wakes idle
  //     readers with EOF while letting pending SendAll calls complete;
  //     each thread fully shuts down its own socket on exit.
  std::unordered_map<uint64_t, std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, sock] : conn_sockets_) sock->ShutdownRead();
    threads.swap(conn_threads_);
    finished_conn_ids_.clear();
  }
  for (auto& [id, thread] : threads) {
    if (thread.joinable()) thread.join();
  }

  listener_.Close();
}

}  // namespace fdx
