#include "service/server.h"

#include <chrono>
#include <future>
#include <set>
#include <utility>

#include "data/csv.h"
#include "service/json_parser.h"
#include "service/protocol.h"
#include "util/fault_injection.h"
#include "util/json_writer.h"

namespace fdx {

namespace {

/// Builds a Table from an inline JSON row block: `rows` is an array of
/// arrays whose cells are null / number / string. `schema` is the
/// authoritative width.
Result<Table> RowsToTable(const Schema& schema, const JsonValue& rows) {
  if (!rows.is_array()) {
    return Status::InvalidArgument("\"rows\" must be an array of arrays");
  }
  Table table(schema);
  for (size_t r = 0; r < rows.array().size(); ++r) {
    const JsonValue& row = rows.array()[r];
    if (!row.is_array() || row.array().size() != schema.size()) {
      return Status::InvalidArgument(
          "row " + std::to_string(r) + " must be an array of " +
          std::to_string(schema.size()) + " cells");
    }
    std::vector<Value> cells;
    cells.reserve(schema.size());
    for (const JsonValue& cell : row.array()) {
      FDX_ASSIGN_OR_RETURN(Value value, JsonCellToValue(cell));
      cells.push_back(std::move(value));
    }
    table.AppendRow(std::move(cells));
  }
  return table;
}

/// Decodes a request's `schema` member (non-empty array of unique,
/// non-empty strings).
Result<Schema> ParseSchemaJson(const JsonValue& schema_json) {
  if (!schema_json.is_array() || schema_json.array().empty()) {
    return Status::InvalidArgument(
        "\"schema\" must be a non-empty array of column names");
  }
  std::vector<std::string> names;
  std::set<std::string> seen;
  names.reserve(schema_json.array().size());
  for (const JsonValue& name : schema_json.array()) {
    if (!name.is_string() || name.string_value().empty()) {
      return Status::InvalidArgument("schema names must be non-empty strings");
    }
    if (!seen.insert(name.string_value()).second) {
      return Status::InvalidArgument("duplicate schema name \"" +
                                     name.string_value() + "\"");
    }
    names.push_back(name.string_value());
  }
  return Schema(std::move(names));
}

}  // namespace

FdxServer::FdxServer(ServerOptions options) : options_(std::move(options)) {}

FdxServer::~FdxServer() { Shutdown(); }

Status FdxServer::Start() {
  FDX_ASSIGN_OR_RETURN(listener_, ListenSocket::BindLoopback(options_.port));
  port_ = listener_.port();
  queue_ = std::make_unique<JobQueue>(options_.workers, options_.queue_capacity);
  cache_ = std::make_unique<ResultCache>(options_.cache_capacity);
  sessions_ = std::make_unique<SessionRegistry>(options_.max_sessions,
                                                options_.session_ttl_seconds);
  uptime_.Reset();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    accepting_ = true;
  }
  accept_thread_ = std::thread(&FdxServer::AcceptLoop, this);
  return Status::OK();
}

void FdxServer::AcceptLoop() {
  while (true) {
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) break;  // listener shut down
    if (FaultTriggered(kFaultServiceAccept)) {
      // Drop the connection on the floor: the client sees EOF and the
      // next connect succeeds — the transient-network failure mode.
      accept_faults_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!accepting_) continue;  // teardown raced this accept; drop it
    const uint64_t id = next_conn_id_++;
    conn_sockets_[id] =
        std::make_shared<Socket>(std::move(accepted).value());
    connections_.fetch_add(1, std::memory_order_relaxed);
    conn_threads_.emplace_back(&FdxServer::ServeConnection, this, id);
  }
}

void FdxServer::ServeConnection(uint64_t conn_id) {
  std::shared_ptr<Socket> sock;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    auto it = conn_sockets_.find(conn_id);
    if (it == conn_sockets_.end()) return;
    sock = it->second;
  }
  std::string line;
  while (sock->ReadLine(&line).ok()) {
    if (line.empty()) continue;  // tolerate blank keep-alive lines
    std::string response;
    const bool keep_open = HandleRequest(line, &response);
    response += '\n';
    if (!sock->SendAll(response).ok()) break;
    if (!keep_open) break;
  }
  sock->ShutdownBoth();
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_sockets_.erase(conn_id);
}

bool FdxServer::HandleRequest(const std::string& line, std::string* response) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Result<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    *response = RenderErrorResponse("request", parsed.status());
    return true;
  }
  const JsonValue& request = parsed.value();
  const std::string op = request.StringOr("op", "");
  if (op.empty()) {
    *response = RenderErrorResponse(
        "request", Status::InvalidArgument("request needs a string \"op\""));
    return true;
  }
  if (op == "open") {
    *response = HandleOpen(request);
  } else if (op == "append") {
    *response = HandleAppend(request);
  } else if (op == "discover") {
    *response = HandleDiscover(request);
  } else if (op == "status") {
    *response = HandleStatus();
  } else if (op == "sleep" && options_.enable_debug_ops) {
    *response = HandleSleep(request);
  } else if (op == "shutdown") {
    JsonWriter json;
    json.BeginObject();
    json.Key("ok");
    json.Bool(true);
    json.Key("op");
    json.String("shutdown");
    json.Key("draining");
    json.Bool(true);
    json.EndObject();
    *response = json.TakeString();
    RequestShutdown();
    return false;
  } else {
    *response = RenderErrorResponse(
        op, Status::InvalidArgument("unknown op \"" + op + "\""));
  }
  return true;
}

std::string FdxServer::HandleOpen(const JsonValue& request) {
  const JsonValue* schema_json = request.Find("schema");
  if (schema_json == nullptr) {
    return RenderErrorResponse(
        "open", Status::InvalidArgument("open needs a \"schema\" array"));
  }
  Result<Schema> schema = ParseSchemaJson(*schema_json);
  if (!schema.ok()) return RenderErrorResponse("open", schema.status());

  FdxOptions fdx_options = options_.fdx;
  if (const JsonValue* options_json = request.Find("options")) {
    Result<FdxOptions> parsed = ParseOptionsJson(*options_json, fdx_options);
    if (!parsed.ok()) return RenderErrorResponse("open", parsed.status());
    fdx_options = std::move(parsed).value();
  }

  Result<std::shared_ptr<DatasetSession>> session =
      sessions_->Open(std::move(schema).value(), fdx_options);
  if (!session.ok()) return RenderErrorResponse("open", session.status());

  JsonWriter json;
  json.BeginObject();
  json.Key("ok");
  json.Bool(true);
  json.Key("op");
  json.String("open");
  json.Key("session");
  json.String(session.value()->id);
  json.Key("columns");
  json.Integer(static_cast<int64_t>(session.value()->fdx.schema().size()));
  json.EndObject();
  return json.TakeString();
}

std::string FdxServer::HandleAppend(const JsonValue& request) {
  const std::string id = request.StringOr("session", "");
  if (id.empty()) {
    return RenderErrorResponse(
        "append", Status::InvalidArgument("append needs a \"session\" id"));
  }
  Result<std::shared_ptr<DatasetSession>> session_or = sessions_->Get(id);
  if (!session_or.ok()) return RenderErrorResponse("append", session_or.status());
  std::shared_ptr<DatasetSession> session = std::move(session_or).value();

  const JsonValue* rows = request.Find("rows");
  const JsonValue* csv = request.Find("csv");
  if ((rows == nullptr) == (csv == nullptr)) {
    return RenderErrorResponse(
        "append", Status::InvalidArgument(
                      "append needs exactly one of \"rows\" or \"csv\""));
  }

  Result<Table> batch_or = Status::Internal("unreachable");
  if (rows != nullptr) {
    batch_or = RowsToTable(session->fdx.schema(), *rows);
  } else {
    if (!csv->is_string()) {
      return RenderErrorResponse(
          "append", Status::InvalidArgument("\"csv\" must be a string"));
    }
    // Headerless by design: the session schema was fixed at open.
    CsvOptions csv_options;
    csv_options.has_header = false;
    batch_or = ReadCsvFromString(csv->string_value(), csv_options);
  }
  if (!batch_or.ok()) return RenderErrorResponse("append", batch_or.status());
  Table batch = std::move(batch_or).value();

  std::lock_guard<std::mutex> lock(session->mu);
  Status appended = session->fdx.Append(batch);
  if (!appended.ok()) return RenderErrorResponse("append", appended);
  session->content.UpdateString("batch");
  UpdateTableFingerprint(&session->content, batch);

  JsonWriter json;
  json.BeginObject();
  json.Key("ok");
  json.Bool(true);
  json.Key("op");
  json.String("append");
  json.Key("session");
  json.String(session->id);
  json.Key("rows");
  json.Integer(static_cast<int64_t>(batch.num_rows()));
  json.Key("total_rows");
  json.Integer(static_cast<int64_t>(session->fdx.total_rows()));
  json.Key("batches");
  json.Integer(static_cast<int64_t>(session->fdx.total_batches()));
  json.EndObject();
  return json.TakeString();
}

std::string FdxServer::HandleDiscover(const JsonValue& request) {
  if (const JsonValue* session_id = request.Find("session")) {
    if (!session_id->is_string()) {
      return RenderErrorResponse(
          "discover", Status::InvalidArgument("\"session\" must be a string"));
    }
    if (request.Find("options") != nullptr) {
      return RenderErrorResponse(
          "discover",
          Status::InvalidArgument(
              "session options are fixed at open; omit \"options\""));
    }
    Result<std::shared_ptr<DatasetSession>> session_or =
        sessions_->Get(session_id->string_value());
    if (!session_or.ok()) {
      return RenderErrorResponse("discover", session_or.status());
    }
    std::shared_ptr<DatasetSession> session = std::move(session_or).value();

    // Fast path: a cache hit skips the job queue entirely. The solve
    // lineage is part of the key because warm-started solves are
    // tolerance-equal, not byte-equal, to cold ones; the current lineage
    // is only valid for lookup when no new solve would run, which is
    // exactly the repeat-discover case the cache exists for.
    std::string key;
    {
      std::lock_guard<std::mutex> lock(session->mu);
      key = "sess|" + session->content.Hex() + "|" +
            CanonicalOptionsKey(session->fdx.options()) + "|" +
            session->fdx.SolveStateKey();
    }
    std::string payload;
    if (cache_->Lookup(key, &payload)) return payload;

    Result<std::string> response = RunJob("discover", [this, session] {
      // Solve under the session lock, then file the payload under the
      // post-solve key: the content and lineage the result was actually
      // produced with. A batch appended between admission and execution
      // therefore cannot file the newer result under the older
      // fingerprint, and payloads from different solve histories never
      // collide.
      std::lock_guard<std::mutex> lock(session->mu);
      Result<FdxResult> result = session->fdx.CurrentFds();
      if (!result.ok()) return RenderErrorResponse("discover", result.status());
      const std::string job_key = "sess|" + session->content.Hex() + "|" +
                                  CanonicalOptionsKey(session->fdx.options()) +
                                  "|" + session->fdx.SolveStateKey();
      std::string rendered =
          RenderDiscoverResponse(session->fdx.schema(),
                                 session->fdx.total_rows(), result.value());
      cache_->Insert(job_key, rendered);
      return rendered;
    });
    if (!response.ok()) return RenderErrorResponse("discover", response.status());
    return std::move(response).value();
  }

  // One-shot table: exactly one of csv / csv_path / table.
  const JsonValue* csv = request.Find("csv");
  const JsonValue* csv_path = request.Find("csv_path");
  const JsonValue* table_json = request.Find("table");
  const int sources = (csv != nullptr) + (csv_path != nullptr) +
                      (table_json != nullptr);
  if (sources != 1) {
    return RenderErrorResponse(
        "discover",
        Status::InvalidArgument("discover needs exactly one of \"session\", "
                                "\"csv\", \"csv_path\", or \"table\""));
  }

  Result<Table> table_or = Status::Internal("unreachable");
  if (csv != nullptr) {
    if (!csv->is_string()) {
      return RenderErrorResponse(
          "discover", Status::InvalidArgument("\"csv\" must be a string"));
    }
    table_or = ReadCsvFromString(csv->string_value());
  } else if (csv_path != nullptr) {
    if (!csv_path->is_string()) {
      return RenderErrorResponse(
          "discover", Status::InvalidArgument("\"csv_path\" must be a string"));
    }
    table_or = ReadCsv(csv_path->string_value());
  } else {
    const JsonValue* schema_json = table_json->Find("schema");
    const JsonValue* rows_json = table_json->Find("rows");
    if (schema_json == nullptr || rows_json == nullptr) {
      return RenderErrorResponse(
          "discover", Status::InvalidArgument(
                          "\"table\" needs \"schema\" and \"rows\" members"));
    }
    Result<Schema> schema = ParseSchemaJson(*schema_json);
    if (!schema.ok()) return RenderErrorResponse("discover", schema.status());
    table_or = RowsToTable(schema.value(), *rows_json);
  }
  if (!table_or.ok()) return RenderErrorResponse("discover", table_or.status());

  FdxOptions fdx_options = options_.fdx;
  if (const JsonValue* options_json = request.Find("options")) {
    Result<FdxOptions> parsed = ParseOptionsJson(*options_json, fdx_options);
    if (!parsed.ok()) return RenderErrorResponse("discover", parsed.status());
    fdx_options = std::move(parsed).value();
  }

  auto table = std::make_shared<const Table>(std::move(table_or).value());
  const std::string key =
      "tbl|" + FingerprintTable(*table) + "|" + CanonicalOptionsKey(fdx_options);
  std::string payload;
  if (cache_->Lookup(key, &payload)) return payload;

  Result<std::string> response =
      RunJob("discover", [this, table, fdx_options, key] {
        FdxDiscoverer discoverer(fdx_options);
        Result<FdxResult> result = discoverer.Discover(*table);
        if (!result.ok()) {
          return RenderErrorResponse("discover", result.status());
        }
        std::string rendered = RenderDiscoverResponse(
            table->schema(), table->num_rows(), result.value());
        cache_->Insert(key, rendered);
        return rendered;
      });
  if (!response.ok()) return RenderErrorResponse("discover", response.status());
  return std::move(response).value();
}

std::string FdxServer::HandleStatus() {
  JsonWriter json;
  json.BeginObject();
  json.Key("ok");
  json.Bool(true);
  json.Key("op");
  json.String("status");
  json.Key("uptime_seconds");
  json.Number(uptime_.ElapsedSeconds());
  json.Key("connections");
  json.Integer(static_cast<int64_t>(connections_.load()));
  json.Key("requests");
  json.Integer(static_cast<int64_t>(requests_.load()));
  json.Key("accept_faults");
  json.Integer(static_cast<int64_t>(accept_faults_.load()));
  json.Key("queue");
  json.BeginObject();
  json.Key("workers");
  json.Integer(static_cast<int64_t>(queue_->workers()));
  json.Key("capacity");
  json.Integer(static_cast<int64_t>(queue_->capacity()));
  json.Key("active");
  json.Integer(static_cast<int64_t>(queue_->active()));
  json.Key("executed");
  json.Integer(static_cast<int64_t>(queue_->executed()));
  json.Key("rejected");
  json.Integer(static_cast<int64_t>(queue_->rejected()));
  json.EndObject();
  json.Key("cache");
  json.BeginObject();
  json.Key("size");
  json.Integer(static_cast<int64_t>(cache_->size()));
  json.Key("capacity");
  json.Integer(static_cast<int64_t>(cache_->capacity()));
  json.Key("hits");
  json.Integer(static_cast<int64_t>(cache_->hits()));
  json.Key("misses");
  json.Integer(static_cast<int64_t>(cache_->misses()));
  json.Key("evictions");
  json.Integer(static_cast<int64_t>(cache_->evictions()));
  json.EndObject();
  json.Key("sessions");
  json.BeginObject();
  json.Key("open");
  json.Integer(static_cast<int64_t>(sessions_->size()));
  json.Key("max");
  json.Integer(static_cast<int64_t>(sessions_->max_sessions()));
  json.Key("opened");
  json.Integer(static_cast<int64_t>(sessions_->opened()));
  json.Key("evicted");
  json.Integer(static_cast<int64_t>(sessions_->evicted()));
  json.EndObject();
  const SessionRegistry::SolverTotals solver = sessions_->SolverStats();
  json.Key("solver");
  json.BeginObject();
  json.Key("solves");
  json.Integer(static_cast<int64_t>(solver.solves));
  json.Key("warm_started");
  json.Integer(static_cast<int64_t>(solver.warm_solves));
  json.Key("memo_hits");
  json.Integer(static_cast<int64_t>(solver.memo_hits));
  json.EndObject();
  json.EndObject();
  return json.TakeString();
}

std::string FdxServer::HandleSleep(const JsonValue& request) {
  double seconds = request.NumberOr("seconds", 0.05);
  if (seconds < 0.0) seconds = 0.0;
  if (seconds > 30.0) seconds = 30.0;
  Result<std::string> response = RunJob("sleep", [seconds] {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    JsonWriter json;
    json.BeginObject();
    json.Key("ok");
    json.Bool(true);
    json.Key("op");
    json.String("sleep");
    json.EndObject();
    return json.TakeString();
  });
  if (!response.ok()) return RenderErrorResponse("sleep", response.status());
  return std::move(response).value();
}

Result<std::string> FdxServer::RunJob(const std::string& op,
                                      std::function<std::string()> job) {
  (void)op;
  FDX_INJECT_FAULT(kFaultServiceEnqueue,
                   Status::Internal("injected fault at service.enqueue"));
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();
  FDX_RETURN_IF_ERROR(queue_->Submit(
      [promise, job = std::move(job)] { promise->set_value(job()); }));
  // The connection thread parks here; the worker's response is relayed
  // from this thread so every socket write has a single writer.
  return future.get();
}

void FdxServer::RequestShutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

void FdxServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(shutdown_mu_);
    shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
  }
  std::lock_guard<std::mutex> lock(teardown_mu_);
  if (!teardown_done_) {
    TeardownLocked();
    teardown_done_ = true;
  }
}

void FdxServer::Shutdown() {
  RequestShutdown();
  std::lock_guard<std::mutex> lock(teardown_mu_);
  if (!teardown_done_) {
    TeardownLocked();
    teardown_done_ = true;
  }
}

void FdxServer::TeardownLocked() {
  // 1. Stop admitting connections and jobs. In-flight requests from live
  //    connections now get structured "draining" rejections.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    accepting_ = false;
  }
  if (queue_) queue_->CloseIntake();

  // 2. Wake the accept loop and retire it.
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();

  // 3. Drain in-flight jobs under the budget; their responses are still
  //    deliverable because client sockets are untouched so far.
  if (queue_) {
    drained_cleanly_.store(queue_->Drain(options_.drain_seconds));
  }

  // 4. Unblock connection readers and join every connection thread.
  //    Read-side only: Drain() returns once a job's *body* finishes, but
  //    the connection thread may still be waking from future.get() to
  //    send that job's response — a full SHUT_RDWR here would cut it
  //    off mid-flight. SHUT_RD wakes idle readers with EOF while letting
  //    pending SendAll calls complete; each thread fully shuts down its
  //    own socket on exit.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, sock] : conn_sockets_) sock->ShutdownRead();
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }

  listener_.Close();
}

}  // namespace fdx
