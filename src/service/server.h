#ifndef FDX_SERVICE_SERVER_H_
#define FDX_SERVICE_SERVER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/fdx.h"
#include "service/event_loop.h"
#include "service/job_queue.h"
#include "service/result_cache.h"
#include "service/session_registry.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace fdx {

class JsonValue;
class Table;

/// I/O architecture of an fdxd instance.
enum class IoMode {
  /// Non-blocking epoll event loop(s): a fixed number of I/O threads
  /// multiplex every connection, requests may be pipelined, CPU work
  /// runs on the JobQueue workers. The production default.
  kEventLoop,
  /// Legacy thread-per-connection blocking I/O. Kept for baseline
  /// benchmarking (fdxload --label comparisons) and as a fallback.
  kThreadPerConnection,
};

/// Configuration of an fdxd daemon instance.
struct ServerOptions {
  /// Loopback TCP port; 0 binds an ephemeral port (read back via port()).
  uint16_t port = 0;
  /// I/O layer; see IoMode.
  IoMode io_mode = IoMode::kEventLoop;
  /// Event-loop I/O threads (>= 1). Connections are assigned
  /// round-robin; each socket is owned by exactly one loop thread.
  size_t io_threads = 1;
  /// Worker threads executing discovery jobs.
  size_t workers = 2;
  /// Maximum admitted-but-unfinished discovery jobs; submissions beyond
  /// this are answered with a structured kUnavailable error.
  size_t queue_capacity = 8;
  /// Open dataset sessions allowed at once.
  size_t max_sessions = 32;
  /// Mutex stripes of the session registry.
  size_t session_shards = 8;
  /// Idle seconds after which a session is evicted (<= 0: never).
  double session_ttl_seconds = 600.0;
  /// Graceful-shutdown drain budget for in-flight jobs.
  double drain_seconds = 10.0;
  /// Result-cache entries kept (LRU beyond this).
  size_t cache_capacity = 64;
  /// Mutex stripes of the result cache (recency is per-stripe).
  size_t cache_shards = 8;
  /// Parsed-but-unexecuted pipelined requests allowed per connection
  /// before the event loop stops reading from that socket.
  size_t max_pipeline_depth = 1024;
  /// Baseline FdxOptions; per-request "options" objects layer on top.
  FdxOptions fdx;
  /// Enables test-only ops (currently `sleep`, which parks a worker for
  /// a requested duration so integration tests can fill the queue
  /// deterministically). Never enable in production.
  bool enable_debug_ops = false;

  // --- Durability (DESIGN.md §13) ---
  /// When non-empty, every session is snapshotted here (atomic
  /// write-temp-then-rename on open/append, deleted on eviction) and
  /// the result cache is spilled periodically; Start() replays the
  /// directory, restoring sessions that serve bit-identical results.
  std::string state_dir;
  /// Seconds between result-cache spills in state-dir mode.
  double snapshot_interval_seconds = 5.0;

  // --- Overload robustness ---
  /// Server-side deadline applied to queued ops when the request does
  /// not carry its own "deadline_seconds" (<= 0: unlimited). Measured
  /// from admission; a job whose deadline expired while it waited in
  /// the queue answers Timeout + retry_after instead of running.
  double default_deadline_seconds = 0.0;
  /// Shed new discover jobs once queue occupancy reaches this fraction
  /// of `queue_capacity` (0 disables). Shedding answers a structured
  /// kUnavailable with `retry_after` *before* the job ties up a queue
  /// slot; cache hits are never shed.
  double shed_queue_watermark = 0.0;
  /// Shed new discover jobs while resident memory exceeds this many
  /// MiB (0 disables).
  size_t shed_max_rss_mb = 0;
  /// Backoff hint (seconds) carried in shed / expired-deadline
  /// responses as `retry_after`.
  double shed_retry_after_seconds = 0.2;

  /// Chunk payload codec for "chunked" sessions ("" or "none" stores
  /// raw, "varint" delta-compresses dictionary codes). A server-side
  /// knob rather than a protocol field: fingerprints cover the
  /// uncompressed bytes, so the codec never affects cache keys or
  /// results, only the bytes on disk.
  std::string store_compression;
};

/// fdxd: the FD-discovery daemon. An epoll event loop (or, in legacy
/// mode, one thread per connection) doing line-delimited JSON framing,
/// a bounded JobQueue running discovery, a sharded SessionRegistry for
/// incremental datasets, and a sharded ResultCache replaying
/// byte-identical responses for repeated (dataset fingerprint,
/// canonical options) pairs.
///
/// Lifecycle: Start() binds and spawns the I/O layer; Wait() blocks
/// until a `shutdown` request (or Shutdown() call) and then performs
/// the graceful teardown: stop admitting connections and jobs, drain
/// in-flight jobs under `drain_seconds` (their responses still reach
/// clients), flush and close connections, join everything. Shutdown()
/// is idempotent and safe to race with Wait().
class FdxServer {
 public:
  explicit FdxServer(ServerOptions options);
  ~FdxServer();

  FdxServer(const FdxServer&) = delete;
  FdxServer& operator=(const FdxServer&) = delete;

  /// Binds the listener and starts serving. Fails on an occupied port.
  Status Start();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Blocks until shutdown is requested, then tears down.
  void Wait();

  /// Requests shutdown and performs (or waits for) the teardown.
  void Shutdown();

  /// True once every in-flight job at teardown finished inside the
  /// drain budget (meaningful after Wait()/Shutdown() returned).
  bool drained_cleanly() const { return drained_cleanly_.load(); }

  /// Request kinds tracked by the per-op counters (status output).
  enum class RequestKind : size_t {
    kOpen = 0,
    kAppend,
    kDiscover,
    kStatus,
    kSleep,
    kShutdown,
    kInvalid,  ///< unparseable / unknown-op requests
    kCount,
  };

  // Introspection for tests and the `status` op.
  IoMode io_mode() const { return options_.io_mode; }
  size_t io_threads() const { return event_loops_.size(); }
  uint64_t connections() const { return connections_.load(); }
  size_t live_connections() const;
  uint64_t requests() const { return requests_.load(); }
  uint64_t requests_by_kind(RequestKind kind) const {
    return requests_by_kind_[static_cast<size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  uint64_t accept_faults() const { return accept_faults_.load(); }
  uint64_t accept_transient_errors() const;
  uint64_t aborted_connections() const;
  const JobQueue& queue() const { return *queue_; }
  const ResultCache& cache() const { return *cache_; }
  const SessionRegistry& sessions() const { return *sessions_; }

  // Overload + durability counters (status output and tests).
  uint64_t shed_queue() const { return shed_queue_.load(); }
  uint64_t shed_memory() const { return shed_memory_.load(); }
  uint64_t shed_deadline() const { return shed_deadline_.load(); }
  bool durable() const { return !options_.state_dir.empty(); }
  uint64_t sessions_recovered() const { return sessions_recovered_.load(); }
  uint64_t sessions_recovery_failed() const {
    return sessions_recovery_failed_.load();
  }
  uint64_t cache_entries_restored() const {
    return cache_entries_restored_.load();
  }
  uint64_t snapshot_writes() const { return snapshot_writes_.load(); }
  uint64_t snapshot_failures() const { return snapshot_failures_.load(); }

 private:
  void AcceptLoop();
  void ServeConnection(uint64_t conn_id);
  /// Joins connection threads whose handler already returned (the
  /// legacy path would otherwise accumulate one std::thread per
  /// connection ever accepted until shutdown).
  void ReapFinishedConnThreads();

  /// Event-loop accept callback: fault injection, admission, and
  /// round-robin assignment to an I/O loop.
  void OnAccept(Socket sock);

  /// Event-loop request dispatch: answers fast ops synchronously on
  /// the I/O thread and hands solver-bound ops to the JobQueue. `done`
  /// is invoked exactly once (possibly from a worker thread).
  void DispatchAsync(std::string line, EventLoop::DoneFn done);

  /// Dispatches one request line; appends the response to `*response`.
  /// Returns false when the connection must close (shutdown op).
  /// Legacy blocking path (parks the connection thread on job futures).
  bool HandleRequest(const std::string& line, std::string* response);

  /// Bumps the total and per-op request counters; returns the kind.
  RequestKind RecordRequest(const std::string& op);

  std::string HandleOpen(const JsonValue& request);
  std::string HandleStatus();

  /// Applies one validated batch; requires the session mutex held.
  std::string ApplyAppendLocked(DatasetSession* session, Table batch);
  std::string HandleAppend(const JsonValue& request);
  void HandleAppendAsync(const JsonValue& request, EventLoop::DoneFn done);

  // Discover: shared job bodies. RunSessionDiscover computes (or
  // replays) the session's current result under its mutex;
  // RunTableDiscover solves a one-shot table.
  std::string SessionDiscoverKeyLocked(const DatasetSession& session);
  std::string RunSessionDiscover(const std::shared_ptr<DatasetSession>& s);
  std::string RunTableDiscover(const std::shared_ptr<const Table>& table,
                               const FdxOptions& options,
                               const std::string& key);
  std::string HandleDiscover(const JsonValue& request);
  void HandleDiscoverAsync(const JsonValue& request, EventLoop::DoneFn done);

  std::string HandleSleep(const JsonValue& request);

  // --- Durability (state-dir mode) ---
  std::string SessionsDir() const;
  std::string SessionSnapshotPath(const std::string& id) const;
  std::string CacheSnapshotPath() const;
  /// Chunk stores of "storage":"chunked" sessions, one directory per
  /// session id under <state_dir>/stores/.
  std::string StoresDir() const;
  std::string SessionStoreDir(const std::string& id) const;
  /// Replays the state directory on startup: restores sessions (or
  /// deletes + counts unrecoverable snapshots) and re-inserts spilled
  /// cache entries.
  Status RestoreState();
  /// Atomically rewrites one session's snapshot file. Requires the
  /// session mutex held (the encoded batches live behind it).
  void PersistSessionLocked(DatasetSession* session);
  /// Spills the result cache to its snapshot file.
  void PersistCache();
  /// Periodic cache-spill thread body.
  void SnapshotSpillLoop();

  // --- Overload robustness ---
  /// Effective server-side deadline for a request, seconds (<= 0:
  /// unlimited): the request's "deadline_seconds" or the configured
  /// default.
  double RequestDeadlineSeconds(const JsonValue& request) const;
  /// Wraps a job body so that a deadline which expired while the job
  /// waited in the queue renders Timeout + retry_after instead of
  /// running the work. The body receives the seconds left on the
  /// deadline when it starts (0 = unlimited) so it can bound its own
  /// wall-clock, e.g. via FdxOptions::time_budget_seconds.
  std::function<std::string()> WithDeadline(
      std::string op, double deadline_seconds,
      std::function<std::string(double)> body);
  /// Admission-time load shedding for discover jobs: OK, or a
  /// kUnavailable explaining which watermark (queue depth, RSS) was
  /// crossed. Bumps the corresponding shed counter.
  Status CheckShed();

  /// Runs `job` on the queue and blocks for its rendered response.
  /// Carries the service.enqueue fault point and queue backpressure.
  Result<std::string> RunJob(const std::string& op,
                             std::function<std::string()> job);

  /// Async variant: submits `body` and routes its response through
  /// `done`; rejections and the service.enqueue fault point are
  /// rendered as structured errors for `op`.
  void SubmitJobAsync(const std::string& op, std::function<std::string()> body,
                      EventLoop::DoneFn done);

  void RequestShutdown();
  void TeardownLocked();  ///< runs once; callers serialize via teardown_mu_

  ServerOptions options_;
  ListenSocket listener_;
  uint16_t port_ = 0;
  Stopwatch uptime_;

  // Declaration order is load-bearing for destruction: ~JobQueue waits
  // for in-flight jobs (a drain-budget overrun leaves some running into
  // ~FdxServer), and those jobs touch the cache, the sessions, and the
  // event loops' completion mailboxes — so queue_ is declared last and
  // destroyed first.
  std::vector<std::unique_ptr<EventLoop>> event_loops_;
  std::atomic<size_t> next_loop_{0};

  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<SessionRegistry> sessions_;
  std::unique_ptr<JobQueue> queue_;

  std::thread accept_thread_;

  mutable std::mutex conn_mu_;
  uint64_t next_conn_id_ = 1;                     ///< guarded by conn_mu_
  std::unordered_map<uint64_t, std::shared_ptr<Socket>>
      conn_sockets_;                              ///< guarded by conn_mu_
  std::unordered_map<uint64_t, std::thread>
      conn_threads_;                              ///< guarded by conn_mu_
  std::vector<uint64_t> finished_conn_ids_;       ///< guarded by conn_mu_
  bool accepting_ = false;                        ///< guarded by conn_mu_

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;               ///< guarded by shutdown_mu_

  std::mutex teardown_mu_;
  bool teardown_done_ = false;                    ///< guarded by teardown_mu_

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::array<std::atomic<uint64_t>, static_cast<size_t>(RequestKind::kCount)>
      requests_by_kind_{};
  std::atomic<uint64_t> accept_faults_{0};
  std::atomic<uint64_t> accept_transient_legacy_{0};
  std::atomic<bool> drained_cleanly_{true};

  // Overload counters.
  std::atomic<uint64_t> shed_queue_{0};
  std::atomic<uint64_t> shed_memory_{0};
  std::atomic<uint64_t> shed_deadline_{0};

  // Durability counters + the periodic cache-spill thread.
  std::atomic<uint64_t> sessions_recovered_{0};
  std::atomic<uint64_t> sessions_recovery_failed_{0};
  std::atomic<uint64_t> cache_entries_restored_{0};
  std::atomic<uint64_t> snapshot_writes_{0};
  std::atomic<uint64_t> snapshot_failures_{0};
  std::thread snapshot_thread_;
  std::mutex snapshot_mu_;
  std::condition_variable snapshot_cv_;
  bool snapshot_stop_ = false;  ///< guarded by snapshot_mu_
};

/// Wire name of a request kind ("open", "append", ..., "invalid").
const char* RequestKindName(FdxServer::RequestKind kind);

}  // namespace fdx

#endif  // FDX_SERVICE_SERVER_H_
