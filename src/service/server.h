#ifndef FDX_SERVICE_SERVER_H_
#define FDX_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/fdx.h"
#include "service/job_queue.h"
#include "service/result_cache.h"
#include "service/session_registry.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace fdx {

class JsonValue;

/// Configuration of an fdxd daemon instance.
struct ServerOptions {
  /// Loopback TCP port; 0 binds an ephemeral port (read back via port()).
  uint16_t port = 0;
  /// Worker threads executing discovery jobs.
  size_t workers = 2;
  /// Maximum admitted-but-unfinished discovery jobs; submissions beyond
  /// this are answered with a structured kUnavailable error.
  size_t queue_capacity = 8;
  /// Open dataset sessions allowed at once.
  size_t max_sessions = 32;
  /// Idle seconds after which a session is evicted (<= 0: never).
  double session_ttl_seconds = 600.0;
  /// Graceful-shutdown drain budget for in-flight jobs.
  double drain_seconds = 10.0;
  /// Result-cache entries kept (LRU beyond this).
  size_t cache_capacity = 64;
  /// Baseline FdxOptions; per-request "options" objects layer on top.
  FdxOptions fdx;
  /// Enables test-only ops (currently `sleep`, which parks a worker for
  /// a requested duration so integration tests can fill the queue
  /// deterministically). Never enable in production.
  bool enable_debug_ops = false;
};

/// fdxd: the FD-discovery daemon. One accept loop, one thread per
/// connection doing line-delimited JSON framing, a bounded JobQueue
/// running discovery, a SessionRegistry for incremental datasets, and a
/// ResultCache replaying byte-identical responses for repeated
/// (dataset fingerprint, canonical options) pairs.
///
/// Lifecycle: Start() binds and spawns the accept loop; Wait() blocks
/// until a `shutdown` request (or Shutdown() call) and then performs the
/// graceful teardown: stop admitting connections and jobs, wake the
/// accept loop, drain in-flight jobs under `drain_seconds` (their
/// responses still reach clients), unblock connection readers, join
/// everything. Shutdown() is idempotent and safe to race with Wait().
class FdxServer {
 public:
  explicit FdxServer(ServerOptions options);
  ~FdxServer();

  FdxServer(const FdxServer&) = delete;
  FdxServer& operator=(const FdxServer&) = delete;

  /// Binds the listener and starts serving. Fails on an occupied port.
  Status Start();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Blocks until shutdown is requested, then tears down.
  void Wait();

  /// Requests shutdown and performs (or waits for) the teardown.
  void Shutdown();

  /// True once every in-flight job at teardown finished inside the
  /// drain budget (meaningful after Wait()/Shutdown() returned).
  bool drained_cleanly() const { return drained_cleanly_.load(); }

  // Introspection for tests and the `status` op.
  uint64_t connections() const { return connections_.load(); }
  uint64_t requests() const { return requests_.load(); }
  uint64_t accept_faults() const { return accept_faults_.load(); }
  const JobQueue& queue() const { return *queue_; }
  const ResultCache& cache() const { return *cache_; }
  const SessionRegistry& sessions() const { return *sessions_; }

 private:
  void AcceptLoop();
  void ServeConnection(uint64_t conn_id);

  /// Dispatches one request line; appends the response to `*response`.
  /// Returns false when the connection must close (shutdown op).
  bool HandleRequest(const std::string& line, std::string* response);

  std::string HandleOpen(const JsonValue& request);
  std::string HandleAppend(const JsonValue& request);
  std::string HandleDiscover(const JsonValue& request);
  std::string HandleStatus();
  std::string HandleSleep(const JsonValue& request);

  /// Runs `job` on the queue and blocks for its rendered response.
  /// Carries the service.enqueue fault point and queue backpressure.
  Result<std::string> RunJob(const std::string& op,
                             std::function<std::string()> job);

  void RequestShutdown();
  void TeardownLocked();  ///< runs once; callers serialize via teardown_mu_

  ServerOptions options_;
  ListenSocket listener_;
  uint16_t port_ = 0;
  Stopwatch uptime_;

  std::unique_ptr<JobQueue> queue_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<SessionRegistry> sessions_;

  std::thread accept_thread_;

  std::mutex conn_mu_;
  uint64_t next_conn_id_ = 1;                     ///< guarded by conn_mu_
  std::unordered_map<uint64_t, std::shared_ptr<Socket>>
      conn_sockets_;                              ///< guarded by conn_mu_
  std::vector<std::thread> conn_threads_;         ///< guarded by conn_mu_
  bool accepting_ = false;                        ///< guarded by conn_mu_

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;               ///< guarded by shutdown_mu_

  std::mutex teardown_mu_;
  bool teardown_done_ = false;                    ///< guarded by teardown_mu_

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> accept_faults_{0};
  std::atomic<bool> drained_cleanly_{true};
};

}  // namespace fdx

#endif  // FDX_SERVICE_SERVER_H_
