#ifndef FDX_SERVICE_RESULT_CACHE_H_
#define FDX_SERVICE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace fdx {

/// LRU cache of serialized discovery responses, keyed by
/// "(dataset content fingerprint)|(canonical options key)". The cached
/// value is the exact response line a fresh run would produce (the
/// discover renderer is deterministic and timing-free), so a hit is
/// replayed byte-for-byte — extending the determinism contract of
/// DESIGN.md section 7 across the service boundary. Thread-safe.
class ResultCache {
 public:
  explicit ResultCache(size_t capacity);

  /// Copies the payload for `key` into `*payload` and returns true on a
  /// hit (bumping the entry to most-recently-used). Counts hit/miss.
  bool Lookup(const std::string& key, std::string* payload);

  /// Inserts or refreshes an entry, evicting the least-recently-used
  /// one beyond capacity. Concurrent inserts of the same key are
  /// harmless: both producers computed bit-identical payloads.
  void Insert(const std::string& key, std::string payload);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  using Entry = std::pair<std::string, std::string>;  ///< key, payload

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace fdx

#endif  // FDX_SERVICE_RESULT_CACHE_H_
