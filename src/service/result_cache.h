#ifndef FDX_SERVICE_RESULT_CACHE_H_
#define FDX_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fdx {

/// LRU cache of serialized discovery responses, keyed by
/// "(dataset content fingerprint)|(canonical options key)". The cached
/// value is the exact response line a fresh run would produce (the
/// discover renderer is deterministic and timing-free), so a hit is
/// replayed byte-for-byte — extending the determinism contract of
/// DESIGN.md section 7 across the service boundary.
///
/// Internally mutex-striped: keys hash onto `shards` independent LRU
/// segments, each behind its own lock, so concurrent lookups from the
/// event loop and inserts from the worker pool contend only when they
/// land on the same shard. Recency is therefore tracked *per shard*
/// (there is no global LRU order — a classic segmented-LRU trade), and
/// the total capacity is split evenly across shards. `shards == 1`
/// reproduces the exact single-LRU semantics. Thread-safe.
class ResultCache {
 public:
  /// `capacity` is the total entry budget; `shards` is rounded up to a
  /// power of two. Each shard holds ceil(capacity / shards) entries.
  explicit ResultCache(size_t capacity, size_t shards = 1);

  /// Copies the payload for `key` into `*payload` and returns true on a
  /// hit (bumping the entry to most-recently-used in its shard).
  /// Counts hit/miss.
  bool Lookup(const std::string& key, std::string* payload);

  /// Inserts or refreshes an entry, evicting its shard's
  /// least-recently-used entry beyond the shard capacity. Concurrent
  /// inserts of the same key are harmless: both producers computed
  /// bit-identical payloads.
  void Insert(const std::string& key, std::string payload);

  void Clear();

  /// Every live (key, payload) pair, LRU-first within each shard, so
  /// feeding the list back through Insert() in order reproduces each
  /// shard's recency order. Used by the durability layer's periodic
  /// cache spill; counters are not part of the snapshot.
  std::vector<std::pair<std::string, std::string>> Snapshot() const;

  /// Counters for one shard, snapshot under that shard's lock.
  struct ShardStats {
    size_t size = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  ShardStats shard_stats(size_t shard) const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t shards() const { return shards_.size(); }
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  using Entry = std::pair<std::string, std::string>;  ///< key, payload

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    uint64_t hits = 0;       ///< guarded by mu
    uint64_t misses = 0;     ///< guarded by mu
    uint64_t evictions = 0;  ///< guarded by mu
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;

  size_t capacity_;
  size_t shard_capacity_;
  size_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace fdx

#endif  // FDX_SERVICE_RESULT_CACHE_H_
