#include "service/protocol.h"

#include <cmath>
#include <cstdio>

#include "core/ordering.h"
#include "eval/report.h"
#include "util/fingerprint.h"
#include "util/json_writer.h"

namespace fdx {

namespace {

/// Exact, locale-free double rendering for cache keys: %.17g preserves
/// every bit of a finite IEEE double.
std::string ExactDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

Result<FdxOptions> ParseOptionsJson(const JsonValue& json,
                                    const FdxOptions& base) {
  if (!json.is_object()) {
    return Status::InvalidArgument("options must be a JSON object");
  }
  FdxOptions options = base;
  for (const auto& [key, value] : json.members()) {
    if (key == "estimator") {
      const std::string name =
          value.is_string() ? value.string_value() : std::string();
      if (name == "glasso") {
        options.estimator = StructureEstimator::kGraphicalLasso;
      } else if (name == "seqlasso") {
        options.estimator = StructureEstimator::kSequentialLasso;
      } else {
        return Status::InvalidArgument(
            "options.estimator must be \"glasso\" or \"seqlasso\"");
      }
    } else if (key == "lambda" && value.is_number()) {
      options.lambda = value.number_value();
    } else if (key == "tau" && value.is_number()) {
      options.sparsity_threshold = value.number_value();
    } else if (key == "relative_threshold" && value.is_number()) {
      options.relative_threshold = value.number_value();
    } else if (key == "minimum_column_weight" && value.is_number()) {
      options.minimum_column_weight = value.number_value();
    } else if (key == "normalize" && value.is_bool()) {
      options.normalize_covariance = value.bool_value();
    } else if (key == "ordering" && value.is_string()) {
      FDX_ASSIGN_OR_RETURN(options.ordering,
                           ParseOrderingMethod(value.string_value()));
    } else if (key == "seed" && value.is_number()) {
      options.transform.seed =
          static_cast<uint64_t>(value.number_value());
    } else if (key == "max_pairs" && value.is_number()) {
      options.transform.max_pairs_per_attribute =
          static_cast<size_t>(value.number_value());
    } else if (key == "pooled_covariance" && value.is_bool()) {
      options.transform.pooled_covariance = value.bool_value();
    } else if (key == "time_budget_seconds" && value.is_number()) {
      options.time_budget_seconds = value.number_value();
    } else if (key == "threads" && value.is_number()) {
      options.threads = static_cast<size_t>(value.number_value());
    } else if (key == "recovery" && value.is_bool()) {
      options.recovery.enabled = value.bool_value();
    } else if (key == "warm_start" && value.is_bool()) {
      options.reuse_solver_state = value.bool_value();
    } else if (key == "solver" && value.is_string()) {
      if (!ParseGlassoSolver(value.string_value(), &options.glasso.solver)) {
        return Status::InvalidArgument(
            "options.solver must be \"auto\", \"cd\", or \"newton\"");
      }
    } else {
      return Status::InvalidArgument("unknown or mistyped option \"" + key +
                                     "\"");
    }
  }
  return options;
}

std::string CanonicalOptionsKey(const FdxOptions& o) {
  // Fixed field order; every result-affecting knob, including the ones
  // the protocol cannot set yet — adding a knob without extending this
  // key would poison the cache.
  std::string key;
  key += "est=" + std::to_string(static_cast<int>(o.estimator));
  key += ";lam=" + ExactDouble(o.lambda);
  key += ";tau=" + ExactDouble(o.sparsity_threshold);
  key += ";rel=" + ExactDouble(o.relative_threshold);
  key += ";floor=" + ExactDouble(o.minimum_column_weight);
  key += ";zero=" + ExactDouble(o.zero_tolerance);
  key += ";norm=" + std::to_string(o.normalize_covariance ? 1 : 0);
  key += ";ord=" + OrderingMethodName(o.ordering);
  key += ";seed=" + std::to_string(o.transform.seed);
  key += ";pairs=" + std::to_string(o.transform.max_pairs_per_attribute);
  key += ";pooled=" + std::to_string(o.transform.pooled_covariance ? 1 : 0);
  key += ";glam=" + ExactDouble(o.glasso.lambda);
  key += ";giter=" + std::to_string(o.glasso.max_iterations);
  key += ";gtol=" + ExactDouble(o.glasso.tolerance);
  key += ";gridge=" + ExactDouble(o.glasso.diagonal_ridge);
  key += ";gliter=" + std::to_string(o.glasso.lasso_max_iterations);
  key += ";gltol=" + ExactDouble(o.glasso.lasso_tolerance);
  key += ";gsolver=" + std::to_string(static_cast<int>(o.glasso.solver));
  key += ";gniter=" + std::to_string(o.glasso.newton_max_iterations);
  key += ";gnmin=" + std::to_string(o.glasso.newton_min_block);
  key += ";gndense=" + ExactDouble(o.glasso.newton_dense_threshold);
  key += ";gpath=" + std::to_string(o.glasso.lambda_path ? 1 : 0);
  key += ";rec=" + std::to_string(o.recovery.enabled ? 1 : 0);
  key += ";rretry=" + std::to_string(o.recovery.max_ridge_retries);
  key += ";rmul=" + ExactDouble(o.recovery.ridge_multiplier);
  key += ";rmax=" + ExactDouble(o.recovery.max_ridge);
  key += ";rfall=" +
         std::to_string(o.recovery.allow_estimator_fallback ? 1 : 0);
  key += ";rquar=" + std::to_string(o.recovery.allow_quarantine ? 1 : 0);
  key += ";rvar=" + ExactDouble(o.recovery.degenerate_variance_floor);
  // Warm starts don't change a one-shot discover (there is no previous
  // solve to seed from), but session keys splice this key together with
  // the solve lineage, where the flag decides whether lineage exists.
  key += ";wrm=" + std::to_string(o.reuse_solver_state ? 1 : 0);
  // Excluded on purpose: threads (bit-identical results at any count,
  // DESIGN.md section 7) and time_budget_seconds (bounds wall-clock,
  // never changes the bytes of a run that finishes).
  return key;
}

std::string FingerprintTable(const Table& table) {
  Fingerprint fp;
  fp.UpdateString("tbl");
  UpdateTableFingerprint(&fp, table);
  return fp.Hex();
}

void UpdateTableFingerprint(Fingerprint* out, const Table& table) {
  Fingerprint& fp = *out;
  fp.UpdateU64(table.num_rows());
  fp.UpdateU64(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    fp.UpdateString(table.schema().name(c));
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Value& cell = table.cell(r, c);
      switch (cell.type()) {
        case ValueType::kNull:
          fp.UpdateU64(0);
          break;
        case ValueType::kInt:
          fp.UpdateU64(1);
          fp.UpdateU64(static_cast<uint64_t>(cell.AsInt()));
          break;
        case ValueType::kDouble:
          fp.UpdateU64(2);
          fp.UpdateDouble(cell.AsDouble());
          break;
        case ValueType::kString:
          fp.UpdateU64(3);
          fp.UpdateString(cell.AsString());
          break;
      }
    }
  }
}

Result<Value> JsonCellToValue(const JsonValue& cell) {
  switch (cell.kind()) {
    case JsonValue::Kind::kNull:
      return Value::Null();
    case JsonValue::Kind::kNumber: {
      const double number = cell.number_value();
      const double rounded = std::nearbyint(number);
      if (number == rounded && std::fabs(number) < 9.0e15) {
        return Value(static_cast<int64_t>(rounded));
      }
      return Value(number);
    }
    case JsonValue::Kind::kString:
      return Value::Parse(cell.string_value());
    default:
      return Status::InvalidArgument(
          "row cells must be null, a number, or a string");
  }
}

std::string RenderDiscoverResponse(const Schema& schema, size_t rows,
                                   const FdxResult& result) {
  std::vector<std::string> names;
  names.reserve(schema.size());
  for (size_t c = 0; c < schema.size(); ++c) names.push_back(schema.name(c));
  JsonWriter json;
  json.BeginObject();
  json.Key("ok");
  json.Bool(true);
  json.Key("op");
  json.String("discover");
  json.Key("rows");
  json.Integer(static_cast<int64_t>(rows));
  json.Key("columns");
  json.Integer(static_cast<int64_t>(schema.size()));
  json.Key("samples");
  json.Integer(static_cast<int64_t>(result.transform_samples));
  json.Key("fds");
  json.BeginArray();
  for (const auto& fd : result.fds) {
    json.BeginObject();
    json.Key("lhs");
    json.BeginArray();
    for (size_t a : fd.lhs) json.String(schema.name(a));
    json.EndArray();
    json.Key("rhs");
    json.String(schema.name(fd.rhs));
    json.EndObject();
  }
  json.EndArray();
  json.Key("diagnostics");
  // Timings excluded: this payload is cached and must be bit-identical
  // to a fresh run on the same (data, options).
  WriteRunDiagnosticsJson(&json, result.diagnostics, names,
                          /*include_timings=*/false);
  json.EndObject();
  return json.TakeString();
}

std::string StatusCodeName(StatusCode code) {
  // Mirrors Status::ToString's names; kOk never reaches the wire.
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string RenderErrorResponse(const std::string& op, const Status& status,
                                double retry_after_seconds) {
  JsonWriter json;
  json.BeginObject();
  json.Key("ok");
  json.Bool(false);
  json.Key("op");
  json.String(op);
  json.Key("error");
  json.BeginObject();
  json.Key("code");
  json.String(StatusCodeName(status.code()));
  json.Key("message");
  json.String(status.message());
  json.EndObject();
  if (status.code() == StatusCode::kUnavailable ||
      retry_after_seconds > 0.0) {
    json.Key("retry");
    json.Bool(true);
  }
  if (retry_after_seconds > 0.0) {
    json.Key("retry_after");
    json.Number(retry_after_seconds);
  }
  json.EndObject();
  return json.TakeString();
}

namespace {

/// Integer member of `parent` (0 when absent / not an object).
int64_t StatusInt(const JsonValue* parent, const std::string& key) {
  if (parent == nullptr) return 0;
  return static_cast<int64_t>(parent->NumberOr(key, 0.0));
}

}  // namespace

std::string RenderStatusTextReport(const JsonValue& status) {
  const JsonValue* io = status.Find("io");
  const JsonValue* by_op = status.Find("requests_by_op");
  const JsonValue* queue = status.Find("queue");
  const JsonValue* cache = status.Find("cache");
  const JsonValue* sessions = status.Find("sessions");
  const JsonValue* solver = status.Find("solver");

  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "fdxd status — up %.1fs\n",
                status.NumberOr("uptime_seconds", 0.0));
  out += line;

  const std::string mode = io == nullptr ? "?" : io->StringOr("mode", "?");
  std::snprintf(line, sizeof(line),
                "io:          mode=%s io_threads=%lld connections_live=%lld "
                "accept_transient_errors=%lld\n",
                mode.c_str(), static_cast<long long>(StatusInt(io, "io_threads")),
                static_cast<long long>(StatusInt(io, "connections_live")),
                static_cast<long long>(StatusInt(io, "accept_transient_errors")));
  out += line;

  std::snprintf(line, sizeof(line),
                "connections: total=%lld accept_faults=%lld\n",
                static_cast<long long>(StatusInt(&status, "connections")),
                static_cast<long long>(StatusInt(&status, "accept_faults")));
  out += line;

  std::snprintf(
      line, sizeof(line),
      "requests:    total=%lld open=%lld append=%lld discover=%lld "
      "status=%lld sleep=%lld shutdown=%lld invalid=%lld\n",
      static_cast<long long>(StatusInt(&status, "requests")),
      static_cast<long long>(StatusInt(by_op, "open")),
      static_cast<long long>(StatusInt(by_op, "append")),
      static_cast<long long>(StatusInt(by_op, "discover")),
      static_cast<long long>(StatusInt(by_op, "status")),
      static_cast<long long>(StatusInt(by_op, "sleep")),
      static_cast<long long>(StatusInt(by_op, "shutdown")),
      static_cast<long long>(StatusInt(by_op, "invalid")));
  out += line;

  // "depth" in the human report is the JSON "active" count: jobs
  // admitted and not yet finished (running or waiting).
  std::snprintf(line, sizeof(line),
                "queue:       depth=%lld capacity=%lld workers=%lld "
                "executed=%lld rejected=%lld\n",
                static_cast<long long>(StatusInt(queue, "active")),
                static_cast<long long>(StatusInt(queue, "capacity")),
                static_cast<long long>(StatusInt(queue, "workers")),
                static_cast<long long>(StatusInt(queue, "executed")),
                static_cast<long long>(StatusInt(queue, "rejected")));
  out += line;

  std::snprintf(line, sizeof(line),
                "cache:       size=%lld capacity=%lld hits=%lld misses=%lld "
                "evictions=%lld\n",
                static_cast<long long>(StatusInt(cache, "size")),
                static_cast<long long>(StatusInt(cache, "capacity")),
                static_cast<long long>(StatusInt(cache, "hits")),
                static_cast<long long>(StatusInt(cache, "misses")),
                static_cast<long long>(StatusInt(cache, "evictions")));
  out += line;

  if (cache != nullptr) {
    if (const JsonValue* shards = cache->Find("shards");
        shards != nullptr && shards->is_array()) {
      for (size_t s = 0; s < shards->array().size(); ++s) {
        const JsonValue* shard = &shards->array()[s];
        std::snprintf(line, sizeof(line),
                      "  shard[%zu]   size=%lld hits=%lld misses=%lld "
                      "evictions=%lld\n",
                      s, static_cast<long long>(StatusInt(shard, "size")),
                      static_cast<long long>(StatusInt(shard, "hits")),
                      static_cast<long long>(StatusInt(shard, "misses")),
                      static_cast<long long>(StatusInt(shard, "evictions")));
        out += line;
      }
    }
  }

  std::snprintf(line, sizeof(line),
                "sessions:    open=%lld max=%lld shards=%lld opened=%lld "
                "evicted=%lld\n",
                static_cast<long long>(StatusInt(sessions, "open")),
                static_cast<long long>(StatusInt(sessions, "max")),
                static_cast<long long>(StatusInt(sessions, "shards")),
                static_cast<long long>(StatusInt(sessions, "opened")),
                static_cast<long long>(StatusInt(sessions, "evicted")));
  out += line;

  std::snprintf(line, sizeof(line),
                "solver:      solves=%lld warm_started=%lld memo_hits=%lld "
                "newton=%lld\n",
                static_cast<long long>(StatusInt(solver, "solves")),
                static_cast<long long>(StatusInt(solver, "warm_started")),
                static_cast<long long>(StatusInt(solver, "memo_hits")),
                static_cast<long long>(StatusInt(solver, "newton_solves")));
  out += line;

  // Overload + durability sections. StatusInt renders absent members
  // as zeros, so reports against older daemons stay readable.
  const JsonValue* shed = status.Find("shed");
  std::snprintf(line, sizeof(line),
                "shed:        queue=%lld memory=%lld deadline=%lld\n",
                static_cast<long long>(StatusInt(shed, "queue")),
                static_cast<long long>(StatusInt(shed, "memory")),
                static_cast<long long>(StatusInt(shed, "deadline")));
  out += line;

  const JsonValue* durability = status.Find("durability");
  const bool durable =
      durability != nullptr && durability->BoolOr("enabled", false);
  std::snprintf(
      line, sizeof(line),
      "durability:  enabled=%d recovered=%lld recovery_failed=%lld "
      "cache_restored=%lld snapshot_writes=%lld snapshot_failures=%lld\n",
      durable ? 1 : 0,
      static_cast<long long>(StatusInt(durability, "sessions_recovered")),
      static_cast<long long>(StatusInt(durability, "sessions_recovery_failed")),
      static_cast<long long>(StatusInt(durability, "cache_entries_restored")),
      static_cast<long long>(StatusInt(durability, "snapshot_writes")),
      static_cast<long long>(StatusInt(durability, "snapshot_failures")));
  out += line;
  return out;
}

}  // namespace fdx
