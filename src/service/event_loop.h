#ifndef FDX_SERVICE_EVENT_LOOP_H_
#define FDX_SERVICE_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/epoll.h"
#include "util/socket.h"
#include "util/status.h"

namespace fdx {

/// One non-blocking I/O thread of the fdxd daemon: an epoll instance
/// owning some set of client connections (and, on the listener-attached
/// loop, the accept path). Connection count no longer implies thread
/// count — one loop comfortably multiplexes thousands of sockets.
///
/// Framing and pipelining. Bytes are read as they arrive into a
/// per-connection buffer and split into line-delimited frames
/// incrementally, so a request spread over many tiny writes (a slow or
/// bulk sender) costs no thread and no busy wait. A client may pipeline
/// many requests back-to-back; parsed frames queue per connection and
/// are *executed strictly in arrival order, one at a time* — request
/// k+1 does not start until request k's response is computed. Responses
/// are therefore written in request order by construction, and
/// per-connection effect ordering (append-then-discover) matches the
/// serial semantics of the legacy thread-per-connection path. Requests
/// from different connections execute concurrently on the worker pool.
///
/// Execution happens through a dispatch callback provided by the
/// server. The dispatcher either answers synchronously on the loop
/// thread (parse errors, opens, status, cache hits) or hands the work
/// to the JobQueue and invokes the completion from a worker thread;
/// completions are marshalled back to the loop via a mutex-guarded
/// queue plus an eventfd wakeup, so every socket is only ever touched
/// by its owning loop thread.
class EventLoop {
 public:
  /// Completion for one request: the response line (no trailing '\n')
  /// plus whether the connection stays open. Thread-safe: may be
  /// invoked synchronously on the loop thread or later from any other
  /// thread; must be invoked exactly once.
  using DoneFn = std::function<void(std::string response, bool keep_open)>;

  /// Executes one request line. Must eventually call `done`.
  using DispatchFn = std::function<void(std::string line, DoneFn done)>;

  struct Options {
    /// Longest accepted request frame; a connection exceeding it
    /// without a newline cannot be re-synchronized and is closed.
    size_t max_line_bytes = 64 * 1024 * 1024;
    /// Parsed-but-unexecuted frames allowed per connection before the
    /// loop stops reading from that socket (TCP backpressure).
    size_t max_pipeline_depth = 1024;
    /// How long RequestStop() may keep polling to flush pending
    /// response bytes to slow readers before closing them.
    double stop_flush_seconds = 3.0;
    /// Backoff window after a transient accept failure (EMFILE & co) —
    /// prevents a hot accept/fail spin while fds are exhausted.
    double accept_backoff_seconds = 0.01;
  };

  struct Callbacks {
    DispatchFn dispatch;
    /// Invoked on the loop thread for every accepted socket; the
    /// callee decides to adopt it (into any loop) or drop it.
    std::function<void(Socket sock)> on_accept;
  };

  EventLoop(Options options, Callbacks callbacks);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Makes this loop the accepting loop. The listener must already be
  /// non-blocking and outlive the loop; it is polled, not owned.
  void AttachListener(ListenSocket* listener);

  /// Spawns the loop thread.
  Status Start();

  /// Hands a connected socket to this loop (thread-safe; callable from
  /// another loop's accept path or from tests).
  void AdoptConnection(Socket sock);

  /// Asks the loop to finish: stop accepting and reading, deliver every
  /// already-queued completion, flush write buffers (bounded by
  /// stop_flush_seconds), close everything, and exit. Call only after
  /// in-flight jobs have drained — queued completions are delivered,
  /// but no new dispatches start.
  void RequestStop();

  /// Joins the loop thread (idempotent).
  void Join();

  /// Currently open connections on this loop.
  size_t live_connections() const {
    return live_.load(std::memory_order_relaxed);
  }
  /// Transient accept failures survived (EMFILE, ECONNABORTED, ...).
  uint64_t accept_transient_errors() const {
    return accept_transient_errors_.load(std::memory_order_relaxed);
  }
  /// Connections closed abruptly: an I/O error, a peer that vanished
  /// with a response undelivered, or unexecuted pipelined frames.
  uint64_t aborted_connections() const {
    return aborted_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    uint64_t id = 0;
    Socket sock;
    std::string read_buf;             ///< bytes not yet framed
    std::deque<std::string> pending;  ///< parsed, unexecuted frames
    bool executing = false;           ///< a dispatch is in flight
    std::string write_buf;            ///< response bytes not yet sent
    size_t write_off = 0;
    bool read_open = true;       ///< false after EOF / RDHUP
    bool read_paused = false;    ///< pipeline queue full (backpressure)
    bool read_armed = true;      ///< EPOLLIN armed
    bool write_armed = false;    ///< EPOLLOUT armed
    bool close_after_flush = false;
    bool dead = false;           ///< unrecoverable; close asap
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::string response;
    bool keep_open = true;
  };

  void Run();
  void HandleAccepts();
  void HandleReadable(Conn* conn);
  void ExtractFrames(Conn* conn);
  void Pump(Conn* conn);   ///< start next frames while idle
  void Flush(Conn* conn);  ///< push write_buf to the socket
  void UpdateInterest(Conn* conn);
  void MaybeClose(Conn* conn);
  void CloseConn(uint64_t id);
  void ApplyCompletion(const Completion& completion);
  void DrainMailbox();  ///< adopt queued sockets + apply completions
  void FinishAndStop();
  DoneFn MakeDone(uint64_t conn_id);

  const Options options_;
  const Callbacks callbacks_;

  Epoll epoll_;
  ListenSocket* listener_ = nullptr;  ///< not owned; loop 0 only
  bool accepting_ = false;
  std::chrono::steady_clock::time_point accept_backoff_until_{};

  std::thread thread_;
  std::thread::id loop_thread_id_;  ///< set at the top of Run()
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};

  uint64_t next_conn_id_ = 1;  ///< loop-thread only
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;

  std::mutex mailbox_mu_;
  std::vector<Socket> adopted_;          ///< guarded by mailbox_mu_
  std::vector<Completion> completions_;  ///< guarded by mailbox_mu_

  std::atomic<size_t> live_{0};
  std::atomic<uint64_t> accept_transient_errors_{0};
  std::atomic<uint64_t> aborted_{0};

  static constexpr uint64_t kListenerTag = ~uint64_t{0} - 1;
};

}  // namespace fdx

#endif  // FDX_SERVICE_EVENT_LOOP_H_
