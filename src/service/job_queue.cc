#include "service/job_queue.h"

#include <chrono>
#include <utility>

namespace fdx {

JobQueue::JobQueue(size_t workers, size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      pool_(workers == 0 ? 1 : workers) {}

JobQueue::~JobQueue() {
  Drain(0.0);
  // ~ThreadPool (run after this body) finishes anything still queued;
  // Drain above already waited for it, so the teardown is quiet.
}

Status JobQueue::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("job queue draining; not accepting work");
    }
    if (active_ >= capacity_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "job queue full (capacity " + std::to_string(capacity_) +
          "); retry later");
    }
    ++active_;
  }
  pool_.Submit([this, job = std::move(job)] {
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      executed_.fetch_add(1, std::memory_order_relaxed);
    }
    drained_cv_.notify_all();
  });
  return Status::OK();
}

void JobQueue::CloseIntake() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
}

bool JobQueue::Drain(double deadline_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  closed_ = true;
  const auto done = [this] { return active_ == 0; };
  if (deadline_seconds <= 0.0) {
    drained_cv_.wait(lock, done);
    return true;
  }
  return drained_cv_.wait_for(
      lock, std::chrono::duration<double>(deadline_seconds), done);
}

size_t JobQueue::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

}  // namespace fdx
