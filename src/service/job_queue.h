#ifndef FDX_SERVICE_JOB_QUEUE_H_
#define FDX_SERVICE_JOB_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "util/status.h"
#include "util/thread_pool.h"

namespace fdx {

/// Bounded admission control in front of a ThreadPool: at most
/// `capacity` jobs may be admitted-but-unfinished at once; submissions
/// beyond that are rejected immediately with kUnavailable (the HTTP-429
/// analogue) instead of queueing without bound. `workers` of them run
/// concurrently; the rest wait inside the pool's FIFO. This is the
/// backpressure layer of the fdxd daemon — a saturated daemon answers
/// "busy, retry" in microseconds rather than timing out every caller.
class JobQueue {
 public:
  JobQueue(size_t workers, size_t capacity);

  /// Blocks until in-flight jobs finish (Drain semantics, unbounded).
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Admits `job` for asynchronous execution, or rejects it:
  /// kUnavailable("job queue full...") at capacity, and
  /// kUnavailable("draining") after Drain/CloseIntake. Jobs must not
  /// throw.
  Status Submit(std::function<void()> job);

  /// Stops admitting new jobs. Idempotent.
  void CloseIntake();

  /// CloseIntake + wait until every admitted job finished or
  /// `deadline_seconds` elapsed (non-positive: wait forever). Returns
  /// true when the queue fully drained.
  bool Drain(double deadline_seconds);

  size_t workers() const { return pool_.size(); }
  size_t capacity() const { return capacity_; }

  /// Jobs admitted and not yet finished (running or waiting).
  size_t active() const;

  uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  size_t active_ = 0;       ///< guarded by mu_
  bool closed_ = false;     ///< guarded by mu_
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> rejected_{0};
  ThreadPool pool_;  ///< declared last: destroyed first, after intake closed
};

}  // namespace fdx

#endif  // FDX_SERVICE_JOB_QUEUE_H_
