#include "service/event_loop.h"

#include <algorithm>
#include <utility>

namespace fdx {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

EventLoop::EventLoop(Options options, Callbacks callbacks)
    : options_(std::move(options)), callbacks_(std::move(callbacks)) {}

EventLoop::~EventLoop() {
  RequestStop();
  Join();
}

void EventLoop::AttachListener(ListenSocket* listener) {
  listener_ = listener;
  accepting_ = true;
}

Status EventLoop::Start() {
  FDX_ASSIGN_OR_RETURN(epoll_, Epoll::Create());
  if (listener_ != nullptr) {
    FDX_RETURN_IF_ERROR(listener_->SetNonBlocking(true));
    FDX_RETURN_IF_ERROR(epoll_.Add(listener_->fd(), kListenerTag));
  }
  started_.store(true);
  thread_ = std::thread(&EventLoop::Run, this);
  return Status::OK();
}

void EventLoop::AdoptConnection(Socket sock) {
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    adopted_.push_back(std::move(sock));
  }
  epoll_.Notify();
}

void EventLoop::RequestStop() {
  stop_.store(true);
  if (started_.load()) epoll_.Notify();
}

void EventLoop::Join() {
  if (thread_.joinable()) thread_.join();
}

EventLoop::DoneFn EventLoop::MakeDone(uint64_t conn_id) {
  return [this, conn_id](std::string response, bool keep_open) {
    Completion completion{conn_id, std::move(response), keep_open};
    if (std::this_thread::get_id() == loop_thread_id_) {
      // Synchronous fast path: the dispatcher answered on the loop
      // thread inside Pump(); apply directly (Pump's loop continues
      // with the next pending frame when it sees executing == false).
      ApplyCompletion(completion);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mailbox_mu_);
      completions_.push_back(std::move(completion));
    }
    epoll_.Notify();
  };
}

void EventLoop::Run() {
  // Completions compare against this id, possibly while TeardownLocked
  // concurrently joins thread_ — so cache it rather than calling
  // thread_.get_id() from two threads at once.
  loop_thread_id_ = std::this_thread::get_id();
  std::vector<Epoll::Event> events;
  while (true) {
    // A pending accept backoff bounds the poll so accepting resumes on
    // schedule even on an otherwise idle daemon.
    int timeout_ms = -1;
    if (accepting_ && Clock::now() < accept_backoff_until_) {
      const auto remaining = accept_backoff_until_ - Clock::now();
      timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
              .count()) +
          1;
    }
    auto waited = epoll_.Wait(timeout_ms, &events);
    if (!waited.ok()) break;  // epoll itself failed; nothing to salvage

    DrainMailbox();
    if (stop_.load()) {
      FinishAndStop();
      return;
    }

    for (const Epoll::Event& event : events) {
      if (event.tag == kListenerTag) {
        if (event.readable || event.hangup) HandleAccepts();
        continue;
      }
      auto it = conns_.find(event.tag);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn* conn = it->second.get();
      if (event.readable || event.hangup) HandleReadable(conn);
      if (event.writable && !conn->dead) Flush(conn);
      Pump(conn);
      Flush(conn);
      UpdateInterest(conn);
      MaybeClose(conn);
    }
    // Accept after connection work so a full ready batch is served
    // before taking on more sockets; with a backoff pending this is
    // reached via the bounded poll timeout.
    if (accepting_ && Clock::now() >= accept_backoff_until_ &&
        listener_ != nullptr) {
      HandleAccepts();
    }
  }
}

void EventLoop::HandleAccepts() {
  if (!accepting_ || listener_ == nullptr) return;
  if (Clock::now() < accept_backoff_until_) return;
  for (;;) {
    Socket sock;
    std::string error;
    const ListenSocket::AcceptOutcome outcome =
        listener_->AcceptNonBlocking(&sock, &error);
    switch (outcome) {
      case ListenSocket::AcceptOutcome::kAccepted:
        callbacks_.on_accept(std::move(sock));
        continue;
      case ListenSocket::AcceptOutcome::kWouldBlock:
        return;
      case ListenSocket::AcceptOutcome::kRetryable:
        // EMFILE/ECONNABORTED & co: survive it, but back off so an fd
        // drought does not turn into a hot accept/fail spin.
        accept_transient_errors_.fetch_add(1, std::memory_order_relaxed);
        accept_backoff_until_ =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   options_.accept_backoff_seconds));
        return;
      case ListenSocket::AcceptOutcome::kShutdown:
        // Real teardown (or an unusable listener): stop accepting for
        // good. Existing connections keep being served.
        accepting_ = false;
        epoll_.Remove(listener_->fd());
        return;
    }
  }
}

void EventLoop::HandleReadable(Conn* conn) {
  if (!conn->read_open || conn->dead) return;
  char chunk[16 * 1024];
  for (;;) {
    auto outcome = conn->sock.RecvRaw(chunk, sizeof(chunk));
    if (!outcome.ok()) {
      conn->dead = true;
      return;
    }
    if (outcome->would_block) break;
    if (outcome->closed) {
      // Half-close: the peer is done sending but may still be waiting
      // for responses to everything already pipelined.
      conn->read_open = false;
      break;
    }
    conn->read_buf.append(chunk, outcome->bytes);
    if (outcome->bytes < sizeof(chunk)) break;  // drained the socket
  }
  ExtractFrames(conn);
}

void EventLoop::ExtractFrames(Conn* conn) {
  size_t start = 0;
  while (conn->pending.size() < options_.max_pipeline_depth) {
    const size_t newline = conn->read_buf.find('\n', start);
    if (newline == std::string::npos) break;
    std::string line = conn->read_buf.substr(start, newline - start);
    start = newline + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // tolerate blank keep-alive lines
    conn->pending.push_back(std::move(line));
  }
  if (start > 0) conn->read_buf.erase(0, start);
  if (conn->read_buf.size() > options_.max_line_bytes) {
    // An unterminated frame beyond the cap cannot be re-synchronized.
    conn->dead = true;
    return;
  }
  // Backpressure: once the pipeline queue is full, stop reading and let
  // TCP flow control push back on the sender; reading resumes as the
  // queue drains in Pump().
  conn->read_paused = conn->pending.size() >= options_.max_pipeline_depth;
}

void EventLoop::Pump(Conn* conn) {
  // Frames freed by the un-pause tail must be dispatched right here:
  // HandleReadable already drained the kernel buffer, so no further
  // EPOLLIN will arrive to pick them up — hence the outer loop.
  for (bool progressed = true; progressed;) {
    progressed = false;
    while (!conn->executing && !conn->dead && !conn->close_after_flush &&
           !conn->pending.empty()) {
      std::string line = std::move(conn->pending.front());
      conn->pending.pop_front();
      conn->executing = true;
      // The dispatcher may complete synchronously (clearing `executing`
      // before returning) or asynchronously from a worker thread — in
      // which case this loop exits and resumes on completion delivery.
      callbacks_.dispatch(std::move(line), MakeDone(conn->id));
    }
    // Resume reading once the queue drained below half depth — with a
    // floor of one slot, so depth 1 resumes on an empty queue instead
    // of comparing against depth/2 == 0 (never true).
    const size_t resume_below =
        std::max<size_t>(1, options_.max_pipeline_depth / 2);
    if (conn->read_paused && !conn->dead && !conn->close_after_flush &&
        conn->pending.size() < resume_below) {
      conn->read_paused = false;
      const size_t before = conn->pending.size();
      ExtractFrames(conn);  // frames may already be buffered
      progressed = conn->pending.size() > before;
    }
  }
}

void EventLoop::Flush(Conn* conn) {
  if (conn->dead) return;
  while (conn->write_off < conn->write_buf.size()) {
    auto outcome = conn->sock.SendRaw(conn->write_buf.data() + conn->write_off,
                                      conn->write_buf.size() - conn->write_off);
    if (!outcome.ok() || outcome->closed) {
      conn->dead = true;
      return;
    }
    if (outcome->would_block) return;
    conn->write_off += outcome->bytes;
  }
  conn->write_buf.clear();
  conn->write_off = 0;
}

void EventLoop::UpdateInterest(Conn* conn) {
  if (conn->dead) return;
  const bool want_read = conn->read_open && !conn->read_paused;
  const bool want_write = conn->write_off < conn->write_buf.size();
  if (want_read == conn->read_armed && want_write == conn->write_armed) {
    return;  // interest unchanged; skip the syscall
  }
  epoll_.Modify(conn->sock.fd(), conn->id, want_read, want_write);
  conn->read_armed = want_read;
  conn->write_armed = want_write;
}

void EventLoop::MaybeClose(Conn* conn) {
  const bool flushed = conn->write_off >= conn->write_buf.size();
  const bool idle = !conn->executing && conn->pending.empty();
  if (conn->dead || (conn->close_after_flush && flushed && idle) ||
      (!conn->read_open && idle && flushed)) {
    CloseConn(conn->id);
  }
}

void EventLoop::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  const Conn& conn = *it->second;
  // A close that strands work — an I/O error, an undelivered response,
  // or unexecuted pipelined frames — is an abort, not a clean goodbye.
  // The chaos harness reconciles this count against client-side kills.
  if (conn.dead || conn.write_off < conn.write_buf.size() ||
      conn.executing || !conn.pending.empty()) {
    aborted_.fetch_add(1, std::memory_order_relaxed);
  }
  epoll_.Remove(it->second->sock.fd());
  it->second->sock.ShutdownBoth();
  conns_.erase(it);
  live_.fetch_sub(1, std::memory_order_relaxed);
}

void EventLoop::ApplyCompletion(const Completion& completion) {
  auto it = conns_.find(completion.conn_id);
  if (it == conns_.end()) return;  // connection died while job ran
  Conn* conn = it->second.get();
  conn->executing = false;
  conn->write_buf += completion.response;
  conn->write_buf += '\n';
  if (!completion.keep_open) {
    conn->close_after_flush = true;
    // Frames pipelined behind a closing response are dropped, matching
    // the legacy path (the connection closes after this reply); keeping
    // them would park the connection forever, since they never execute
    // and MaybeClose waits for an empty queue.
    conn->pending.clear();
    conn->read_buf.clear();
  }
}

void EventLoop::DrainMailbox() {
  std::vector<Socket> adopted;
  std::vector<Completion> completions;
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    adopted.swap(adopted_);
    completions.swap(completions_);
  }
  for (Socket& sock : adopted) {
    if (!sock.SetNonBlocking(true).ok()) continue;
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>();
    conn->id = id;
    conn->sock = std::move(sock);
    if (!epoll_.Add(conn->sock.fd(), id).ok()) continue;
    conns_[id] = std::move(conn);
    live_.fetch_add(1, std::memory_order_relaxed);
    // Bytes may already be queued on a fresh socket; poll it once.
    Conn* raw = conns_[id].get();
    HandleReadable(raw);
    Pump(raw);
    Flush(raw);
    UpdateInterest(raw);
    MaybeClose(raw);
  }
  for (const Completion& completion : completions) {
    ApplyCompletion(completion);
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;
    Conn* conn = it->second.get();
    Pump(conn);
    Flush(conn);
    UpdateInterest(conn);
    MaybeClose(conn);
  }
}

void EventLoop::FinishAndStop() {
  // Called after the server drained the job queue: every completion is
  // already in the mailbox (jobs post before they count as finished).
  // Deliver them, then keep polling briefly to flush response bytes to
  // slow readers — the drain contract says in-flight responses reach
  // their clients.
  accepting_ = false;
  if (listener_ != nullptr) epoll_.Remove(listener_->fd());
  DrainMailbox();
  for (auto& [id, conn] : conns_) {
    Flush(conn.get());
    UpdateInterest(conn.get());
  }
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options_.stop_flush_seconds));
  std::vector<Epoll::Event> events;
  for (;;) {
    bool pending = false;
    for (auto& [id, conn] : conns_) {
      if (!conn->dead && conn->write_off < conn->write_buf.size()) {
        pending = true;
        break;
      }
    }
    if (!pending || Clock::now() >= deadline) break;
    if (!epoll_.Wait(50, &events).ok()) break;
    for (const Epoll::Event& event : events) {
      auto it = conns_.find(event.tag);
      if (it == conns_.end()) continue;
      if (event.writable) Flush(it->second.get());
      if (event.hangup) it->second->dead = true;
    }
  }
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (auto& [id, conn] : conns_) ids.push_back(id);
  for (uint64_t id : ids) CloseConn(id);
}

}  // namespace fdx
