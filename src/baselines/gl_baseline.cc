#include "baselines/gl_baseline.h"

#include <algorithm>
#include <cmath>

#include "fd/attribute_set.h"
#include "baselines/info_theory.h"
#include "linalg/glasso.h"
#include "linalg/stats.h"
#include "util/rng.h"

namespace fdx {

namespace {

/// Enumerates subsets of `candidates` up to `max_size`, calling `fn` on
/// each non-empty subset.
template <typename Fn>
void ForEachSubset(const std::vector<size_t>& candidates, size_t max_size,
                   Fn&& fn) {
  const size_t m = candidates.size();
  std::vector<size_t> current;
  // Iterative DFS over index positions.
  struct Frame {
    size_t next;
  };
  std::vector<size_t> stack;
  // Simple recursive lambda.
  auto rec = [&](auto&& self, size_t start) -> void {
    if (!current.empty()) fn(current);
    if (current.size() >= max_size) return;
    for (size_t i = start; i < m; ++i) {
      current.push_back(candidates[i]);
      self(self, i + 1);
      current.pop_back();
    }
  };
  rec(rec, 0);
  (void)stack;
}

}  // namespace

Result<FdSet> DiscoverGlBaseline(const Table& table,
                                 const GlBaselineOptions& options) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  if (k == 0 || n < 2) return Status::InvalidArgument("table too small");

  // Raw encoding: dictionary codes as doubles (nulls -> -1), columns
  // standardized. This is the "naive" structure-learning input whose
  // weaknesses §4.3 discusses.
  const EncodedTable encoded = EncodedTable::Encode(table);
  Matrix samples(n, k);
  for (size_t c = 0; c < k; ++c) {
    const auto& codes = encoded.column_codes(c);
    for (size_t r = 0; r < n; ++r) {
      samples(r, c) = static_cast<double>(codes[r]);
    }
  }
  StandardizeColumns(&samples);
  FDX_ASSIGN_OR_RETURN(Matrix cov, Covariance(samples));

  GlassoOptions glasso_options;
  glasso_options.lambda = options.lambda;
  glasso_options.threads = options.threads;
  FDX_ASSIGN_OR_RETURN(GlassoResult glasso,
                       GraphicalLasso(cov, glasso_options));

  Rng rng(options.seed);
  FdSet fds;
  for (size_t y = 0; y < k; ++y) {
    // Undirected neighborhood of y in the precision matrix.
    std::vector<size_t> neighbors;
    for (size_t x = 0; x < k; ++x) {
      if (x != y && std::fabs(glasso.theta(x, y)) > 1e-8) {
        neighbors.push_back(x);
      }
    }
    if (neighbors.empty()) continue;
    // Rank neighbors by |partial correlation| and keep a handful; the
    // local search is exponential in the neighborhood size.
    std::sort(neighbors.begin(), neighbors.end(), [&](size_t a, size_t b) {
      return std::fabs(glasso.theta(a, y)) > std::fabs(glasso.theta(b, y));
    });
    if (neighbors.size() > 6) neighbors.resize(6);

    const double h_y = Entropy(encoded, AttributeSet::Single(y));
    double best_score = 0.0;
    std::vector<size_t> best_set;
    ForEachSubset(neighbors, options.max_lhs_size,
                  [&](const std::vector<size_t>& subset) {
                    const AttributeSet x = AttributeSet::FromIndices(subset);
                    if (h_y <= 0.0) return;
                    const double mi = MutualInformation(encoded, x, y);
                    const double bias = PermutationBias(
                        encoded, x, y, options.permutations, &rng);
                    const double score = (mi - bias) / h_y;
                    if (score > best_score) {
                      best_score = score;
                      best_set = subset;
                    }
                  });
    if (best_score >= options.min_score && !best_set.empty()) {
      fds.emplace_back(best_set, y);
    }
  }
  return fds;
}

}  // namespace fdx
