#ifndef FDX_BASELINES_DENIAL_H_
#define FDX_BASELINES_DENIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"
#include "util/status.h"

namespace fdx {

/// A predicate over a pair of distinct tuples (t, t') on one attribute.
enum class PairOp {
  kEq,   ///< t[A] =  t'[A]
  kNeq,  ///< t[A] != t'[A]
  kLt,   ///< t[A] <  t'[A]  (numeric attributes only)
  kGt,   ///< t[A] >  t'[A]  (numeric attributes only)
};

struct DcPredicate {
  size_t attribute = 0;
  PairOp op = PairOp::kEq;
};

/// A denial constraint: "for all pairs of distinct tuples, NOT all of
/// the predicates hold". FDs are the special case
///   not (t.X = t'.X and t.Y != t'.Y),
/// so DC discovery generalizes FD discovery (Chu, Ilyas & Papotti 2013,
/// paper §6 [8]).
struct DenialConstraint {
  std::vector<DcPredicate> predicates;

  /// Renders e.g. "not(t.City = t'.City and t.Zip != t'.Zip)".
  std::string ToString(const Schema& schema) const;
};

/// Options for denial-constraint discovery.
struct DcOptions {
  /// Tuple pairs sampled to build the evidence sets; DCs are validated
  /// against this sample (the FastDC/Hydra approach — exact validation
  /// is quadratic in the rows).
  size_t sample_pairs = 20000;
  /// Maximum predicates per constraint.
  size_t max_predicates = 3;
  /// Wall-clock budget in seconds; 0 = unlimited.
  double time_budget_seconds = 0.0;
  uint64_t seed = 53;
};

/// Evidence-set based discovery of minimal denial constraints: sample
/// tuple pairs, record which predicates each pair satisfies, and search
/// the predicate lattice (at most one predicate per attribute) for
/// minimal sets no sampled pair satisfies in full. Supports at most 16
/// attributes (the 64-predicate evidence masks).
Result<std::vector<DenialConstraint>> DiscoverDenialConstraints(
    const Table& table, const DcOptions& options = {});

}  // namespace fdx

#endif  // FDX_BASELINES_DENIAL_H_
