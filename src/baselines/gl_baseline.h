#ifndef FDX_BASELINES_GL_BASELINE_H_
#define FDX_BASELINES_GL_BASELINE_H_

#include <cstdint>

#include "data/table.h"
#include "fd/fd.h"
#include "util/status.h"

namespace fdx {

/// Options of the plain Graphical Lasso baseline (paper §5.1, method
/// "GL"): structure learning applied *directly to the raw data* —
/// dictionary-encoded and standardized — with no pair transform,
/// followed by a local directed search scored with RFI's reliable
/// fraction of information. The gap between GL and FDX isolates the
/// contribution of the pair-difference model (paper §4.3).
struct GlBaselineOptions {
  double lambda = 0.1;   ///< Glasso penalty on the raw-data covariance.
  double min_score = 0.1;  ///< Minimum reliable score to report an FD.
  size_t max_lhs_size = 3;
  size_t permutations = 3;
  uint64_t seed = 21;
  /// Worker threads for the glasso component fan-out (0 = FDX_THREADS /
  /// hardware concurrency). Results are bit-identical at any count.
  size_t threads = 0;
};

/// Runs glasso on the standardized raw encoding, reads the undirected
/// neighborhoods off the precision matrix, and for every attribute Y
/// picks the neighbor subset with the best reliable score as Y's
/// determinant set.
Result<FdSet> DiscoverGlBaseline(const Table& table,
                                 const GlBaselineOptions& options);

}  // namespace fdx

#endif  // FDX_BASELINES_GL_BASELINE_H_
