#ifndef FDX_BASELINES_INFO_THEORY_H_
#define FDX_BASELINES_INFO_THEORY_H_

#include <cstdint>
#include <vector>

#include "fd/attribute_set.h"
#include "data/table.h"
#include "util/rng.h"

namespace fdx {

/// Maps each row to a dense group id identifying its value combination
/// over the attribute set (nulls are one distinct symbol per column).
/// Returns the number of groups via `num_groups`.
std::vector<int32_t> GroupIds(const EncodedTable& table,
                              const AttributeSet& attrs, size_t* num_groups);

/// Empirical (plug-in) entropy in nats of the joint distribution of the
/// attribute set.
double Entropy(const EncodedTable& table, const AttributeSet& attrs);

/// Entropy of a precomputed group-id vector.
double EntropyOfGroups(const std::vector<int32_t>& groups, size_t num_groups);

/// Plug-in mutual information I(X; Y) between an attribute set and a
/// single attribute, in nats.
double MutualInformation(const EncodedTable& table, const AttributeSet& x,
                         size_t y);

/// Monte-Carlo estimate of the permutation-model bias E[I(X; sigma(Y))]
/// used by RFI's reliable fraction of information (Mandros et al. 2017):
/// the expected MI when Y is randomly shuffled, i.e. the spurious
/// information a set of X's cardinality extracts from pure chance.
double PermutationBias(const EncodedTable& table, const AttributeSet& x,
                       size_t y, size_t permutations, Rng* rng);

/// Closed-form E[I(X; sigma(Y))] under the permutation model (Vinh,
/// Epps & Bailey 2010), the exact correction Mandros et al. plug into
/// RFI: each contingency cell count follows a hypergeometric law with
/// the observed margins. O(sum over cells of the support range) —
/// exact but slower than Monte-Carlo on high-cardinality pairs.
double ExactPermutationBias(const EncodedTable& table,
                            const AttributeSet& x, size_t y);

}  // namespace fdx

#endif  // FDX_BASELINES_INFO_THEORY_H_
