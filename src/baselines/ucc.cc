#include "baselines/ucc.h"

#include <algorithm>
#include <map>

#include "fd/partition.h"
#include "util/stopwatch.h"

namespace fdx {

Result<std::vector<Ucc>> DiscoverUccs(const Table& table,
                                      const UccOptions& options) {
  const size_t k = table.num_columns();
  if (k == 0) return Status::InvalidArgument("empty table");
  if (k > AttributeSet::kMaxAttributes) {
    return Status::InvalidArgument("UCC supports at most 128 attributes");
  }
  const EncodedTable encoded = EncodedTable::Encode(table);
  Deadline deadline(options.time_budget_seconds);

  std::vector<Ucc> results;
  std::vector<AttributeSet> found;  // for minimality pruning

  // Current level: attribute sets with their partitions, keyed for
  // deterministic iteration.
  std::map<AttributeSet, StrippedPartition> level;
  for (size_t a = 0; a < k; ++a) {
    level.emplace(AttributeSet::Single(a),
                  StrippedPartition::FromColumn(encoded, a));
  }

  for (size_t depth = 1; depth <= options.max_size && !level.empty();
       ++depth) {
    // Harvest (approximate) keys at this level; keep non-keys for joins.
    std::map<AttributeSet, StrippedPartition> survivors;
    for (auto& [attrs, partition] : level) {
      if (deadline.Expired()) return Status::Timeout("UCC budget exceeded");
      const double error = partition.KeyError();
      if (error <= options.max_error) {
        Ucc ucc;
        ucc.attributes = attrs.ToIndices();
        ucc.error = error;
        results.push_back(std::move(ucc));
        found.push_back(attrs);  // supersets are non-minimal
      } else {
        survivors.emplace(attrs, std::move(partition));
      }
    }
    if (depth == options.max_size) break;
    // Join step: canonical extension by larger single attributes.
    std::map<AttributeSet, StrippedPartition> next;
    for (const auto& [attrs, partition] : survivors) {
      const size_t last = attrs.ToIndices().back();
      for (size_t a = last + 1; a < k; ++a) {
        if (deadline.Expired()) return Status::Timeout("UCC budget exceeded");
        AttributeSet extended = attrs;
        extended.Add(a);
        // Minimality: skip supersets of discovered UCCs.
        bool superset = false;
        for (const auto& key : found) {
          if (key.IsSubsetOf(extended)) {
            superset = true;
            break;
          }
        }
        if (superset || next.count(extended) > 0) continue;
        next.emplace(extended,
                     StrippedPartition::Multiply(
                         partition, StrippedPartition::FromColumn(
                                        encoded, a)));
      }
    }
    level = std::move(next);
  }
  std::sort(results.begin(), results.end(), [](const Ucc& a, const Ucc& b) {
    if (a.attributes.size() != b.attributes.size()) {
      return a.attributes.size() < b.attributes.size();
    }
    return a.attributes < b.attributes;
  });
  return results;
}

}  // namespace fdx
