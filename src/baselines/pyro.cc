#include "baselines/pyro.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "fd/attribute_set.h"
#include "fd/partition.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace fdx {

namespace {

/// Number of ordered row pairs agreeing on the set, from a stripped
/// partition: sum over clusters of |c| * (|c| - 1).
double AgreePairs(const StrippedPartition& partition) {
  double total = 0.0;
  for (const auto& c : partition.clusters()) {
    const double size = static_cast<double>(c.size());
    total += size * (size - 1.0);
  }
  return total;
}

/// Caches stripped partitions per attribute set, building products
/// incrementally from single-column partitions.
class PartitionCache {
 public:
  explicit PartitionCache(const EncodedTable& table) : table_(table) {}

  const StrippedPartition& Get(const AttributeSet& set) {
    auto it = cache_.find(set);
    if (it != cache_.end()) return it->second;
    const std::vector<size_t> indices = set.ToIndices();
    StrippedPartition partition;
    if (indices.size() == 1) {
      partition = StrippedPartition::FromColumn(table_, indices[0]);
    } else {
      // Combine the largest cached proper subset with the remainder.
      const AttributeSet rest = set.Without(indices.back());
      partition = StrippedPartition::Multiply(
          Get(rest), Get(AttributeSet::Single(indices.back())));
    }
    auto [inserted, unused] = cache_.emplace(set, std::move(partition));
    return inserted->second;
  }

 private:
  const EncodedTable& table_;
  std::unordered_map<AttributeSet, StrippedPartition, AttributeSetHash>
      cache_;
};

/// Exact g1 error of X -> a via partitions.
double ExactError(PartitionCache* cache, const AttributeSet& lhs, size_t a,
                  size_t n) {
  if (n < 2) return 0.0;
  const double pairs_lhs = AgreePairs(cache->Get(lhs));
  AttributeSet with_rhs = lhs;
  with_rhs.Add(a);
  const double pairs_both = AgreePairs(cache->Get(with_rhs));
  return (pairs_lhs - pairs_both) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

/// Sampled agree sets: each entry is the AttributeSet on which a random
/// tuple pair agrees. Error estimates for any candidate FD are O(sample)
/// lookups over this list — Pyro's central trick.
std::vector<AttributeSet> SampleAgreeSets(const EncodedTable& table,
                                          size_t count, Rng* rng) {
  std::vector<AttributeSet> agree_sets;
  const size_t n = table.num_rows();
  const size_t k = table.num_columns();
  if (n < 2) return agree_sets;
  agree_sets.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t a = rng->NextUint64(n);
    size_t b = rng->NextUint64(n - 1);
    if (b >= a) ++b;
    AttributeSet agree;
    for (size_t c = 0; c < k; ++c) {
      const int32_t ca = table.code(a, c);
      if (ca != EncodedTable::kNullCode && ca == table.code(b, c)) {
        agree.Add(c);
      }
    }
    agree_sets.push_back(agree);
  }
  return agree_sets;
}

/// Estimated g1 error of lhs -> a from the sampled agree sets.
double EstimatedError(const std::vector<AttributeSet>& agree_sets,
                      const AttributeSet& lhs, size_t a) {
  if (agree_sets.empty()) return 0.0;
  size_t violations = 0;
  for (const auto& agree : agree_sets) {
    if (lhs.IsSubsetOf(agree) && !agree.Contains(a)) ++violations;
  }
  return static_cast<double>(violations) /
         static_cast<double>(agree_sets.size());
}

/// Trickle-down: recursively minimizes a valid peak, emitting every
/// minimal valid subset into `minimal`.
void TrickleDown(PartitionCache* cache, const AttributeSet& x, size_t rhs,
                 size_t n, double max_error, const Deadline& deadline,
                 std::set<AttributeSet>* visited,
                 std::set<AttributeSet>* minimal) {
  if (visited->count(x) > 0 || deadline.Expired()) return;
  visited->insert(x);
  bool any_child_valid = false;
  for (size_t a : x.ToIndices()) {
    const AttributeSet child = x.Without(a);
    if (child.Empty()) continue;
    if (ExactError(cache, child, rhs, n) <= max_error) {
      any_child_valid = true;
      TrickleDown(cache, child, rhs, n, max_error, deadline, visited,
                  minimal);
    }
  }
  if (!any_child_valid) minimal->insert(x);
}

}  // namespace

Result<FdSet> DiscoverPyro(const Table& table, const PyroOptions& options) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  if (k == 0) return Status::InvalidArgument("empty table");
  if (k > AttributeSet::kMaxAttributes) {
    return Status::InvalidArgument("PYRO supports at most 128 attributes");
  }
  const EncodedTable encoded = EncodedTable::Encode(table);
  Deadline deadline(options.time_budget_seconds);
  Rng rng(options.seed);
  const std::vector<AttributeSet> agree_sets =
      SampleAgreeSets(encoded, options.sample_pairs, &rng);

  FdSet fds;
  PartitionCache cache(encoded);
  for (size_t rhs = 0; rhs < k; ++rhs) {
    if (deadline.Expired()) return Status::Timeout("PYRO budget exceeded");
    std::set<AttributeSet> minimal;
    std::set<AttributeSet> visited;
    // Launchpads: every single attribute, cheapest estimated error first.
    std::vector<size_t> launchpads;
    for (size_t a = 0; a < k; ++a) {
      if (a != rhs) launchpads.push_back(a);
    }
    std::sort(launchpads.begin(), launchpads.end(),
              [&](size_t a, size_t b) {
                return EstimatedError(agree_sets, AttributeSet::Single(a),
                                      rhs) <
                       EstimatedError(agree_sets, AttributeSet::Single(b),
                                      rhs);
              });
    for (size_t launch : launchpads) {
      if (deadline.Expired()) return Status::Timeout("PYRO budget exceeded");
      AttributeSet x = AttributeSet::Single(launch);
      // Skip launchpads already covered by a discovered minimal FD.
      bool covered = false;
      for (const auto& found : minimal) {
        if (found.IsSubsetOf(x)) {
          covered = true;
          break;
        }
      }
      if (covered) continue;
      // Ascend: grow X guided by estimated errors until (exactly) valid.
      while (x.Count() < options.max_lhs_size &&
             ExactError(&cache, x, rhs, n) > options.max_error) {
        size_t best = k;
        double best_estimate = 2.0;
        for (size_t b = 0; b < k; ++b) {
          if (b == rhs || x.Contains(b)) continue;
          AttributeSet candidate = x;
          candidate.Add(b);
          const double estimate =
              EstimatedError(agree_sets, candidate, rhs);
          if (estimate < best_estimate) {
            best_estimate = estimate;
            best = b;
          }
        }
        if (best == k) break;
        x.Add(best);
      }
      if (ExactError(&cache, x, rhs, n) <= options.max_error) {
        TrickleDown(&cache, x, rhs, n, options.max_error, deadline,
                    &visited, &minimal);
      }
    }
    for (const auto& lhs : minimal) {
      fds.emplace_back(lhs.ToIndices(), rhs);
    }
  }
  return fds;
}

}  // namespace fdx
