#ifndef FDX_BASELINES_CORDS_H_
#define FDX_BASELINES_CORDS_H_

#include <cstdint>

#include "data/table.h"
#include "fd/fd.h"
#include "util/status.h"

namespace fdx {

/// Options of the CORDS baseline (Ilyas et al., SIGMOD 2004), a
/// sampling-based detector of *soft* FDs and correlations between pairs
/// of columns. Parameters default to the settings of the original paper.
struct CordsOptions {
  /// Sample size used for the per-pair statistics.
  size_t sample_rows = 2000;
  /// Soft-FD strength threshold: report C1 -> C2 when the weighted
  /// per-value majority fraction sum_a P(a) * max_b P(b | a) reaches
  /// this value on the sample (equivalently, 1 - g3 error of the unary
  /// FD). The distinct-count ratio of the original CORDS is brittle
  /// under noise — one corrupted cell mints a new pair — so the
  /// strength is measured on value frequencies instead.
  double strength_threshold = 0.9;
  /// Columns whose distinct count exceeds this fraction of the sample
  /// are treated as (soft) keys and skipped as determinants: a key
  /// trivially "determines" everything and carries no semantic FD.
  double soft_key_fraction = 0.9;
  /// Chi-squared p-value style cutoff: pairs must also show significant
  /// association (rejects independence) before a soft FD is reported.
  double chi_squared_quantile = 3.84;  ///< ~p=0.05 at 1 dof, scaled by dof.
  uint64_t seed = 9;
};

/// Result of the chi-squared contingency test on a sample.
struct ChiSquared {
  double statistic = 0.0;
  size_t dof = 0;
};

/// Pearson chi-squared statistic of the contingency table between two
/// columns on the given row subset (nulls excluded).
ChiSquared ChiSquaredTest(const EncodedTable& table, size_t c1, size_t c2,
                          const std::vector<size_t>& rows);

/// Pairwise soft-FD discovery: for every ordered column pair (C1, C2),
/// samples rows, filters soft keys, requires both high determinism
/// strength and a significant chi-squared association. Only unary FDs
/// are produced — CORDS by design measures marginal (pairwise)
/// dependence, the limitation §5.2 of the paper calls out.
Result<FdSet> DiscoverCords(const Table& table, const CordsOptions& options);

}  // namespace fdx

#endif  // FDX_BASELINES_CORDS_H_
