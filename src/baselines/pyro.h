#ifndef FDX_BASELINES_PYRO_H_
#define FDX_BASELINES_PYRO_H_

#include <cstdint>

#include "data/table.h"
#include "fd/fd.h"
#include "util/status.h"

namespace fdx {

/// Options of the PYRO-style baseline (Kruse & Naumann 2018).
struct PyroOptions {
  /// g1 error threshold: fraction of (ordered) tuple pairs that agree on
  /// the LHS but disagree on the RHS, relative to all pairs. The paper
  /// tunes this to the dataset noise rate.
  double max_error = 0.01;
  /// LHS size cap.
  size_t max_lhs_size = 4;
  /// Number of sampled tuple pairs for the agree-set error estimates
  /// that steer the ascension step.
  size_t sample_pairs = 20000;
  /// Wall-clock budget in seconds; 0 = unlimited.
  double time_budget_seconds = 0.0;
  uint64_t seed = 5;
};

/// Sampling-guided discovery of minimal approximate FDs, following
/// Pyro's architecture: per-RHS *ascension* from single-attribute
/// launchpads guided by sampled agree-set error estimates, exact
/// validation with stripped partitions, and *trickle-down*
/// minimization of every reached peak. Like Pyro, it errs on the side
/// of enumerating many syntactically valid FDs (high recall / low
/// parsimony — see paper §5.4).
Result<FdSet> DiscoverPyro(const Table& table, const PyroOptions& options);

}  // namespace fdx

#endif  // FDX_BASELINES_PYRO_H_
