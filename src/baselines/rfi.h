#ifndef FDX_BASELINES_RFI_H_
#define FDX_BASELINES_RFI_H_

#include <cstdint>

#include "data/table.h"
#include "fd/fd.h"
#include "util/status.h"

namespace fdx {

/// Options of the Reliable Fraction of Information baseline
/// (Mandros, Boley & Vreeken, KDD 2017).
struct RfiOptions {
  /// Approximation parameter: 1.0 searches exactly; smaller values prune
  /// more aggressively (branch dropped when alpha * bound <= best).
  double alpha = 1.0;
  /// Minimum reliable score for an FD to be reported at all.
  double min_score = 0.05;
  /// Monte-Carlo permutations for the bias correction.
  size_t permutations = 3;
  /// Use the closed-form hypergeometric bias (Vinh et al. 2010) instead
  /// of Monte-Carlo permutations — exact, as in the original RFI, but
  /// slower on high-cardinality determinant sets.
  bool use_exact_bias = false;
  /// LHS size cap; 0 = unbounded (the original algorithm). The search is
  /// exponential in the attribute count either way — exactly the
  /// scalability wall Table 5/6 of the paper report.
  size_t max_lhs_size = 0;
  /// Wall-clock budget in seconds; 0 = unlimited.
  double time_budget_seconds = 0.0;
  /// When the budget expires: if true, return the FDs of the attributes
  /// finished so far (the paper evaluates such partial RFI executions in
  /// §5.3); if false, fail with Status::Timeout.
  bool return_partial_on_timeout = false;
  uint64_t seed = 3;
};

/// An FD together with its reliable-fraction-of-information score, the
/// value RFI prints next to each dependency (paper Figure 4).
struct ScoredFd {
  FunctionalDependency fd;
  double score = 0.0;
};

/// Discovers the top-1 FD per attribute by maximizing the reliable
/// fraction of information
///   F(X; Y) = (I(X; Y) - E[I(X; sigma(Y))]) / H(Y)
/// with branch-and-bound over LHS candidates. The bias term
/// E[I(X; sigma(Y))] only grows with |dom(X)|, so
/// UB(X) = (H(Y) - bias(X)) / H(Y) is an admissible bound for all
/// supersets of X.
Result<FdSet> DiscoverRfi(const Table& table, const RfiOptions& options);

/// Same search, returning each winning FD with its score.
Result<std::vector<ScoredFd>> DiscoverRfiScored(const Table& table,
                                                const RfiOptions& options);

}  // namespace fdx

#endif  // FDX_BASELINES_RFI_H_
