#ifndef FDX_BASELINES_UCC_H_
#define FDX_BASELINES_UCC_H_

#include <vector>

#include "data/table.h"
#include "fd/attribute_set.h"
#include "util/status.h"

namespace fdx {

/// Options for unique-column-combination discovery.
struct UccOptions {
  /// Approximate keys: the fraction of rows that may be removed for the
  /// combination to become unique (the "certain keys under inconsistent
  /// data" relaxation of Koehler et al., paper §6). 0 = exact keys.
  double max_error = 0.0;
  /// Combination size cap.
  size_t max_size = 3;
  /// Wall-clock budget in seconds; 0 = unlimited.
  double time_budget_seconds = 0.0;
};

/// A discovered (approximate) key with its uniqueness error.
struct Ucc {
  std::vector<size_t> attributes;  ///< Sorted.
  double error = 0.0;              ///< KeyError of the combination.
};

/// Levelwise discovery of all *minimal* (approximate) unique column
/// combinations using stripped partitions: a combination is unique when
/// its partition strips to nothing, approximately unique when the
/// partition's key error is within `max_error`. Supersets of found UCCs
/// are pruned (minimality). Null cells never match, so a column with
/// nulls can still be a key.
Result<std::vector<Ucc>> DiscoverUccs(const Table& table,
                                      const UccOptions& options = {});

}  // namespace fdx

#endif  // FDX_BASELINES_UCC_H_
