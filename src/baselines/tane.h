#ifndef FDX_BASELINES_TANE_H_
#define FDX_BASELINES_TANE_H_

#include "data/table.h"
#include "fd/fd.h"
#include "util/status.h"

namespace fdx {

/// Options of the TANE baseline (Huhtala et al. 1999).
struct TaneOptions {
  /// g3 error tolerance: an FD X -> A is reported when at most this
  /// fraction of rows must be removed for it to hold exactly. 0 finds
  /// exact FDs; the paper tunes this to the dataset noise level.
  double max_error = 0.0;
  /// Lattice level cap (LHS size). TANE is exponential without it; the
  /// evaluation uses FDs with up to 3 LHS attributes.
  size_t max_lhs_size = 3;
  /// Wall-clock budget in seconds; 0 = unlimited. On expiry the run
  /// aborts with Status::Timeout, which benches render as '-' like the
  /// paper's 8-hour cap.
  double time_budget_seconds = 0.0;
};

/// Levelwise discovery of all minimal (approximate) FDs using stripped
/// partitions and candidate-RHS (C+) pruning. Returns every minimal
/// non-trivial FD whose g3 error is at most `max_error`.
Result<FdSet> DiscoverTane(const Table& table, const TaneOptions& options);

}  // namespace fdx

#endif  // FDX_BASELINES_TANE_H_
