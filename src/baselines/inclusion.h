#ifndef FDX_BASELINES_INCLUSION_H_
#define FDX_BASELINES_INCLUSION_H_

#include <string>
#include <vector>

#include "data/table.h"
#include "util/status.h"

namespace fdx {

/// A unary inclusion dependency A ⊆ B within one table: every non-null
/// value of attribute A also appears in attribute B. INDs complete the
/// classical profiling trio (keys, FDs, INDs) and feed foreign-key
/// detection downstream.
struct InclusionDependency {
  size_t lhs = 0;  ///< The contained attribute (A).
  size_t rhs = 0;  ///< The containing attribute (B).
  /// Fraction of A's distinct non-null values found in B (1 = exact).
  double coverage = 1.0;

  /// Renders e.g. "City [= BillingCity (coverage 1.000)".
  std::string ToString(const Schema& schema) const;
};

/// Options for IND discovery.
struct IndOptions {
  /// Approximate INDs: minimum distinct-value coverage to report.
  double min_coverage = 1.0;
  /// Attributes with fewer distinct values than this are skipped as
  /// LHS (constants trivially embed everywhere).
  size_t min_lhs_cardinality = 2;
};

/// SPIDER-style discovery of all unary (approximate) inclusion
/// dependencies between columns of one table, by sorted-value-set
/// intersection. Nulls are ignored on both sides. Values compare with
/// the same strict semantics as the rest of the library (numeric
/// int/double unify; strings never equal numbers).
Result<std::vector<InclusionDependency>> DiscoverInclusionDependencies(
    const Table& table, const IndOptions& options = {});

}  // namespace fdx

#endif  // FDX_BASELINES_INCLUSION_H_
