#include "baselines/rfi.h"

#include <algorithm>
#include <cmath>

#include "fd/attribute_set.h"
#include "baselines/info_theory.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace fdx {

namespace {

struct SearchContext {
  const EncodedTable* table;
  size_t target;
  double h_target;
  const RfiOptions* options;
  const Deadline* deadline;
  Rng* rng;
  double best_score = 0.0;
  AttributeSet best_set;
  bool timed_out = false;
};

double ReliableScore(SearchContext* ctx, const AttributeSet& x,
                     double* bias_out) {
  const double mi = MutualInformation(*ctx->table, x, ctx->target);
  const double bias =
      ctx->options->use_exact_bias
          ? ExactPermutationBias(*ctx->table, x, ctx->target)
          : PermutationBias(*ctx->table, x, ctx->target,
                            ctx->options->permutations, ctx->rng);
  if (bias_out != nullptr) *bias_out = bias;
  if (ctx->h_target <= 0.0) return 0.0;
  return (mi - bias) / ctx->h_target;
}

/// Depth-first search with canonical extension (only attributes larger
/// than the current maximum are added), scoring each node and pruning
/// with the admissible bound UB(X) = (H(Y) - bias(X)) / H(Y).
void Search(SearchContext* ctx, const AttributeSet& x, size_t min_next) {
  if (ctx->deadline->Expired()) {
    ctx->timed_out = true;
    return;
  }
  double bias = 0.0;
  if (!x.Empty()) {
    const double score = ReliableScore(ctx, x, &bias);
    if (score > ctx->best_score) {
      ctx->best_score = score;
      ctx->best_set = x;
    }
    // Bias only grows on supersets, so this bounds every extension.
    const double upper_bound =
        ctx->h_target > 0.0 ? (ctx->h_target - bias) / ctx->h_target : 0.0;
    if (ctx->options->alpha * upper_bound <= ctx->best_score) return;
    if (ctx->options->max_lhs_size > 0 &&
        x.Count() >= ctx->options->max_lhs_size) {
      return;
    }
  }
  const size_t k = ctx->table->num_columns();
  for (size_t a = min_next; a < k; ++a) {
    if (a == ctx->target || x.Contains(a)) continue;
    AttributeSet child = x;
    child.Add(a);
    Search(ctx, child, a + 1);
    if (ctx->timed_out) return;
  }
}

}  // namespace

Result<std::vector<ScoredFd>> DiscoverRfiScored(const Table& table,
                                                const RfiOptions& options) {
  const size_t k = table.num_columns();
  if (k == 0) return Status::InvalidArgument("empty table");
  if (k > AttributeSet::kMaxAttributes) {
    return Status::InvalidArgument("RFI supports at most 128 attributes");
  }
  const EncodedTable encoded = EncodedTable::Encode(table);
  Deadline deadline(options.time_budget_seconds);
  Rng rng(options.seed);

  std::vector<ScoredFd> fds;
  for (size_t target = 0; target < k; ++target) {
    SearchContext ctx;
    ctx.table = &encoded;
    ctx.target = target;
    ctx.h_target = Entropy(encoded, AttributeSet::Single(target));
    ctx.options = &options;
    ctx.deadline = &deadline;
    ctx.rng = &rng;
    Search(&ctx, AttributeSet(), 0);
    if (ctx.timed_out) {
      if (options.return_partial_on_timeout) return fds;
      return Status::Timeout("RFI budget exceeded");
    }
    if (ctx.best_score >= options.min_score && !ctx.best_set.Empty()) {
      fds.push_back(
          {FunctionalDependency(ctx.best_set.ToIndices(), target),
           ctx.best_score});
    }
  }
  return fds;
}

Result<FdSet> DiscoverRfi(const Table& table, const RfiOptions& options) {
  FDX_ASSIGN_OR_RETURN(std::vector<ScoredFd> scored,
                       DiscoverRfiScored(table, options));
  FdSet fds;
  fds.reserve(scored.size());
  for (auto& entry : scored) fds.push_back(std::move(entry.fd));
  return fds;
}

}  // namespace fdx
