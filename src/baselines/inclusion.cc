#include "baselines/inclusion.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace fdx {

namespace {

/// A column's distinct non-null values, split by comparability class:
/// numerics unify across int/double, strings stand alone.
struct ValueSets {
  std::set<double> numerics;
  std::set<std::string> strings;

  size_t size() const { return numerics.size() + strings.size(); }
};

ValueSets CollectValues(const Table& table, size_t column) {
  ValueSets sets;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& v = table.cell(r, column);
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt:
      case ValueType::kDouble:
        sets.numerics.insert(v.ToNumeric());
        break;
      case ValueType::kString:
        sets.strings.insert(v.AsString());
        break;
    }
  }
  return sets;
}

/// Count of `a`'s values contained in `b`.
size_t ContainedCount(const ValueSets& a, const ValueSets& b) {
  size_t contained = 0;
  for (double v : a.numerics) {
    if (b.numerics.count(v) > 0) ++contained;
  }
  for (const std::string& v : a.strings) {
    if (b.strings.count(v) > 0) ++contained;
  }
  return contained;
}

}  // namespace

std::string InclusionDependency::ToString(const Schema& schema) const {
  return schema.name(lhs) + " [= " + schema.name(rhs) + " (coverage " +
         FormatDouble(coverage, 3) + ")";
}

Result<std::vector<InclusionDependency>> DiscoverInclusionDependencies(
    const Table& table, const IndOptions& options) {
  const size_t k = table.num_columns();
  if (k < 2) return Status::InvalidArgument("need at least two columns");
  if (options.min_coverage <= 0.0 || options.min_coverage > 1.0) {
    return Status::InvalidArgument("min_coverage must be in (0, 1]");
  }
  std::vector<ValueSets> values(k);
  for (size_t c = 0; c < k; ++c) values[c] = CollectValues(table, c);

  std::vector<InclusionDependency> results;
  for (size_t a = 0; a < k; ++a) {
    if (values[a].size() < options.min_lhs_cardinality) continue;
    for (size_t b = 0; b < k; ++b) {
      if (a == b) continue;
      // Exact INDs need |A| <= |B|; approximate ones can ignore this,
      // but coverage still caps at |B| / |A|.
      const size_t contained = ContainedCount(values[a], values[b]);
      const double coverage = static_cast<double>(contained) /
                              static_cast<double>(values[a].size());
      if (coverage + 1e-12 >= options.min_coverage) {
        results.push_back({a, b, coverage});
      }
    }
  }
  std::sort(results.begin(), results.end(),
            [](const InclusionDependency& x, const InclusionDependency& y) {
              if (x.coverage != y.coverage) return x.coverage > y.coverage;
              if (x.lhs != y.lhs) return x.lhs < y.lhs;
              return x.rhs < y.rhs;
            });
  return results;
}

}  // namespace fdx
