#include "baselines/tane.h"

#include <algorithm>
#include <unordered_map>

#include "fd/attribute_set.h"
#include "fd/partition.h"
#include "util/stopwatch.h"

namespace fdx {

namespace {

/// Per-node state of one lattice level.
struct LevelNode {
  StrippedPartition partition;
  AttributeSet rhs_candidates;  ///< TANE's C+(X).
};

using Level = std::unordered_map<AttributeSet, LevelNode, AttributeSetHash>;

/// Generates level (depth+1) from `level`: joins pairs of nodes that
/// differ in one attribute, requires every depth-subset to be present
/// (prefix-block join + prune check), computes the partition product and
/// C+(Z) = intersection of C+(Z \ {A}) over A in Z.
Result<Level> GenerateNextLevel(const Level& level, const Deadline& deadline) {
  Level next;
  std::vector<AttributeSet> keys;
  keys.reserve(level.size());
  for (const auto& [x, node] : level) keys.push_back(x);
  std::sort(keys.begin(), keys.end());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (deadline.Expired()) return Status::Timeout("TANE budget exceeded");
    for (size_t j = i + 1; j < keys.size(); ++j) {
      const AttributeSet z = keys[i].Union(keys[j]);
      if (z.Count() != keys[i].Count() + 1) continue;
      if (next.count(z) > 0) continue;
      // All |Z|-1 subsets must survive in the current level.
      AttributeSet rhs_candidates;
      bool ok = true;
      bool first = true;
      for (size_t a : z.ToIndices()) {
        auto it = level.find(z.Without(a));
        if (it == level.end()) {
          ok = false;
          break;
        }
        rhs_candidates = first ? it->second.rhs_candidates
                               : rhs_candidates.Intersect(
                                     it->second.rhs_candidates);
        first = false;
      }
      if (!ok || rhs_candidates.Empty()) continue;
      LevelNode node;
      node.rhs_candidates = rhs_candidates;
      node.partition = StrippedPartition::Multiply(
          level.at(keys[i]).partition, level.at(keys[j]).partition);
      next.emplace(z, std::move(node));
    }
  }
  return next;
}

}  // namespace

Result<FdSet> DiscoverTane(const Table& table, const TaneOptions& options) {
  const size_t k = table.num_columns();
  if (k == 0) return Status::InvalidArgument("empty table");
  if (k > AttributeSet::kMaxAttributes) {
    return Status::InvalidArgument("TANE supports at most 128 attributes");
  }
  const EncodedTable encoded = EncodedTable::Encode(table);
  Deadline deadline(options.time_budget_seconds);

  AttributeSet all;
  for (size_t i = 0; i < k; ++i) all.Add(i);

  FdSet fds;
  // Level 1: single attributes; C+({A}) = R from TANE's C+(emptyset) = R.
  // We do not emit empty-LHS dependencies (constant columns), so
  // dependency checks start at level 2.
  Level level;
  for (size_t i = 0; i < k; ++i) {
    LevelNode node;
    node.partition = StrippedPartition::FromColumn(encoded, i);
    node.rhs_candidates = all;
    level.emplace(AttributeSet::Single(i), std::move(node));
  }

  for (size_t depth = 2; depth <= options.max_lhs_size + 1; ++depth) {
    FDX_ASSIGN_OR_RETURN(Level next, GenerateNextLevel(level, deadline));
    if (next.empty()) break;

    // compute_dependencies: for X at this level test X \ {A} -> A for
    // every A in X ∩ C+(X); the LHS partition lives in the parent level.
    for (auto& [x, node] : next) {
      if (deadline.Expired()) return Status::Timeout("TANE budget exceeded");
      const AttributeSet test_set = x.Intersect(node.rhs_candidates);
      for (size_t a : test_set.ToIndices()) {
        const AttributeSet lhs = x.Without(a);
        auto parent = level.find(lhs);
        if (parent == level.end()) continue;  // parent pruned away
        // A superkey LHS "determines" everything syntactically but
        // carries no dependency information — under the strict null
        // semantics even an all-null column is a superkey. Skip these.
        if (parent->second.partition.IsSuperKey()) continue;
        const double error = parent->second.partition.FdError(node.partition);
        if (error <= options.max_error) {
          fds.emplace_back(lhs.ToIndices(), a);
          node.rhs_candidates.Remove(a);
          if (error == 0.0) {
            // Exact FD: no B outside X can be a minimal RHS above X.
            for (size_t b = 0; b < k; ++b) {
              if (!x.Contains(b)) node.rhs_candidates.Remove(b);
            }
          }
        }
      }
    }

    // prune: drop nodes with empty C+ (they can produce no minimal FD).
    for (auto it = next.begin(); it != next.end();) {
      if (it->second.rhs_candidates.Empty()) {
        it = next.erase(it);
      } else {
        ++it;
      }
    }
    level = std::move(next);
  }
  return fds;
}

}  // namespace fdx
