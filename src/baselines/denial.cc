#include "baselines/denial.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "util/rng.h"
#include "util/stopwatch.h"

namespace fdx {

namespace {

const char* OpName(PairOp op) {
  switch (op) {
    case PairOp::kEq:
      return "=";
    case PairOp::kNeq:
      return "!=";
    case PairOp::kLt:
      return "<";
    case PairOp::kGt:
      return ">";
  }
  return "?";
}

/// The full predicate space of a schema: Eq/Neq everywhere, Lt/Gt for
/// numeric columns. At most one predicate of the space can be chosen
/// per attribute in any constraint.
struct PredicateSpace {
  std::vector<DcPredicate> predicates;
  /// predicates grouped per attribute (indices into `predicates`).
  std::vector<std::vector<size_t>> by_attribute;
};

PredicateSpace BuildSpace(const Table& table) {
  PredicateSpace space;
  const size_t k = table.num_columns();
  space.by_attribute.resize(k);
  for (size_t a = 0; a < k; ++a) {
    bool numeric = table.num_rows() > 0;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      const Value& v = table.cell(r, a);
      if (v.is_null()) continue;
      if (v.type() != ValueType::kInt && v.type() != ValueType::kDouble) {
        numeric = false;
        break;
      }
    }
    const std::vector<PairOp> ops =
        numeric ? std::vector<PairOp>{PairOp::kEq, PairOp::kNeq, PairOp::kLt,
                                      PairOp::kGt}
                : std::vector<PairOp>{PairOp::kEq, PairOp::kNeq};
    for (PairOp op : ops) {
      space.by_attribute[a].push_back(space.predicates.size());
      space.predicates.push_back({a, op});
    }
  }
  return space;
}

/// Evidence mask of one tuple pair: bit i set iff predicate i holds.
uint64_t EvidenceOf(const Table& table, const PredicateSpace& space,
                    size_t row_a, size_t row_b) {
  uint64_t mask = 0;
  for (size_t p = 0; p < space.predicates.size(); ++p) {
    const DcPredicate& predicate = space.predicates[p];
    const Value& va = table.cell(row_a, predicate.attribute);
    const Value& vb = table.cell(row_b, predicate.attribute);
    bool holds = false;
    if (va.is_null() || vb.is_null()) {
      // Nulls satisfy only inequality (a missing value differs from
      // everything, mirroring the library's strict semantics).
      holds = predicate.op == PairOp::kNeq;
    } else {
      switch (predicate.op) {
        case PairOp::kEq:
          holds = va.EqualsStrict(vb);
          break;
        case PairOp::kNeq:
          holds = !va.EqualsStrict(vb);
          break;
        case PairOp::kLt:
          holds = va.ToNumeric() < vb.ToNumeric();
          break;
        case PairOp::kGt:
          holds = va.ToNumeric() > vb.ToNumeric();
          break;
      }
    }
    if (holds) mask |= uint64_t{1} << p;
  }
  return mask;
}

struct SearchState {
  const PredicateSpace* space;
  const DcOptions* options;
  const Deadline* deadline;
  std::vector<DenialConstraint>* results;
  std::vector<uint64_t> found_masks;  // minimality pruning
  bool timed_out = false;
};

/// DFS over attributes in canonical order. `mask` holds the chosen
/// predicates; `evidence` the sampled evidence masks still containing
/// the choice (the constraint is violated by exactly these pairs).
void Search(SearchState* state, uint64_t mask, size_t next_attribute,
            size_t chosen, const std::vector<uint64_t>& evidence) {
  if (state->timed_out) return;
  if (state->deadline->Expired()) {
    state->timed_out = true;
    return;
  }
  if (chosen > 0 && evidence.empty()) {
    // Valid DC; minimal because parents (one predicate fewer) were
    // still violated, and not a superset of a found DC by pruning.
    DenialConstraint dc;
    for (size_t p = 0; p < state->space->predicates.size(); ++p) {
      if (mask & (uint64_t{1} << p)) {
        dc.predicates.push_back(state->space->predicates[p]);
      }
    }
    state->results->push_back(std::move(dc));
    state->found_masks.push_back(mask);
    return;
  }
  if (chosen >= state->options->max_predicates) return;
  const size_t k = state->space->by_attribute.size();
  for (size_t a = next_attribute; a < k; ++a) {
    for (size_t p : state->space->by_attribute[a]) {
      const uint64_t extended = mask | (uint64_t{1} << p);
      // Superset-of-found pruning (minimality).
      bool superset = false;
      for (uint64_t found : state->found_masks) {
        if ((found & extended) == found) {
          superset = true;
          break;
        }
      }
      if (superset) continue;
      // Survivors: evidence still containing every chosen predicate.
      std::vector<uint64_t> survivors;
      survivors.reserve(evidence.size());
      for (uint64_t e : evidence) {
        if ((e & extended) == extended) survivors.push_back(e);
      }
      Search(state, extended, a + 1, chosen + 1, survivors);
      if (state->timed_out) return;
    }
  }
}

}  // namespace

std::string DenialConstraint::ToString(const Schema& schema) const {
  std::string out = "not(";
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) out += " and ";
    const std::string name = schema.name(predicates[i].attribute);
    out += "t." + name + " " + OpName(predicates[i].op) + " t'." + name;
  }
  out += ")";
  return out;
}

Result<std::vector<DenialConstraint>> DiscoverDenialConstraints(
    const Table& table, const DcOptions& options) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  if (k == 0 || n < 2) {
    return Status::InvalidArgument("need >= 2 rows and >= 1 column");
  }
  if (k > 16) {
    return Status::InvalidArgument(
        "denial-constraint discovery supports at most 16 attributes");
  }
  const PredicateSpace space = BuildSpace(table);
  Deadline deadline(options.time_budget_seconds);
  Rng rng(options.seed);

  // Sampled, deduplicated evidence sets.
  std::set<uint64_t> unique_evidence;
  for (size_t i = 0; i < options.sample_pairs; ++i) {
    const size_t a = rng.NextUint64(n);
    size_t b = rng.NextUint64(n - 1);
    if (b >= a) ++b;
    unique_evidence.insert(EvidenceOf(table, space, a, b));
    if ((i & 1023) == 0 && deadline.Expired()) {
      return Status::Timeout("DC discovery budget exceeded");
    }
  }
  const std::vector<uint64_t> evidence(unique_evidence.begin(),
                                       unique_evidence.end());

  std::vector<DenialConstraint> results;
  SearchState state;
  state.space = &space;
  state.options = &options;
  state.deadline = &deadline;
  state.results = &results;
  Search(&state, 0, 0, 0, evidence);
  if (state.timed_out) return Status::Timeout("DC discovery budget exceeded");
  // Minimality post-filter: the DFS visits attributes in canonical
  // order, so a valid set can be emitted before a smaller valid subset
  // living in a later branch (e.g. {Eq(a), Neq(b)} before {Neq(b)}).
  std::vector<DenialConstraint> minimal;
  for (size_t i = 0; i < results.size(); ++i) {
    const uint64_t mask = state.found_masks[i];
    bool has_proper_subset = false;
    for (size_t j = 0; j < results.size(); ++j) {
      if (i == j) continue;
      const uint64_t other = state.found_masks[j];
      if (other != mask && (other & mask) == other) {
        has_proper_subset = true;
        break;
      }
    }
    if (!has_proper_subset) minimal.push_back(std::move(results[i]));
  }
  return minimal;
}

}  // namespace fdx
