#include "baselines/cords.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.h"

namespace fdx {

ChiSquared ChiSquaredTest(const EncodedTable& table, size_t c1, size_t c2,
                          const std::vector<size_t>& rows) {
  // Contingency over the values present in the sample.
  std::unordered_map<int32_t, size_t> rows_of_a, rows_of_b;
  std::unordered_map<uint64_t, size_t> joint;
  size_t n = 0;
  for (size_t r : rows) {
    const int32_t a = table.code(r, c1);
    const int32_t b = table.code(r, c2);
    if (a == EncodedTable::kNullCode || b == EncodedTable::kNullCode) {
      continue;
    }
    ++rows_of_a[a];
    ++rows_of_b[b];
    ++joint[(static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
            static_cast<uint32_t>(b)];
    ++n;
  }
  ChiSquared out;
  if (n == 0 || rows_of_a.size() < 2 || rows_of_b.size() < 2) return out;
  for (const auto& [a, count_a] : rows_of_a) {
    for (const auto& [b, count_b] : rows_of_b) {
      const double expected = static_cast<double>(count_a) *
                              static_cast<double>(count_b) /
                              static_cast<double>(n);
      const auto it =
          joint.find((static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
                     static_cast<uint32_t>(b));
      const double observed =
          it == joint.end() ? 0.0 : static_cast<double>(it->second);
      const double diff = observed - expected;
      out.statistic += diff * diff / expected;
    }
  }
  out.dof = (rows_of_a.size() - 1) * (rows_of_b.size() - 1);
  return out;
}

Result<FdSet> DiscoverCords(const Table& table, const CordsOptions& options) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  if (k == 0 || n == 0) return Status::InvalidArgument("empty table");
  const EncodedTable encoded = EncodedTable::Encode(table);
  Rng rng(options.seed);

  // One shared row sample for all pairs (CORDS samples per pair from the
  // same scan; a shared sample keeps the scores consistent).
  std::vector<size_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  if (n > options.sample_rows) {
    rng.Shuffle(&rows);
    rows.resize(options.sample_rows);
  }

  FdSet fds;
  for (size_t c1 = 0; c1 < k; ++c1) {
    // Distinct counts of the determinant on the sample.
    std::unordered_set<int32_t> distinct_c1;
    size_t non_null_c1 = 0;
    for (size_t r : rows) {
      const int32_t code = encoded.code(r, c1);
      if (code == EncodedTable::kNullCode) continue;
      distinct_c1.insert(code);
      ++non_null_c1;
    }
    if (non_null_c1 == 0 || distinct_c1.size() < 2) continue;
    // Soft-key filter: near-unique columns determine everything
    // syntactically but carry no semantics.
    if (static_cast<double>(distinct_c1.size()) >
        options.soft_key_fraction * static_cast<double>(non_null_c1)) {
      continue;
    }
    for (size_t c2 = 0; c2 < k; ++c2) {
      if (c1 == c2) continue;
      // Per-determinant-value majority mass: strength = (1/N) * sum
      // over values a of the count of the most frequent b given a.
      std::unordered_map<int32_t, std::unordered_map<int32_t, size_t>>
          contingency;
      size_t pair_rows = 0;
      for (size_t r : rows) {
        const int32_t a = encoded.code(r, c1);
        const int32_t b = encoded.code(r, c2);
        if (a == EncodedTable::kNullCode || b == EncodedTable::kNullCode) {
          continue;
        }
        ++contingency[a][b];
        ++pair_rows;
      }
      if (pair_rows == 0) continue;
      size_t majority_mass = 0;
      for (const auto& [a, counts] : contingency) {
        size_t best = 0;
        for (const auto& [b, count] : counts) best = std::max(best, count);
        majority_mass += best;
      }
      const double strength = static_cast<double>(majority_mass) /
                              static_cast<double>(pair_rows);
      if (strength < options.strength_threshold) continue;
      const ChiSquared chi = ChiSquaredTest(encoded, c1, c2, rows);
      // Significance scaled by degrees of freedom (Wilson-Hilferty style
      // coarse cut: statistic must exceed dof + quantile * sqrt(2 dof)).
      const double cutoff =
          static_cast<double>(chi.dof) +
          options.chi_squared_quantile *
              std::sqrt(2.0 * static_cast<double>(std::max<size_t>(chi.dof, 1)));
      if (chi.dof == 0 || chi.statistic < cutoff) continue;
      fds.emplace_back(std::vector<size_t>{c1}, c2);
    }
  }
  return fds;
}

}  // namespace fdx
