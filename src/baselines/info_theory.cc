#include "baselines/info_theory.h"

#include <cmath>
#include <numeric>
#include <unordered_map>

namespace fdx {

namespace {

struct TupleKey {
  std::vector<int32_t> codes;
  bool operator==(const TupleKey& other) const {
    return codes == other.codes;
  }
};

struct TupleKeyHash {
  size_t operator()(const TupleKey& key) const {
    size_t h = 1469598103934665603ull;
    for (int32_t c : key.codes) {
      h ^= static_cast<size_t>(static_cast<uint32_t>(c)) +
           0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

std::vector<int32_t> GroupIds(const EncodedTable& table,
                              const AttributeSet& attrs, size_t* num_groups) {
  const size_t n = table.num_rows();
  const std::vector<size_t> cols = attrs.ToIndices();
  std::vector<int32_t> groups(n, 0);
  std::unordered_map<TupleKey, int32_t, TupleKeyHash> dict;
  TupleKey key;
  key.codes.resize(cols.size());
  int32_t next = 0;
  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < cols.size(); ++i) {
      key.codes[i] = table.code(r, cols[i]);
    }
    auto [it, inserted] = dict.try_emplace(key, next);
    if (inserted) ++next;
    groups[r] = it->second;
  }
  if (num_groups != nullptr) *num_groups = static_cast<size_t>(next);
  return groups;
}

double EntropyOfGroups(const std::vector<int32_t>& groups,
                       size_t num_groups) {
  if (groups.empty()) return 0.0;
  std::vector<size_t> counts(num_groups, 0);
  for (int32_t g : groups) ++counts[g];
  const double n = static_cast<double>(groups.size());
  double h = 0.0;
  for (size_t count : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / n;
    h -= p * std::log(p);
  }
  return h;
}

double Entropy(const EncodedTable& table, const AttributeSet& attrs) {
  size_t num_groups = 0;
  const auto groups = GroupIds(table, attrs, &num_groups);
  return EntropyOfGroups(groups, num_groups);
}

namespace {

/// Joint entropy of (x-groups, y-codes) given precomputed x group ids.
double JointEntropy(const std::vector<int32_t>& x_groups, size_t x_count,
                    const std::vector<int32_t>& y_codes, size_t y_count) {
  // Dense contingency when small, hashed otherwise.
  const size_t cells = x_count * (y_count + 1);
  const double n = static_cast<double>(x_groups.size());
  double h = 0.0;
  if (cells > 0 && cells <= 1u << 22) {
    std::vector<size_t> counts(cells, 0);
    for (size_t r = 0; r < x_groups.size(); ++r) {
      const size_t y =
          y_codes[r] < 0 ? y_count : static_cast<size_t>(y_codes[r]);
      ++counts[static_cast<size_t>(x_groups[r]) * (y_count + 1) + y];
    }
    for (size_t count : counts) {
      if (count == 0) continue;
      const double p = static_cast<double>(count) / n;
      h -= p * std::log(p);
    }
    return h;
  }
  std::unordered_map<uint64_t, size_t> counts;
  counts.reserve(x_groups.size());
  for (size_t r = 0; r < x_groups.size(); ++r) {
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(x_groups[r])) << 32) |
        static_cast<uint32_t>(y_codes[r]);
    ++counts[key];
  }
  for (const auto& [key, count] : counts) {
    const double p = static_cast<double>(count) / n;
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace

double MutualInformation(const EncodedTable& table, const AttributeSet& x,
                         size_t y) {
  size_t x_count = 0;
  const auto x_groups = GroupIds(table, x, &x_count);
  const double hx = EntropyOfGroups(x_groups, x_count);
  const double hy = Entropy(table, AttributeSet::Single(y));
  const double hxy = JointEntropy(x_groups, x_count, table.column_codes(y),
                                  table.Cardinality(y));
  return hx + hy - hxy;
}

double ExactPermutationBias(const EncodedTable& table,
                            const AttributeSet& x, size_t y) {
  const size_t n = table.num_rows();
  if (n == 0) return 0.0;
  size_t x_count = 0;
  const auto x_groups = GroupIds(table, x, &x_count);
  // Margins: a_i = |X group i|, b_j = count of Y value j (nulls are one
  // symbol, consistent with the plug-in entropies).
  std::vector<size_t> a(x_count, 0);
  for (int32_t g : x_groups) ++a[g];
  std::unordered_map<int32_t, size_t> b_map;
  for (int32_t code : table.column_codes(y)) ++b_map[code];
  std::vector<size_t> b;
  b.reserve(b_map.size());
  for (const auto& [code, count] : b_map) b.push_back(count);

  // log k! table.
  std::vector<double> log_factorial(n + 1, 0.0);
  for (size_t k = 1; k <= n; ++k) {
    log_factorial[k] = log_factorial[k - 1] + std::log(static_cast<double>(k));
  }
  const double log_n_factorial = log_factorial[n];
  const double dn = static_cast<double>(n);

  // E[I] = sum_{i,j} sum_{nij = max(1, ai+bj-n)}^{min(ai,bj)}
  //        (nij/n) log(n nij / (ai bj)) * P_hypergeometric(nij).
  double expected = 0.0;
  for (size_t ai : a) {
    for (size_t bj : b) {
      const size_t lo = ai + bj > n ? ai + bj - n : 1;
      const size_t hi = std::min(ai, bj);
      for (size_t nij = std::max<size_t>(lo, 1); nij <= hi; ++nij) {
        const double log_p =
            log_factorial[ai] + log_factorial[bj] + log_factorial[n - ai] +
            log_factorial[n - bj] - log_n_factorial - log_factorial[nij] -
            log_factorial[ai - nij] - log_factorial[bj - nij] -
            log_factorial[n - ai - bj + nij];
        const double dnij = static_cast<double>(nij);
        expected += dnij / dn *
                    std::log(dn * dnij /
                             (static_cast<double>(ai) *
                              static_cast<double>(bj))) *
                    std::exp(log_p);
      }
    }
  }
  return std::max(0.0, expected);
}

double PermutationBias(const EncodedTable& table, const AttributeSet& x,
                       size_t y, size_t permutations, Rng* rng) {
  if (permutations == 0) return 0.0;
  size_t x_count = 0;
  const auto x_groups = GroupIds(table, x, &x_count);
  const double hx = EntropyOfGroups(x_groups, x_count);
  const double hy = Entropy(table, AttributeSet::Single(y));
  std::vector<int32_t> shuffled = table.column_codes(y);
  double total = 0.0;
  for (size_t p = 0; p < permutations; ++p) {
    rng->Shuffle(&shuffled);
    const double hxy = JointEntropy(x_groups, x_count, shuffled,
                                    table.Cardinality(y));
    total += hx + hy - hxy;
  }
  return std::max(0.0, total / static_cast<double>(permutations));
}

}  // namespace fdx
