#ifndef FDX_STORE_CHUNKED_TABLE_H_
#define FDX_STORE_CHUNKED_TABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/table.h"
#include "util/status.h"

namespace fdx {

/// Out-of-core columnar table: rows arrive in batches, each batch is
/// dictionary-encoded against an *incremental* dictionary (codes are
/// stable across chunks — appending never renumbers anything) and kept
/// as one immutable chunk. With a store directory, chunk payloads spill
/// to disk through the same write-temp-fsync-rename pattern as the
/// service snapshots and only the dictionaries stay resident, so the
/// table itself can be far larger than RAM; without one, chunks stay in
/// memory (same code paths, useful for tests and small inputs).
///
/// Two code spaces per column:
///
///  * storage codes — exact values. int 3, double 3.0, and string "3"
///    get distinct codes, so chunks round-trip losslessly through
///    ReadChunkValues (the service replays them through fingerprinted
///    appends, which must reproduce the original bytes).
///  * transform codes — the EncodedTable contract: numerics merge on
///    their double value (3 == 3.0), first appearance in row order
///    assigns the next dense code. ReadColumnCodes emits these, which
///    is what makes the streaming transform bit-identical to
///    EncodedTable::Encode of the concatenated table.
///
/// Durable layout under `dir`:
///
///   manifest.json    — schema, total rows, per-chunk {file, rows,
///                      fingerprint}; rewritten atomically per append
///                      (O(#chunks), the chunk payloads are immutable)
///   chunk-NNNNNN.bin — magic FDXCHNK1; u64 rows, cols, dict_bytes;
///                      column-major i32 storage codes (so one column
///                      is one contiguous slice, readable with a single
///                      pread); then a JSON dictionary *delta* — only
///                      the values first seen in this chunk
///
/// Open() replays the dictionary deltas in chunk order and verifies
/// every chunk's fingerprint, so a reopened store either matches the
/// writer's state exactly or fails loudly.
///
/// Not thread-safe; callers serialize access (the service wraps a store
/// in its per-session mutex).
class ChunkedTable {
 public:
  ChunkedTable() = default;
  ChunkedTable(ChunkedTable&&) = default;
  ChunkedTable& operator=(ChunkedTable&&) = default;
  ChunkedTable(const ChunkedTable&) = delete;
  ChunkedTable& operator=(const ChunkedTable&) = delete;

  /// New empty store. `dir` empty keeps chunks in memory; otherwise the
  /// directory is created and an empty manifest written immediately.
  static Result<ChunkedTable> Create(const Schema& schema, std::string dir);

  /// Reopens a spilled store, replaying dictionary deltas and verifying
  /// every chunk fingerprint against the manifest.
  static Result<ChunkedTable> Open(std::string dir);

  /// Encodes `batch` as one new chunk. Column count must match the
  /// schema; zero-row batches are rejected. With a store dir the chunk
  /// file and updated manifest are durable before this returns, and the
  /// chunk's codes are dropped from memory — append I/O is O(chunk)
  /// plus the O(#chunks) manifest rewrite.
  Status AppendBatch(const Table& batch);

  const Schema& schema() const { return schema_; }
  const std::string& dir() const { return dir_; }
  bool spilled() const { return !dir_.empty(); }
  size_t num_rows() const { return total_rows_; }
  size_t num_columns() const { return schema_.size(); }
  size_t num_chunks() const { return chunks_.size(); }
  size_t ChunkRowCount(size_t chunk) const { return chunks_[chunk].rows; }
  const std::string& ChunkFingerprintHex(size_t chunk) const {
    return chunks_[chunk].fingerprint_hex;
  }

  /// Transform-code cardinality of a column (numerics merged), i.e.
  /// exactly EncodedTable::Encode(concatenated table).Cardinality(col).
  size_t Cardinality(size_t col) const {
    return static_cast<size_t>(dicts_[col].next_transform);
  }
  size_t NullCount(size_t col) const { return dicts_[col].null_count; }
  /// Distinct exact values seen in a column (storage codes).
  size_t DictionarySize(size_t col) const { return dicts_[col].values.size(); }

  /// Streams one column's transform codes (kNullCode for nulls) across
  /// all chunks into `out` — the streaming transform's input. Spilled
  /// chunks cost one pread of the column's contiguous slice each.
  Status ReadColumnCodes(size_t col, std::vector<int32_t>* out) const;

  /// Exact value round-trip of one chunk (the service's replay path).
  /// Spilled chunks are fingerprint-verified before decoding, so a
  /// corrupted store surfaces as kIOError here rather than as silently
  /// different data.
  Result<Table> ReadChunkValues(size_t chunk) const;

 private:
  /// Per-column incremental dictionary; see the class comment for the
  /// two code spaces.
  struct ColumnDictionary {
    std::vector<Value> values;  ///< by storage code
    std::unordered_map<std::string, int32_t> by_string;
    std::unordered_map<int64_t, int32_t> by_int;
    /// Doubles key on their bit pattern (distinguishes -0.0 from 0.0 for
    /// exact round-trip; the transform map below still merges them).
    std::unordered_map<uint64_t, int32_t> by_double_bits;
    /// Transform-code assignment, mirroring EncodedTable::Encode.
    std::unordered_map<std::string, int32_t> t_string;
    std::map<double, int32_t> t_numeric;
    std::vector<int32_t> to_transform;  ///< storage code -> transform code
    int32_t next_transform = 0;
    size_t null_count = 0;
  };

  struct StoredChunk {
    size_t rows = 0;
    std::string file;  ///< basename under dir_; empty in memory mode
    std::string fingerprint_hex;
    /// Storage codes per column; cleared once spilled.
    std::vector<std::vector<int32_t>> codes;
  };

  int32_t EncodeCell(const Value& v, size_t col, std::vector<Value>* fresh);
  std::string SerializeChunk(const StoredChunk& chunk,
                             const std::vector<size_t>& dict_starts) const;
  std::string EncodeManifest() const;
  Status WriteManifest() const;
  Status LoadChunkPayload(size_t chunk, std::string* contents) const;

  Schema schema_;
  std::string dir_;
  size_t total_rows_ = 0;
  std::vector<ColumnDictionary> dicts_;
  std::vector<StoredChunk> chunks_;
};

}  // namespace fdx

#endif  // FDX_STORE_CHUNKED_TABLE_H_
