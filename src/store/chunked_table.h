#ifndef FDX_STORE_CHUNKED_TABLE_H_
#define FDX_STORE_CHUNKED_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/table.h"
#include "util/status.h"

namespace fdx {

class ChunkCodec;

/// How spilled chunk payloads are read back.
///
///  * kMmap (default): chunk files are memory-mapped once per chunk and
///    column slices are decoded straight out of the page cache, with
///    `madvise(SEQUENTIAL)` on map and `madvise(DONTNEED)` after each
///    slice so a bounded-memory scan never accumulates mapped residency.
///    The mapped bytes are fingerprint-verified on first touch. If the
///    map cannot be established (or the `store.mmap` fault point fires)
///    the store falls back to the read path for that chunk and counts
///    the fallback.
///  * kRead: the PR 9 pread(2) path, kept as a bit-identical fallback.
///
/// The `FDX_STORE_IO` environment variable (`mmap` or `read`) overrides
/// the default for newly created/opened stores; `set_io_mode` overrides
/// it programmatically. Both paths produce identical bytes.
enum class StoreIo { kMmap, kRead };

/// Resolves the process-wide default read path: `FDX_STORE_IO` if set
/// to a recognized value, otherwise kMmap.
StoreIo DefaultStoreIo();

/// Out-of-core columnar table: rows arrive in batches, each batch is
/// dictionary-encoded against an *incremental* dictionary (codes are
/// stable across chunks — appending never renumbers anything) and kept
/// as one immutable chunk. With a store directory, chunk payloads spill
/// to disk through the same write-temp-fsync-rename pattern as the
/// service snapshots and only the dictionaries stay resident, so the
/// table itself can be far larger than RAM; without one, chunks stay in
/// memory (same code paths, useful for tests and small inputs).
///
/// Two code spaces per column:
///
///  * storage codes — exact values. int 3, double 3.0, and string "3"
///    get distinct codes, so chunks round-trip losslessly through
///    ReadChunkValues (the service replays them through fingerprinted
///    appends, which must reproduce the original bytes).
///  * transform codes — the EncodedTable contract: numerics merge on
///    their double value (3 == 3.0), first appearance in row order
///    assigns the next dense code. ReadColumnCodes emits these, which
///    is what makes the streaming transform bit-identical to
///    EncodedTable::Encode of the concatenated table.
///
/// Durable layout under `dir`:
///
///   manifest.json    — schema, total rows, codec, per-chunk {file,
///                      rows, fingerprint}; rewritten atomically per
///                      append (O(#chunks), chunk payloads immutable)
///   chunk-NNNNNN.bin — raw format: magic FDXCHNK1; u64 rows, cols,
///                      dict_bytes; column-major i32 storage codes (one
///                      column = one contiguous slice); then a JSON
///                      dictionary *delta* — only the values first seen
///                      in this chunk. Compressed format (codec !=
///                      none): magic FDXCHNK2, same u64 header, a u64
///                      per-column compressed-size table, the per-column
///                      codec payloads, then the dictionary delta.
///                      Fingerprints always cover the *uncompressed*
///                      serialization, so raw and compressed stores of
///                      the same data fingerprint identically.
///
/// Open() replays the dictionary deltas in chunk order and verifies
/// every chunk's fingerprint, so a reopened store either matches the
/// writer's state exactly or fails loudly.
///
/// Appends are single-writer (callers serialize them; the service wraps
/// a store in its per-session mutex). Reads — ReadColumnCodes and
/// ReadChunkValues — are safe to call concurrently with each other (the
/// wave-parallel streaming transform decodes columns from worker
/// threads); the per-chunk I/O state they share is created under an
/// internal mutex.
class ChunkedTable {
 public:
  // Defined out of line: StoredChunk holds a unique_ptr to the
  // incomplete ChunkIo type.
  ChunkedTable();
  ~ChunkedTable();
  ChunkedTable(ChunkedTable&&) noexcept;
  ChunkedTable& operator=(ChunkedTable&&) noexcept;
  ChunkedTable(const ChunkedTable&) = delete;
  ChunkedTable& operator=(const ChunkedTable&) = delete;

  /// New empty store. `dir` empty keeps chunks in memory; otherwise the
  /// directory is created and an empty manifest written immediately.
  /// `codec` names the chunk-payload compression ("" or "none" stores
  /// raw, "varint" delta-compresses dictionary codes); unknown names
  /// are an error.
  static Result<ChunkedTable> Create(const Schema& schema, std::string dir,
                                     const std::string& codec = "");

  /// Reopens a spilled store, replaying dictionary deltas and verifying
  /// every chunk fingerprint against the manifest. The codec is read
  /// from the manifest.
  static Result<ChunkedTable> Open(std::string dir);

  /// Encodes `batch` as one new chunk. Column count must match the
  /// schema; zero-row batches are rejected. With a store dir the chunk
  /// file and updated manifest are durable before this returns, and the
  /// chunk's codes are dropped from memory — append I/O is O(chunk)
  /// plus the O(#chunks) manifest rewrite.
  Status AppendBatch(const Table& batch);

  const Schema& schema() const { return schema_; }
  const std::string& dir() const { return dir_; }
  bool spilled() const { return !dir_.empty(); }
  /// Codec name as recorded in the manifest ("none" when raw).
  const std::string& codec() const { return codec_name_; }
  StoreIo io_mode() const { return io_mode_; }
  /// Overrides the read path (tests, benches, operators). Chunk I/O
  /// state already established keeps its mode; set before reading.
  void set_io_mode(StoreIo mode) { io_mode_ = mode; }
  /// Times a chunk map failed (or was failed by the `store.mmap` fault
  /// point) and the read path was used instead.
  uint64_t mmap_fallbacks() const;
  size_t num_rows() const { return total_rows_; }
  size_t num_columns() const { return schema_.size(); }
  size_t num_chunks() const { return chunks_.size(); }
  size_t ChunkRowCount(size_t chunk) const { return chunks_[chunk].rows; }
  const std::string& ChunkFingerprintHex(size_t chunk) const {
    return chunks_[chunk].fingerprint_hex;
  }

  /// Transform-code cardinality of a column (numerics merged), i.e.
  /// exactly EncodedTable::Encode(concatenated table).Cardinality(col).
  size_t Cardinality(size_t col) const {
    return static_cast<size_t>(dicts_[col].next_transform);
  }
  size_t NullCount(size_t col) const { return dicts_[col].null_count; }
  /// Distinct exact values seen in a column (storage codes).
  size_t DictionarySize(size_t col) const { return dicts_[col].values.size(); }

  /// Streams one column's transform codes (kNullCode for nulls) across
  /// all chunks into `out` — the streaming transform's input. Spilled
  /// chunks cost one mapped-slice decode (or one pread) of the column's
  /// contiguous payload each. Thread-safe against concurrent reads.
  Status ReadColumnCodes(size_t col, std::vector<int32_t>* out) const;

  /// Exact value round-trip of one chunk (the service's replay path).
  /// Spilled chunks are fingerprint-verified before decoding, so a
  /// corrupted store surfaces as kIOError here rather than as silently
  /// different data.
  Result<Table> ReadChunkValues(size_t chunk) const;

  /// Bytes of this store's chunk mappings currently resident in memory.
  /// These pages are clean and file-backed — the kernel reclaims them
  /// under pressure — so RSS-ceiling accounting subtracts them from the
  /// polled process figure instead of tripping on reclaimable cache.
  uint64_t MappedResidentBytes() const;

 private:
  /// Per-column incremental dictionary; see the class comment for the
  /// two code spaces.
  struct ColumnDictionary {
    std::vector<Value> values;  ///< by storage code
    std::unordered_map<std::string, int32_t> by_string;
    std::unordered_map<int64_t, int32_t> by_int;
    /// Doubles key on their bit pattern (distinguishes -0.0 from 0.0 for
    /// exact round-trip; the transform map below still merges them).
    std::unordered_map<uint64_t, int32_t> by_double_bits;
    /// Transform-code assignment, mirroring EncodedTable::Encode.
    std::unordered_map<std::string, int32_t> t_string;
    std::map<double, int32_t> t_numeric;
    std::vector<int32_t> to_transform;  ///< storage code -> transform code
    int32_t next_transform = 0;
    size_t null_count = 0;
  };

  /// Cached per-chunk read state, established on first access: the open
  /// map (or a plain fd as the fallback), the per-column payload offset
  /// index (parsed once — column reads never re-touch header/manifest
  /// state), and the first-touch verification flag.
  struct ChunkIo;

  struct StoredChunk {
    size_t rows = 0;
    std::string file;  ///< basename under dir_; empty in memory mode
    std::string fingerprint_hex;
    /// Storage codes per column; cleared once spilled.
    std::vector<std::vector<int32_t>> codes;
    /// Lazily created, guarded by io_mu_ during creation.
    mutable std::unique_ptr<ChunkIo> io;
  };

  int32_t EncodeCell(const Value& v, size_t col, std::vector<Value>* fresh);
  std::string SerializeChunk(const StoredChunk& chunk,
                             const std::vector<size_t>& dict_starts) const;
  std::string EncodeManifest() const;
  Status WriteManifest() const;
  Status LoadChunkPayload(size_t chunk, std::string* contents) const;
  Status ReconstructRawPayload(size_t chunk, const ChunkIo& io,
                               std::string* out) const;
  Result<ChunkIo*> GetChunkIo(size_t chunk) const;
  Status ReadSpilledColumn(size_t chunk, size_t col,
                           std::vector<int32_t>* storage_codes) const;

  Schema schema_;
  std::string dir_;
  std::string codec_name_ = "none";
  const ChunkCodec* codec_ = nullptr;  ///< nullptr when raw
  StoreIo io_mode_ = StoreIo::kMmap;
  size_t total_rows_ = 0;
  std::vector<ColumnDictionary> dicts_;
  std::vector<StoredChunk> chunks_;
  /// Guards lazy ChunkIo creation and the fallback counter (the table
  /// is movable, hence the indirection).
  std::unique_ptr<std::mutex> io_mu_ = std::make_unique<std::mutex>();
  mutable uint64_t mmap_fallbacks_ = 0;
};

}  // namespace fdx

#endif  // FDX_STORE_CHUNKED_TABLE_H_
