#include "store/stream_transform.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/pairs.h"
#include "core/transform_kernels.h"
#include "linalg/bitmatrix.h"
#include "util/file_io.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace fdx {
namespace {

/// LRU cache of decoded transform-code columns. Only the serial
/// (memory-bounded) path uses it; capacity is in whole columns and at
/// least two (each pass needs the sort column and the pack column
/// alive at once).
class ColumnCache {
 public:
  ColumnCache(const ChunkedTable* table, size_t capacity)
      : table_(table), capacity_(capacity) {}

  /// Returns the column's codes, loading (and possibly evicting) as
  /// needed. The pointer stays valid until the next Get.
  Result<const std::vector<int32_t>*> Get(size_t col) {
    auto it = entries_.find(col);
    if (it != entries_.end()) {
      lru_.erase(it->second.pos);
      lru_.push_front(col);
      it->second.pos = lru_.begin();
      return &it->second.codes;
    }
    if (entries_.size() >= capacity_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
    }
    Entry entry;
    FDX_RETURN_IF_ERROR(table_->ReadColumnCodes(col, &entry.codes));
    lru_.push_front(col);
    entry.pos = lru_.begin();
    return &entries_.emplace(col, std::move(entry)).first->second.codes;
  }

 private:
  struct Entry {
    std::vector<int32_t> codes;
    std::list<size_t>::iterator pos;
  };

  const ChunkedTable* table_;
  size_t capacity_;
  std::list<size_t> lru_;  ///< front = most recently used
  std::unordered_map<size_t, Entry> entries_;
};

/// Shape validation + the canonical randomness preamble. Must reject
/// with the exact in-memory messages: equivalence tests compare errors
/// too.
Status PrepareStream(const ChunkedTable& table,
                     const StreamTransformOptions& options,
                     std::vector<uint32_t>* shuffled,
                     std::vector<uint64_t>* attr_seeds) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  if (k == 0 || n < 2) {
    return Status::InvalidArgument(
        "pair transform needs >= 2 rows and >= 1 column");
  }
  if (n > UINT32_MAX) {
    return Status::InvalidArgument("pair transform caps at 2^32 - 1 rows");
  }
  PrepareTransformStreams(options.transform.seed, n, k, shuffled, attr_seeds);
  return Status::OK();
}

/// Resident columns per the cache budget: everything when unbounded,
/// otherwise at least two, at most all of them.
size_t CacheCapacity(const StreamTransformOptions& options, size_t n,
                     size_t k) {
  if (options.column_cache_bytes == 0) return k;
  const uint64_t per_column = static_cast<uint64_t>(n) * sizeof(int32_t);
  const uint64_t fit =
      per_column == 0 ? k : options.column_cache_bytes / per_column;
  return static_cast<size_t>(
      std::min<uint64_t>(k, std::max<uint64_t>(2, fit)));
}

Status CheckRssCeiling(const StreamTransformOptions& options,
                       const ChunkedTable& table) {
  if (options.rss_limit_bytes == 0) return Status::OK();
  const uint64_t rss = CurrentRssBytes();
  // Resident pages of the store's chunk mappings are clean and
  // file-backed — the kernel drops them under memory pressure — so
  // counting them against the ceiling would fail runs whose actual
  // footprint fits. Subtract them: what remains is anonymous memory the
  // process genuinely owes.
  const uint64_t mapped = table.MappedResidentBytes();
  const uint64_t owned = rss > mapped ? rss - mapped : 0;
  if (owned <= options.rss_limit_bytes) return Status::OK();
  return Status::Unavailable(
      "stream transform: resident set " + std::to_string(owned) +
      " bytes exceeds the memory ceiling of " +
      std::to_string(options.rss_limit_bytes) + " bytes");
}

constexpr size_t kNoColumn = static_cast<size_t>(-1);

/// Double-buffered column decoder: while the caller works on the column
/// just returned, the next one decodes on the shared pool, so chunk I/O
/// overlaps sort/pack compute. Falls back to inline decoding when the
/// run is single-threaded (one buffer, zero synchronization).
class ColumnStream {
 public:
  ColumnStream(const ChunkedTable* table, bool async)
      : table_(table), async_(async) {}
  ~ColumnStream() {
    // A pending decode still owns its buffer; let it finish.
    if (pending_) pending_status_.wait();
  }

  /// Decodes `col` (or adopts its finished prefetch) and kicks off the
  /// decode of `next_col` (kNoColumn: nothing follows). The returned
  /// pointer stays valid until the next call.
  Result<const std::vector<int32_t>*> Next(size_t col, size_t next_col) {
    Status status = Status::OK();
    if (pending_ && pending_col_ == col) {
      status = pending_status_.get();
      pending_ = false;
      front_ ^= 1;  // the prefetch landed in the back buffer
    } else {
      if (pending_) {
        (void)pending_status_.get();  // drain a mismatched prefetch
        pending_ = false;
      }
      status = table_->ReadColumnCodes(col, &buf_[front_]);
    }
    FDX_RETURN_IF_ERROR(status);
    if (async_ && next_col != kNoColumn) {
      auto done = std::make_shared<std::promise<Status>>();
      pending_status_ = done->get_future();
      pending_col_ = next_col;
      pending_ = true;
      std::vector<int32_t>* dst = &buf_[front_ ^ 1];
      const ChunkedTable* table = table_;
      ThreadPool::Shared().Submit([table, next_col, dst, done] {
        done->set_value(table->ReadColumnCodes(next_col, dst));
      });
    }
    return &buf_[front_];
  }

 private:
  const ChunkedTable* table_;
  bool async_;
  int front_ = 0;
  bool pending_ = false;
  size_t pending_col_ = 0;
  std::future<Status> pending_status_;
  std::vector<int32_t> buf_[2];
};

/// Attribute passes per wave under the cache budget. A resident pass
/// costs its pair-order array, its k-column bit matrix, and its integer
/// accumulators; two decoded columns (streamed + decode-ahead) are
/// reserved off the top. At least one pass always runs — a budget too
/// small for even that degrades to wave size one rather than failing.
size_t WaveSize(const StreamTransformOptions& options, size_t n, size_t k) {
  const uint64_t pairs = static_cast<uint64_t>(
      PairsPerAttribute(n, options.transform.max_pairs_per_attribute));
  const uint64_t bits_bytes = (pairs + 63) / 64 * 8 * k;
  const uint64_t order_bytes = static_cast<uint64_t>(n) * 4;
  const uint64_t accum_bytes = (static_cast<uint64_t>(k) * k + k) * 8;
  const uint64_t per_pass = bits_bytes + order_bytes + accum_bytes;
  const uint64_t column_bytes = static_cast<uint64_t>(n) * 4;
  const uint64_t reserved = 2 * column_bytes;
  const uint64_t budget = options.column_cache_bytes > reserved
                              ? options.column_cache_bytes - reserved
                              : 0;
  const uint64_t fit = per_pass == 0 ? k : budget / per_pass;
  return static_cast<size_t>(
      std::min<uint64_t>(k, std::max<uint64_t>(1, fit)));
}

struct StageTimes {
  double sort = 0.0;
  double pack = 0.0;
  double accumulate = 0.0;

  void MergeInto(TransformProfile* profile, std::mutex* mu) const {
    if (profile == nullptr) return;
    std::lock_guard<std::mutex> lock(*mu);
    profile->sort_seconds += sort;
    profile->pack_seconds += pack;
    profile->accumulate_seconds += accumulate;
  }
};

/// Runs one attribute pass end to end (sort, pack, popcount) against
/// whatever column source the caller wired up, adding the pass's
/// integer moments into `counts`/`co_counts`. All three accumulation
/// kernels are the shared ones in core/transform_kernels.h.
template <typename GetColumn>
Status RunPass(size_t attr, const ChunkedTable& table,
               const StreamTransformOptions& options,
               const std::vector<uint32_t>& shuffled, uint64_t attr_seed,
               const GetColumn& get_column, AttributePass* pass,
               BitMatrix* bits, std::vector<uint64_t>* pass_counts,
               std::vector<uint64_t>* pass_co_counts, uint64_t* counts,
               uint64_t* co_counts, size_t* total,
               std::vector<Matrix>* pass_cov, StageTimes* times) {
  const size_t k = table.num_columns();
  Stopwatch watch;
  {
    FDX_ASSIGN_OR_RETURN(const std::vector<int32_t>* codes, get_column(attr));
    pass->Reset(*codes, table.Cardinality(attr), shuffled,
                options.transform.max_pairs_per_attribute, attr_seed);
  }
  times->sort += watch.ElapsedSeconds();

  watch.Reset();
  bits->Reset(pass->num_pairs(), k);
  PackScratch scratch;
  for (size_t col = 0; col < k; ++col) {
    FDX_ASSIGN_OR_RETURN(const std::vector<int32_t>* codes, get_column(col));
    ColumnBitWriter writer(bits->column_words(col));
    AppendPassColumnBits(*codes, *pass, &writer, &scratch);
    writer.Flush();
  }
  times->pack += watch.ElapsedSeconds();

  watch.Reset();
  std::fill(pass_counts->begin(), pass_counts->end(), 0);
  std::fill(pass_co_counts->begin(), pass_co_counts->end(), 0);
  bits->AccumulateMoments(pass_counts->data(), pass_co_counts->data());
  for (size_t c = 0; c < k; ++c) counts[c] += (*pass_counts)[c];
  for (size_t c = 0; c < k * k; ++c) co_counts[c] += (*pass_co_counts)[c];
  *total += pass->num_pairs();
  times->accumulate += watch.ElapsedSeconds();
  if (pass_cov != nullptr && pass->num_pairs() > 0) {
    (*pass_cov)[attr] = PassCovarianceFromCounts(
        pass_counts->data(), pass_co_counts->data(), k, pass->num_pairs());
  }
  return Status::OK();
}

/// The wave schedule of the memory-bounded path. Passes are grouped
/// into waves sized by WaveSize; per wave:
///
///   1. sort — each pass's attribute column is decoded (one ahead, on
///      the pool) and the pass Reset; the column is released before the
///      next one arrives, so only two are ever resident.
///   2. pack — every column streams through once and is appended into
///      all of the wave's bit matrices concurrently (passes are
///      independent, so the fan-out is over passes, each chunk with its
///      own gather scratch). One decode per column per wave, versus one
///      per column per *pass* on the serial schedule.
///   3. accumulate — per-pass popcounts run in parallel into per-pass
///      integer buffers, then merge serially in attribute order.
///
/// Counts are integers (commutative merges) and pooled pass covariances
/// land in per-attribute slots reduced in attribute order, so the
/// result is bit-identical to the serial schedule at any thread count.
Status AccumulateWaves(const ChunkedTable& table,
                       const StreamTransformOptions& options,
                       const std::vector<uint32_t>& shuffled,
                       const std::vector<uint64_t>& attr_seeds,
                       std::vector<uint64_t>* counts,
                       std::vector<uint64_t>* co_counts, size_t* total,
                       std::vector<Matrix>* pass_cov, std::mutex* profile_mu) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  const size_t wave = WaveSize(options, n, k);
  const size_t threads = ResolveThreadCount(options.transform.threads);
  const bool async = threads > 1 && ThreadPool::Shared().size() > 0;
  const Deadline* deadline = options.transform.deadline;

  StageTimes times;
  Stopwatch watch;
  ColumnStream stream(&table, async);
  std::vector<AttributePass> passes(wave);
  std::vector<BitMatrix> bits(wave);
  std::vector<std::vector<uint64_t>> pass_counts(
      wave, std::vector<uint64_t>(k, 0));
  std::vector<std::vector<uint64_t>> pass_co_counts(
      wave, std::vector<uint64_t>(k * k, 0));
  std::vector<PackScratch> scratch(std::min(threads, wave));

  for (size_t wave_lo = 0; wave_lo < k; wave_lo += wave) {
    const size_t wave_hi = std::min(k, wave_lo + wave);
    const size_t w = wave_hi - wave_lo;
    if (deadline != nullptr && deadline->Expired()) {
      return Status::Timeout("pair transform: time budget exhausted");
    }
    FDX_RETURN_IF_ERROR(CheckRssCeiling(options, table));

    watch.Reset();
    for (size_t i = 0; i < w; ++i) {
      const size_t attr = wave_lo + i;
      // After the last sort column, the first pack column (0) follows.
      const size_t next = i + 1 < w ? attr + 1 : 0;
      FDX_ASSIGN_OR_RETURN(const std::vector<int32_t>* codes,
                           stream.Next(attr, next));
      passes[i].Reset(*codes, table.Cardinality(attr), shuffled,
                      options.transform.max_pairs_per_attribute,
                      attr_seeds[attr]);
      bits[i].Reset(passes[i].num_pairs(), k);
    }
    times.sort += watch.ElapsedSeconds();

    watch.Reset();
    for (size_t col = 0; col < k; ++col) {
      if (deadline != nullptr && deadline->Expired()) {
        return Status::Timeout("pair transform: time budget exhausted");
      }
      // After the last pack column, the next wave's first sort column.
      const size_t next = col + 1 < k
                              ? col + 1
                              : (wave_hi < k ? wave_hi : kNoColumn);
      FDX_ASSIGN_OR_RETURN(const std::vector<int32_t>* codes,
                           stream.Next(col, next));
      ParallelForChunks(0, w, std::min(threads, w), threads,
                        [&](size_t chunk, size_t lo, size_t hi) {
                          for (size_t i = lo; i < hi; ++i) {
                            ColumnBitWriter writer(bits[i].column_words(col));
                            AppendPassColumnBits(*codes, passes[i], &writer,
                                                 &scratch[chunk]);
                            writer.Flush();
                          }
                        });
    }
    times.pack += watch.ElapsedSeconds();

    watch.Reset();
    ParallelForChunks(0, w, std::min(threads, w), threads,
                      [&](size_t chunk, size_t lo, size_t hi) {
                        (void)chunk;
                        for (size_t i = lo; i < hi; ++i) {
                          std::fill(pass_counts[i].begin(),
                                    pass_counts[i].end(), 0);
                          std::fill(pass_co_counts[i].begin(),
                                    pass_co_counts[i].end(), 0);
                          bits[i].AccumulateMoments(pass_counts[i].data(),
                                                    pass_co_counts[i].data());
                        }
                      });
    for (size_t i = 0; i < w; ++i) {
      const size_t attr = wave_lo + i;
      for (size_t c = 0; c < k; ++c) (*counts)[c] += pass_counts[i][c];
      for (size_t c = 0; c < k * k; ++c) {
        (*co_counts)[c] += pass_co_counts[i][c];
      }
      *total += passes[i].num_pairs();
      if (pass_cov != nullptr && passes[i].num_pairs() > 0) {
        (*pass_cov)[attr] = PassCovarianceFromCounts(
            pass_counts[i].data(), pass_co_counts[i].data(), k,
            passes[i].num_pairs());
      }
    }
    times.accumulate += watch.ElapsedSeconds();
  }
  times.MergeInto(options.transform.profile, profile_mu);
  return Status::OK();
}

/// The streaming analogue of the in-memory AccumulatePasses. With every
/// column resident the passes fan out across threads exactly like the
/// in-memory engine; under a cache budget the bounded schedule (waves
/// by default, the serial LRU loop as the reference) takes over. Counts
/// are integers merged commutatively and pooled pass covariances are
/// stored per attribute, so every schedule produces the same bits.
Status AccumulateStream(const ChunkedTable& table,
                        const StreamTransformOptions& options,
                        const std::vector<uint32_t>& shuffled,
                        const std::vector<uint64_t>& attr_seeds,
                        std::vector<uint64_t>* counts,
                        std::vector<uint64_t>* co_counts, size_t* total,
                        std::vector<Matrix>* pass_cov) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  const size_t capacity = CacheCapacity(options, n, k);
  const Deadline* deadline = options.transform.deadline;
  std::mutex profile_mu;

  counts->assign(k, 0);
  co_counts->assign(k * k, 0);
  *total = 0;

  if (capacity >= k) {
    // Everything fits: decode each column once and run the same
    // parallel-over-attributes schedule as the in-memory engine.
    std::vector<std::vector<int32_t>> columns(k);
    for (size_t c = 0; c < k; ++c) {
      FDX_RETURN_IF_ERROR(table.ReadColumnCodes(c, &columns[c]));
    }
    FDX_RETURN_IF_ERROR(CheckRssCeiling(options, table));

    const size_t num_chunks =
        std::min(ResolveThreadCount(options.transform.threads), k);
    std::vector<std::vector<uint64_t>> chunk_counts(
        num_chunks, std::vector<uint64_t>(k, 0));
    std::vector<std::vector<uint64_t>> chunk_co_counts(
        num_chunks, std::vector<uint64_t>(k * k, 0));
    std::vector<size_t> chunk_totals(num_chunks, 0);
    std::atomic<bool> expired{false};
    std::vector<Status> chunk_status(num_chunks, Status::OK());

    ParallelForChunks(
        0, k, num_chunks, options.transform.threads,
        [&](size_t chunk, size_t lo, size_t hi) {
          AttributePass pass;
          BitMatrix bits;
          StageTimes times;
          std::vector<uint64_t> pass_counts(k, 0);
          std::vector<uint64_t> pass_co_counts(k * k, 0);
          const auto get_column =
              [&](size_t col) -> Result<const std::vector<int32_t>*> {
            return &columns[col];
          };
          for (size_t attr = lo; attr < hi; ++attr) {
            if (deadline != nullptr &&
                (expired.load(std::memory_order_relaxed) ||
                 deadline->Expired())) {
              expired.store(true, std::memory_order_relaxed);
              break;
            }
            const Status status = RunPass(
                attr, table, options, shuffled, attr_seeds[attr], get_column,
                &pass, &bits, &pass_counts, &pass_co_counts,
                chunk_counts[chunk].data(), chunk_co_counts[chunk].data(),
                &chunk_totals[chunk], pass_cov, &times);
            if (!status.ok()) {
              chunk_status[chunk] = status;
              break;
            }
          }
          times.MergeInto(options.transform.profile, &profile_mu);
        });

    for (const Status& status : chunk_status) {
      FDX_RETURN_IF_ERROR(status);
    }
    if (expired.load(std::memory_order_relaxed)) {
      return Status::Timeout("pair transform: time budget exhausted");
    }
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      for (size_t c = 0; c < k; ++c) (*counts)[c] += chunk_counts[chunk][c];
      for (size_t c = 0; c < k * k; ++c) {
        (*co_counts)[c] += chunk_co_counts[chunk][c];
      }
      *total += chunk_totals[chunk];
    }
  } else if (options.bounded_schedule == BoundedSchedule::kWave) {
    FDX_RETURN_IF_ERROR(AccumulateWaves(table, options, shuffled, attr_seeds,
                                        counts, co_counts, total, pass_cov,
                                        &profile_mu));
  } else {
    // Bounded memory: serial passes over an LRU column cache. Same
    // kernels, same integer arithmetic — only the I/O schedule differs.
    ColumnCache cache(&table, capacity);
    AttributePass pass;
    BitMatrix bits;
    StageTimes times;
    std::vector<uint64_t> pass_counts(k, 0);
    std::vector<uint64_t> pass_co_counts(k * k, 0);
    const auto get_column =
        [&](size_t col) -> Result<const std::vector<int32_t>*> {
      return cache.Get(col);
    };
    for (size_t attr = 0; attr < k; ++attr) {
      if (deadline != nullptr && deadline->Expired()) {
        return Status::Timeout("pair transform: time budget exhausted");
      }
      FDX_RETURN_IF_ERROR(CheckRssCeiling(options, table));
      FDX_RETURN_IF_ERROR(RunPass(attr, table, options, shuffled,
                                  attr_seeds[attr], get_column, &pass, &bits,
                                  &pass_counts, &pass_co_counts,
                                  counts->data(), co_counts->data(), total,
                                  pass_cov, &times));
    }
    times.MergeInto(options.transform.profile, &profile_mu);
  }

  if (*total == 0) {
    return Status::InvalidArgument("pair transform produced no samples");
  }
  return Status::OK();
}

}  // namespace

Result<TransformCounts> StreamTransformCounts(
    const ChunkedTable& table, const StreamTransformOptions& options) {
  std::vector<uint32_t> shuffled;
  std::vector<uint64_t> attr_seeds;
  FDX_RETURN_IF_ERROR(PrepareStream(table, options, &shuffled, &attr_seeds));
  TransformCounts out;
  FDX_RETURN_IF_ERROR(AccumulateStream(table, options, shuffled, attr_seeds,
                                       &out.counts, &out.co_counts,
                                       &out.num_samples,
                                       /*pass_cov=*/nullptr));
  return out;
}

Result<TransformedMoments> StreamTransformMoments(
    const ChunkedTable& table, const StreamTransformOptions& options) {
  const size_t k = table.num_columns();
  std::vector<uint32_t> shuffled;
  std::vector<uint64_t> attr_seeds;
  FDX_RETURN_IF_ERROR(PrepareStream(table, options, &shuffled, &attr_seeds));
  std::vector<Matrix> pass_cov;
  if (options.transform.pooled_covariance) pass_cov.assign(k, Matrix());
  std::vector<uint64_t> counts;
  std::vector<uint64_t> co_counts;
  size_t total = 0;
  FDX_RETURN_IF_ERROR(AccumulateStream(
      table, options, shuffled, attr_seeds, &counts, &co_counts, &total,
      options.transform.pooled_covariance ? &pass_cov : nullptr));

  TransformedMoments moments = MomentsFromCounts(counts, co_counts, total, k);
  if (options.transform.pooled_covariance) {
    moments.cov = ReducePooledCovariance(pass_cov);
  }
  return moments;
}

}  // namespace fdx
