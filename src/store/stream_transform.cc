#include "store/stream_transform.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/pairs.h"
#include "core/transform_kernels.h"
#include "linalg/bitmatrix.h"
#include "util/file_io.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace fdx {
namespace {

/// LRU cache of decoded transform-code columns. Only the serial
/// (memory-bounded) path uses it; capacity is in whole columns and at
/// least two (each pass needs the sort column and the pack column
/// alive at once).
class ColumnCache {
 public:
  ColumnCache(const ChunkedTable* table, size_t capacity)
      : table_(table), capacity_(capacity) {}

  /// Returns the column's codes, loading (and possibly evicting) as
  /// needed. The pointer stays valid until the next Get.
  Result<const std::vector<int32_t>*> Get(size_t col) {
    auto it = entries_.find(col);
    if (it != entries_.end()) {
      lru_.erase(it->second.pos);
      lru_.push_front(col);
      it->second.pos = lru_.begin();
      return &it->second.codes;
    }
    if (entries_.size() >= capacity_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
    }
    Entry entry;
    FDX_RETURN_IF_ERROR(table_->ReadColumnCodes(col, &entry.codes));
    lru_.push_front(col);
    entry.pos = lru_.begin();
    return &entries_.emplace(col, std::move(entry)).first->second.codes;
  }

 private:
  struct Entry {
    std::vector<int32_t> codes;
    std::list<size_t>::iterator pos;
  };

  const ChunkedTable* table_;
  size_t capacity_;
  std::list<size_t> lru_;  ///< front = most recently used
  std::unordered_map<size_t, Entry> entries_;
};

/// Shape validation + the canonical randomness preamble. Must reject
/// with the exact in-memory messages: equivalence tests compare errors
/// too.
Status PrepareStream(const ChunkedTable& table,
                     const StreamTransformOptions& options,
                     std::vector<uint32_t>* shuffled,
                     std::vector<uint64_t>* attr_seeds) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  if (k == 0 || n < 2) {
    return Status::InvalidArgument(
        "pair transform needs >= 2 rows and >= 1 column");
  }
  if (n > UINT32_MAX) {
    return Status::InvalidArgument("pair transform caps at 2^32 - 1 rows");
  }
  PrepareTransformStreams(options.transform.seed, n, k, shuffled, attr_seeds);
  return Status::OK();
}

/// Resident columns per the cache budget: everything when unbounded,
/// otherwise at least two, at most all of them.
size_t CacheCapacity(const StreamTransformOptions& options, size_t n,
                     size_t k) {
  if (options.column_cache_bytes == 0) return k;
  const uint64_t per_column = static_cast<uint64_t>(n) * sizeof(int32_t);
  const uint64_t fit =
      per_column == 0 ? k : options.column_cache_bytes / per_column;
  return static_cast<size_t>(
      std::min<uint64_t>(k, std::max<uint64_t>(2, fit)));
}

Status CheckRssCeiling(const StreamTransformOptions& options) {
  if (options.rss_limit_bytes == 0) return Status::OK();
  const uint64_t rss = CurrentRssBytes();
  if (rss <= options.rss_limit_bytes) return Status::OK();
  return Status::Unavailable(
      "stream transform: resident set " + std::to_string(rss) +
      " bytes exceeds the memory ceiling of " +
      std::to_string(options.rss_limit_bytes) + " bytes");
}

struct StageTimes {
  double sort = 0.0;
  double pack = 0.0;
  double accumulate = 0.0;

  void MergeInto(TransformProfile* profile, std::mutex* mu) const {
    if (profile == nullptr) return;
    std::lock_guard<std::mutex> lock(*mu);
    profile->sort_seconds += sort;
    profile->pack_seconds += pack;
    profile->accumulate_seconds += accumulate;
  }
};

/// Runs one attribute pass end to end (sort, pack, popcount) against
/// whatever column source the caller wired up, adding the pass's
/// integer moments into `counts`/`co_counts`. All three accumulation
/// kernels are the shared ones in core/transform_kernels.h.
template <typename GetColumn>
Status RunPass(size_t attr, const ChunkedTable& table,
               const StreamTransformOptions& options,
               const std::vector<uint32_t>& shuffled, uint64_t attr_seed,
               const GetColumn& get_column, AttributePass* pass,
               BitMatrix* bits, std::vector<uint64_t>* pass_counts,
               std::vector<uint64_t>* pass_co_counts, uint64_t* counts,
               uint64_t* co_counts, size_t* total,
               std::vector<Matrix>* pass_cov, StageTimes* times) {
  const size_t k = table.num_columns();
  Stopwatch watch;
  {
    FDX_ASSIGN_OR_RETURN(const std::vector<int32_t>* codes, get_column(attr));
    pass->Reset(*codes, table.Cardinality(attr), shuffled,
                options.transform.max_pairs_per_attribute, attr_seed);
  }
  times->sort += watch.ElapsedSeconds();

  watch.Reset();
  bits->Reset(pass->num_pairs(), k);
  PackScratch scratch;
  for (size_t col = 0; col < k; ++col) {
    FDX_ASSIGN_OR_RETURN(const std::vector<int32_t>* codes, get_column(col));
    ColumnBitWriter writer(bits->column_words(col));
    AppendPassColumnBits(*codes, *pass, &writer, &scratch);
    writer.Flush();
  }
  times->pack += watch.ElapsedSeconds();

  watch.Reset();
  std::fill(pass_counts->begin(), pass_counts->end(), 0);
  std::fill(pass_co_counts->begin(), pass_co_counts->end(), 0);
  bits->AccumulateMoments(pass_counts->data(), pass_co_counts->data());
  for (size_t c = 0; c < k; ++c) counts[c] += (*pass_counts)[c];
  for (size_t c = 0; c < k * k; ++c) co_counts[c] += (*pass_co_counts)[c];
  *total += pass->num_pairs();
  times->accumulate += watch.ElapsedSeconds();
  if (pass_cov != nullptr && pass->num_pairs() > 0) {
    (*pass_cov)[attr] = PassCovarianceFromCounts(
        pass_counts->data(), pass_co_counts->data(), k, pass->num_pairs());
  }
  return Status::OK();
}

/// The streaming analogue of the in-memory AccumulatePasses. With every
/// column resident the passes fan out across threads exactly like the
/// in-memory engine; under a cache budget they run serially over the
/// LRU cache. Counts are integers merged commutatively and pooled pass
/// covariances are stored per attribute, so both schedules produce the
/// same bits.
Status AccumulateStream(const ChunkedTable& table,
                        const StreamTransformOptions& options,
                        const std::vector<uint32_t>& shuffled,
                        const std::vector<uint64_t>& attr_seeds,
                        std::vector<uint64_t>* counts,
                        std::vector<uint64_t>* co_counts, size_t* total,
                        std::vector<Matrix>* pass_cov) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  const size_t capacity = CacheCapacity(options, n, k);
  const Deadline* deadline = options.transform.deadline;
  std::mutex profile_mu;

  counts->assign(k, 0);
  co_counts->assign(k * k, 0);
  *total = 0;

  if (capacity >= k) {
    // Everything fits: decode each column once and run the same
    // parallel-over-attributes schedule as the in-memory engine.
    std::vector<std::vector<int32_t>> columns(k);
    for (size_t c = 0; c < k; ++c) {
      FDX_RETURN_IF_ERROR(table.ReadColumnCodes(c, &columns[c]));
    }
    FDX_RETURN_IF_ERROR(CheckRssCeiling(options));

    const size_t num_chunks =
        std::min(ResolveThreadCount(options.transform.threads), k);
    std::vector<std::vector<uint64_t>> chunk_counts(
        num_chunks, std::vector<uint64_t>(k, 0));
    std::vector<std::vector<uint64_t>> chunk_co_counts(
        num_chunks, std::vector<uint64_t>(k * k, 0));
    std::vector<size_t> chunk_totals(num_chunks, 0);
    std::atomic<bool> expired{false};
    std::vector<Status> chunk_status(num_chunks, Status::OK());

    ParallelForChunks(
        0, k, num_chunks, options.transform.threads,
        [&](size_t chunk, size_t lo, size_t hi) {
          AttributePass pass;
          BitMatrix bits;
          StageTimes times;
          std::vector<uint64_t> pass_counts(k, 0);
          std::vector<uint64_t> pass_co_counts(k * k, 0);
          const auto get_column =
              [&](size_t col) -> Result<const std::vector<int32_t>*> {
            return &columns[col];
          };
          for (size_t attr = lo; attr < hi; ++attr) {
            if (deadline != nullptr &&
                (expired.load(std::memory_order_relaxed) ||
                 deadline->Expired())) {
              expired.store(true, std::memory_order_relaxed);
              break;
            }
            const Status status = RunPass(
                attr, table, options, shuffled, attr_seeds[attr], get_column,
                &pass, &bits, &pass_counts, &pass_co_counts,
                chunk_counts[chunk].data(), chunk_co_counts[chunk].data(),
                &chunk_totals[chunk], pass_cov, &times);
            if (!status.ok()) {
              chunk_status[chunk] = status;
              break;
            }
          }
          times.MergeInto(options.transform.profile, &profile_mu);
        });

    for (const Status& status : chunk_status) {
      FDX_RETURN_IF_ERROR(status);
    }
    if (expired.load(std::memory_order_relaxed)) {
      return Status::Timeout("pair transform: time budget exhausted");
    }
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      for (size_t c = 0; c < k; ++c) (*counts)[c] += chunk_counts[chunk][c];
      for (size_t c = 0; c < k * k; ++c) {
        (*co_counts)[c] += chunk_co_counts[chunk][c];
      }
      *total += chunk_totals[chunk];
    }
  } else {
    // Bounded memory: serial passes over an LRU column cache. Same
    // kernels, same integer arithmetic — only the I/O schedule differs.
    ColumnCache cache(&table, capacity);
    AttributePass pass;
    BitMatrix bits;
    StageTimes times;
    std::vector<uint64_t> pass_counts(k, 0);
    std::vector<uint64_t> pass_co_counts(k * k, 0);
    const auto get_column =
        [&](size_t col) -> Result<const std::vector<int32_t>*> {
      return cache.Get(col);
    };
    for (size_t attr = 0; attr < k; ++attr) {
      if (deadline != nullptr && deadline->Expired()) {
        return Status::Timeout("pair transform: time budget exhausted");
      }
      FDX_RETURN_IF_ERROR(CheckRssCeiling(options));
      FDX_RETURN_IF_ERROR(RunPass(attr, table, options, shuffled,
                                  attr_seeds[attr], get_column, &pass, &bits,
                                  &pass_counts, &pass_co_counts,
                                  counts->data(), co_counts->data(), total,
                                  pass_cov, &times));
    }
    times.MergeInto(options.transform.profile, &profile_mu);
  }

  if (*total == 0) {
    return Status::InvalidArgument("pair transform produced no samples");
  }
  return Status::OK();
}

}  // namespace

Result<TransformCounts> StreamTransformCounts(
    const ChunkedTable& table, const StreamTransformOptions& options) {
  std::vector<uint32_t> shuffled;
  std::vector<uint64_t> attr_seeds;
  FDX_RETURN_IF_ERROR(PrepareStream(table, options, &shuffled, &attr_seeds));
  TransformCounts out;
  FDX_RETURN_IF_ERROR(AccumulateStream(table, options, shuffled, attr_seeds,
                                       &out.counts, &out.co_counts,
                                       &out.num_samples,
                                       /*pass_cov=*/nullptr));
  return out;
}

Result<TransformedMoments> StreamTransformMoments(
    const ChunkedTable& table, const StreamTransformOptions& options) {
  const size_t k = table.num_columns();
  std::vector<uint32_t> shuffled;
  std::vector<uint64_t> attr_seeds;
  FDX_RETURN_IF_ERROR(PrepareStream(table, options, &shuffled, &attr_seeds));
  std::vector<Matrix> pass_cov;
  if (options.transform.pooled_covariance) pass_cov.assign(k, Matrix());
  std::vector<uint64_t> counts;
  std::vector<uint64_t> co_counts;
  size_t total = 0;
  FDX_RETURN_IF_ERROR(AccumulateStream(
      table, options, shuffled, attr_seeds, &counts, &co_counts, &total,
      options.transform.pooled_covariance ? &pass_cov : nullptr));

  TransformedMoments moments = MomentsFromCounts(counts, co_counts, total, k);
  if (options.transform.pooled_covariance) {
    moments.cov = ReducePooledCovariance(pass_cov);
  }
  return moments;
}

}  // namespace fdx
