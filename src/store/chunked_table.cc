#include "store/chunked_table.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "store/chunk_codec.h"
#include "util/fault_injection.h"
#include "util/file_io.h"
#include "util/fingerprint.h"
#include "util/json_parser.h"
#include "util/json_writer.h"
#include "util/mmap_file.h"

namespace fdx {
namespace {

constexpr char kChunkMagic[8] = {'F', 'D', 'X', 'C', 'H', 'N', 'K', '1'};
/// Compressed chunk: same u64 header, then a u64 per-column
/// compressed-size table, then the codec payloads, then the dict delta.
constexpr char kChunkMagicV2[8] = {'F', 'D', 'X', 'C', 'H', 'N', 'K', '2'};
constexpr size_t kChunkHeaderBytes = 8 + 3 * 8;  // magic + rows/cols/dict_bytes
constexpr int kManifestVersion = 1;

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

void AppendI32(std::string* out, int32_t v) {
  const uint32_t u = static_cast<uint32_t>(v);
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(u >> (8 * i)));
}

int32_t ReadI32(const char* p) {
  uint32_t u = 0;
  for (int i = 0; i < 4; ++i) {
    u |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return static_cast<int32_t>(u);
}

std::string ChunkFileName(size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "chunk-%06zu.bin", index);
  return buf;
}

std::string FingerprintHexOf(const char* data, size_t size) {
  Fingerprint fp;
  fp.Update(data, size);
  return fp.Hex();
}

std::string FingerprintHexOf(const std::string& contents) {
  return FingerprintHexOf(contents.data(), contents.size());
}

/// Exact-double text, round-trippable (same codec as the service
/// snapshots: %.17g survives strtod bit-exactly).
std::string ExactDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Type-tagged cell: null | ["i",text] | ["d",text] | ["s",text].
void WriteCellJson(JsonWriter* json, const Value& cell) {
  switch (cell.type()) {
    case ValueType::kNull:
      json->Null();
      return;
    case ValueType::kInt:
      json->BeginArray();
      json->String("i");
      json->String(std::to_string(cell.AsInt()));
      json->EndArray();
      return;
    case ValueType::kDouble:
      json->BeginArray();
      json->String("d");
      json->String(ExactDouble(cell.AsDouble()));
      json->EndArray();
      return;
    case ValueType::kString:
      json->BeginArray();
      json->String("s");
      json->String(cell.AsString());
      json->EndArray();
      return;
  }
}

Result<Value> ParseCellJson(const JsonValue& cell) {
  if (!cell.is_array() || cell.array().size() != 2 ||
      !cell.array()[0].is_string() || !cell.array()[1].is_string()) {
    return Status::IOError("store: dictionary cell must be a [tag, text] pair");
  }
  const std::string& tag = cell.array()[0].string_value();
  const std::string& text = cell.array()[1].string_value();
  errno = 0;
  char* end = nullptr;
  if (tag == "i") {
    const long long parsed = std::strtoll(text.c_str(), &end, 10);
    if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
      return Status::IOError("store: malformed int cell '" + text + "'");
    }
    return Value(static_cast<int64_t>(parsed));
  }
  if (tag == "d") {
    const double parsed = std::strtod(text.c_str(), &end);
    if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
      return Status::IOError("store: malformed double cell '" + text + "'");
    }
    return Value(parsed);
  }
  if (tag == "s") return Value(text);
  return Status::IOError("store: unknown cell tag '" + tag + "'");
}

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Decompresses one column payload, with the `store.decompress` fault
/// point in front (no fallback — a chunk that won't decode is corrupt).
Status DecodeCompressedColumn(const ChunkCodec& codec, const char* data,
                              size_t size, size_t n, int32_t* out,
                              const std::string& chunk_file) {
  FDX_INJECT_FAULT(kFaultStoreDecompress,
                   Status::IOError("store: chunk '" + chunk_file +
                                   "' decompression failed (injected fault)"));
  Status status = codec.DecodeColumn(data, size, n, out);
  if (!status.ok()) {
    return Status::IOError("store: chunk '" + chunk_file +
                           "': " + status.message());
  }
  return Status::OK();
}

}  // namespace

/// Cached per-chunk read state. Established once under the table's I/O
/// mutex; immutable afterwards, so concurrent column reads share it
/// without further locking (mapped reads and pread are both safe).
struct ChunkedTable::ChunkIo {
  MmapFile map;        ///< valid when use_mmap
  int fd = -1;         ///< pread fallback, kept open across column reads
  bool use_mmap = false;
  bool compressed = false;  ///< file is FDXCHNK2
  uint64_t file_size = 0;
  uint64_t dict_offset = 0;
  uint64_t dict_bytes = 0;
  /// Per-column payload byte ranges, parsed once from the header (and,
  /// for compressed chunks, the size table) — column reads never touch
  /// header state again.
  std::vector<uint64_t> col_offsets;
  std::vector<uint64_t> col_sizes;

  ChunkIo() = default;
  ChunkIo(const ChunkIo&) = delete;
  ChunkIo& operator=(const ChunkIo&) = delete;
  ~ChunkIo() {
    if (fd >= 0) ::close(fd);
  }

  /// Copies `[offset, offset+len)` of the chunk file into `dst`, from
  /// the map or via pread on the cached fd.
  Status ReadAt(uint64_t offset, size_t len, char* dst,
                const std::string& path) const {
    if (offset + len > file_size) {
      return Status::IOError("store: chunk '" + path +
                             "' is shorter than its header promises");
    }
    if (use_mmap) {
      std::memcpy(dst, map.data() + offset, len);
      return Status::OK();
    }
    size_t done = 0;
    while (done < len) {
      const ssize_t got = ::pread(fd, dst + done, len - done,
                                  static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("store: cannot read chunk '" + path +
                               "': " + std::strerror(errno));
      }
      if (got == 0) {
        return Status::IOError("store: chunk '" + path +
                               "' truncated mid-read");
      }
      done += static_cast<size_t>(got);
    }
    return Status::OK();
  }

  /// Drops the page-cache residency of a byte range (mmap mode only) so
  /// a streaming scan never accumulates mapped pages.
  void DropRange(uint64_t offset, size_t len) const {
    if (use_mmap) map.AdviseDontNeed(offset, len);
  }
};

ChunkedTable::ChunkedTable() = default;
ChunkedTable::~ChunkedTable() = default;
ChunkedTable::ChunkedTable(ChunkedTable&&) noexcept = default;
ChunkedTable& ChunkedTable::operator=(ChunkedTable&&) noexcept = default;

StoreIo DefaultStoreIo() {
  const char* env = std::getenv("FDX_STORE_IO");
  if (env != nullptr) {
    if (std::strcmp(env, "read") == 0) return StoreIo::kRead;
    if (std::strcmp(env, "mmap") == 0) return StoreIo::kMmap;
  }
  return StoreIo::kMmap;
}

Result<ChunkedTable> ChunkedTable::Create(const Schema& schema,
                                          std::string dir,
                                          const std::string& codec) {
  ChunkedTable table;
  table.schema_ = schema;
  table.dir_ = std::move(dir);
  table.dicts_.resize(schema.size());
  FDX_ASSIGN_OR_RETURN(table.codec_, FindChunkCodec(codec));
  table.codec_name_ = table.codec_ == nullptr ? "none" : table.codec_->name();
  table.io_mode_ = DefaultStoreIo();
  if (!table.dir_.empty()) {
    FDX_RETURN_IF_ERROR(EnsureDirectory(table.dir_));
    FDX_RETURN_IF_ERROR(table.WriteManifest());
  }
  return table;
}

int32_t ChunkedTable::EncodeCell(const Value& v, size_t col,
                                 std::vector<Value>* fresh) {
  ColumnDictionary& dict = dicts_[col];
  if (v.is_null()) {
    ++dict.null_count;
    return EncodedTable::kNullCode;
  }
  const int32_t next_storage = static_cast<int32_t>(dict.values.size());
  int32_t storage;
  switch (v.type()) {
    case ValueType::kString: {
      auto [it, inserted] = dict.by_string.try_emplace(v.AsString(),
                                                       next_storage);
      storage = it->second;
      if (!inserted) return storage;
      break;
    }
    case ValueType::kInt: {
      auto [it, inserted] = dict.by_int.try_emplace(v.AsInt(), next_storage);
      storage = it->second;
      if (!inserted) return storage;
      break;
    }
    default: {
      auto [it, inserted] =
          dict.by_double_bits.try_emplace(DoubleBits(v.AsDouble()),
                                          next_storage);
      storage = it->second;
      if (!inserted) return storage;
      break;
    }
  }
  // First appearance of this exact value: record it and assign (or
  // share) the transform code — numerics merge on their double value,
  // matching EncodedTable::Encode.
  dict.values.push_back(v);
  if (fresh != nullptr) fresh->push_back(v);
  int32_t transform;
  if (v.type() == ValueType::kString) {
    auto [it, inserted] =
        dict.t_string.try_emplace(v.AsString(), dict.next_transform);
    transform = it->second;
    if (inserted) ++dict.next_transform;
  } else {
    auto [it, inserted] =
        dict.t_numeric.try_emplace(v.ToNumeric(), dict.next_transform);
    transform = it->second;
    if (inserted) ++dict.next_transform;
  }
  dict.to_transform.push_back(transform);
  return storage;
}

std::string ChunkedTable::SerializeChunk(
    const StoredChunk& chunk, const std::vector<size_t>& dict_starts) const {
  const size_t k = schema_.size();
  // Dictionary delta: per column, the storage codes [start, end) this
  // chunk introduced and their exact values.
  JsonWriter json;
  json.BeginObject();
  json.Key("cols");
  json.BeginArray();
  for (size_t c = 0; c < k; ++c) {
    json.BeginObject();
    json.Key("start");
    json.Integer(static_cast<int64_t>(dict_starts[c]));
    json.Key("values");
    json.BeginArray();
    for (size_t s = dict_starts[c]; s < dicts_[c].values.size(); ++s) {
      WriteCellJson(&json, dicts_[c].values[s]);
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  const std::string dict_json = json.TakeString();

  std::string out;
  out.reserve(kChunkHeaderBytes + chunk.rows * k * 4 + dict_json.size());
  out.append(kChunkMagic, sizeof(kChunkMagic));
  AppendU64(&out, chunk.rows);
  AppendU64(&out, k);
  AppendU64(&out, dict_json.size());
  for (size_t c = 0; c < k; ++c) {
    for (int32_t code : chunk.codes[c]) AppendI32(&out, code);
  }
  out += dict_json;
  return out;
}

std::string ChunkedTable::EncodeManifest() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("version");
  json.Integer(kManifestVersion);
  json.Key("schema");
  json.BeginArray();
  for (size_t c = 0; c < schema_.size(); ++c) json.String(schema_.name(c));
  json.EndArray();
  // Raw stores omit the key, so their manifests stay byte-identical to
  // pre-codec writers.
  if (codec_name_ != "none") {
    json.Key("codec");
    json.String(codec_name_);
  }
  json.Key("total_rows");
  json.Integer(static_cast<int64_t>(total_rows_));
  json.Key("chunks");
  json.BeginArray();
  for (const StoredChunk& chunk : chunks_) {
    json.BeginObject();
    json.Key("file");
    json.String(chunk.file);
    json.Key("rows");
    json.Integer(static_cast<int64_t>(chunk.rows));
    json.Key("fingerprint");
    json.String(chunk.fingerprint_hex);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.TakeString();
}

Status ChunkedTable::WriteManifest() const {
  return WriteFileAtomic(dir_ + "/manifest.json", EncodeManifest());
}

Status ChunkedTable::AppendBatch(const Table& batch) {
  const size_t k = schema_.size();
  if (batch.num_columns() != k) {
    return Status::InvalidArgument(
        "store: batch has " + std::to_string(batch.num_columns()) +
        " columns; expected " + std::to_string(k));
  }
  if (batch.num_rows() == 0) {
    return Status::InvalidArgument("store: batch has no rows");
  }
  std::vector<size_t> dict_starts(k);
  for (size_t c = 0; c < k; ++c) dict_starts[c] = dicts_[c].values.size();

  StoredChunk chunk;
  chunk.rows = batch.num_rows();
  chunk.codes.resize(k);
  for (size_t c = 0; c < k; ++c) {
    chunk.codes[c].reserve(chunk.rows);
    for (size_t r = 0; r < chunk.rows; ++r) {
      chunk.codes[c].push_back(EncodeCell(batch.cell(r, c), c, nullptr));
    }
  }

  // The fingerprint always covers the uncompressed serialization, so
  // raw and compressed stores of the same data fingerprint identically.
  const std::string payload = SerializeChunk(chunk, dict_starts);
  chunk.fingerprint_hex = FingerprintHexOf(payload);
  if (!dir_.empty()) {
    chunk.file = ChunkFileName(chunks_.size());
    if (codec_ != nullptr) {
      // Re-frame as FDXCHNK2: header, per-column compressed sizes,
      // codec payloads, then the same dictionary delta tail.
      const size_t dict_bytes =
          payload.size() - kChunkHeaderBytes - chunk.rows * k * 4;
      std::string packed;
      packed.append(kChunkMagicV2, sizeof(kChunkMagicV2));
      AppendU64(&packed, chunk.rows);
      AppendU64(&packed, k);
      AppendU64(&packed, dict_bytes);
      std::string columns;
      for (size_t c = 0; c < k; ++c) {
        const size_t before = columns.size();
        codec_->EncodeColumn(chunk.codes[c].data(), chunk.rows, &columns);
        AppendU64(&packed, columns.size() - before);
      }
      packed += columns;
      packed.append(payload, payload.size() - dict_bytes, dict_bytes);
      FDX_RETURN_IF_ERROR(WriteFileAtomic(dir_ + "/" + chunk.file, packed));
    } else {
      FDX_RETURN_IF_ERROR(WriteFileAtomic(dir_ + "/" + chunk.file, payload));
    }
    chunk.codes.clear();  // durable now; drop the resident copy
  }
  total_rows_ += chunk.rows;
  chunks_.push_back(std::move(chunk));
  if (!dir_.empty()) {
    // Manifest is the commit point: a crash between the chunk write and
    // here leaves an orphan file the stale manifest never references.
    FDX_RETURN_IF_ERROR(WriteManifest());
  }
  return Status::OK();
}

Result<ChunkedTable::ChunkIo*> ChunkedTable::GetChunkIo(size_t index) const {
  const StoredChunk& chunk = chunks_[index];
  std::lock_guard<std::mutex> lock(*io_mu_);
  if (chunk.io != nullptr) return chunk.io.get();

  const std::string path = dir_ + "/" + chunk.file;
  auto io = std::make_unique<ChunkIo>();
  if (io_mode_ == StoreIo::kMmap && !FaultTriggered(kFaultStoreMmap)) {
    Result<MmapFile> mapped = MmapFile::Open(path);
    if (mapped.ok()) {
      io->map = std::move(mapped).value();
      io->use_mmap = true;
      io->file_size = io->map.size();
    } else {
      ++mmap_fallbacks_;
    }
  } else if (io_mode_ == StoreIo::kMmap) {
    ++mmap_fallbacks_;  // fault point counts like a real map failure
  }
  if (!io->use_mmap) {
    io->fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (io->fd < 0) {
      return Status::IOError("store: cannot open chunk '" + path +
                             "': " + std::strerror(errno));
    }
    const off_t size = ::lseek(io->fd, 0, SEEK_END);
    if (size < 0) {
      return Status::IOError("store: cannot stat chunk '" + path +
                             "': " + std::strerror(errno));
    }
    io->file_size = static_cast<uint64_t>(size);
  }

  // Parse the header once; every later column read goes straight to its
  // precomputed byte range.
  char header[kChunkHeaderBytes];
  if (io->file_size < kChunkHeaderBytes) {
    return Status::IOError("store: chunk '" + path + "' has a bad header");
  }
  FDX_RETURN_IF_ERROR(io->ReadAt(0, kChunkHeaderBytes, header, path));
  const bool v1 = std::memcmp(header, kChunkMagic, sizeof(kChunkMagic)) == 0;
  const bool v2 =
      std::memcmp(header, kChunkMagicV2, sizeof(kChunkMagicV2)) == 0;
  if (!v1 && !v2) {
    return Status::IOError("store: chunk '" + path + "' has a bad header");
  }
  const uint64_t rows = ReadU64(header + 8);
  const uint64_t cols = ReadU64(header + 16);
  io->dict_bytes = ReadU64(header + 24);
  const size_t k = schema_.size();
  if (rows != chunk.rows || cols != k) {
    return Status::IOError("store: chunk '" + path +
                           "' shape disagrees with the manifest");
  }
  io->compressed = v2;
  io->col_offsets.resize(k);
  io->col_sizes.resize(k);
  if (v1) {
    for (size_t c = 0; c < k; ++c) {
      io->col_offsets[c] = kChunkHeaderBytes + c * rows * 4;
      io->col_sizes[c] = rows * 4;
    }
    io->dict_offset = kChunkHeaderBytes + rows * k * 4;
  } else {
    if (codec_ == nullptr) {
      return Status::IOError("store: chunk '" + path +
                             "' is compressed but the manifest names no "
                             "codec");
    }
    std::string table(k * 8, '\0');
    if (io->file_size < kChunkHeaderBytes + k * 8) {
      return Status::IOError("store: chunk '" + path + "' has a bad header");
    }
    FDX_RETURN_IF_ERROR(
        io->ReadAt(kChunkHeaderBytes, k * 8, table.data(), path));
    uint64_t offset = kChunkHeaderBytes + k * 8;
    for (size_t c = 0; c < k; ++c) {
      io->col_offsets[c] = offset;
      io->col_sizes[c] = ReadU64(table.data() + c * 8);
      offset += io->col_sizes[c];
    }
    io->dict_offset = offset;
  }
  if (io->file_size != io->dict_offset + io->dict_bytes) {
    return Status::IOError("store: chunk '" + path +
                           "' shape disagrees with the manifest");
  }

  // First-touch verification (mmap mode): fingerprint the uncompressed
  // serialization before trusting any mapped bytes, then drop the pages
  // the check touched. The pread fallback keeps the original contract —
  // full verification on ReadChunkValues/Open, range checks on column
  // reads.
  if (io->use_mmap) {
    std::string actual;
    if (io->compressed) {
      std::string v1_payload;
      FDX_RETURN_IF_ERROR(ReconstructRawPayload(index, *io, &v1_payload));
      actual = FingerprintHexOf(v1_payload);
    } else {
      actual = FingerprintHexOf(io->map.data(), io->map.size());
    }
    if (actual != chunk.fingerprint_hex) {
      return Status::IOError("store: chunk '" + path +
                             "' fingerprint mismatch (corrupt store)");
    }
    io->map.AdviseDontNeed(0, io->map.size());
  }

  chunk.io = std::move(io);
  return chunk.io.get();
}

/// Rebuilds the uncompressed (FDXCHNK1) serialization of a compressed
/// chunk from its established I/O state: decode every column, then copy
/// the dictionary tail. Fingerprints and the replay path both operate
/// on this reconstruction, so they are codec-independent.
Status ChunkedTable::ReconstructRawPayload(size_t index, const ChunkIo& io,
                                           std::string* out) const {
  const StoredChunk& chunk = chunks_[index];
  const size_t k = schema_.size();
  out->clear();
  out->reserve(kChunkHeaderBytes + chunk.rows * k * 4 +
               static_cast<size_t>(io.dict_bytes));
  out->append(kChunkMagic, sizeof(kChunkMagic));
  AppendU64(out, chunk.rows);
  AppendU64(out, k);
  AppendU64(out, io.dict_bytes);
  std::vector<int32_t> codes(chunk.rows);
  std::string column;
  for (size_t c = 0; c < k; ++c) {
    column.resize(io.col_sizes[c]);
    FDX_RETURN_IF_ERROR(io.ReadAt(io.col_offsets[c], io.col_sizes[c],
                                  column.data(), dir_ + "/" + chunk.file));
    FDX_RETURN_IF_ERROR(DecodeCompressedColumn(*codec_, column.data(),
                                               column.size(), chunk.rows,
                                               codes.data(), chunk.file));
    for (int32_t code : codes) AppendI32(out, code);
  }
  std::string dict(io.dict_bytes, '\0');
  FDX_RETURN_IF_ERROR(io.ReadAt(io.dict_offset, io.dict_bytes, dict.data(),
                                dir_ + "/" + chunk.file));
  *out += dict;
  return Status::OK();
}

Status ChunkedTable::LoadChunkPayload(size_t index,
                                      std::string* contents) const {
  const StoredChunk& chunk = chunks_[index];
  const std::string path = dir_ + "/" + chunk.file;
  FDX_ASSIGN_OR_RETURN(std::string raw, ReadFileToString(path));
  if (raw.size() >= sizeof(kChunkMagicV2) &&
      std::memcmp(raw.data(), kChunkMagicV2, sizeof(kChunkMagicV2)) == 0) {
    // Compressed: rebuild the uncompressed serialization, which is what
    // the fingerprint covers and what the callers parse.
    FDX_ASSIGN_OR_RETURN(ChunkIo * io, GetChunkIo(index));
    FDX_RETURN_IF_ERROR(ReconstructRawPayload(index, *io, contents));
  } else {
    *contents = std::move(raw);
  }
  if (FingerprintHexOf(*contents) != chunk.fingerprint_hex) {
    return Status::IOError("store: chunk '" + path +
                           "' fingerprint mismatch (corrupt store)");
  }
  const size_t k = schema_.size();
  if (contents->size() < kChunkHeaderBytes ||
      std::memcmp(contents->data(), kChunkMagic, sizeof(kChunkMagic)) != 0) {
    return Status::IOError("store: chunk '" + path + "' has a bad header");
  }
  const uint64_t rows = ReadU64(contents->data() + 8);
  const uint64_t cols = ReadU64(contents->data() + 16);
  const uint64_t dict_bytes = ReadU64(contents->data() + 24);
  if (rows != chunk.rows || cols != k ||
      contents->size() != kChunkHeaderBytes + rows * cols * 4 + dict_bytes) {
    return Status::IOError("store: chunk '" + path +
                           "' shape disagrees with the manifest");
  }
  return Status::OK();
}

Status ChunkedTable::ReadSpilledColumn(size_t index, size_t col,
                                       std::vector<int32_t>* codes) const {
  const StoredChunk& chunk = chunks_[index];
  FDX_ASSIGN_OR_RETURN(ChunkIo * io, GetChunkIo(index));
  codes->resize(chunk.rows);
  if (io->compressed) {
    std::string column(io->col_sizes[col], '\0');
    FDX_RETURN_IF_ERROR(io->ReadAt(io->col_offsets[col], io->col_sizes[col],
                                   column.data(), dir_ + "/" + chunk.file));
    FDX_RETURN_IF_ERROR(DecodeCompressedColumn(*codec_, column.data(),
                                               column.size(), chunk.rows,
                                               codes->data(), chunk.file));
  } else if (io->use_mmap) {
    const char* slice = io->map.data() + io->col_offsets[col];
    for (size_t r = 0; r < chunk.rows; ++r) {
      (*codes)[r] = ReadI32(slice + r * 4);
    }
  } else {
    std::string slice(io->col_sizes[col], '\0');
    FDX_RETURN_IF_ERROR(io->ReadAt(io->col_offsets[col], io->col_sizes[col],
                                   slice.data(), dir_ + "/" + chunk.file));
    for (size_t r = 0; r < chunk.rows; ++r) {
      (*codes)[r] = ReadI32(slice.data() + r * 4);
    }
  }
  // The slice has been copied out as codes; its pages are dead weight.
  io->DropRange(io->col_offsets[col], io->col_sizes[col]);
  return Status::OK();
}

Status ChunkedTable::ReadColumnCodes(size_t col,
                                     std::vector<int32_t>* out) const {
  const ColumnDictionary& dict = dicts_[col];
  out->clear();
  out->reserve(total_rows_);
  std::vector<int32_t> storage_codes;
  for (size_t i = 0; i < chunks_.size(); ++i) {
    const StoredChunk& chunk = chunks_[i];
    if (!chunk.codes.empty()) {
      for (int32_t storage : chunk.codes[col]) {
        out->push_back(storage < 0 ? EncodedTable::kNullCode
                                   : dict.to_transform[storage]);
      }
      continue;
    }
    // Spilled: the column is one contiguous slice of the chunk file.
    FDX_RETURN_IF_ERROR(ReadSpilledColumn(i, col, &storage_codes));
    for (size_t r = 0; r < chunk.rows; ++r) {
      const int32_t storage = storage_codes[r];
      if (storage < EncodedTable::kNullCode ||
          storage >= static_cast<int32_t>(dict.to_transform.size())) {
        return Status::IOError("store: chunk '" + chunk.file +
                               "' column " + std::to_string(col) +
                               " has out-of-range code " +
                               std::to_string(storage));
      }
      out->push_back(storage < 0 ? EncodedTable::kNullCode
                                 : dict.to_transform[storage]);
    }
  }
  return Status::OK();
}

Result<Table> ChunkedTable::ReadChunkValues(size_t index) const {
  if (index >= chunks_.size()) {
    return Status::InvalidArgument("store: no chunk " + std::to_string(index));
  }
  const StoredChunk& chunk = chunks_[index];
  const size_t k = schema_.size();
  Table out{schema_};
  std::vector<Value> row(k);

  const auto decode_cell = [&](size_t col, int32_t storage) -> Result<Value> {
    if (storage == EncodedTable::kNullCode) return Value::Null();
    if (storage < 0 ||
        storage >= static_cast<int32_t>(dicts_[col].values.size())) {
      return Status::IOError("store: chunk " + std::to_string(index) +
                             " column " + std::to_string(col) +
                             " has out-of-range code " +
                             std::to_string(storage));
    }
    return dicts_[col].values[storage];
  };

  if (!chunk.codes.empty()) {
    for (size_t r = 0; r < chunk.rows; ++r) {
      for (size_t c = 0; c < k; ++c) {
        FDX_ASSIGN_OR_RETURN(row[c], decode_cell(c, chunk.codes[c][r]));
      }
      out.AppendRow(row);
    }
    return out;
  }
  std::string payload;
  FDX_RETURN_IF_ERROR(LoadChunkPayload(index, &payload));
  const char* codes = payload.data() + kChunkHeaderBytes;
  for (size_t r = 0; r < chunk.rows; ++r) {
    for (size_t c = 0; c < k; ++c) {
      const int32_t storage = ReadI32(codes + (c * chunk.rows + r) * 4);
      FDX_ASSIGN_OR_RETURN(row[c], decode_cell(c, storage));
    }
    out.AppendRow(row);
  }
  return out;
}

uint64_t ChunkedTable::MappedResidentBytes() const {
  std::lock_guard<std::mutex> lock(*io_mu_);
  uint64_t total = 0;
  for (const StoredChunk& chunk : chunks_) {
    if (chunk.io != nullptr && chunk.io->use_mmap) {
      total += chunk.io->map.ResidentBytes();
    }
  }
  return total;
}

uint64_t ChunkedTable::mmap_fallbacks() const {
  std::lock_guard<std::mutex> lock(*io_mu_);
  return mmap_fallbacks_;
}

Result<ChunkedTable> ChunkedTable::Open(std::string dir) {
  FDX_ASSIGN_OR_RETURN(std::string manifest_text,
                       ReadFileToString(dir + "/manifest.json"));
  FDX_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(manifest_text));
  if (!root.is_object()) {
    return Status::IOError("store: manifest must be an object");
  }
  const int64_t version = static_cast<int64_t>(root.NumberOr("version", 0));
  if (version != kManifestVersion) {
    return Status::IOError("store: unsupported manifest version " +
                           std::to_string(version));
  }
  const JsonValue* schema_json = root.Find("schema");
  if (schema_json == nullptr || !schema_json->is_array()) {
    return Status::IOError("store: manifest missing schema");
  }
  std::vector<std::string> names;
  names.reserve(schema_json->array().size());
  for (const JsonValue& name : schema_json->array()) {
    if (!name.is_string()) {
      return Status::IOError("store: schema names must be strings");
    }
    names.push_back(name.string_value());
  }

  ChunkedTable table;
  table.schema_ = Schema(std::move(names));
  table.dir_ = std::move(dir);
  table.dicts_.resize(table.schema_.size());
  table.io_mode_ = DefaultStoreIo();
  table.codec_name_ = root.StringOr("codec", "none");
  FDX_ASSIGN_OR_RETURN(table.codec_, FindChunkCodec(table.codec_name_));
  const size_t k = table.schema_.size();

  const JsonValue* chunks_json = root.Find("chunks");
  if (chunks_json == nullptr || !chunks_json->is_array()) {
    return Status::IOError("store: manifest missing chunks");
  }
  for (const JsonValue& entry : chunks_json->array()) {
    if (!entry.is_object()) {
      return Status::IOError("store: chunk entries must be objects");
    }
    StoredChunk chunk;
    chunk.file = entry.StringOr("file", "");
    chunk.rows = static_cast<size_t>(entry.NumberOr("rows", 0));
    chunk.fingerprint_hex = entry.StringOr("fingerprint", "");
    if (chunk.file.empty() || chunk.rows == 0 ||
        chunk.fingerprint_hex.empty()) {
      return Status::IOError("store: malformed chunk entry in manifest");
    }
    table.chunks_.push_back(std::move(chunk));
  }

  // Replay each chunk in order: verify its fingerprint, extend the
  // dictionaries with its delta, and recount nulls from its codes.
  for (size_t i = 0; i < table.chunks_.size(); ++i) {
    StoredChunk& chunk = table.chunks_[i];
    std::string payload;
    FDX_RETURN_IF_ERROR(table.LoadChunkPayload(i, &payload));
    const uint64_t dict_bytes = ReadU64(payload.data() + 24);
    const size_t codes_end = kChunkHeaderBytes + chunk.rows * k * 4;
    const std::string dict_json = payload.substr(codes_end, dict_bytes);
    FDX_ASSIGN_OR_RETURN(JsonValue dict_root, JsonValue::Parse(dict_json));
    const JsonValue* cols = dict_root.Find("cols");
    if (cols == nullptr || !cols->is_array() || cols->array().size() != k) {
      return Status::IOError("store: chunk '" + chunk.file +
                             "' dictionary delta is malformed");
    }
    for (size_t c = 0; c < k; ++c) {
      const JsonValue& col = cols->array()[c];
      const size_t start = static_cast<size_t>(col.NumberOr("start", 0));
      if (start != table.dicts_[c].values.size()) {
        return Status::IOError("store: chunk '" + chunk.file +
                               "' dictionary delta is out of sequence");
      }
      const JsonValue* values = col.Find("values");
      if (values == nullptr || !values->is_array()) {
        return Status::IOError("store: chunk '" + chunk.file +
                               "' dictionary delta missing values");
      }
      for (const JsonValue& cell : values->array()) {
        FDX_ASSIGN_OR_RETURN(Value v, ParseCellJson(cell));
        // Re-encode through the normal path; a fresh value must land on
        // the exact storage code the delta implies.
        std::vector<Value> fresh;
        const size_t before = table.dicts_[c].values.size();
        table.EncodeCell(v, c, &fresh);
        if (table.dicts_[c].values.size() != before + 1) {
          return Status::IOError("store: chunk '" + chunk.file +
                                 "' dictionary delta repeats a value");
        }
      }
    }
    // Null counts come from the codes themselves (EncodeCell above
    // counted nothing: dictionary values are never null).
    const char* codes = payload.data() + kChunkHeaderBytes;
    for (size_t c = 0; c < k; ++c) {
      const int32_t dict_size =
          static_cast<int32_t>(table.dicts_[c].values.size());
      for (size_t r = 0; r < chunk.rows; ++r) {
        const int32_t storage = ReadI32(codes + (c * chunk.rows + r) * 4);
        if (storage == EncodedTable::kNullCode) {
          ++table.dicts_[c].null_count;
        } else if (storage < 0 || storage >= dict_size) {
          return Status::IOError("store: chunk '" + chunk.file +
                                 "' column " + std::to_string(c) +
                                 " has out-of-range code " +
                                 std::to_string(storage));
        }
      }
    }
    table.total_rows_ += chunk.rows;
  }

  const uint64_t manifest_rows =
      static_cast<uint64_t>(root.NumberOr("total_rows", 0));
  if (manifest_rows != table.total_rows_) {
    return Status::IOError("store: manifest row count " +
                           std::to_string(manifest_rows) +
                           " disagrees with chunks (" +
                           std::to_string(table.total_rows_) + ")");
  }
  return table;
}

}  // namespace fdx
