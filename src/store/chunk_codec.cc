#include "store/chunk_codec.h"

namespace fdx {
namespace {

/// Zigzag-delta varint: each code is stored as the zigzagged difference
/// from its predecessor, LEB128-encoded. Dictionary codes are assigned
/// in first-appearance order, so low-cardinality columns (the common
/// case for FD mining) are dominated by small deltas and compress to
/// one byte per row; sorted or run-heavy regions do even better. The
/// transform is exactly invertible on any int32 sequence (nulls are
/// kNullCode = -1, just another small delta), so the decoded codes are
/// bit-identical to the raw format's.
class VarintDeltaCodec final : public ChunkCodec {
 public:
  const char* name() const override { return "varint"; }

  void EncodeColumn(const int32_t* codes, size_t n,
                    std::string* out) const override {
    int64_t prev = 0;
    for (size_t i = 0; i < n; ++i) {
      const int64_t delta = static_cast<int64_t>(codes[i]) - prev;
      prev = codes[i];
      // Zigzag so small negative deltas stay small.
      uint64_t z = (static_cast<uint64_t>(delta) << 1) ^
                   static_cast<uint64_t>(delta >> 63);
      while (z >= 0x80) {
        out->push_back(static_cast<char>(z | 0x80));
        z >>= 7;
      }
      out->push_back(static_cast<char>(z));
    }
  }

  Status DecodeColumn(const char* data, size_t size, size_t n,
                      int32_t* out) const override {
    size_t pos = 0;
    int64_t prev = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t z = 0;
      unsigned shift = 0;
      for (;;) {
        if (pos >= size) {
          return Status::IOError(
              "varint codec: column payload truncated at code " +
              std::to_string(i) + " of " + std::to_string(n));
        }
        const uint64_t byte = static_cast<unsigned char>(data[pos++]);
        // An int32 delta zigzags into at most 33 bits = 5 LEB bytes.
        if (shift >= 35) {
          return Status::IOError(
              "varint codec: overlong varint at code " + std::to_string(i));
        }
        z |= (byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) break;
        shift += 7;
      }
      const int64_t delta =
          static_cast<int64_t>(z >> 1) ^ -static_cast<int64_t>(z & 1);
      const int64_t value = prev + delta;
      if (value < INT32_MIN || value > INT32_MAX) {
        return Status::IOError(
            "varint codec: decoded code out of int32 range at code " +
            std::to_string(i));
      }
      prev = value;
      out[i] = static_cast<int32_t>(value);
    }
    if (pos != size) {
      return Status::IOError("varint codec: " + std::to_string(size - pos) +
                             " trailing bytes after the last code");
    }
    return Status::OK();
  }
};

const VarintDeltaCodec kVarintCodec;

}  // namespace

Result<const ChunkCodec*> FindChunkCodec(const std::string& name) {
  if (name.empty() || name == "none") {
    return static_cast<const ChunkCodec*>(nullptr);
  }
  if (name == "varint") return static_cast<const ChunkCodec*>(&kVarintCodec);
  return Status::InvalidArgument("store: unknown chunk codec '" + name +
                                 "' (want none|varint)");
}

std::vector<std::string> ChunkCodecNames() { return {"none", "varint"}; }

}  // namespace fdx
