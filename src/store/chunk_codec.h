#ifndef FDX_STORE_CHUNK_CODEC_H_
#define FDX_STORE_CHUNK_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fdx {

/// Per-column compression of chunk payloads. A codec transforms one
/// column's `int32` storage codes into a byte string and back; the
/// chunked store records the codec name in `manifest.json` and keeps
/// chunk fingerprints over the *uncompressed* serialization, so a raw
/// store and a compressed store of the same data carry identical
/// fingerprints (and the service's content hashes don't depend on the
/// storage codec).
///
/// Decoding is strict: a decoder must consume exactly `size` bytes and
/// produce exactly `n` codes, and must fail with kIOError (never crash
/// or truncate silently) on malformed input — compressed chunks are
/// still covered by the corrupt-store-fails-loudly contract.
class ChunkCodec {
 public:
  virtual ~ChunkCodec() = default;

  /// Codec name as recorded in the manifest (e.g. "varint").
  virtual const char* name() const = 0;

  /// Appends the encoding of `codes[0..n)` to `*out`.
  virtual void EncodeColumn(const int32_t* codes, size_t n,
                            std::string* out) const = 0;

  /// Decodes exactly `n` codes from `data[0..size)` into `out[0..n)`.
  virtual Status DecodeColumn(const char* data, size_t size, size_t n,
                              int32_t* out) const = 0;
};

/// Looks up a codec by manifest name. Returns nullptr for "none" (the
/// raw format has no codec) and an error for unknown names, so callers
/// distinguish "store is uncompressed" from "store needs a codec this
/// build doesn't have".
Result<const ChunkCodec*> FindChunkCodec(const std::string& name);

/// Names accepted by FindChunkCodec, "none" included (for usage text).
std::vector<std::string> ChunkCodecNames();

}  // namespace fdx

#endif  // FDX_STORE_CHUNK_CODEC_H_
