#ifndef FDX_STORE_STREAM_TRANSFORM_H_
#define FDX_STORE_STREAM_TRANSFORM_H_

#include <cstdint>

#include "core/transform.h"
#include "store/chunked_table.h"

namespace fdx {

/// Knobs of the out-of-core pair transform. The embedded TransformOptions
/// mean exactly what they mean in-memory — same seed derivation, same
/// sampling, same pooled-covariance estimator — because both engines run
/// the shared kernels in core/transform_kernels.h.
/// Schedule of the memory-bounded path (cache budget smaller than the
/// full column set). Both schedules run the same kernels on the same
/// integer counts, so they produce bit-identical results at any thread
/// count — they differ only in I/O order and parallelism.
enum class BoundedSchedule {
  /// Waves of attribute passes sized to the cache budget: each wave's
  /// passes are sorted with one column decoded ahead, then every column
  /// streams through once and is packed into all of the wave's passes
  /// in parallel. Each column is decoded once per wave instead of once
  /// per pass, and pack/popcount work fans out across threads.
  kWave,
  /// One pass at a time over an LRU column cache (the original serial
  /// schedule), kept as a reference implementation.
  kSerial,
};

struct StreamTransformOptions {
  TransformOptions transform;
  /// Budget for the resident working set (decoded columns at 4
  /// bytes/row, plus per-pass state on the wave schedule). When every
  /// column fits, passes run in parallel exactly like the in-memory
  /// engine; otherwise the bounded schedule below kicks in. 0 means
  /// unbounded (keep all columns). Results are bit-identical either
  /// way — the budget only changes I/O.
  uint64_t column_cache_bytes = 0;
  /// How to schedule passes when the cache budget binds.
  BoundedSchedule bounded_schedule = BoundedSchedule::kWave;
  /// Process-RSS ceiling polled between attribute passes; a breach
  /// returns kUnavailable (the caller chose the ceiling, the input
  /// simply does not fit under it). Clean file-backed pages of the
  /// store's chunk mappings are subtracted from the polled figure —
  /// the kernel reclaims those under pressure, so they are page cache,
  /// not footprint. 0 disables the check.
  uint64_t rss_limit_bytes = 0;
};

/// PairTransformCounts over a ChunkedTable. Bit-identical to running the
/// in-memory transform on the concatenation of every appended batch, at
/// any chunk size, cache budget, and thread count.
Result<TransformCounts> StreamTransformCounts(
    const ChunkedTable& table, const StreamTransformOptions& options = {});

/// PairTransformMoments over a ChunkedTable (same equivalence contract).
Result<TransformedMoments> StreamTransformMoments(
    const ChunkedTable& table, const StreamTransformOptions& options = {});

}  // namespace fdx

#endif  // FDX_STORE_STREAM_TRANSFORM_H_
