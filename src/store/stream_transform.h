#ifndef FDX_STORE_STREAM_TRANSFORM_H_
#define FDX_STORE_STREAM_TRANSFORM_H_

#include <cstdint>

#include "core/transform.h"
#include "store/chunked_table.h"

namespace fdx {

/// Knobs of the out-of-core pair transform. The embedded TransformOptions
/// mean exactly what they mean in-memory — same seed derivation, same
/// sampling, same pooled-covariance estimator — because both engines run
/// the shared kernels in core/transform_kernels.h.
struct StreamTransformOptions {
  TransformOptions transform;
  /// Budget for resident decoded columns (4 bytes/row each). When every
  /// column fits, passes run in parallel exactly like the in-memory
  /// engine; otherwise passes run serially over an LRU column cache of
  /// at least two columns. 0 means unbounded (keep all columns).
  /// Results are bit-identical either way — the cache only changes I/O.
  uint64_t column_cache_bytes = 0;
  /// Process-RSS ceiling polled between attribute passes; a breach
  /// returns kUnavailable (the caller chose the ceiling, the input
  /// simply does not fit under it). 0 disables the check.
  uint64_t rss_limit_bytes = 0;
};

/// PairTransformCounts over a ChunkedTable. Bit-identical to running the
/// in-memory transform on the concatenation of every appended batch, at
/// any chunk size, cache budget, and thread count.
Result<TransformCounts> StreamTransformCounts(
    const ChunkedTable& table, const StreamTransformOptions& options = {});

/// PairTransformMoments over a ChunkedTable (same equivalence contract).
Result<TransformedMoments> StreamTransformMoments(
    const ChunkedTable& table, const StreamTransformOptions& options = {});

}  // namespace fdx

#endif  // FDX_STORE_STREAM_TRANSFORM_H_
