#include "store/store_discover.h"

#include <numeric>
#include <string>

#include "store/stream_transform.h"
#include "util/stopwatch.h"

namespace fdx {

Result<FdxResult> DiscoverFromStore(const ChunkedTable& table,
                                    const StoreDiscoverOptions& options) {
  // This function is FdxDiscoverer::Discover with the in-memory
  // transform swapped for the streaming one; every branch below — the
  // degenerate-shape result, the deadline wiring, the timeout message —
  // is kept textually identical so the equivalence suite can compare
  // the two paths output-for-output.
  const Deadline deadline(options.fdx.time_budget_seconds);
  Stopwatch watch;
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  if (k == 0) {
    return Status::InvalidArgument("Discover: table has no columns");
  }
  if (n < 2 || k < 2) {
    FdxResult result;
    result.theta = Matrix(k, k);
    result.autoregression = Matrix(k, k);
    result.ordering.resize(k);
    std::iota(result.ordering.begin(), result.ordering.end(), size_t{0});
    result.diagnostics.events.push_back(
        {"input", "degenerate_table",
         std::to_string(n) + " row(s) x " + std::to_string(k) +
             " column(s): no FD can exist; returning an empty set"});
    return result;
  }

  StreamTransformOptions stream;
  stream.transform = options.fdx.transform;
  if (stream.transform.threads == 0) {
    stream.transform.threads = options.fdx.threads;
  }
  if (stream.transform.deadline == nullptr &&
      options.fdx.time_budget_seconds > 0.0) {
    stream.transform.deadline = &deadline;
  }
  stream.column_cache_bytes = options.column_cache_bytes;
  stream.rss_limit_bytes = options.rss_limit_bytes;
  stream.bounded_schedule = options.bounded_schedule;

  FDX_ASSIGN_OR_RETURN(TransformedMoments moments,
                       StreamTransformMoments(table, stream));
  const double transform_seconds = watch.ElapsedSeconds();
  if (deadline.Expired()) {
    return Status::Timeout("fdx: time budget exhausted after transform");
  }
  const FdxDiscoverer discoverer(options.fdx);
  FDX_ASSIGN_OR_RETURN(
      FdxResult result,
      discoverer.DiscoverFromCovariance(moments.cov, &deadline));
  result.transform_seconds = transform_seconds;
  result.transform_samples = moments.num_samples;
  result.diagnostics.transform_seconds = transform_seconds;
  return result;
}

}  // namespace fdx
