#ifndef FDX_STORE_STORE_DISCOVER_H_
#define FDX_STORE_STORE_DISCOVER_H_

#include <cstdint>

#include "core/fdx.h"
#include "store/chunked_table.h"
#include "store/stream_transform.h"

namespace fdx {

/// Out-of-core discovery knobs: the full FdxOptions plus the streaming
/// transform's memory controls (see stream_transform.h).
struct StoreDiscoverOptions {
  FdxOptions fdx;
  /// Budget for resident decoded columns; 0 = unbounded.
  uint64_t column_cache_bytes = 0;
  /// Process-RSS ceiling; a breach returns kUnavailable. 0 disables.
  uint64_t rss_limit_bytes = 0;
  /// Pass schedule when the cache budget binds (see stream_transform.h).
  BoundedSchedule bounded_schedule = BoundedSchedule::kWave;
};

/// FdxDiscoverer::Discover over a ChunkedTable: streaming pair transform
/// (bounded memory), then the identical structure-learning path via
/// DiscoverFromCovariance. Bit-identical to discovering the in-memory
/// concatenation of every appended batch — same FDs, same matrices,
/// same diagnostics, same error messages — at any chunk size, cache
/// budget, and thread count.
Result<FdxResult> DiscoverFromStore(const ChunkedTable& table,
                                    const StoreDiscoverOptions& options = {});

}  // namespace fdx

#endif  // FDX_STORE_STORE_DISCOVER_H_
