#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/thread_pool.h"

namespace fdx {

namespace {

/// Work threshold (output cells for Transpose, fused multiply-adds for
/// Multiply) above which the parallel, cache-tiled paths engage. Below
/// it the original serial loops run; both paths are bit-identical, the
/// cutoff only avoids the fork/join overhead on the small matrices that
/// dominate the glasso inner loops.
constexpr size_t kParallelWorkCutoff = size_t{1} << 18;

/// Column-tile width of the tiled kernels; keeps an output-row segment
/// plus a B-row segment resident in L1 while streaming over k.
constexpr size_t kTileCols = 128;

}  // namespace

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i].size() == m.cols_);
    std::copy(rows[i].begin(), rows[i].end(), m.RowPtr(i));
  }
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  if (rows_ * cols_ < kParallelWorkCutoff) {
    for (size_t i = 0; i < rows_; ++i) {
      const double* row = RowPtr(i);
      for (size_t j = 0; j < cols_; ++j) t(j, i) = row[j];
    }
    return t;
  }
  // Tiled copy: both source rows and destination rows are touched in
  // cache-line-sized runs instead of one strided stream. Pure copies, so
  // chunking and thread count cannot change the result.
  ParallelFor(0, rows_, /*threads=*/0, [&](size_t lo, size_t hi) {
    for (size_t ib = lo; ib < hi; ib += kTileCols) {
      const size_t ie = std::min(hi, ib + kTileCols);
      for (size_t jb = 0; jb < cols_; jb += kTileCols) {
        const size_t je = std::min(cols_, jb + kTileCols);
        for (size_t i = ib; i < ie; ++i) {
          const double* row = RowPtr(i);
          for (size_t j = jb; j < je; ++j) t(j, i) = row[j];
        }
      }
    }
  });
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  if (rows_ * cols_ * other.cols_ < kParallelWorkCutoff) {
    for (size_t i = 0; i < rows_; ++i) {
      const double* a_row = RowPtr(i);
      double* out_row = out.RowPtr(i);
      for (size_t k = 0; k < cols_; ++k) {
        double a = a_row[k];
        if (a == 0.0) continue;
        const double* b_row = other.RowPtr(k);
        for (size_t j = 0; j < other.cols_; ++j) out_row[j] += a * b_row[j];
      }
    }
    return out;
  }
  // Row-parallel, column-tiled kernel. Each thread owns disjoint output
  // rows, and within a row every out(i, j) still accumulates over k in
  // ascending order, so the result is bit-identical to the serial loop
  // at any thread count.
  ParallelFor(0, rows_, /*threads=*/0, [&](size_t lo, size_t hi) {
    for (size_t jb = 0; jb < other.cols_; jb += kTileCols) {
      const size_t je = std::min(other.cols_, jb + kTileCols);
      for (size_t i = lo; i < hi; ++i) {
        const double* a_row = RowPtr(i);
        double* out_row = out.RowPtr(i);
        for (size_t k = 0; k < cols_; ++k) {
          double a = a_row[k];
          if (a == 0.0) continue;
          const double* b_row = other.RowPtr(k);
          for (size_t j = jb; j < je; ++j) out_row[j] += a * b_row[j];
        }
      }
    }
  });
  return out;
}

Vector Matrix::MultiplyVector(const Vector& v) const {
  assert(v.size() == cols_);
  Vector out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] + other.data_[i];
  return out;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] - other.data_[i];
  return out;
}

Matrix Matrix::Scale(double factor) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * factor;
  return out;
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

Matrix Matrix::Submatrix(const std::vector<size_t>& index_set) const {
  Matrix out(index_set.size(), index_set.size());
  for (size_t i = 0; i < index_set.size(); ++i) {
    for (size_t j = 0; j < index_set.size(); ++j) {
      out(i, j) = (*this)(index_set[i], index_set[j]);
    }
  }
  return out;
}

Matrix Matrix::PermuteSymmetric(const std::vector<size_t>& perm) const {
  assert(perm.size() == rows_ && rows_ == cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out(i, j) = (*this)(perm[i], perm[j]);
    }
  }
  return out;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  const double threshold = tol * std::max(1.0, MaxAbs());
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = i + 1; j < cols_; ++j) {
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > threshold) return false;
    }
  }
  return true;
}

std::string Matrix::ToString(int precision) const {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      std::snprintf(buf, sizeof(buf), "%*.*f ", precision + 4, precision,
                    (*this)(i, j));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

double Dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const Vector& v) { return std::sqrt(Dot(v, v)); }

Vector Axpy(const Vector& a, double s, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

}  // namespace fdx
