#include "linalg/glasso_newton.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "linalg/factorization.h"
#include "linalg/lasso.h"
#include "util/fault_injection.h"

namespace fdx {

namespace {

/// log det(A) from its lower Cholesky factor.
double LogDetFromCholesky(const Matrix& l) {
  double acc = 0.0;
  for (size_t i = 0; i < l.rows(); ++i) acc += std::log(l(i, i));
  return 2.0 * acc;
}

/// Elementwise dot of two symmetric matrices ( = tr(A B) ).
double SymmetricDot(const Matrix& a, const Matrix& b) {
  const size_t m = a.rows();
  double acc = 0.0;
  for (size_t i = 0; i < m; ++i) {
    const double* ra = a.RowPtr(i);
    const double* rb = b.RowPtr(i);
    for (size_t j = 0; j < m; ++j) acc += ra[j] * rb[j];
  }
  return acc;
}

double L1Norm(const Matrix& a) {
  const size_t m = a.rows();
  double acc = 0.0;
  for (size_t i = 0; i < m; ++i) {
    const double* row = a.RowPtr(i);
    for (size_t j = 0; j < m; ++j) acc += std::fabs(row[j]);
  }
  return acc;
}

void FillZero(Matrix* a) {
  const size_t m = a->rows();
  std::fill(a->RowPtr(0), a->RowPtr(0) + m * a->cols(), 0.0);
}

/// Mean absolute off-diagonal of the block's S — the same problem scale
/// the CD solver normalizes its tolerance by.
double ProblemScale(const Matrix& s) {
  const size_t m = s.rows();
  if (m < 2) return 1.0;
  double scale = 0.0;
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = 0; b < m; ++b) {
      if (a != b) scale += std::fabs(s(a, b));
    }
  }
  scale /= static_cast<double>(m * (m - 1));
  return scale > 0.0 ? scale : 1.0;
}

struct StageOutcome {
  size_t iterations = 0;
  double final_mean_change = 0.0;
};

/// One Newton solve at a fixed lambda, updating `theta` in place and
/// leaving `w` = theta^{-1} of the final iterate. `stop_tol` bounds the
/// minimum-norm subgradient max-norm at convergence.
Status NewtonAtLambda(const Matrix& sp, double lambda,
                      const GlassoOptions& options, double stop_tol,
                      size_t max_iterations, Matrix* theta, Matrix* w,
                      StageOutcome* out) {
  const size_t m = sp.rows();

  FDX_ASSIGN_OR_RETURN(CholeskyResult chol, CholeskyFactor(*theta));
  double f_cur = -LogDetFromCholesky(chol.l) + SymmetricDot(sp, *theta) +
                 lambda * L1Norm(*theta);

  // D is the symmetric Newton direction; UT holds (D W)^T, i.e. row j of
  // UT is column j of U = D W, so the quadratic term (W D W)_ij =
  // W_i. · U_.j reduces to two contiguous row dots. Coordinate moves
  // update U rows i and j — columns i and j of UT (strided, but only
  // paid for coordinates that actually move).
  Matrix d(m, m);
  Matrix ut(m, m);
  Matrix theta_try(m, m);
  std::vector<std::pair<uint32_t, uint32_t>> free_set;
  free_set.reserve(m * (m + 1) / 2);

  out->iterations = 0;
  double best_subgrad = 0.0;
  size_t stalled = 0;
  for (size_t iter = 0; iter < max_iterations; ++iter) {
    if (options.deadline != nullptr && options.deadline->Expired()) {
      return Status::Timeout("glasso: time budget exhausted after " +
                             std::to_string(iter) + " newton iterations");
    }
    if (FaultTriggered(kFaultGlassoSweep)) {
      return Status::NumericalError("injected fault: glasso.sweep " +
                                    std::to_string(iter));
    }
    FDX_ASSIGN_OR_RETURN(Matrix w_cur, InverseSpd(*theta));
    *w = std::move(w_cur);

    // Free set and convergence: an entry is free when it is nonzero or
    // its gradient escapes the [-lambda, lambda] subdifferential box;
    // the minimum-norm subgradient is zero everywhere else.
    double subgrad_max = 0.0;
    size_t arg_i = 0, arg_j = 0;
    free_set.clear();
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i; j < m; ++j) {
        const double g = sp(i, j) - (*w)(i, j);
        const double t = (*theta)(i, j);
        double sg;
        if (t != 0.0) {
          sg = std::fabs(g + (t > 0.0 ? lambda : -lambda));
        } else {
          sg = std::max(std::fabs(g) - lambda, 0.0);
        }
        if (sg > subgrad_max) {
          subgrad_max = sg;
          arg_i = i;
          arg_j = j;
        }
        if (t != 0.0 || std::fabs(g) > lambda) free_set.emplace_back(i, j);
      }
    }
    out->iterations = iter + 1;
    if (std::getenv("FDX_NEWTON_DEBUG") != nullptr) {
      std::fprintf(stderr,
                   "iter=%zu subgrad=%.3e free=%zu f=%.12f arg=(%zu,%zu) "
                   "t=%.3e g=%.6e\n",
                   iter, subgrad_max, free_set.size(), f_cur, arg_i, arg_j,
                   (*theta)(arg_i, arg_j), sp(arg_i, arg_j) - (*w)(arg_i, arg_j));
    }
    if (subgrad_max <= stop_tol) return Status::OK();
    // Stall exit: at the solver's numerical floor the subgradient stops
    // improving *and* the accepted steps collapse to rounding noise —
    // more iterations cannot improve the iterate, accept it as
    // converged. The step-size gate keeps ordinary mid-run subgradient
    // plateaus (where steps are still substantial) from exiting early.
    const bool tiny_step =
        iter > 0 && out->final_mean_change <= 1e-4 * stop_tol + 1e-15;
    if (iter == 0 || subgrad_max < 0.999 * best_subgrad) {
      best_subgrad = subgrad_max;
      stalled = 0;
    } else if (tiny_step && ++stalled >= 2) {
      return Status::OK();
    }

    // Inner solve of the quadratic model over the free set. When the
    // free set is dense the unconstrained Newton system W D W = -R has
    // the closed-form solution D0 = -Theta R Theta (the Hessian inverse
    // of -logdet is Theta (x) Theta), which captures exactly the global
    // coupled mode that coordinate descent resolves slowly on
    // ill-conditioned dense problems (e.g. equicorrelation). Seed the
    // direction with the masked closed form and let coordinate descent
    // clean up the l1 geometry; on sparse free sets the mask invalidates
    // the closed form, so start from zero as before.
    FillZero(&d);
    FillZero(&ut);
    const size_t total_entries = m * (m + 1) / 2;
    if (free_set.size() * 2 >= total_entries) {
      // R = g + lambda * sigma on the free set (sigma the minimum-norm
      // subgradient sign), zero elsewhere.
      Matrix r(m, m);
      for (const auto& [i, j] : free_set) {
        const double g = sp(i, j) - (*w)(i, j);
        const double t = (*theta)(i, j);
        double sigma;
        if (t != 0.0) {
          sigma = t > 0.0 ? 1.0 : -1.0;
        } else {
          sigma = g > 0.0 ? -1.0 : 1.0;
        }
        const double rij = g + lambda * sigma;
        r(i, j) = rij;
        if (i != j) r(j, i) = rij;
      }
      const Matrix tr = theta->Multiply(r);
      Matrix d0 = tr.Multiply(*theta);
      for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < m; ++j) d0(i, j) = -d0(i, j);
      }
      // Mask to the free set (frozen zeros must stay zero) and
      // re-symmetrize: the mask is symmetric, so averaging merely
      // removes matmul rounding asymmetry.
      FillZero(&d);
      for (const auto& [i, j] : free_set) {
        const double v = 0.5 * (d0(i, j) + d0(j, i));
        d(i, j) = v;
        if (i != j) d(j, i) = v;
      }
      // UT = (D W)^T = W D for symmetric W, D.
      ut = w->Multiply(d);
      // The mask can push the seed above the D = 0 model value, and a
      // capped inner solve may not repair that — the final direction
      // would not be a descent direction and the line search would have
      // nothing to accept. Evaluate the quadratic model at the seed
      // (g.D + 0.5 tr(WDWD) + lambda(|Theta+D|_1 - |Theta|_1), with
      // tr(WDWD) = sum_ij UT_ij UT_ji since UT = WD) and keep it only
      // when it already improves on zero; coordinate descent from zero
      // is monotone from q(0) = 0, so descent is then guaranteed.
      double q_gd = 0.0;
      double q_quad = 0.0;
      double q_l1 = 0.0;
      for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < m; ++j) {
          q_gd += (sp(i, j) - (*w)(i, j)) * d(i, j);
          q_quad += ut(i, j) * ut(j, i);
          q_l1 += std::fabs((*theta)(i, j) + d(i, j)) -
                  std::fabs((*theta)(i, j));
        }
      }
      const double q_seed = q_gd + 0.5 * q_quad + lambda * q_l1;
      if (!(q_seed < 0.0)) {
        FillZero(&d);
        FillZero(&ut);
      }
    }
    const double inner_tol =
        std::min(options.lasso_tolerance, 0.01 * stop_tol);
    const size_t inner_cap =
        std::min(options.lasso_max_iterations, 8 + 8 * iter);
    for (size_t sweep = 0; sweep < inner_cap; ++sweep) {
      if (options.deadline != nullptr && options.deadline->Expired()) {
        return Status::Timeout("glasso: time budget exhausted after " +
                               std::to_string(iter) + " newton iterations");
      }
      double max_move = 0.0;
      for (const auto& [i, j] : free_set) {
        const double wii = (*w)(i, i);
        const double wjj = (*w)(j, j);
        const double wij = (*w)(i, j);
        const double quad =
            i == j ? wii * wii : wij * wij + wii * wjj;
        const double* w_row_i = w->RowPtr(i);
        const double* ut_row_j = ut.RowPtr(j);
        double wdw = 0.0;
        for (size_t r = 0; r < m; ++r) wdw += w_row_i[r] * ut_row_j[r];
        const double b = sp(i, j) - wij + wdw;
        const double c = (*theta)(i, j) + d(i, j);
        const double mu =
            -c + SoftThreshold(c - b / quad, lambda / quad);
        if (mu != 0.0) {
          d(i, j) += mu;
          if (i != j) d(j, i) += mu;
          // U_i. += mu W_j. and U_j. += mu W_i. — columns i, j of UT.
          const double* w_row_j = w->RowPtr(j);
          if (i == j) {
            for (size_t r = 0; r < m; ++r) ut(r, i) += mu * w_row_i[r];
          } else {
            for (size_t r = 0; r < m; ++r) {
              ut(r, i) += mu * w_row_j[r];
              ut(r, j) += mu * w_row_i[r];
            }
          }
          max_move = std::max(max_move, std::fabs(mu));
        }
      }
      if (max_move <= inner_tol) break;
    }

    // Armijo backtracking on the penalized objective, with the Cholesky
    // factorization doubling as the positive-definiteness check.
    double gd = 0.0;
    double l1_plus = 0.0;
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) {
        gd += (sp(i, j) - (*w)(i, j)) * d(i, j);
        l1_plus += std::fabs((*theta)(i, j) + d(i, j));
      }
    }
    const double l1_cur = L1Norm(*theta);
    const double descent = gd + lambda * (l1_plus - l1_cur);
    constexpr double kArmijoSigma = 1e-4;
    double alpha = 1.0;
    bool accepted = false;
    double f_try = f_cur;
    // Within a few decades of the optimum the true descent falls below
    // the rounding noise of f (~eps * |f|), so the sufficient-decrease
    // test can reject steps that are analytically descending. The unit
    // Newton step is still correct there — take it on the Cholesky
    // (positive-definiteness) check alone.
    const double f_resolution = 1e-12 * (1.0 + std::fabs(f_cur));
    if (std::fabs(descent) <= f_resolution) {
      for (size_t i = 0; i < m; ++i) {
        const double* theta_row = theta->RowPtr(i);
        const double* d_row = d.RowPtr(i);
        double* try_row = theta_try.RowPtr(i);
        for (size_t j = 0; j < m; ++j) try_row[j] = theta_row[j] + d_row[j];
      }
      Result<CholeskyResult> unit_chol = CholeskyFactor(theta_try);
      if (unit_chol.ok()) {
        accepted = true;
        f_try = -LogDetFromCholesky(unit_chol.value().l) +
                SymmetricDot(sp, theta_try) + lambda * L1Norm(theta_try);
      }
    }
    for (int backtrack = 0; !accepted && backtrack < 40;
         ++backtrack, alpha *= 0.5) {
      for (size_t i = 0; i < m; ++i) {
        const double* theta_row = theta->RowPtr(i);
        const double* d_row = d.RowPtr(i);
        double* try_row = theta_try.RowPtr(i);
        for (size_t j = 0; j < m; ++j) {
          try_row[j] = theta_row[j] + alpha * d_row[j];
        }
      }
      Result<CholeskyResult> try_chol = CholeskyFactor(theta_try);
      if (!try_chol.ok()) continue;
      f_try = -LogDetFromCholesky(try_chol.value().l) +
              SymmetricDot(sp, theta_try) + lambda * L1Norm(theta_try);
      if (f_try <= f_cur + kArmijoSigma * alpha * descent) {
        accepted = true;
        break;
      }
    }
    if (!accepted) {
      return Status::NumericalError(
          "glasso newton: line search failed to find a descent step");
    }
    if (std::getenv("FDX_NEWTON_DEBUG") != nullptr) {
      std::fprintf(stderr, "  alpha=%.6f descent=%.3e\n", alpha, descent);
    }
    double step_change = 0.0;
    for (size_t i = 0; i < m; ++i) {
      const double* d_row = d.RowPtr(i);
      for (size_t j = 0; j < m; ++j) {
        step_change += std::fabs(alpha * d_row[j]);
      }
    }
    out->final_mean_change =
        step_change / static_cast<double>(m * m);
    std::swap(*theta, theta_try);
    f_cur = f_try;
  }

  // Iteration cap hit: leave W consistent with the final iterate.
  FDX_ASSIGN_OR_RETURN(Matrix w_final, InverseSpd(*theta));
  *w = std::move(w_final);
  return Status::OK();
}

}  // namespace

Result<NewtonBlockResult> SolveBlockNewton(const Matrix& s,
                                           const GlassoOptions& options,
                                           const Matrix* warm_theta) {
  const size_t m = s.rows();
  const double lambda = options.lambda;

  Matrix sp = s;
  for (size_t j = 0; j < m; ++j) sp(j, j) += options.diagonal_ridge;

  const double s_scale = ProblemScale(s);
  const double stop_tol = options.tolerance * s_scale;

  NewtonBlockResult result;

  // Initial iterate: a positive-definite warm theta wins outright (and
  // skips the continuation); otherwise the diagonal start
  // theta_jj = 1 / (s'_jj + lambda), whose inverse already satisfies the
  // diagonal KKT condition w_jj = s'_jj + lambda exactly.
  bool warm_ok = false;
  if (warm_theta != nullptr && warm_theta->rows() == m &&
      warm_theta->cols() == m) {
    warm_ok = CholeskyFactor(*warm_theta).ok();
    if (warm_ok) result.theta = *warm_theta;
  }
  if (!warm_ok) {
    result.theta = Matrix(m, m);
    for (size_t j = 0; j < m; ++j) {
      const double denom = sp(j, j) + lambda;
      if (denom <= 0.0) {
        return Status::NumericalError(
            "glasso: non-positive theta diagonal");
      }
      result.theta(j, j) = 1.0 / denom;
    }
  }

  // Lambda-path continuation (cold solves only): a few sparser solves
  // at descending multiples of lambda, each warm-starting the next.
  // Multiples at or above lambda_max = max |s'_offdiag| are skipped —
  // there the solution is the diagonal start itself.
  std::vector<double> lambdas;
  if (options.lambda_path && !warm_ok && lambda > 0.0) {
    double lambda_max = 0.0;
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        lambda_max = std::max(lambda_max, std::fabs(sp(i, j)));
      }
    }
    for (double factor : {8.0, 4.0, 2.0}) {
      const double stage = lambda * factor;
      if (stage < lambda_max) lambdas.push_back(stage);
    }
  }
  result.path_stages = lambdas.size();
  lambdas.push_back(lambda);

  for (size_t stage = 0; stage < lambdas.size(); ++stage) {
    const bool target = stage + 1 == lambdas.size();
    // Path stages are initial-point devices: loose tolerance, few
    // iterations. Only the target stage runs to the real stop.
    const double stage_tol = target ? stop_tol : stop_tol * 100.0;
    const size_t stage_cap =
        target ? options.newton_max_iterations
               : std::min<size_t>(options.newton_max_iterations, 8);
    StageOutcome outcome;
    FDX_RETURN_IF_ERROR(NewtonAtLambda(sp, lambdas[stage], options,
                                       stage_tol, stage_cap, &result.theta,
                                       &result.w, &outcome));
    if (target) {
      result.iterations = outcome.iterations;
      result.final_mean_change = outcome.final_mean_change;
    }
  }
  return result;
}

}  // namespace fdx
