#ifndef FDX_LINALG_GLASSO_H_
#define FDX_LINALG_GLASSO_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace fdx {

/// Options for the graphical lasso estimator.
struct GlassoOptions {
  /// L1 penalty on the off-diagonal entries of the precision matrix. The
  /// larger the value, the sparser the estimated structure.
  double lambda = 0.05;
  /// Maximum block-coordinate sweeps over the columns.
  size_t max_iterations = 100;
  /// Convergence: mean absolute change of W per sweep relative to the
  /// mean absolute off-diagonal of S (per connected component in the
  /// fast solver).
  double tolerance = 1e-4;
  /// Ridge added to the diagonal of S before solving; keeps the problem
  /// well posed when the pair transform produces (near-)constant columns.
  double diagonal_ridge = 1e-6;
  /// Inner lasso iteration cap.
  size_t lasso_max_iterations = 500;
  double lasso_tolerance = 1e-6;
  /// Optional wall-clock budget, polled once per block sweep and inside
  /// the inner lasso. Non-owning; the pointed-to deadline must outlive
  /// the call. When it expires the estimator returns Status::Timeout,
  /// matching the budget semantics of the TANE/PYRO/RFI baselines.
  const Deadline* deadline = nullptr;
  /// Worker threads for the per-component fan-out of the fast solver
  /// (0 = FDX_THREADS / hardware concurrency). Every component is solved
  /// serially and written to disjoint output cells, so the result is
  /// bit-identical at any thread count. Ignored by the reference solver.
  size_t threads = 0;
  /// Optional warm start (fast solver only; the reference ignores both).
  /// `warm_w` seeds the off-diagonal of the working covariance estimate
  /// and `warm_theta` seeds the per-column lasso coefficients via
  /// beta_j = -theta_{.j} / theta_jj. Both must be k x k views of a
  /// previous solve on (a perturbation of) the same problem; mismatched
  /// dimensions are ignored. Warm starts change only the initial point
  /// of an iterative scheme that converges to the same optimum — they
  /// buy sweeps, not a different answer. Non-owning.
  const Matrix* warm_w = nullptr;
  const Matrix* warm_theta = nullptr;
};

/// Execution statistics of one fast-solver run: what screening found,
/// how hard the block solves worked, and where the time went. Everything
/// except the *_seconds timings is deterministic for a fixed input (at
/// any thread count), so the counters are safe to surface in cacheable
/// diagnostics payloads.
struct GlassoStats {
  /// Connected components of the screening graph |S_ij| > lambda.
  size_t components = 0;
  /// Component sizes in component order (by smallest member index).
  std::vector<size_t> component_sizes;
  /// Components of size one, closed in O(1) without entering the solver.
  size_t singletons = 0;
  /// Max block-coordinate sweeps over the non-singleton components.
  size_t sweeps = 0;
  /// Largest last-sweep mean absolute W change across components.
  double final_mean_change = 0.0;
  /// Inner-lasso pass counters, summed over all block solves.
  size_t lasso_full_passes = 0;
  size_t lasso_active_passes = 0;
  /// True when a warm start was accepted and applied.
  bool warm_start_used = false;
  /// Stage wall times: screening graph + union-find, per-block input
  /// gathering, the (possibly parallel) block solves, and writing the
  /// blocks back into the full-size result.
  double screen_seconds = 0.0;
  double decompose_seconds = 0.0;
  double solve_seconds = 0.0;
  double assemble_seconds = 0.0;

  /// Fraction of inner-lasso passes that ran on the active set only.
  double ActiveHitRate() const {
    const size_t total = lasso_full_passes + lasso_active_passes;
    return total == 0 ? 0.0
                      : static_cast<double>(lasso_active_passes) /
                            static_cast<double>(total);
  }
};

/// Output of the graphical lasso: the estimated covariance W and the
/// sparse precision (inverse covariance) matrix Theta, with exact zeros
/// where the lasso zeroed a partial correlation.
struct GlassoResult {
  Matrix w;      ///< Estimated covariance (S + lambda on the diagonal).
  Matrix theta;  ///< Sparse precision matrix.
  size_t sweeps = 0;  ///< Block sweeps until convergence (max over blocks).
  /// Populated by the fast solver; default-initialized by the reference.
  GlassoStats stats;
};

/// Connected components of the covariance screening graph: nodes are
/// variables, an edge joins i and j iff |S_ij| > lambda. For the
/// lasso-penalized objective this partition is *exact* (Witten, Friedman
/// & Simon 2011; Mazumder & Hastie 2012): the glasso solution is block
/// diagonal over these components, so each can be solved independently
/// and cross-component entries of Theta and W are identically zero.
/// Components are ordered by smallest member; members are ascending.
std::vector<std::vector<size_t>> GlassoScreenComponents(const Matrix& s,
                                                        double lambda);

/// Sparse inverse covariance estimation via the block coordinate descent
/// of Friedman, Hastie & Tibshirani (2008). Solves
///   max_Theta  log det(Theta) - tr(S Theta) - lambda ||Theta||_1
/// by repeatedly reducing each column to a lasso problem. This is the
/// structure-learning engine behind FDX (paper §4.2) and the GL baseline.
///
/// The fast path: screens S into connected components (exact, see
/// GlassoScreenComponents), closes singletons in O(1), and solves the
/// remaining blocks independently — in parallel when `options.threads`
/// allows — with zero-copy column views and the active-set inner lasso.
/// Deterministic for a fixed input at any thread count.
Result<GlassoResult> GraphicalLasso(const Matrix& s,
                                    const GlassoOptions& options);

/// The pre-decomposition solver: one dense block-coordinate loop over
/// all k columns with per-column submatrix materialization. Kept as the
/// equivalence oracle for the fast path (same fixed point, same
/// sparsity-pattern symmetrization contract) and for A/B benchmarks.
/// Ignores `threads` and the warm-start fields.
Result<GlassoResult> GraphicalLassoReference(const Matrix& s,
                                             const GlassoOptions& options);

}  // namespace fdx

#endif  // FDX_LINALG_GLASSO_H_
