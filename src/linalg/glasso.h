#ifndef FDX_LINALG_GLASSO_H_
#define FDX_LINALG_GLASSO_H_

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace fdx {

/// Per-component solver backend of the fast graphical lasso.
enum class GlassoSolver : int {
  /// Per-component heuristic: the QUIC-style Newton solver for large
  /// dense components (size >= newton_min_block and screened edge
  /// density >= newton_dense_threshold), block coordinate descent
  /// everywhere else. Block/banded/sparse structure keeps the exact CD
  /// path it had before the Newton solver existed.
  kAuto = 0,
  /// Force block coordinate descent (FHT 2008) on every component.
  kCoordinateDescent = 1,
  /// Force the QUIC-style Newton solver on every component.
  kNewton = 2,
};

/// Name of a solver choice: "auto", "cd", "newton".
const char* GlassoSolverName(GlassoSolver solver);
/// Parses "auto" / "cd" / "newton"; returns false on anything else.
bool ParseGlassoSolver(const std::string& text, GlassoSolver* out);

/// Options for the graphical lasso estimator.
struct GlassoOptions {
  /// L1 penalty on the off-diagonal entries of the precision matrix. The
  /// larger the value, the sparser the estimated structure.
  double lambda = 0.05;
  /// Maximum block-coordinate sweeps over the columns.
  size_t max_iterations = 100;
  /// Convergence: mean absolute change of W per sweep relative to the
  /// mean absolute off-diagonal of S (per connected component in the
  /// fast solver).
  double tolerance = 1e-4;
  /// Ridge added to the diagonal of S before solving; keeps the problem
  /// well posed when the pair transform produces (near-)constant columns.
  double diagonal_ridge = 1e-6;
  /// Inner lasso iteration cap.
  size_t lasso_max_iterations = 500;
  double lasso_tolerance = 1e-6;
  /// Optional wall-clock budget, polled once per block sweep and inside
  /// the inner lasso. Non-owning; the pointed-to deadline must outlive
  /// the call. When it expires the estimator returns Status::Timeout,
  /// matching the budget semantics of the TANE/PYRO/RFI baselines.
  const Deadline* deadline = nullptr;
  /// Worker threads for the per-component fan-out of the fast solver
  /// (0 = FDX_THREADS / hardware concurrency). Every component is solved
  /// serially and written to disjoint output cells, so the result is
  /// bit-identical at any thread count. Ignored by the reference solver.
  size_t threads = 0;
  /// Optional warm start (fast solver only; the reference ignores both).
  /// `warm_w` seeds the off-diagonal of the working covariance estimate
  /// and `warm_theta` seeds the per-column lasso coefficients via
  /// beta_j = -theta_{.j} / theta_jj. Both must be k x k views of a
  /// previous solve on (a perturbation of) the same problem; mismatched
  /// dimensions are ignored. Warm starts change only the initial point
  /// of an iterative scheme that converges to the same optimum — they
  /// buy sweeps, not a different answer. Non-owning.
  const Matrix* warm_w = nullptr;
  const Matrix* warm_theta = nullptr;
  /// Per-component solver backend (fast solver only; the reference is
  /// always coordinate descent). See GlassoSolver.
  GlassoSolver solver = GlassoSolver::kAuto;
  /// Newton-solver knobs: outer Newton iteration cap, and the kAuto
  /// dispatch thresholds (component size and screened edge density at or
  /// above which a component takes the Newton path).
  size_t newton_max_iterations = 50;
  size_t newton_min_block = 32;
  double newton_dense_threshold = 0.5;
  /// Lambda-path continuation for *cold* Newton solves: the target
  /// lambda is warm-started from a short sequence of sparser solves
  /// (descending multiples of lambda clamped under lambda_max). Purely
  /// an initial-point device — it never changes the fixed point — and
  /// deterministic, so lineage-keyed result caches stay valid.
  /// Warm-started solves skip the path.
  bool lambda_path = true;
};

/// Execution statistics of one fast-solver run: what screening found,
/// how hard the block solves worked, and where the time went. Everything
/// except the *_seconds timings is deterministic for a fixed input (at
/// any thread count), so the counters are safe to surface in cacheable
/// diagnostics payloads.
struct GlassoStats {
  /// Connected components of the screening graph |S_ij| > lambda.
  size_t components = 0;
  /// Component sizes in component order (by smallest member index).
  std::vector<size_t> component_sizes;
  /// Components of size one, closed in O(1) without entering the solver.
  size_t singletons = 0;
  /// Max block-coordinate sweeps over the non-singleton components.
  size_t sweeps = 0;
  /// Largest last-sweep mean absolute W change across components.
  double final_mean_change = 0.0;
  /// Inner-lasso pass counters, summed over all block solves.
  size_t lasso_full_passes = 0;
  size_t lasso_active_passes = 0;
  /// True when a warm start was accepted and applied.
  bool warm_start_used = false;
  /// Stage wall times: screening graph + union-find, per-block input
  /// gathering, the (possibly parallel) block solves, and writing the
  /// blocks back into the full-size result.
  double screen_seconds = 0.0;
  double decompose_seconds = 0.0;
  double solve_seconds = 0.0;
  double assemble_seconds = 0.0;

  /// Per-backend block counts of the per-component dispatch (singletons
  /// belong to neither) and the Newton work counters, summed over all
  /// Newton blocks: outer Newton iterations at the target lambda, the
  /// lambda-path continuation stages that preceded them, and blocks
  /// where a failed Newton solve fell back to coordinate descent (kAuto
  /// only; a forced kNewton propagates the failure instead).
  size_t cd_blocks = 0;
  size_t newton_blocks = 0;
  size_t newton_iterations = 0;
  size_t newton_path_stages = 0;
  size_t newton_fallbacks = 0;

  /// Fraction of inner-lasso passes that ran on the active set only.
  double ActiveHitRate() const {
    const size_t total = lasso_full_passes + lasso_active_passes;
    return total == 0 ? 0.0
                      : static_cast<double>(lasso_active_passes) /
                            static_cast<double>(total);
  }

  /// Which backend(s) actually solved blocks: "cd", "newton", or
  /// "cd+newton". All-singleton (or k == 1) runs report "cd".
  const char* SolverBackend() const {
    if (newton_blocks == 0) return "cd";
    return cd_blocks == 0 ? "newton" : "cd+newton";
  }
};

/// Output of the graphical lasso: the estimated covariance W and the
/// sparse precision (inverse covariance) matrix Theta, with exact zeros
/// where the lasso zeroed a partial correlation.
struct GlassoResult {
  Matrix w;      ///< Estimated covariance (S + lambda on the diagonal).
  Matrix theta;  ///< Sparse precision matrix.
  size_t sweeps = 0;  ///< Block sweeps until convergence (max over blocks).
  /// Populated by the fast solver; default-initialized by the reference.
  GlassoStats stats;
};

/// Connected components of the covariance screening graph: nodes are
/// variables, an edge joins i and j iff |S_ij| > lambda. For the
/// lasso-penalized objective this partition is *exact* (Witten, Friedman
/// & Simon 2011; Mazumder & Hastie 2012): the glasso solution is block
/// diagonal over these components, so each can be solved independently
/// and cross-component entries of Theta and W are identically zero.
/// Components are ordered by smallest member; members are ascending.
std::vector<std::vector<size_t>> GlassoScreenComponents(const Matrix& s,
                                                        double lambda);

/// Sparse inverse covariance estimation via the block coordinate descent
/// of Friedman, Hastie & Tibshirani (2008). Solves
///   max_Theta  log det(Theta) - tr(S Theta) - lambda ||Theta||_1
/// by repeatedly reducing each column to a lasso problem. This is the
/// structure-learning engine behind FDX (paper §4.2) and the GL baseline.
///
/// The fast path: screens S into connected components (exact, see
/// GlassoScreenComponents), closes singletons in O(1), and solves the
/// remaining blocks independently — in parallel when `options.threads`
/// allows — with zero-copy column views and the active-set inner lasso.
/// Deterministic for a fixed input at any thread count.
Result<GlassoResult> GraphicalLasso(const Matrix& s,
                                    const GlassoOptions& options);

/// The pre-decomposition solver: one dense block-coordinate loop over
/// all k columns with per-column submatrix materialization. Kept as the
/// equivalence oracle for the fast path (same fixed point, same
/// sparsity-pattern symmetrization contract) and for A/B benchmarks.
/// Ignores `threads` and the warm-start fields.
Result<GlassoResult> GraphicalLassoReference(const Matrix& s,
                                             const GlassoOptions& options);

}  // namespace fdx

#endif  // FDX_LINALG_GLASSO_H_
