#ifndef FDX_LINALG_GLASSO_H_
#define FDX_LINALG_GLASSO_H_

#include <cstddef>

#include "linalg/matrix.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace fdx {

/// Options for the graphical lasso estimator.
struct GlassoOptions {
  /// L1 penalty on the off-diagonal entries of the precision matrix. The
  /// larger the value, the sparser the estimated structure.
  double lambda = 0.05;
  /// Maximum block-coordinate sweeps over the columns.
  size_t max_iterations = 100;
  /// Convergence: mean absolute change of W per sweep relative to the
  /// mean absolute off-diagonal of S.
  double tolerance = 1e-4;
  /// Ridge added to the diagonal of S before solving; keeps the problem
  /// well posed when the pair transform produces (near-)constant columns.
  double diagonal_ridge = 1e-6;
  /// Inner lasso iteration cap.
  size_t lasso_max_iterations = 500;
  double lasso_tolerance = 1e-6;
  /// Optional wall-clock budget, polled once per block sweep and inside
  /// the inner lasso. Non-owning; the pointed-to deadline must outlive
  /// the call. When it expires the estimator returns Status::Timeout,
  /// matching the budget semantics of the TANE/PYRO/RFI baselines.
  const Deadline* deadline = nullptr;
};

/// Output of the graphical lasso: the estimated covariance W and the
/// sparse precision (inverse covariance) matrix Theta, with exact zeros
/// where the lasso zeroed a partial correlation.
struct GlassoResult {
  Matrix w;      ///< Estimated covariance (S + lambda on the diagonal).
  Matrix theta;  ///< Sparse precision matrix.
  size_t sweeps = 0;  ///< Block sweeps until convergence.
};

/// Sparse inverse covariance estimation via the block coordinate descent
/// of Friedman, Hastie & Tibshirani (2008). Solves
///   max_Theta  log det(Theta) - tr(S Theta) - lambda ||Theta||_1
/// by repeatedly reducing each column to a lasso problem. This is the
/// structure-learning engine behind FDX (paper §4.2) and the GL baseline.
Result<GlassoResult> GraphicalLasso(const Matrix& s,
                                    const GlassoOptions& options);

}  // namespace fdx

#endif  // FDX_LINALG_GLASSO_H_
