#include "linalg/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace fdx {

namespace {

uint64_t Popcount(uint64_t word) {
  return static_cast<uint64_t>(__builtin_popcountll(word));
}

void GatherCodesScalar(const int32_t* codes, const uint32_t* order, size_t n,
                       int32_t* g) {
  for (size_t i = 0; i < n; ++i) g[i] = codes[order[i]];
}

size_t PackAdjacentEqualScalar(const int32_t* g, size_t n, int32_t null_code,
                               uint64_t* words) {
  const size_t nwords = (n - 1) / 64;
  for (size_t w = 0; w < nwords; ++w) {
    const int32_t* base = g + w * 64;
    uint64_t word = 0;
    for (unsigned t = 0; t < 64; ++t) {
      const uint64_t bit =
          (base[t] != null_code && base[t] == base[t + 1]) ? 1 : 0;
      word |= bit << t;
    }
    words[w] = word;
  }
  return nwords * 64;
}

uint64_t PopcountWordsScalar(const uint64_t* a, size_t len) {
  uint64_t total = 0;
  for (size_t w = 0; w < len; ++w) total += Popcount(a[w]);
  return total;
}

uint64_t PopcountAndWordsScalar(const uint64_t* a, const uint64_t* b,
                                size_t len) {
  uint64_t total = 0;
  for (size_t w = 0; w < len; ++w) total += Popcount(a[w] & b[w]);
  return total;
}

SimdLevel DetectLevel() {
#if defined(__x86_64__) || defined(__i386__)
#if defined(FDX_HAVE_AVX512_BUILD)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vpopcntdq")) {
    return SimdLevel::kAvx512;
  }
#endif
#if defined(FDX_HAVE_AVX2_BUILD)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
#endif
  return SimdLevel::kScalar;
}

SimdLevel ClampToDetected(SimdLevel level) {
  const int detected = static_cast<int>(DetectedSimdLevel());
  int want = static_cast<int>(level);
  if (want > detected) want = detected;
  if (want < 0) want = 0;
  // A machine may support AVX-512 without the binary having an AVX2
  // build; levels are ordered so clamping by integer value is safe only
  // when every level below the detected one is built. The dispatcher
  // falls back through SimdOpsForLevel when a table is missing.
  return static_cast<SimdLevel>(want);
}

/// Initial level: detection clamped by the FDX_SIMD environment variable
/// (read once; unknown values are ignored).
SimdLevel InitialLevel() {
  SimdLevel level = DetectedSimdLevel();
  const char* env = std::getenv("FDX_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) {
      level = SimdLevel::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      level = ClampToDetected(SimdLevel::kAvx2);
    } else if (std::strcmp(env, "avx512") == 0) {
      level = ClampToDetected(SimdLevel::kAvx512);
    }
  }
  return level;
}

std::atomic<int>& ActiveLevelSlot() {
  static std::atomic<int> slot{static_cast<int>(InitialLevel())};
  return slot;
}

}  // namespace

namespace simd_internal {

const SimdOps& ScalarOps() {
  static const SimdOps ops = [] {
    SimdOps table;
    table.level = SimdLevel::kScalar;
    table.gather_codes = GatherCodesScalar;
    table.pack_adjacent_equal = PackAdjacentEqualScalar;
    table.popcount_words = PopcountWordsScalar;
    table.popcount_and_words = PopcountAndWordsScalar;
    return table;
  }();
  return ops;
}

}  // namespace simd_internal

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "scalar";
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel level = DetectLevel();
  return level;
}

SimdLevel ActiveSimdLevel() {
  return static_cast<SimdLevel>(
      ActiveLevelSlot().load(std::memory_order_relaxed));
}

SimdLevel SetSimdLevel(SimdLevel level) {
  const SimdLevel clamped = ClampToDetected(level);
  ActiveLevelSlot().store(static_cast<int>(clamped),
                          std::memory_order_relaxed);
  return clamped;
}

const SimdOps& SimdOpsForLevel(SimdLevel level) {
  switch (ClampToDetected(level)) {
#if defined(FDX_HAVE_AVX512_BUILD)
    case SimdLevel::kAvx512:
      return simd_internal::Avx512Ops();
#endif
#if defined(FDX_HAVE_AVX2_BUILD)
    case SimdLevel::kAvx2:
      return simd_internal::Avx2Ops();
#endif
    default:
      return simd_internal::ScalarOps();
  }
}

const SimdOps& ActiveSimdOps() { return SimdOpsForLevel(ActiveSimdLevel()); }

}  // namespace fdx
