#include "linalg/glasso.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "linalg/glasso_newton.h"
#include "linalg/lasso.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace fdx {

namespace {

Status ValidateGlassoInput(const Matrix& s) {
  const size_t k = s.rows();
  if (k == 0 || s.cols() != k) {
    return Status::InvalidArgument("glasso needs a non-empty square matrix");
  }
  if (!s.IsSymmetric(1e-6)) {
    return Status::InvalidArgument("glasso needs a symmetric matrix");
  }
  return Status::OK();
}

LassoOptions InnerLassoOptions(const GlassoOptions& options) {
  LassoOptions lasso_options;
  lasso_options.lambda = options.lambda;
  lasso_options.max_iterations = options.lasso_max_iterations;
  lasso_options.tolerance = options.lasso_tolerance;
  lasso_options.deadline = options.deadline;
  return lasso_options;
}

/// One screened component of size >= 2, carried through decompose ->
/// solve -> assemble. `s` and `w` are the block-local problem (original
/// member order); the solve replaces `w` and fills `theta` in the same
/// order, so assembly is a plain scatter.
struct BlockProblem {
  std::vector<size_t> members;
  Matrix s;
  Matrix w;
  Matrix theta;
  bool warm = false;  ///< betas seeded from GlassoOptions::warm_theta
  /// Backend chosen by the per-component dispatch (see GlassoSolver).
  bool use_newton = false;

  Status status = Status::OK();
  size_t sweeps = 0;
  double final_mean_change = 0.0;
  LassoSolveStats lasso;
  size_t newton_iterations = 0;
  size_t newton_path_stages = 0;
  bool newton_fallback = false;
};

/// Swaps working slots `a` and `b` (rows and columns) of the two m x m
/// working matrices and keeps the slot <-> local-index maps in sync.
void SwapSlots(Matrix* ws, Matrix* ss, std::vector<size_t>* order,
               std::vector<size_t>* where, size_t a, size_t b) {
  const size_t m = ws->rows();
  std::swap_ranges(ws->RowPtr(a), ws->RowPtr(a) + m, ws->RowPtr(b));
  std::swap_ranges(ss->RowPtr(a), ss->RowPtr(a) + m, ss->RowPtr(b));
  for (size_t r = 0; r < m; ++r) {
    std::swap((*ws)(r, a), (*ws)(r, b));
    std::swap((*ss)(r, a), (*ss)(r, b));
  }
  std::swap((*order)[a], (*order)[b]);
  (*where)[(*order)[a]] = a;
  (*where)[(*order)[b]] = b;
}

/// Block coordinate descent on one component. Instead of materializing
/// the (m-1) x (m-1) submatrix Q per column per sweep, the current
/// column is swapped to the last working slot (O(m)) so W11 is the
/// leading corner of the working matrix, handed to the inner lasso as a
/// strided zero-copy view.
void SolveBlock(BlockProblem* blk, const GlassoOptions& options,
                const Matrix* warm_theta) {
  const size_t m = blk->members.size();
  Matrix ws = std::move(blk->w);  // working W, permuted by the swaps
  Matrix ss = blk->s;             // working S, permuted alongside
  std::vector<size_t> order(m);   // order[slot] = local index at slot
  std::vector<size_t> where(m);   // where[local] = slot holding it
  std::iota(order.begin(), order.end(), size_t{0});
  std::iota(where.begin(), where.end(), size_t{0});

  // Warm-started lasso coefficients, indexed [column j][local index a]
  // (slot a == j unused) so they stay coherent across the slot swaps.
  std::vector<Vector> betas(m, Vector(m, 0.0));
  if (blk->warm) {
    // beta_j = -theta_{rest, j} / theta_jj, the exact inversion of the
    // theta recovery below; a non-positive diagonal leaves the column
    // cold-started.
    for (size_t j = 0; j < m; ++j) {
      const size_t gj = blk->members[j];
      const double theta_jj = (*warm_theta)(gj, gj);
      if (theta_jj <= 0.0) continue;
      for (size_t a = 0; a < m; ++a) {
        if (a == j) continue;
        betas[j][a] = -(*warm_theta)(blk->members[a], gj) / theta_jj;
      }
    }
  }

  // Convergence scale: mean absolute off-diagonal of the block's S.
  double s_scale = 0.0;
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = 0; b < m; ++b) {
      if (a != b) s_scale += std::fabs(ss(a, b));
    }
  }
  s_scale /= static_cast<double>(m * (m - 1));
  if (s_scale <= 0.0) s_scale = 1.0;

  const LassoOptions lasso_options = InnerLassoOptions(options);
  Vector c(m - 1, 0.0);
  Vector beta_work(m - 1, 0.0);
  std::vector<uint32_t> active;  // nonzero beta indices of the column
  active.reserve(m);
  double mean_change = 0.0;

  for (size_t sweep = 0; sweep < options.max_iterations; ++sweep) {
    if (options.deadline != nullptr && options.deadline->Expired()) {
      blk->status = Status::Timeout("glasso: time budget exhausted after " +
                                    std::to_string(sweep) + " sweeps");
      return;
    }
    if (FaultTriggered(kFaultGlassoSweep)) {
      blk->status = Status::NumericalError("injected fault: glasso.sweep " +
                                           std::to_string(sweep));
      return;
    }
    double total_change = 0.0;
    for (size_t j = 0; j < m; ++j) {
      if (where[j] != m - 1) {
        SwapSlots(&ws, &ss, &order, &where, where[j], m - 1);
      }
      for (size_t a = 0; a < m - 1; ++a) {
        c[a] = ss(a, m - 1);
        beta_work[a] = betas[j][order[a]];
      }
      const ConstMatrixView w11(ws.RowPtr(0), m - 1, m - 1, m);
      const Status solved = SolveQuadraticLasso(
          w11, c.data(), lasso_options, beta_work.data(), &blk->lasso);
      if (!solved.ok()) {
        blk->status = solved;
        return;
      }
      for (size_t a = 0; a < m - 1; ++a) betas[j][order[a]] = beta_work[a];
      // w12 = W11 * beta, in covariance-update form (the glmnet trick
      // carried into the glasso inner loop): only the active (nonzero)
      // coefficients contribute, so each row dot costs O(nnz) instead
      // of O(m) — a large win on the sparse structure the screening
      // left inside a component.
      active.clear();
      for (size_t b = 0; b < m - 1; ++b) {
        if (beta_work[b] != 0.0) active.push_back(static_cast<uint32_t>(b));
      }
      for (size_t a = 0; a < m - 1; ++a) {
        const double* row = ws.RowPtr(a);
        double acc = 0.0;
        for (const uint32_t b : active) acc += row[b] * beta_work[b];
        total_change += std::fabs(ws(a, m - 1) - acc);
        ws(a, m - 1) = acc;
        ws(m - 1, a) = acc;
      }
    }
    blk->sweeps = sweep + 1;
    mean_change = total_change / static_cast<double>(m * (m - 1));
    if (mean_change < options.tolerance * s_scale) break;
  }
  blk->final_mean_change = mean_change;

  // Un-permute the working W into original member order.
  Matrix w_local(m, m);
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = 0; b < m; ++b) w_local(order[a], order[b]) = ws(a, b);
  }

  // Recover Theta from the final betas:
  //   theta_jj = 1 / (w_jj - w12^T beta_j),  theta_{rest, j} = -beta theta_jj.
  Matrix theta_local(m, m);
  for (size_t j = 0; j < m; ++j) {
    double w12_beta = 0.0;
    for (size_t a = 0; a < m; ++a) {
      if (a != j) w12_beta += w_local(a, j) * betas[j][a];
    }
    const double denom = w_local(j, j) - w12_beta;
    if (denom <= 0.0) {
      blk->status = Status::NumericalError("glasso: non-positive theta diagonal");
      return;
    }
    const double theta_jj = 1.0 / denom;
    theta_local(j, j) = theta_jj;
    for (size_t a = 0; a < m; ++a) {
      if (a != j) theta_local(a, j) = -betas[j][a] * theta_jj;
    }
  }
  // Symmetrize. A pair is zero only when both directions were zeroed by
  // the lasso, preserving the exact sparsity pattern.
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = a + 1; b < m; ++b) {
      const double avg = 0.5 * (theta_local(a, b) + theta_local(b, a));
      theta_local(a, b) = avg;
      theta_local(b, a) = avg;
    }
  }
  blk->w = std::move(w_local);
  blk->theta = std::move(theta_local);
}

/// Per-component backend choice. kAuto sends large dense components to
/// the Newton solver and leaves everything else — notably the
/// block/banded/sparse structure the screening already decomposed — on
/// the exact CD path it had before the Newton solver existed.
bool ChooseNewton(const GlassoOptions& options, size_t m, double density) {
  switch (options.solver) {
    case GlassoSolver::kCoordinateDescent:
      return false;
    case GlassoSolver::kNewton:
      return true;
    case GlassoSolver::kAuto:
      return m >= options.newton_min_block &&
             density >= options.newton_dense_threshold;
  }
  return false;
}

/// Solves one block with the backend the dispatch picked. A Newton
/// numerical failure under kAuto falls back to coordinate descent on
/// the same block (recorded in stats.newton_fallbacks); timeouts,
/// forced-kNewton failures, and injected faults propagate unchanged so
/// deadline and chaos semantics stay exact.
void SolveBlockDispatch(BlockProblem* blk, const GlassoOptions& options,
                        const Matrix* warm_theta) {
  if (blk->use_newton) {
    Matrix warm_block;
    const Matrix* warm_ptr = nullptr;
    if (blk->warm) {
      const size_t m = blk->members.size();
      warm_block = Matrix(m, m);
      for (size_t a = 0; a < m; ++a) {
        for (size_t b = 0; b < m; ++b) {
          warm_block(a, b) =
              (*warm_theta)(blk->members[a], blk->members[b]);
        }
      }
      warm_ptr = &warm_block;
    }
    Result<NewtonBlockResult> solved =
        SolveBlockNewton(blk->s, options, warm_ptr);
    if (solved.ok()) {
      NewtonBlockResult& newton = solved.value();
      blk->w = std::move(newton.w);
      blk->theta = std::move(newton.theta);
      blk->sweeps = newton.iterations;
      blk->final_mean_change = newton.final_mean_change;
      blk->newton_iterations = newton.iterations;
      blk->newton_path_stages = newton.path_stages;
      return;
    }
    const Status& failure = solved.status();
    const bool injected =
        failure.message().rfind("injected fault", 0) == 0;
    if (options.solver != GlassoSolver::kAuto ||
        failure.code() == StatusCode::kTimeout || injected) {
      blk->status = failure;
      return;
    }
    blk->use_newton = false;
    blk->newton_fallback = true;
  }
  SolveBlock(blk, options, warm_theta);
}

}  // namespace

const char* GlassoSolverName(GlassoSolver solver) {
  switch (solver) {
    case GlassoSolver::kAuto:
      return "auto";
    case GlassoSolver::kCoordinateDescent:
      return "cd";
    case GlassoSolver::kNewton:
      return "newton";
  }
  return "auto";
}

bool ParseGlassoSolver(const std::string& text, GlassoSolver* out) {
  if (text == "auto") {
    *out = GlassoSolver::kAuto;
  } else if (text == "cd") {
    *out = GlassoSolver::kCoordinateDescent;
  } else if (text == "newton") {
    *out = GlassoSolver::kNewton;
  } else {
    return false;
  }
  return true;
}

std::vector<std::vector<size_t>> GlassoScreenComponents(const Matrix& s,
                                                        double lambda) {
  const size_t k = s.rows();
  std::vector<size_t> parent(k);
  std::iota(parent.begin(), parent.end(), size_t{0});
  auto find = [&parent](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];  // path halving
      x = parent[x];
    }
    return x;
  };
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      if (std::fabs(s(i, j)) > lambda) {
        const size_t ri = find(i);
        const size_t rj = find(j);
        if (ri != rj) parent[std::max(ri, rj)] = std::min(ri, rj);
      }
    }
  }
  // Group in first-member order; member lists come out ascending.
  std::vector<std::vector<size_t>> components;
  constexpr size_t kNone = static_cast<size_t>(-1);
  std::vector<size_t> slot_of_root(k, kNone);
  for (size_t i = 0; i < k; ++i) {
    const size_t root = find(i);
    if (slot_of_root[root] == kNone) {
      slot_of_root[root] = components.size();
      components.emplace_back();
    }
    components[slot_of_root[root]].push_back(i);
  }
  return components;
}

Result<GlassoResult> GraphicalLasso(const Matrix& s,
                                    const GlassoOptions& options) {
  FDX_RETURN_IF_ERROR(ValidateGlassoInput(s));
  const size_t k = s.rows();
  const double diag_shift = options.lambda + options.diagonal_ridge;

  GlassoResult result;
  if (k == 1) {
    result.w = Matrix(1, 1);
    result.w(0, 0) = s(0, 0) + diag_shift;
    result.theta = Matrix(1, 1);
    result.theta(0, 0) = 1.0 / result.w(0, 0);
    result.stats.components = 1;
    result.stats.singletons = 1;
    result.stats.component_sizes = {1};
    return result;
  }

  if (options.deadline != nullptr && options.deadline->Expired()) {
    return Status::Timeout("glasso: time budget exhausted after 0 sweeps");
  }
  // Call-level visit of the sweep fault point: an armed fault must fire
  // even when screening leaves no block with a sweep loop to visit it.
  FDX_INJECT_FAULT(kFaultGlassoSweep,
                   Status::NumericalError("injected fault: glasso.sweep 0"));

  GlassoStats& stats = result.stats;
  Stopwatch watch;
  std::vector<std::vector<size_t>> components =
      GlassoScreenComponents(s, options.lambda);
  stats.components = components.size();
  stats.component_sizes.reserve(components.size());
  for (const auto& members : components) {
    stats.component_sizes.push_back(members.size());
    if (members.size() == 1) ++stats.singletons;
  }
  stats.screen_seconds = watch.ElapsedSeconds();

  // Warm-start acceptance: exact-size previous solves only.
  const Matrix* warm_w = options.warm_w;
  const Matrix* warm_theta = options.warm_theta;
  if (warm_w != nullptr && (warm_w->rows() != k || warm_w->cols() != k)) {
    warm_w = nullptr;
  }
  if (warm_theta != nullptr &&
      (warm_theta->rows() != k || warm_theta->cols() != k)) {
    warm_theta = nullptr;
  }
  stats.warm_start_used = warm_w != nullptr || warm_theta != nullptr;

  // Decompose: gather each multi-member block's local problem.
  watch.Reset();
  std::vector<BlockProblem> blocks;
  std::vector<size_t> singletons;
  for (auto& members : components) {
    if (members.size() == 1) {
      singletons.push_back(members[0]);
      continue;
    }
    BlockProblem blk;
    const size_t m = members.size();
    blk.s = Matrix(m, m);
    blk.w = Matrix(m, m);
    for (size_t a = 0; a < m; ++a) {
      for (size_t b = 0; b < m; ++b) {
        blk.s(a, b) = s(members[a], members[b]);
        // W starts at S (off-diagonal possibly from the previous solve)
        // with the penalty + ridge shift on the diagonal.
        blk.w(a, b) = a == b ? blk.s(a, b) + diag_shift
                     : warm_w != nullptr
                         ? (*warm_w)(members[a], members[b])
                         : blk.s(a, b);
      }
    }
    // Screened edge density of the component, for the solver dispatch:
    // the screening connected these members, but how densely determines
    // whether second-order Newton beats coordinate descent.
    size_t edges = 0;
    for (size_t a = 0; a < m; ++a) {
      for (size_t b = a + 1; b < m; ++b) {
        if (std::fabs(blk.s(a, b)) > options.lambda) ++edges;
      }
    }
    const double density = static_cast<double>(2 * edges) /
                           static_cast<double>(m * (m - 1));
    blk.use_newton = ChooseNewton(options, m, density);
    blk.warm = warm_theta != nullptr;
    blk.members = std::move(members);
    blocks.push_back(std::move(blk));
  }
  stats.decompose_seconds = watch.ElapsedSeconds();

  // Solve the blocks, fanned out over the pool. Every block runs its
  // own serial solve and owns disjoint output cells, so the result (and
  // every counter below) is identical at any thread count.
  watch.Reset();
  ParallelFor(0, blocks.size(), options.threads, [&](size_t lo, size_t hi) {
    for (size_t b = lo; b < hi; ++b) {
      SolveBlockDispatch(&blocks[b], options, warm_theta);
    }
  });
  stats.solve_seconds = watch.ElapsedSeconds();

  // Surface the first failure in component order — deterministic no
  // matter which worker hit it first.
  for (const BlockProblem& blk : blocks) {
    FDX_RETURN_IF_ERROR(blk.status);
  }

  // Assemble: singletons close in O(1); blocks scatter back. Cross-
  // component cells stay exactly zero in Theta — and in W, matching the
  // reference solver's converged w12 = W11 * 0 columns.
  watch.Reset();
  result.w = Matrix(k, k);
  result.theta = Matrix(k, k);
  for (size_t j : singletons) {
    const double w_jj = s(j, j) + diag_shift;
    if (w_jj <= 0.0) {
      return Status::NumericalError("glasso: non-positive theta diagonal");
    }
    result.w(j, j) = w_jj;
    result.theta(j, j) = 1.0 / w_jj;
  }
  for (const BlockProblem& blk : blocks) {
    const size_t m = blk.members.size();
    for (size_t a = 0; a < m; ++a) {
      for (size_t b = 0; b < m; ++b) {
        result.w(blk.members[a], blk.members[b]) = blk.w(a, b);
        result.theta(blk.members[a], blk.members[b]) = blk.theta(a, b);
      }
    }
    result.sweeps = std::max(result.sweeps, blk.sweeps);
    stats.final_mean_change =
        std::max(stats.final_mean_change, blk.final_mean_change);
    stats.lasso_full_passes += blk.lasso.full_passes;
    stats.lasso_active_passes += blk.lasso.active_passes;
    if (blk.use_newton) {
      ++stats.newton_blocks;
      stats.newton_iterations += blk.newton_iterations;
      stats.newton_path_stages += blk.newton_path_stages;
    } else {
      ++stats.cd_blocks;
    }
    if (blk.newton_fallback) ++stats.newton_fallbacks;
  }
  stats.sweeps = result.sweeps;
  stats.assemble_seconds = watch.ElapsedSeconds();
  return result;
}

Result<GlassoResult> GraphicalLassoReference(const Matrix& s,
                                             const GlassoOptions& options) {
  FDX_RETURN_IF_ERROR(ValidateGlassoInput(s));
  const size_t k = s.rows();

  GlassoResult result;
  result.w = s;
  for (size_t j = 0; j < k; ++j) {
    result.w(j, j) += options.lambda + options.diagonal_ridge;
  }

  if (k == 1) {
    result.theta = Matrix(1, 1);
    result.theta(0, 0) = 1.0 / result.w(0, 0);
    return result;
  }

  // Warm-started lasso coefficients, one (k-1)-vector per column.
  std::vector<Vector> betas(k, Vector(k - 1, 0.0));

  // Convergence scale: mean absolute off-diagonal of S.
  double s_scale = 0.0;
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = 0; b < k; ++b) {
      if (a != b) s_scale += std::fabs(s(a, b));
    }
  }
  s_scale /= static_cast<double>(k * (k - 1));
  if (s_scale <= 0.0) s_scale = 1.0;

  const LassoOptions lasso_options = InnerLassoOptions(options);

  Matrix q(k - 1, k - 1);
  Vector c(k - 1, 0.0);
  std::vector<size_t> rest(k - 1);

  for (size_t sweep = 0; sweep < options.max_iterations; ++sweep) {
    if (options.deadline != nullptr && options.deadline->Expired()) {
      return Status::Timeout("glasso: time budget exhausted after " +
                             std::to_string(sweep) + " sweeps");
    }
    FDX_INJECT_FAULT(
        kFaultGlassoSweep,
        Status::NumericalError("injected fault: glasso.sweep " +
                               std::to_string(sweep)));
    double total_change = 0.0;
    for (size_t j = 0; j < k; ++j) {
      size_t pos = 0;
      for (size_t m = 0; m < k; ++m) {
        if (m != j) rest[pos++] = m;
      }
      for (size_t a = 0; a < k - 1; ++a) {
        c[a] = s(rest[a], j);
        for (size_t b = 0; b < k - 1; ++b) q(a, b) = result.w(rest[a], rest[b]);
      }
      FDX_RETURN_IF_ERROR(
          SolveQuadraticLasso(q, c, lasso_options, &betas[j]));
      // w12 = W11 * beta.
      for (size_t a = 0; a < k - 1; ++a) {
        double acc = 0.0;
        for (size_t b = 0; b < k - 1; ++b) acc += q(a, b) * betas[j][b];
        total_change += std::fabs(result.w(rest[a], j) - acc);
        result.w(rest[a], j) = acc;
        result.w(j, rest[a]) = acc;
      }
    }
    result.sweeps = sweep + 1;
    const double mean_change =
        total_change / static_cast<double>(k * (k - 1));
    if (mean_change < options.tolerance * s_scale) break;
  }

  // Recover Theta from the final betas:
  //   theta_jj = 1 / (w_jj - w12^T beta_j),  theta_{rest, j} = -beta theta_jj.
  result.theta = Matrix(k, k);
  for (size_t j = 0; j < k; ++j) {
    size_t pos = 0;
    for (size_t m = 0; m < k; ++m) {
      if (m != j) rest[pos++] = m;
    }
    double w12_beta = 0.0;
    for (size_t a = 0; a < k - 1; ++a) {
      w12_beta += result.w(rest[a], j) * betas[j][a];
    }
    const double denom = result.w(j, j) - w12_beta;
    if (denom <= 0.0) {
      return Status::NumericalError("glasso: non-positive theta diagonal");
    }
    const double theta_jj = 1.0 / denom;
    result.theta(j, j) = theta_jj;
    for (size_t a = 0; a < k - 1; ++a) {
      result.theta(rest[a], j) = -betas[j][a] * theta_jj;
    }
  }
  // Symmetrize. A pair is zero only when both directions were zeroed by
  // the lasso, preserving the exact sparsity pattern.
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = a + 1; b < k; ++b) {
      const double avg = 0.5 * (result.theta(a, b) + result.theta(b, a));
      result.theta(a, b) = avg;
      result.theta(b, a) = avg;
    }
  }
  return result;
}

}  // namespace fdx
