#include "linalg/glasso.h"

#include <cmath>
#include <vector>

#include "linalg/lasso.h"
#include "util/fault_injection.h"

namespace fdx {

Result<GlassoResult> GraphicalLasso(const Matrix& s,
                                    const GlassoOptions& options) {
  const size_t k = s.rows();
  if (k == 0 || s.cols() != k) {
    return Status::InvalidArgument("glasso needs a non-empty square matrix");
  }
  if (!s.IsSymmetric(1e-6)) {
    return Status::InvalidArgument("glasso needs a symmetric matrix");
  }

  GlassoResult result;
  result.w = s;
  for (size_t j = 0; j < k; ++j) {
    result.w(j, j) += options.lambda + options.diagonal_ridge;
  }

  if (k == 1) {
    result.theta = Matrix(1, 1);
    result.theta(0, 0) = 1.0 / result.w(0, 0);
    return result;
  }

  // Warm-started lasso coefficients, one (k-1)-vector per column.
  std::vector<Vector> betas(k, Vector(k - 1, 0.0));

  // Convergence scale: mean absolute off-diagonal of S.
  double s_scale = 0.0;
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = 0; b < k; ++b) {
      if (a != b) s_scale += std::fabs(s(a, b));
    }
  }
  s_scale /= static_cast<double>(k * (k - 1));
  if (s_scale <= 0.0) s_scale = 1.0;

  LassoOptions lasso_options;
  lasso_options.lambda = options.lambda;
  lasso_options.max_iterations = options.lasso_max_iterations;
  lasso_options.tolerance = options.lasso_tolerance;
  lasso_options.deadline = options.deadline;

  Matrix q(k - 1, k - 1);
  Vector c(k - 1, 0.0);
  std::vector<size_t> rest(k - 1);

  for (size_t sweep = 0; sweep < options.max_iterations; ++sweep) {
    if (options.deadline != nullptr && options.deadline->Expired()) {
      return Status::Timeout("glasso: time budget exhausted after " +
                             std::to_string(sweep) + " sweeps");
    }
    FDX_INJECT_FAULT(
        kFaultGlassoSweep,
        Status::NumericalError("injected fault: glasso.sweep " +
                               std::to_string(sweep)));
    double total_change = 0.0;
    for (size_t j = 0; j < k; ++j) {
      size_t pos = 0;
      for (size_t m = 0; m < k; ++m) {
        if (m != j) rest[pos++] = m;
      }
      for (size_t a = 0; a < k - 1; ++a) {
        c[a] = s(rest[a], j);
        for (size_t b = 0; b < k - 1; ++b) q(a, b) = result.w(rest[a], rest[b]);
      }
      FDX_RETURN_IF_ERROR(
          SolveQuadraticLasso(q, c, lasso_options, &betas[j]));
      // w12 = W11 * beta.
      for (size_t a = 0; a < k - 1; ++a) {
        double acc = 0.0;
        for (size_t b = 0; b < k - 1; ++b) acc += q(a, b) * betas[j][b];
        total_change += std::fabs(result.w(rest[a], j) - acc);
        result.w(rest[a], j) = acc;
        result.w(j, rest[a]) = acc;
      }
    }
    result.sweeps = sweep + 1;
    const double mean_change =
        total_change / static_cast<double>(k * (k - 1));
    if (mean_change < options.tolerance * s_scale) break;
  }

  // Recover Theta from the final betas:
  //   theta_jj = 1 / (w_jj - w12^T beta_j),  theta_{rest, j} = -beta theta_jj.
  result.theta = Matrix(k, k);
  for (size_t j = 0; j < k; ++j) {
    size_t pos = 0;
    for (size_t m = 0; m < k; ++m) {
      if (m != j) rest[pos++] = m;
    }
    double w12_beta = 0.0;
    for (size_t a = 0; a < k - 1; ++a) {
      w12_beta += result.w(rest[a], j) * betas[j][a];
    }
    const double denom = result.w(j, j) - w12_beta;
    if (denom <= 0.0) {
      return Status::NumericalError("glasso: non-positive theta diagonal");
    }
    const double theta_jj = 1.0 / denom;
    result.theta(j, j) = theta_jj;
    for (size_t a = 0; a < k - 1; ++a) {
      result.theta(rest[a], j) = -betas[j][a] * theta_jj;
    }
  }
  // Symmetrize. A pair is zero only when both directions were zeroed by
  // the lasso, preserving the exact sparsity pattern.
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = a + 1; b < k; ++b) {
      const double avg = 0.5 * (result.theta(a, b) + result.theta(b, a));
      result.theta(a, b) = avg;
      result.theta(b, a) = avg;
    }
  }
  return result;
}

}  // namespace fdx
