// AVX2 kernel table. This translation unit is compiled with -mavx2 (see
// src/linalg/CMakeLists.txt) and must only be *executed* after the
// runtime cpuid check in simd.cc — keep it free of globals with dynamic
// initializers so nothing here runs on load.
#if defined(FDX_HAVE_AVX2_BUILD)

#include <immintrin.h>

#include "linalg/simd.h"

namespace fdx {
namespace {

void GatherCodesAvx2(const int32_t* codes, const uint32_t* order, size_t n,
                     int32_t* g) {
  size_t i = 0;
  // VPGATHERDD indices are signed 32-bit; fall back to scalar for the
  // (hypothetical) > 2^31-row tail where an index would go negative.
  if (n <= static_cast<size_t>(INT32_MAX)) {
    for (; i + 8 <= n; i += 8) {
      const __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(order + i));
      const __m256i v = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(codes), idx, 4);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(g + i), v);
    }
  }
  for (; i < n; ++i) g[i] = codes[order[i]];
}

size_t PackAdjacentEqualAvx2(const int32_t* g, size_t n, int32_t null_code,
                             uint64_t* words) {
  const size_t nwords = (n - 1) / 64;
  const __m256i null_v = _mm256_set1_epi32(null_code);
  for (size_t w = 0; w < nwords; ++w) {
    const int32_t* base = g + w * 64;
    uint64_t word = 0;
    for (unsigned t = 0; t < 8; ++t) {
      // Unaligned loads of g[j] and g[j+1]; the +1 load's last lane is
      // g[w*64 + 63 + 1] <= g[nwords*64] <= g[n-1], always in bounds.
      const __m256i v1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + 8 * t));
      const __m256i v2 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + 8 * t + 1));
      const __m256i eq = _mm256_cmpeq_epi32(v1, v2);
      const __m256i is_null = _mm256_cmpeq_epi32(v1, null_v);
      const __m256i bits = _mm256_andnot_si256(is_null, eq);
      const uint32_t mask = static_cast<uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(bits)));
      word |= static_cast<uint64_t>(mask) << (8 * t);
    }
    words[w] = word;
  }
  return nwords * 64;
}

/// Per-lane byte popcount via the nibble-LUT + PSHUFB trick (Mula),
/// reduced to four u64 lane sums with PSADBW.
inline __m256i Popcount256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline uint64_t HorizontalSum64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(sum, 1));
}

uint64_t PopcountWordsAvx2(const uint64_t* a, size_t len) {
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= len; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  uint64_t total = HorizontalSum64(acc);
  for (; w < len; ++w) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[w]));
  }
  return total;
}

uint64_t PopcountAndWordsAvx2(const uint64_t* a, const uint64_t* b,
                              size_t len) {
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= len; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_and_si256(va, vb)));
  }
  uint64_t total = HorizontalSum64(acc);
  for (; w < len; ++w) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return total;
}

}  // namespace

namespace simd_internal {

const SimdOps& Avx2Ops() {
  static const SimdOps ops = [] {
    SimdOps table;
    table.level = SimdLevel::kAvx2;
    table.gather_codes = GatherCodesAvx2;
    table.pack_adjacent_equal = PackAdjacentEqualAvx2;
    table.popcount_words = PopcountWordsAvx2;
    table.popcount_and_words = PopcountAndWordsAvx2;
    return table;
  }();
  return ops;
}

}  // namespace simd_internal
}  // namespace fdx

#endif  // FDX_HAVE_AVX2_BUILD
