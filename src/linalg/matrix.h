#ifndef FDX_LINALG_MATRIX_H_
#define FDX_LINALG_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace fdx {

/// Dense column vector.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles. This is the workhorse of the
/// structure-learning code; it favors clarity over BLAS-level tuning but
/// keeps the inner loops contiguous so the benchmark sweeps (up to a few
/// hundred attributes) stay fast. Multiply and Transpose switch to
/// parallel, cache-tiled kernels above a size cutoff; both kernels are
/// bit-identical to the serial loops at any thread count.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// The n x n identity.
  static Matrix Identity(size_t n);

  /// Builds a matrix from nested initializer data (row major).
  static Matrix FromRows(const std::vector<Vector>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t i, size_t j) {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Raw pointer to row i (row-major layout).
  double* RowPtr(size_t i) { return data_.data() + i * cols_; }
  const double* RowPtr(size_t i) const { return data_.data() + i * cols_; }

  Matrix Transpose() const;

  /// Matrix product this * other.
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product this * v.
  Vector MultiplyVector(const Vector& v) const;

  /// Element-wise operations.
  Matrix Add(const Matrix& other) const;
  Matrix Subtract(const Matrix& other) const;
  Matrix Scale(double factor) const;

  /// Max absolute element; 0 for an empty matrix.
  double MaxAbs() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Returns the matrix with rows and columns restricted to `index_set`,
  /// in the given order.
  Matrix Submatrix(const std::vector<size_t>& index_set) const;

  /// Symmetric permutation P^T * this * P where P maps new position i to
  /// old position perm[i].
  Matrix PermuteSymmetric(const std::vector<size_t>& perm) const;

  /// True if max |A - A^T| <= tol * max(1, max|A|). The tolerance is
  /// scale-relative: a covariance with entries in the millions and an
  /// asymmetry at the rounding level still counts as symmetric, while
  /// small matrices keep the plain absolute reading (the max(1, .)
  /// floor makes the two coincide for entries up to unit magnitude).
  bool IsSymmetric(double tol = 1e-9) const;

  /// Debug rendering with fixed precision.
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Non-owning, read-only view of a dense row-major block whose row
/// stride may exceed its logical width. This is how the graphical-lasso
/// column steps hand the leading (m-1) x (m-1) corner of an m x m
/// working matrix to the inner lasso without materializing a submatrix:
/// the view costs two pointers, the copy costs O(m^2) per column per
/// sweep. The viewed storage must outlive the view.
class ConstMatrixView {
 public:
  ConstMatrixView() : data_(nullptr), rows_(0), cols_(0), stride_(0) {}
  ConstMatrixView(const double* data, size_t rows, size_t cols, size_t stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    assert(cols <= stride || rows == 0);
  }
  /// Whole-matrix view (stride == cols).
  ConstMatrixView(const Matrix& m)  // NOLINT(runtime/explicit): adapter
      : data_(m.RowPtr(0)), rows_(m.rows()), cols_(m.cols()),
        stride_(m.cols()) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t stride() const { return stride_; }

  double operator()(size_t i, size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * stride_ + j];
  }
  const double* RowPtr(size_t i) const {
    assert(i < rows_);
    return data_ + i * stride_;
  }

 private:
  const double* data_;
  size_t rows_;
  size_t cols_;
  size_t stride_;
};

/// Dot product. Preconditions: equal sizes.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm2(const Vector& v);

/// a + s * b, component-wise.
Vector Axpy(const Vector& a, double s, const Vector& b);

}  // namespace fdx

#endif  // FDX_LINALG_MATRIX_H_
