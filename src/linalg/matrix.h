#ifndef FDX_LINALG_MATRIX_H_
#define FDX_LINALG_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace fdx {

/// Dense column vector.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles. This is the workhorse of the
/// structure-learning code; it favors clarity over BLAS-level tuning but
/// keeps the inner loops contiguous so the benchmark sweeps (up to a few
/// hundred attributes) stay fast. Multiply and Transpose switch to
/// parallel, cache-tiled kernels above a size cutoff; both kernels are
/// bit-identical to the serial loops at any thread count.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// The n x n identity.
  static Matrix Identity(size_t n);

  /// Builds a matrix from nested initializer data (row major).
  static Matrix FromRows(const std::vector<Vector>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t i, size_t j) {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Raw pointer to row i (row-major layout).
  double* RowPtr(size_t i) { return data_.data() + i * cols_; }
  const double* RowPtr(size_t i) const { return data_.data() + i * cols_; }

  Matrix Transpose() const;

  /// Matrix product this * other.
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product this * v.
  Vector MultiplyVector(const Vector& v) const;

  /// Element-wise operations.
  Matrix Add(const Matrix& other) const;
  Matrix Subtract(const Matrix& other) const;
  Matrix Scale(double factor) const;

  /// Max absolute element; 0 for an empty matrix.
  double MaxAbs() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Returns the matrix with rows and columns restricted to `index_set`,
  /// in the given order.
  Matrix Submatrix(const std::vector<size_t>& index_set) const;

  /// Symmetric permutation P^T * this * P where P maps new position i to
  /// old position perm[i].
  Matrix PermuteSymmetric(const std::vector<size_t>& perm) const;

  /// True if max |A - A^T| <= tol.
  bool IsSymmetric(double tol = 1e-9) const;

  /// Debug rendering with fixed precision.
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Dot product. Preconditions: equal sizes.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm2(const Vector& v);

/// a + s * b, component-wise.
Vector Axpy(const Vector& a, double s, const Vector& b);

}  // namespace fdx

#endif  // FDX_LINALG_MATRIX_H_
