#ifndef FDX_LINALG_LASSO_H_
#define FDX_LINALG_LASSO_H_

#include <cstddef>

#include "linalg/matrix.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace fdx {

/// Options for the coordinate-descent lasso solver.
struct LassoOptions {
  double lambda = 0.1;       ///< L1 penalty weight.
  size_t max_iterations = 1000;
  double tolerance = 1e-6;   ///< Max coordinate update to declare converged.
  /// Optional wall-clock budget, polled every few coordinate passes (the
  /// check costs a clock read, so it is amortized). Non-owning.
  const Deadline* deadline = nullptr;
};

/// Soft-thresholding operator S(x, t) = sign(x) * max(|x| - t, 0).
double SoftThreshold(double x, double threshold);

/// Solves the quadratic lasso subproblem
///   min_beta  (1/2) beta^T Q beta - beta^T c + lambda * ||beta||_1
/// by cyclic coordinate descent. Q must be symmetric with positive
/// diagonal. This is exactly the inner problem of graphical lasso
/// (Friedman, Hastie & Tibshirani 2008, eq. 2.4).
///
/// `beta` is used as the warm start and receives the solution.
Status SolveQuadraticLasso(const Matrix& q, const Vector& c,
                           const LassoOptions& options, Vector* beta);

/// Solves a standard lasso regression
///   min_beta (1/2N) ||y - X beta||^2 + lambda ||beta||_1
/// by reducing it to the quadratic form above with Q = X^T X / N and
/// c = X^T y / N. Provided for the sparse-regression framing of the
/// paper's title and used by tests as an independent oracle.
Result<Vector> SolveLassoRegression(const Matrix& x, const Vector& y,
                                    const LassoOptions& options);

}  // namespace fdx

#endif  // FDX_LINALG_LASSO_H_
