#ifndef FDX_LINALG_LASSO_H_
#define FDX_LINALG_LASSO_H_

#include <cstddef>

#include "linalg/matrix.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace fdx {

/// Options for the coordinate-descent lasso solver.
struct LassoOptions {
  double lambda = 0.1;       ///< L1 penalty weight.
  size_t max_iterations = 1000;
  double tolerance = 1e-6;   ///< Max coordinate update to declare converged.
  /// Optional wall-clock budget, polled every few coordinate passes (the
  /// check costs a clock read, so it is amortized). Non-owning.
  const Deadline* deadline = nullptr;
};

/// Soft-thresholding operator S(x, t) = sign(x) * max(|x| - t, 0).
double SoftThreshold(double x, double threshold);

/// Pass counters of one quadratic-lasso solve, split by phase of the
/// Friedman-style two-phase schedule: full passes visit every
/// coordinate, active passes only the current nonzero set. Counters
/// accumulate across calls so one instance can aggregate a whole
/// graphical-lasso block solve.
struct LassoSolveStats {
  size_t full_passes = 0;
  size_t active_passes = 0;
};

/// Solves the quadratic lasso subproblem
///   min_beta  (1/2) beta^T Q beta - beta^T c + lambda * ||beta||_1
/// by cyclic coordinate descent with an active-set schedule: after a
/// full pass over all coordinates, iterate only over the nonzero ones
/// until they stabilize, then rescan everything; convergence is only
/// declared by a full pass whose largest update is below the tolerance,
/// so the active-set shortcut never weakens the stopping criterion. Q
/// must be symmetric with positive diagonal. This is exactly the inner
/// problem of graphical lasso (Friedman, Hastie & Tibshirani 2008,
/// eq. 2.4).
///
/// `beta` is used as the warm start and receives the solution.
Status SolveQuadraticLasso(const Matrix& q, const Vector& c,
                           const LassoOptions& options, Vector* beta);

/// View-based variant used by the graphical-lasso fast path: `q` may be
/// a strided view into a larger working matrix (no copy), `c` and
/// `beta` are raw arrays of length `q.rows()`. `stats`, when non-null,
/// accumulates the pass counters.
Status SolveQuadraticLasso(const ConstMatrixView& q, const double* c,
                           const LassoOptions& options, double* beta,
                           LassoSolveStats* stats);

/// Solves a standard lasso regression
///   min_beta (1/2N) ||y - X beta||^2 + lambda ||beta||_1
/// by reducing it to the quadratic form above with Q = X^T X / N and
/// c = X^T y / N. Provided for the sparse-regression framing of the
/// paper's title and used by tests as an independent oracle.
Result<Vector> SolveLassoRegression(const Matrix& x, const Vector& y,
                                    const LassoOptions& options);

}  // namespace fdx

#endif  // FDX_LINALG_LASSO_H_
