#include "linalg/bitmatrix.h"

#include <algorithm>

#include "linalg/simd.h"

namespace fdx {

namespace {

/// Words per cache block of the Gram kernel: 64 words (512 B) per column
/// keeps ~20 active column slices inside L1 while every column pair
/// streams over the block.
constexpr size_t kGramBlockWords = 64;

/// Row-block height of the unpack kernel, in words (64 rows each). With
/// the column blocking below, one tile of output doubles is
/// kUnpackRowWords * 64 * kUnpackColBlock * 8 B = 16 KB — L1-resident
/// while every source word is read exactly once, sequentially per
/// column.
constexpr size_t kUnpackRowWords = 2;
constexpr size_t kUnpackColBlock = 16;

}  // namespace

void BitMatrix::Reset(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  words_per_column_ = (rows + 63) / 64;
  bits_.assign(cols_ * words_per_column_, 0);
}

void BitMatrix::AccumulateMoments(size_t word_lo, size_t word_hi,
                                  uint64_t* counts,
                                  uint64_t* co_counts) const {
  const size_t k = cols_;
  const SimdOps& ops = ActiveSimdOps();
  for (size_t w0 = word_lo; w0 < word_hi; w0 += kGramBlockWords) {
    const size_t w1 = std::min(word_hi, w0 + kGramBlockWords);
    const size_t len = w1 - w0;
    for (size_t x = 0; x < k; ++x) {
      const uint64_t* cx = column_words(x) + w0;
      const uint64_t self = ops.popcount_words(cx, len);
      counts[x] += self;
      co_counts[x * k + x] += self;
      for (size_t y = x + 1; y < k; ++y) {
        const uint64_t* cy = column_words(y) + w0;
        co_counts[x * k + y] += ops.popcount_and_words(cx, cy, len);
      }
    }
  }
}

void BitMatrix::UnpackRows(size_t row_lo, size_t row_hi,
                           Matrix* dense) const {
  // Column-blocked: the inner loops walk one column's words sequentially
  // and scatter into a bounded tile of output rows, instead of striding
  // across every column's word array once per row.
  const size_t k = cols_;
  const size_t rows_per_block = kUnpackRowWords * 64;
  for (size_t r0 = row_lo; r0 < row_hi; r0 += rows_per_block) {
    const size_t r1 = std::min(row_hi, r0 + rows_per_block);
    for (size_t c0 = 0; c0 < k; c0 += kUnpackColBlock) {
      const size_t c1 = std::min(k, c0 + kUnpackColBlock);
      for (size_t c = c0; c < c1; ++c) {
        const uint64_t* col = column_words(c);
        for (size_t r = r0; r < r1; ++r) {
          dense->RowPtr(r)[c] = static_cast<double>(
              (col[r >> 6] >> (r & 63)) & uint64_t{1});
        }
      }
    }
  }
}

}  // namespace fdx
