#include "linalg/bitmatrix.h"

#include <algorithm>

namespace fdx {

namespace {

/// Words per cache block of the Gram kernel: 64 words (512 B) per column
/// keeps ~20 active column slices inside L1 while every column pair
/// streams over the block.
constexpr size_t kGramBlockWords = 64;

inline uint64_t Popcount(uint64_t word) {
  return static_cast<uint64_t>(__builtin_popcountll(word));
}

}  // namespace

void BitMatrix::Reset(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  words_per_column_ = (rows + 63) / 64;
  bits_.assign(cols_ * words_per_column_, 0);
}

void BitMatrix::AccumulateMoments(size_t word_lo, size_t word_hi,
                                  uint64_t* counts,
                                  uint64_t* co_counts) const {
  const size_t k = cols_;
  for (size_t w0 = word_lo; w0 < word_hi; w0 += kGramBlockWords) {
    const size_t w1 = std::min(word_hi, w0 + kGramBlockWords);
    const size_t len = w1 - w0;
    for (size_t x = 0; x < k; ++x) {
      const uint64_t* cx = column_words(x) + w0;
      uint64_t self = 0;
      for (size_t w = 0; w < len; ++w) self += Popcount(cx[w]);
      counts[x] += self;
      co_counts[x * k + x] += self;
      for (size_t y = x + 1; y < k; ++y) {
        const uint64_t* cy = column_words(y) + w0;
        uint64_t both = 0;
        for (size_t w = 0; w < len; ++w) both += Popcount(cx[w] & cy[w]);
        co_counts[x * k + y] += both;
      }
    }
  }
}

void BitMatrix::UnpackRows(size_t row_lo, size_t row_hi,
                           Matrix* dense) const {
  const size_t k = cols_;
  for (size_t r = row_lo; r < row_hi; ++r) {
    double* out = dense->RowPtr(r);
    const size_t word = r >> 6;
    const size_t bit = r & 63;
    for (size_t c = 0; c < k; ++c) {
      out[c] =
          static_cast<double>((column_words(c)[word] >> bit) & uint64_t{1});
    }
  }
}

}  // namespace fdx
