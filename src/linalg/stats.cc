#include "linalg/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/thread_pool.h"

namespace fdx {

namespace {

/// Rows per accumulation block of the sharded paths. Fixed (instead of
/// derived from the thread count) so that block boundaries — and with
/// them the floating-point reduction tree — depend only on the input
/// shape, making multi-threaded results identical at 2, 8, or any other
/// thread count.
constexpr size_t kStatsBlockRows = 4096;

size_t NumBlocks(size_t n) {
  return (n + kStatsBlockRows - 1) / kStatsBlockRows;
}

/// True when the caller asked for parallelism and the input is tall
/// enough for the blocked path to pay off.
bool UseBlockedPath(size_t n, size_t threads) {
  return ResolveThreadCount(threads) > 1 && n > kStatsBlockRows;
}

}  // namespace

Vector ColumnMeans(const Matrix& samples, size_t threads) {
  const size_t n = samples.rows();
  const size_t k = samples.cols();
  if (!UseBlockedPath(n, threads)) {
    Vector mu(k, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double* row = samples.RowPtr(i);
      for (size_t j = 0; j < k; ++j) mu[j] += row[j];
    }
    if (n > 0) {
      for (size_t j = 0; j < k; ++j) mu[j] /= static_cast<double>(n);
    }
    return mu;
  }
  const size_t blocks = NumBlocks(n);
  std::vector<Vector> partial(blocks, Vector(k, 0.0));
  ParallelForChunks(0, blocks, blocks, threads,
                    [&](size_t block, size_t, size_t) {
                      Vector& sum = partial[block];
                      const size_t lo = block * kStatsBlockRows;
                      const size_t hi = std::min(n, lo + kStatsBlockRows);
                      for (size_t i = lo; i < hi; ++i) {
                        const double* row = samples.RowPtr(i);
                        for (size_t j = 0; j < k; ++j) sum[j] += row[j];
                      }
                    });
  Vector mu(k, 0.0);
  for (size_t block = 0; block < blocks; ++block) {
    for (size_t j = 0; j < k; ++j) mu[j] += partial[block][j];
  }
  for (size_t j = 0; j < k; ++j) mu[j] /= static_cast<double>(n);
  return mu;
}

Result<Matrix> Covariance(const Matrix& samples, size_t threads) {
  if (samples.rows() == 0) {
    return Status::InvalidArgument("covariance of an empty sample");
  }
  return CovarianceWithMean(samples, ColumnMeans(samples, threads), threads);
}

namespace {

/// Words per accumulation chunk of the packed covariance. The counts are
/// integers, so chunking cannot change the result; the block size only
/// balances scheduling overhead against parallel grain.
constexpr size_t kPackedBlockWords = 1024;  // 65536 samples per chunk

}  // namespace

Result<Matrix> Covariance(const BitMatrix& samples, size_t threads) {
  const size_t n = samples.rows();
  const size_t k = samples.cols();
  if (n == 0) return Status::InvalidArgument("covariance of an empty sample");
  std::vector<uint64_t> counts(k, 0);
  std::vector<uint64_t> co_counts(k * k, 0);
  const size_t words = samples.words_per_column();
  const size_t chunks =
      std::max<size_t>(1, (words + kPackedBlockWords - 1) / kPackedBlockWords);
  if (ResolveThreadCount(threads) <= 1 || chunks == 1) {
    samples.AccumulateMoments(counts.data(), co_counts.data());
  } else {
    std::vector<std::vector<uint64_t>> chunk_counts(
        chunks, std::vector<uint64_t>(k, 0));
    std::vector<std::vector<uint64_t>> chunk_co(
        chunks, std::vector<uint64_t>(k * k, 0));
    ParallelForChunks(0, chunks, chunks, threads,
                      [&](size_t chunk, size_t, size_t) {
                        const size_t lo = chunk * kPackedBlockWords;
                        const size_t hi =
                            std::min(words, lo + kPackedBlockWords);
                        samples.AccumulateMoments(lo, hi,
                                                  chunk_counts[chunk].data(),
                                                  chunk_co[chunk].data());
                      });
    for (size_t chunk = 0; chunk < chunks; ++chunk) {
      for (size_t c = 0; c < k; ++c) counts[c] += chunk_counts[chunk][c];
      for (size_t c = 0; c < k * k; ++c) co_counts[c] += chunk_co[chunk][c];
    }
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  Matrix cov(k, k);
  for (size_t x = 0; x < k; ++x) {
    const double mean_x = static_cast<double>(counts[x]) * inv_n;
    for (size_t y = x; y < k; ++y) {
      const double mean_y = static_cast<double>(counts[y]) * inv_n;
      const double exy = static_cast<double>(co_counts[x * k + y]) * inv_n;
      const double value = exy - mean_x * mean_y;
      cov(x, y) = value;
      cov(y, x) = value;
    }
  }
  return cov;
}

namespace {

/// The serial inner kernel shared by both covariance paths: accumulates
/// the upper triangle of sum (x - mu)(x - mu)^T over rows [lo, hi).
void AccumulateCovariance(const Matrix& samples, const Vector& mean,
                          size_t lo, size_t hi, Matrix* s) {
  const size_t k = samples.cols();
  Vector centered(k);
  for (size_t i = lo; i < hi; ++i) {
    const double* row = samples.RowPtr(i);
    for (size_t j = 0; j < k; ++j) centered[j] = row[j] - mean[j];
    for (size_t a = 0; a < k; ++a) {
      const double ca = centered[a];
      if (ca == 0.0) continue;
      double* s_row = s->RowPtr(a);
      for (size_t b = a; b < k; ++b) s_row[b] += ca * centered[b];
    }
  }
}

}  // namespace

Result<Matrix> CovarianceWithMean(const Matrix& samples, const Vector& mean,
                                  size_t threads) {
  const size_t n = samples.rows();
  const size_t k = samples.cols();
  if (n == 0) return Status::InvalidArgument("covariance of an empty sample");
  if (mean.size() != k) {
    return Status::InvalidArgument("mean dimension mismatch");
  }
  Matrix s(k, k);
  if (!UseBlockedPath(n, threads)) {
    AccumulateCovariance(samples, mean, 0, n, &s);
  } else {
    const size_t blocks = NumBlocks(n);
    std::vector<Matrix> partial(blocks, Matrix(k, k));
    ParallelForChunks(0, blocks, blocks, threads,
                      [&](size_t block, size_t, size_t) {
                        const size_t lo = block * kStatsBlockRows;
                        const size_t hi = std::min(n, lo + kStatsBlockRows);
                        AccumulateCovariance(samples, mean, lo, hi,
                                             &partial[block]);
                      });
    for (size_t block = 0; block < blocks; ++block) {
      for (size_t a = 0; a < k; ++a) {
        const double* p_row = partial[block].RowPtr(a);
        double* s_row = s.RowPtr(a);
        for (size_t b = a; b < k; ++b) s_row[b] += p_row[b];
      }
    }
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = a; b < k; ++b) {
      s(a, b) *= inv_n;
      s(b, a) = s(a, b);
    }
  }
  return s;
}

Result<Matrix> Correlation(const Matrix& samples, size_t threads) {
  FDX_ASSIGN_OR_RETURN(Matrix s, Covariance(samples, threads));
  const size_t k = s.rows();
  Matrix r(k, k);
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = 0; b < k; ++b) {
      const double va = s(a, a);
      const double vb = s(b, b);
      if (a == b) {
        r(a, b) = 1.0;
      } else if (va <= 0.0 || vb <= 0.0) {
        r(a, b) = 0.0;
      } else {
        r(a, b) = s(a, b) / std::sqrt(va * vb);
      }
    }
  }
  return r;
}

Matrix CorrelationFromCovariance(const Matrix& cov, double zero_tolerance) {
  const size_t k = cov.rows();
  assert(cov.cols() == k);
  // Exactly the rescaling FDX applies before graphical lasso: a scale of
  // zero (constant indicator) zeroes every coupling of that variable.
  Vector scale(k, 1.0);
  for (size_t i = 0; i < k; ++i) {
    const double var = cov(i, i);
    scale[i] = var > zero_tolerance ? 1.0 / std::sqrt(var) : 0.0;
  }
  Matrix r(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      r(i, j) = i == j ? 1.0 : cov(i, j) * scale[i] * scale[j];
    }
  }
  return r;
}

Vector StandardizeColumns(Matrix* samples, size_t threads) {
  const size_t n = samples->rows();
  const size_t k = samples->cols();
  Vector mu = ColumnMeans(*samples, threads);
  Vector sd(k, 0.0);
  if (!UseBlockedPath(n, threads)) {
    for (size_t i = 0; i < n; ++i) {
      const double* row = samples->RowPtr(i);
      for (size_t j = 0; j < k; ++j) {
        const double c = row[j] - mu[j];
        sd[j] += c * c;
      }
    }
  } else {
    const size_t blocks = NumBlocks(n);
    std::vector<Vector> partial(blocks, Vector(k, 0.0));
    ParallelForChunks(0, blocks, blocks, threads,
                      [&](size_t block, size_t, size_t) {
                        Vector& sum = partial[block];
                        const size_t lo = block * kStatsBlockRows;
                        const size_t hi = std::min(n, lo + kStatsBlockRows);
                        for (size_t i = lo; i < hi; ++i) {
                          const double* row = samples->RowPtr(i);
                          for (size_t j = 0; j < k; ++j) {
                            const double c = row[j] - mu[j];
                            sum[j] += c * c;
                          }
                        }
                      });
    for (size_t block = 0; block < blocks; ++block) {
      for (size_t j = 0; j < k; ++j) sd[j] += partial[block][j];
    }
  }
  for (size_t j = 0; j < k; ++j) {
    sd[j] = n > 0 ? std::sqrt(sd[j] / static_cast<double>(n)) : 0.0;
  }
  // Row-wise rescaling is element-wise, so any chunking is exact.
  ParallelFor(0, n, threads, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      double* row = samples->RowPtr(i);
      for (size_t j = 0; j < k; ++j) {
        row[j] -= mu[j];
        if (sd[j] > 0.0) row[j] /= sd[j];
      }
    }
  });
  return sd;
}

}  // namespace fdx
