#include "linalg/stats.h"

#include <cmath>

namespace fdx {

Vector ColumnMeans(const Matrix& samples) {
  const size_t n = samples.rows();
  const size_t k = samples.cols();
  Vector mu(k, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = samples.RowPtr(i);
    for (size_t j = 0; j < k; ++j) mu[j] += row[j];
  }
  if (n > 0) {
    for (size_t j = 0; j < k; ++j) mu[j] /= static_cast<double>(n);
  }
  return mu;
}

Result<Matrix> Covariance(const Matrix& samples) {
  if (samples.rows() == 0) {
    return Status::InvalidArgument("covariance of an empty sample");
  }
  return CovarianceWithMean(samples, ColumnMeans(samples));
}

Result<Matrix> CovarianceWithMean(const Matrix& samples,
                                  const Vector& mean) {
  const size_t n = samples.rows();
  const size_t k = samples.cols();
  if (n == 0) return Status::InvalidArgument("covariance of an empty sample");
  if (mean.size() != k) {
    return Status::InvalidArgument("mean dimension mismatch");
  }
  Matrix s(k, k);
  Vector centered(k);
  for (size_t i = 0; i < n; ++i) {
    const double* row = samples.RowPtr(i);
    for (size_t j = 0; j < k; ++j) centered[j] = row[j] - mean[j];
    for (size_t a = 0; a < k; ++a) {
      const double ca = centered[a];
      if (ca == 0.0) continue;
      double* s_row = s.RowPtr(a);
      for (size_t b = a; b < k; ++b) s_row[b] += ca * centered[b];
    }
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = a; b < k; ++b) {
      s(a, b) *= inv_n;
      s(b, a) = s(a, b);
    }
  }
  return s;
}

Result<Matrix> Correlation(const Matrix& samples) {
  FDX_ASSIGN_OR_RETURN(Matrix s, Covariance(samples));
  const size_t k = s.rows();
  Matrix r(k, k);
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = 0; b < k; ++b) {
      const double va = s(a, a);
      const double vb = s(b, b);
      if (a == b) {
        r(a, b) = 1.0;
      } else if (va <= 0.0 || vb <= 0.0) {
        r(a, b) = 0.0;
      } else {
        r(a, b) = s(a, b) / std::sqrt(va * vb);
      }
    }
  }
  return r;
}

Vector StandardizeColumns(Matrix* samples) {
  const size_t n = samples->rows();
  const size_t k = samples->cols();
  Vector mu = ColumnMeans(*samples);
  Vector sd(k, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = samples->RowPtr(i);
    for (size_t j = 0; j < k; ++j) {
      const double c = row[j] - mu[j];
      sd[j] += c * c;
    }
  }
  for (size_t j = 0; j < k; ++j) {
    sd[j] = n > 0 ? std::sqrt(sd[j] / static_cast<double>(n)) : 0.0;
  }
  for (size_t i = 0; i < n; ++i) {
    double* row = samples->RowPtr(i);
    for (size_t j = 0; j < k; ++j) {
      row[j] -= mu[j];
      if (sd[j] > 0.0) row[j] /= sd[j];
    }
  }
  return sd;
}

}  // namespace fdx
