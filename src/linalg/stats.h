#ifndef FDX_LINALG_STATS_H_
#define FDX_LINALG_STATS_H_

#include "linalg/bitmatrix.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace fdx {

/// Threading note shared by the functions below. `threads == 1` (the
/// default) runs the original serial accumulation and reproduces its
/// floating-point results bit-for-bit. Any other value (0 = FDX_THREADS
/// env / hardware concurrency) shards the rows into fixed-size blocks
/// whose partial sums are reduced in block order, so multi-threaded
/// results are deterministic and independent of the thread count — they
/// may differ from the serial path in the last ulp only (different but
/// fixed summation association).

/// Column means of an N x k sample matrix.
Vector ColumnMeans(const Matrix& samples, size_t threads = 1);

/// Empirical covariance S = (1/N) sum (x - mu)(x - mu)^T of an N x k
/// sample matrix. Uses the maximum-likelihood (1/N) normalization; for
/// the large N produced by the FDX pair transform the distinction from
/// 1/(N-1) is immaterial.
Result<Matrix> Covariance(const Matrix& samples, size_t threads = 1);

/// Covariance of a bit-packed 0/1 sample matrix. The moments of binary
/// samples are integer counts (column popcounts and pairwise AND
/// popcounts), so the accumulation is exact: the result is bit-identical
/// at every thread count, including `threads == 1` — there is no
/// serial-vs-blocked rounding distinction on this path. Equals the dense
/// `Covariance` of the unpacked matrix up to floating-point rounding
/// only (the dense path sums centered products; this path forms
/// E[xy] - E[x]E[y] from the exact integer moments).
Result<Matrix> Covariance(const BitMatrix& samples, size_t threads = 1);

/// Covariance around a fixed (e.g. zero) mean instead of the empirical
/// one. FDX's pair-difference view corresponds to a zero-mean transformed
/// distribution (paper §4.3); exposing both lets the ablation benches
/// compare the two estimators.
Result<Matrix> CovarianceWithMean(const Matrix& samples, const Vector& mean,
                                  size_t threads = 1);

/// Pearson correlation matrix; columns with zero variance get unit
/// self-correlation and zero cross-correlation.
Result<Matrix> Correlation(const Matrix& samples, size_t threads = 1);

/// Rescales a covariance matrix to a correlation matrix: unit diagonal,
/// off-diagonals divided by the product of the standard deviations.
/// Variables whose variance is at or below `zero_tolerance` keep the
/// unit diagonal and get zero couplings (the convention FDX uses for
/// constant equality indicators). `cov` must be square.
Matrix CorrelationFromCovariance(const Matrix& cov, double zero_tolerance);

/// Standardizes columns in place to zero mean / unit variance. Columns
/// with zero variance are centered only. Returns the per-column stddevs.
Vector StandardizeColumns(Matrix* samples, size_t threads = 1);

}  // namespace fdx

#endif  // FDX_LINALG_STATS_H_
