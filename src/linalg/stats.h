#ifndef FDX_LINALG_STATS_H_
#define FDX_LINALG_STATS_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace fdx {

/// Column means of an N x k sample matrix.
Vector ColumnMeans(const Matrix& samples);

/// Empirical covariance S = (1/N) sum (x - mu)(x - mu)^T of an N x k
/// sample matrix. Uses the maximum-likelihood (1/N) normalization; for
/// the large N produced by the FDX pair transform the distinction from
/// 1/(N-1) is immaterial.
Result<Matrix> Covariance(const Matrix& samples);

/// Covariance around a fixed (e.g. zero) mean instead of the empirical
/// one. FDX's pair-difference view corresponds to a zero-mean transformed
/// distribution (paper §4.3); exposing both lets the ablation benches
/// compare the two estimators.
Result<Matrix> CovarianceWithMean(const Matrix& samples, const Vector& mean);

/// Pearson correlation matrix; columns with zero variance get unit
/// self-correlation and zero cross-correlation.
Result<Matrix> Correlation(const Matrix& samples);

/// Standardizes columns in place to zero mean / unit variance. Columns
/// with zero variance are centered only. Returns the per-column stddevs.
Vector StandardizeColumns(Matrix* samples);

}  // namespace fdx

#endif  // FDX_LINALG_STATS_H_
