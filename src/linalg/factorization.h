#ifndef FDX_LINALG_FACTORIZATION_H_
#define FDX_LINALG_FACTORIZATION_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace fdx {

/// Result of a lower Cholesky factorization A = L * L^T.
struct CholeskyResult {
  Matrix l;  ///< Lower triangular with positive diagonal.
};

/// Result of an LDL^T factorization A = L * D * L^T with unit lower
/// triangular L.
struct LdltResult {
  Matrix l;    ///< Unit lower triangular.
  Vector d;    ///< Diagonal of D.
};

/// Result of the "reverse" factorization A = U * D * U^T with unit
/// *upper* triangular U. This is the decomposition FDX applies to the
/// estimated inverse covariance: with a strictly-upper autoregression
/// matrix B, Theta = (I - B) Omega^{-1} (I - B)^T, so U = I - B
/// (paper §4.2, Algorithm 1).
struct UdutResult {
  Matrix u;  ///< Unit upper triangular.
  Vector d;  ///< Diagonal of D (all positive for SPD input).
};

/// Computes A = L L^T for a symmetric positive definite A.
/// Fails with NumericalError if a pivot drops below `min_pivot`.
Result<CholeskyResult> CholeskyFactor(const Matrix& a,
                                      double min_pivot = 1e-12);

/// Computes A = L D L^T (unit lower L) for symmetric positive definite A.
Result<LdltResult> LdltFactor(const Matrix& a, double min_pivot = 1e-12);

/// Computes A = U D U^T (unit upper U) for symmetric positive definite A.
/// Columns are eliminated from last to first.
Result<UdutResult> UdutFactor(const Matrix& a, double min_pivot = 1e-12);

/// Solves L y = b with lower triangular L (forward substitution).
Vector SolveLowerTriangular(const Matrix& l, const Vector& b);

/// Solves U x = y with upper triangular U (backward substitution).
Vector SolveUpperTriangular(const Matrix& u, const Vector& y);

/// Solves A x = b via Cholesky for symmetric positive definite A.
Result<Vector> SolveSpd(const Matrix& a, const Vector& b);

/// Inverse of a symmetric positive definite matrix via Cholesky.
Result<Matrix> InverseSpd(const Matrix& a);

/// log(det(A)) of a symmetric positive definite matrix.
Result<double> LogDetSpd(const Matrix& a);

}  // namespace fdx

#endif  // FDX_LINALG_FACTORIZATION_H_
