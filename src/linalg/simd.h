#ifndef FDX_LINALG_SIMD_H_
#define FDX_LINALG_SIMD_H_

#include <cstddef>
#include <cstdint>

/// Runtime-dispatched SIMD kernels for the two integer hot loops of the
/// pipeline: the pair-transform bit-pack (gather + adjacent-equality
/// compare) and the AND+popcount Gram block of BitMatrix. Every kernel
/// computes exact integer results, so the scalar fallback and the
/// vector paths are bit-identical by construction — dispatch changes
/// speed, never bytes. The scalar path is always built; the AVX2 and
/// AVX-512 translation units are compiled only where the compiler
/// accepts the flags (mirroring the -mpopcnt gate in the top-level
/// CMakeLists) and selected only after __builtin_cpu_supports agrees at
/// runtime.
namespace fdx {

enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  /// Requires AVX-512 F+BW+VPOPCNTDQ (the Gram kernel leans on VPOPCNTQ).
  kAvx512 = 2,
};

/// Kernel table. All pointers are always valid (scalar at minimum).
struct SimdOps {
  SimdLevel level = SimdLevel::kScalar;

  /// g[i] = codes[order[i]] for i in [0, n): the sorted-order gather that
  /// feeds the pack compare.
  void (*gather_codes)(const int32_t* codes, const uint32_t* order, size_t n,
                       int32_t* g) = nullptr;

  /// Packs the adjacent-equality bits of a contiguous code stream:
  /// bit j = (g[j] != null_code && g[j] == g[j+1]) for j in [0, n-1),
  /// matching EqualCodes(g[j], g[j+1]). Writes the first
  /// floor((n-1)/64) full words into `words` and returns the number of
  /// bits written (a multiple of 64 <= n-1); the caller emits the
  /// remaining tail bits (and the wrap pair) itself.
  size_t (*pack_adjacent_equal)(const int32_t* g, size_t n, int32_t null_code,
                                uint64_t* words) = nullptr;

  /// Sum of popcounts over `len` words.
  uint64_t (*popcount_words)(const uint64_t* a, size_t len) = nullptr;

  /// Sum of popcounts of (a[i] & b[i]) over `len` words.
  uint64_t (*popcount_and_words)(const uint64_t* a, const uint64_t* b,
                                 size_t len) = nullptr;
};

/// Name of a level: "scalar", "avx2", "avx512".
const char* SimdLevelName(SimdLevel level);

/// Best level this binary supports on this CPU (build-gated and
/// cpuid-gated). Constant for the process lifetime.
SimdLevel DetectedSimdLevel();

/// The level kernels currently dispatch to: DetectedSimdLevel() clamped
/// by the FDX_SIMD environment variable (scalar|avx2|avx512, read once)
/// and by any SetSimdLevel override.
SimdLevel ActiveSimdLevel();

/// Test/bench override. The request is clamped to DetectedSimdLevel()
/// (asking for AVX2 on a non-AVX2 machine yields scalar); returns the
/// level actually in effect. Thread-safe, but callers that flip levels
/// mid-run own the determinism argument (outputs are bit-identical at
/// every level, so flipping is safe — just not faster).
SimdLevel SetSimdLevel(SimdLevel level);

/// Kernel table for ActiveSimdLevel().
const SimdOps& ActiveSimdOps();

/// Kernel table for a specific level (clamped to DetectedSimdLevel()).
const SimdOps& SimdOpsForLevel(SimdLevel level);

namespace simd_internal {
/// Per-level kernel tables. Scalar is always defined; the vector tables
/// are defined only in builds whose compiler accepted the flags (the
/// dispatcher references them under the matching FDX_HAVE_*_BUILD
/// macro, so unbuilt levels are never linked).
const SimdOps& ScalarOps();
const SimdOps& Avx2Ops();
const SimdOps& Avx512Ops();
}  // namespace simd_internal

}  // namespace fdx

#endif  // FDX_LINALG_SIMD_H_
