// AVX-512 kernel table (F + BW + VPOPCNTDQ). Compiled with the matching
// -mavx512* flags and executed only after the runtime cpuid check in
// simd.cc passes all three features; no dynamic initializers here.
#if defined(FDX_HAVE_AVX512_BUILD)

#include <immintrin.h>

#include "linalg/simd.h"

namespace fdx {
namespace {

void GatherCodesAvx512(const int32_t* codes, const uint32_t* order, size_t n,
                       int32_t* g) {
  size_t i = 0;
  // Gather indices are signed 32-bit; see the AVX2 variant.
  if (n <= static_cast<size_t>(INT32_MAX)) {
    for (; i + 16 <= n; i += 16) {
      const __m512i idx =
          _mm512_loadu_si512(reinterpret_cast<const void*>(order + i));
      const __m512i v = _mm512_i32gather_epi32(
          idx, reinterpret_cast<const void*>(codes), 4);
      _mm512_storeu_si512(reinterpret_cast<void*>(g + i), v);
    }
  }
  for (; i < n; ++i) g[i] = codes[order[i]];
}

size_t PackAdjacentEqualAvx512(const int32_t* g, size_t n, int32_t null_code,
                               uint64_t* words) {
  const size_t nwords = (n - 1) / 64;
  const __m512i null_v = _mm512_set1_epi32(null_code);
  for (size_t w = 0; w < nwords; ++w) {
    const int32_t* base = g + w * 64;
    uint64_t word = 0;
    for (unsigned t = 0; t < 4; ++t) {
      const __m512i v1 =
          _mm512_loadu_si512(reinterpret_cast<const void*>(base + 16 * t));
      const __m512i v2 = _mm512_loadu_si512(
          reinterpret_cast<const void*>(base + 16 * t + 1));
      const __mmask16 eq = _mm512_cmpeq_epi32_mask(v1, v2);
      const __mmask16 not_null = _mm512_cmpneq_epi32_mask(v1, null_v);
      word |= static_cast<uint64_t>(
                  static_cast<uint16_t>(eq & not_null))
              << (16 * t);
    }
    words[w] = word;
  }
  return nwords * 64;
}

uint64_t PopcountWordsAvx512(const uint64_t* a, size_t len) {
  __m512i acc = _mm512_setzero_si512();
  size_t w = 0;
  for (; w + 8 <= len; w += 8) {
    const __m512i v =
        _mm512_loadu_si512(reinterpret_cast<const void*>(a + w));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  uint64_t total = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; w < len; ++w) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[w]));
  }
  return total;
}

uint64_t PopcountAndWordsAvx512(const uint64_t* a, const uint64_t* b,
                                size_t len) {
  __m512i acc = _mm512_setzero_si512();
  size_t w = 0;
  for (; w + 8 <= len; w += 8) {
    const __m512i va =
        _mm512_loadu_si512(reinterpret_cast<const void*>(a + w));
    const __m512i vb =
        _mm512_loadu_si512(reinterpret_cast<const void*>(b + w));
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  uint64_t total = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; w < len; ++w) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return total;
}

}  // namespace

namespace simd_internal {

const SimdOps& Avx512Ops() {
  static const SimdOps ops = [] {
    SimdOps table;
    table.level = SimdLevel::kAvx512;
    table.gather_codes = GatherCodesAvx512;
    table.pack_adjacent_equal = PackAdjacentEqualAvx512;
    table.popcount_words = PopcountWordsAvx512;
    table.popcount_and_words = PopcountAndWordsAvx512;
    return table;
  }();
  return ops;
}

}  // namespace simd_internal
}  // namespace fdx

#endif  // FDX_HAVE_AVX512_BUILD
