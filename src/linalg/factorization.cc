#include "linalg/factorization.h"

#include <cmath>

#include "util/fault_injection.h"

namespace fdx {

Result<CholeskyResult> CholeskyFactor(const Matrix& a, double min_pivot) {
  const size_t n = a.rows();
  if (n != a.cols()) {
    return Status::InvalidArgument("Cholesky needs a square matrix");
  }
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag < min_pivot) {
      return Status::NumericalError("Cholesky pivot " + std::to_string(j) +
                                    " not positive definite");
    }
    const double root = std::sqrt(diag);
    l(j, j) = root;
    for (size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / root;
    }
  }
  return CholeskyResult{std::move(l)};
}

Result<LdltResult> LdltFactor(const Matrix& a, double min_pivot) {
  const size_t n = a.rows();
  if (n != a.cols()) {
    return Status::InvalidArgument("LDLT needs a square matrix");
  }
  Matrix l = Matrix::Identity(n);
  Vector d(n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k) * d[k];
    if (diag < min_pivot) {
      return Status::NumericalError("LDLT pivot " + std::to_string(j) +
                                    " not positive definite");
    }
    d[j] = diag;
    for (size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k) * d[k];
      l(i, j) = acc / diag;
    }
  }
  return LdltResult{std::move(l), std::move(d)};
}

Result<UdutResult> UdutFactor(const Matrix& a, double min_pivot) {
  const size_t n = a.rows();
  if (n != a.cols()) {
    return Status::InvalidArgument("UDUT needs a square matrix");
  }
  FDX_INJECT_FAULT(kFaultUdutPivot,
                   Status::NumericalError("injected fault: udut.pivot"));
  Matrix u = Matrix::Identity(n);
  Vector d(n, 0.0);
  // Eliminate from the last column backwards: for i <= j,
  //   A(i, j) = U(i, j) * D(j) + sum_{m > j} U(i, m) D(m) U(j, m).
  for (size_t jj = n; jj-- > 0;) {
    const size_t j = jj;
    double diag = a(j, j);
    for (size_t m = j + 1; m < n; ++m) diag -= u(j, m) * u(j, m) * d[m];
    if (diag < min_pivot) {
      return Status::NumericalError("UDUT pivot " + std::to_string(j) +
                                    " not positive definite");
    }
    d[j] = diag;
    for (size_t i = 0; i < j; ++i) {
      double acc = a(i, j);
      for (size_t m = j + 1; m < n; ++m) acc -= u(i, m) * u(j, m) * d[m];
      u(i, j) = acc / diag;
    }
  }
  return UdutResult{std::move(u), std::move(d)};
}

Vector SolveLowerTriangular(const Matrix& l, const Vector& b) {
  const size_t n = l.rows();
  Vector y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
    y[i] = acc / l(i, i);
  }
  return y;
}

Vector SolveUpperTriangular(const Matrix& u, const Vector& y) {
  const size_t n = u.rows();
  Vector x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    const size_t i = ii;
    double acc = y[i];
    for (size_t k = i + 1; k < n; ++k) acc -= u(i, k) * x[k];
    x[i] = acc / u(i, i);
  }
  return x;
}

Result<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  FDX_ASSIGN_OR_RETURN(CholeskyResult chol, CholeskyFactor(a));
  Vector y = SolveLowerTriangular(chol.l, b);
  return SolveUpperTriangular(chol.l.Transpose(), y);
}

Result<Matrix> InverseSpd(const Matrix& a) {
  const size_t n = a.rows();
  FDX_ASSIGN_OR_RETURN(CholeskyResult chol, CholeskyFactor(a));
  Matrix lt = chol.l.Transpose();
  Matrix inv(n, n);
  Vector e(n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    Vector y = SolveLowerTriangular(chol.l, e);
    Vector x = SolveUpperTriangular(lt, y);
    for (size_t i = 0; i < n; ++i) inv(i, j) = x[i];
    e[j] = 0.0;
  }
  return inv;
}

Result<double> LogDetSpd(const Matrix& a) {
  FDX_ASSIGN_OR_RETURN(CholeskyResult chol, CholeskyFactor(a));
  double acc = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) acc += std::log(chol.l(i, i));
  return 2.0 * acc;
}

}  // namespace fdx
