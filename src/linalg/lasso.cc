#include "linalg/lasso.h"

#include <cmath>

#include "util/fault_injection.h"

namespace fdx {

double SoftThreshold(double x, double threshold) {
  if (x > threshold) return x - threshold;
  if (x < -threshold) return x + threshold;
  return 0.0;
}

Status SolveQuadraticLasso(const Matrix& q, const Vector& c,
                           const LassoOptions& options, Vector* beta) {
  const size_t p = q.rows();
  if (q.cols() != p || c.size() != p) {
    return Status::InvalidArgument("lasso dimension mismatch");
  }
  FDX_INJECT_FAULT(kFaultLassoSolve,
                   Status::NumericalError("injected fault: lasso.solve"));
  if (beta->size() != p) beta->assign(p, 0.0);

  // Maintain the gradient residual r_l = c_l - sum_m Q(l, m) beta_m
  // incrementally so each coordinate pass is O(p^2) only when
  // coefficients actually move.
  Vector qbeta = q.MultiplyVector(*beta);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Amortize the clock read: one poll every 8 coordinate passes keeps
    // the budget honored within milliseconds without touching the hot
    // loop's throughput.
    if (options.deadline != nullptr && (iter & 7u) == 0 &&
        options.deadline->Expired()) {
      return Status::Timeout("lasso: time budget exhausted");
    }
    double max_delta = 0.0;
    for (size_t l = 0; l < p; ++l) {
      const double q_ll = q(l, l);
      if (q_ll <= 0.0) {
        return Status::NumericalError("lasso: non-positive diagonal");
      }
      const double old = (*beta)[l];
      // Partial residual excludes l's own contribution.
      const double rho = c[l] - (qbeta[l] - q_ll * old);
      const double updated = SoftThreshold(rho, options.lambda) / q_ll;
      const double delta = updated - old;
      if (delta != 0.0) {
        (*beta)[l] = updated;
        const double* q_row = q.RowPtr(l);
        for (size_t m = 0; m < p; ++m) qbeta[m] += delta * q_row[m];
        max_delta = std::max(max_delta, std::fabs(delta));
      }
    }
    if (max_delta < options.tolerance) break;
  }
  return Status::OK();
}

Result<Vector> SolveLassoRegression(const Matrix& x, const Vector& y,
                                    const LassoOptions& options) {
  const size_t n = x.rows();
  const size_t p = x.cols();
  if (y.size() != n) {
    return Status::InvalidArgument("lasso regression dimension mismatch");
  }
  if (n == 0) return Status::InvalidArgument("empty design matrix");
  Matrix q(p, p);
  Vector c(p, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = x.RowPtr(i);
    for (size_t a = 0; a < p; ++a) {
      c[a] += row[a] * y[i];
      for (size_t b = a; b < p; ++b) q(a, b) += row[a] * row[b];
    }
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  for (size_t a = 0; a < p; ++a) {
    c[a] *= inv_n;
    for (size_t b = a; b < p; ++b) {
      q(a, b) *= inv_n;
      q(b, a) = q(a, b);
    }
  }
  Vector beta(p, 0.0);
  FDX_RETURN_IF_ERROR(SolveQuadraticLasso(q, c, options, &beta));
  return beta;
}

}  // namespace fdx
