#include "linalg/lasso.h"

#include <cmath>

#include "util/fault_injection.h"

namespace fdx {

double SoftThreshold(double x, double threshold) {
  if (x > threshold) return x - threshold;
  if (x < -threshold) return x + threshold;
  return 0.0;
}

Status SolveQuadraticLasso(const ConstMatrixView& q, const double* c,
                           const LassoOptions& options, double* beta,
                           LassoSolveStats* stats) {
  const size_t p = q.rows();
  if (q.cols() != p) {
    return Status::InvalidArgument("lasso dimension mismatch");
  }
  FDX_INJECT_FAULT(kFaultLassoSolve,
                   Status::NumericalError("injected fault: lasso.solve"));

  // Maintain the gradient residual r_l = c_l - sum_m Q(l, m) beta_m
  // incrementally so each coordinate pass is O(p^2) only when
  // coefficients actually move.
  Vector qbeta(p, 0.0);
  for (size_t l = 0; l < p; ++l) {
    const double b = beta[l];
    if (b == 0.0) continue;
    const double* q_row = q.RowPtr(l);
    for (size_t m = 0; m < p; ++m) qbeta[m] += b * q_row[m];
  }

  // One coordinate update; returns false on a non-positive diagonal.
  auto update = [&](size_t l, double* max_delta) {
    const double q_ll = q(l, l);
    if (q_ll <= 0.0) return false;
    const double old = beta[l];
    // Partial residual excludes l's own contribution.
    const double rho = c[l] - (qbeta[l] - q_ll * old);
    const double updated = SoftThreshold(rho, options.lambda) / q_ll;
    const double delta = updated - old;
    if (delta != 0.0) {
      beta[l] = updated;
      const double* q_row = q.RowPtr(l);
      for (size_t m = 0; m < p; ++m) qbeta[m] += delta * q_row[m];
      *max_delta = std::max(*max_delta, std::fabs(delta));
    }
    return true;
  };

  // Two-phase schedule: a full pass seeds the active set; active passes
  // iterate the nonzeros until they stabilize; the next full pass either
  // certifies convergence or refreshes the set. `max_iterations` caps
  // the total pass count of both phases.
  std::vector<size_t> active;
  active.reserve(p);
  bool need_full = true;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Amortize the clock read: one poll every 8 coordinate passes keeps
    // the budget honored within milliseconds without touching the hot
    // loop's throughput.
    if (options.deadline != nullptr && (iter & 7u) == 0 &&
        options.deadline->Expired()) {
      return Status::Timeout("lasso: time budget exhausted");
    }
    double max_delta = 0.0;
    if (need_full) {
      if (stats != nullptr) ++stats->full_passes;
      active.clear();
      for (size_t l = 0; l < p; ++l) {
        if (!update(l, &max_delta)) {
          return Status::NumericalError("lasso: non-positive diagonal");
        }
        if (beta[l] != 0.0) active.push_back(l);
      }
      if (max_delta < options.tolerance) break;  // certified by a full pass
      // A saturated active set makes the restricted pass identical to a
      // full one; keep rescanning so the set tracks coordinates that
      // drop back to zero.
      need_full = active.size() == p;
    } else {
      if (stats != nullptr) ++stats->active_passes;
      for (size_t l : active) {
        if (!update(l, &max_delta)) {
          return Status::NumericalError("lasso: non-positive diagonal");
        }
      }
      // The nonzeros stabilized; rescan everything to certify (or pull
      // newly violating coordinates into the set).
      if (max_delta < options.tolerance) need_full = true;
    }
  }
  return Status::OK();
}

Status SolveQuadraticLasso(const Matrix& q, const Vector& c,
                           const LassoOptions& options, Vector* beta) {
  const size_t p = q.rows();
  if (q.cols() != p || c.size() != p) {
    return Status::InvalidArgument("lasso dimension mismatch");
  }
  if (beta->size() != p) beta->assign(p, 0.0);
  return SolveQuadraticLasso(ConstMatrixView(q), c.data(), options,
                             beta->data(), /*stats=*/nullptr);
}

Result<Vector> SolveLassoRegression(const Matrix& x, const Vector& y,
                                    const LassoOptions& options) {
  const size_t n = x.rows();
  const size_t p = x.cols();
  if (y.size() != n) {
    return Status::InvalidArgument("lasso regression dimension mismatch");
  }
  if (n == 0) return Status::InvalidArgument("empty design matrix");
  Matrix q(p, p);
  Vector c(p, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = x.RowPtr(i);
    for (size_t a = 0; a < p; ++a) {
      c[a] += row[a] * y[i];
      for (size_t b = a; b < p; ++b) q(a, b) += row[a] * row[b];
    }
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  for (size_t a = 0; a < p; ++a) {
    c[a] *= inv_n;
    for (size_t b = a; b < p; ++b) {
      q(a, b) *= inv_n;
      q(b, a) = q(a, b);
    }
  }
  Vector beta(p, 0.0);
  FDX_RETURN_IF_ERROR(SolveQuadraticLasso(q, c, options, &beta));
  return beta;
}

}  // namespace fdx
