#ifndef FDX_LINALG_BITMATRIX_H_
#define FDX_LINALG_BITMATRIX_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace fdx {

/// A packed binary sample matrix: `rows` samples of `cols` 0/1 variables,
/// stored column-major as ceil(rows/64) `uint64_t` words per column (bit
/// `r & 63` of word `r >> 6` is sample r). This is the native output
/// representation of the FDX pair transform, whose samples are equality
/// indicators: one cell costs one bit instead of one double, and the
/// first and second moments reduce to popcounts —
///
///   counts[x]       = popcount(col_x)            (sum of column x)
///   co_counts[x][y] = popcount(col_x AND col_y)  (co-occurrences)
///
/// — which makes moment estimation all-integer and therefore exact: any
/// partition of the words yields bit-identical accumulated counts.
///
/// Invariant: padding bits past `rows` in the last word of each column
/// are zero, so whole-word popcounts never overcount.
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(size_t rows, size_t cols) { Reset(rows, cols); }

  /// Resizes to rows x cols and clears every word to zero.
  void Reset(size_t rows, size_t cols);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Words per column (= ceil(rows / 64)).
  size_t words_per_column() const { return words_per_column_; }

  uint64_t* column_words(size_t c) {
    return bits_.data() + c * words_per_column_;
  }
  const uint64_t* column_words(size_t c) const {
    return bits_.data() + c * words_per_column_;
  }

  void Set(size_t row, size_t col) {
    column_words(col)[row >> 6] |= uint64_t{1} << (row & 63);
  }
  bool Get(size_t row, size_t col) const {
    return (column_words(col)[row >> 6] >> (row & 63)) & 1;
  }

  /// Accumulates the integer moments of the word range [word_lo, word_hi)
  /// of every column into caller-owned accumulators:
  ///   counts[x]           += popcount of column x
  ///   co_counts[x*k + y]  += popcount(col_x AND col_y)   for y >= x
  /// (upper triangle only, diagonal included; k = cols()). The kernel is
  /// word-blocked so the active slice of every column stays cache
  /// resident while the k^2/2 column pairs stream over it.
  void AccumulateMoments(size_t word_lo, size_t word_hi, uint64_t* counts,
                         uint64_t* co_counts) const;

  /// Whole-matrix variant of the above.
  void AccumulateMoments(uint64_t* counts, uint64_t* co_counts) const {
    AccumulateMoments(0, words_per_column_, counts, co_counts);
  }

  /// Unpacks rows [row_lo, row_hi) into the same rows of a dense
  /// row-major matrix (which must be rows() x cols()), writing exact
  /// 0.0 / 1.0 doubles.
  void UnpackRows(size_t row_lo, size_t row_hi, Matrix* dense) const;

  /// Bitwise equality (same shape and words).
  bool IdenticalTo(const BitMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           bits_ == other.bits_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t words_per_column_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace fdx

#endif  // FDX_LINALG_BITMATRIX_H_
