#ifndef FDX_LINALG_GLASSO_NEWTON_H_
#define FDX_LINALG_GLASSO_NEWTON_H_

#include "linalg/glasso.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace fdx {

/// Output of one QUIC-style Newton solve on a block-local problem.
struct NewtonBlockResult {
  Matrix w;      ///< Theta^{-1} at the final iterate.
  Matrix theta;  ///< Sparse precision estimate (symmetric, exact zeros).
  /// Newton iterations spent at the target lambda (line-searched steps
  /// plus the final convergence check).
  size_t iterations = 0;
  /// Lambda-path continuation stages run before the target lambda.
  size_t path_stages = 0;
  /// Mean absolute Theta change of the last accepted Newton step.
  double final_mean_change = 0.0;
};

/// Second-order solver for one (dense) connected component of the
/// graphical lasso, in the style of QUIC (Hsieh, Sustik, Dhillon &
/// Ravikumar 2011): minimize
///
///   f(Theta) = -log det Theta + tr(S' Theta) + lambda ||Theta||_1,
///   S' = s + diagonal_ridge * I,
///
/// by coordinate descent on the Newton direction over the free set
/// (entries that are nonzero or violate the KKT bound), followed by an
/// Armijo line search on f with a Cholesky positive-definiteness check.
/// This is the same fixed point as the FHT block coordinate descent —
/// w_jj = s_jj + ridge + lambda on the diagonal, |w_ij - s_ij| <= lambda
/// off it — reached in a handful of quadratically-convergent steps
/// where dense structure forces CD to grind through many full sweeps.
///
/// Convergence: minimum-norm subgradient max-norm <= tolerance *
/// s_scale (same problem scale the CD solver normalizes by). Cold
/// solves optionally run a short lambda-path continuation first (see
/// GlassoOptions::lambda_path); `warm_theta`, when non-null and
/// positive definite, seeds the iterate directly and skips the path.
///
/// `s` must be the block-local covariance (members gathered); the
/// result matrices come back in the same local order. Deterministic:
/// fixed coordinate order, no thread interaction.
Result<NewtonBlockResult> SolveBlockNewton(const Matrix& s,
                                           const GlassoOptions& options,
                                           const Matrix* warm_theta);

}  // namespace fdx

#endif  // FDX_LINALG_GLASSO_NEWTON_H_
