#include "data/discretize.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace fdx {

namespace {

/// Index of the bin containing `value` given sorted upper boundaries.
int64_t BinOf(const std::vector<double>& upper_bounds, double value) {
  const auto it =
      std::lower_bound(upper_bounds.begin(), upper_bounds.end(), value);
  return static_cast<int64_t>(it - upper_bounds.begin());
}

}  // namespace

Result<Table> DiscretizeNumericColumns(const Table& table,
                                       const DiscretizeOptions& options) {
  if (options.bins < 2) {
    return Status::InvalidArgument("need at least two bins");
  }
  Table out = table;
  const size_t n = table.num_rows();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    // Collect non-null numeric values; skip mixed or string columns.
    std::vector<double> values;
    bool numeric = true;
    for (size_t r = 0; r < n && numeric; ++r) {
      const Value& v = table.cell(r, c);
      if (v.is_null()) continue;
      if (v.type() == ValueType::kInt || v.type() == ValueType::kDouble) {
        values.push_back(v.ToNumeric());
      } else {
        numeric = false;
      }
    }
    if (!numeric || values.empty()) continue;
    std::set<double> distinct(values.begin(), values.end());
    if (distinct.size() <= options.max_categorical_cardinality) continue;

    // Bin boundaries (upper bounds of all but the last bin).
    std::vector<double> upper_bounds;
    if (options.kind == BinningKind::kEqualWidth) {
      const double lo = *distinct.begin();
      const double hi = *distinct.rbegin();
      const double width =
          (hi - lo) / static_cast<double>(options.bins);
      if (width <= 0.0) continue;
      for (size_t b = 1; b < options.bins; ++b) {
        upper_bounds.push_back(lo + width * static_cast<double>(b));
      }
    } else {
      std::sort(values.begin(), values.end());
      for (size_t b = 1; b < options.bins; ++b) {
        const size_t index =
            b * values.size() / options.bins;
        upper_bounds.push_back(values[index]);
      }
      upper_bounds.erase(
          std::unique(upper_bounds.begin(), upper_bounds.end()),
          upper_bounds.end());
      if (upper_bounds.empty()) continue;
    }
    for (size_t r = 0; r < n; ++r) {
      const Value& v = table.cell(r, c);
      if (v.is_null() ||
          (v.type() != ValueType::kInt && v.type() != ValueType::kDouble)) {
        continue;
      }
      out.set_cell(r, c, Value(BinOf(upper_bounds, v.ToNumeric())));
    }
  }
  return out;
}

}  // namespace fdx
