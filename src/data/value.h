#ifndef FDX_DATA_VALUE_H_
#define FDX_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace fdx {

/// Runtime type of a Value.
enum class ValueType {
  kNull = 0,
  kInt,
  kDouble,
  kString,
};

/// A dynamically typed cell value. Relations in this library are mixed
/// typed (categorical, numerical, text), matching the paper's claim that
/// the pair transform supports heterogeneous data (§3.1): all the
/// discovery algorithms only ever compare cells for equality.
class Value {
 public:
  /// Null (missing) value.
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (data_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors. Preconditions: matching type().
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric view: ints widen to double; null and string are 0. Used by
  /// the raw-data GL baseline which standardizes encoded columns.
  double ToNumeric() const;

  /// Renders the value; null renders as the empty string.
  std::string ToString() const;

  /// Parses a CSV field: empty -> null, integer, double, else string.
  static Value Parse(const std::string& text);

  /// Strict equality: same type and same payload. Two nulls are NOT
  /// equal — a missing value matches nothing, so missing data weakens
  /// rather than fabricates dependencies.
  bool EqualsStrict(const Value& other) const;

  /// Ordering used for sorting columns; nulls sort first, then by type,
  /// then by payload.
  bool LessThan(const Value& other) const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace fdx

#endif  // FDX_DATA_VALUE_H_
