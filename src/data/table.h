#ifndef FDX_DATA_TABLE_H_
#define FDX_DATA_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/value.h"
#include "util/rng.h"
#include "util/status.h"

namespace fdx {

/// Attribute names of a relation. Attribute indices used across the
/// library refer to positions in this schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> names) : names_(std::move(names)) {}

  size_t size() const { return names_.size(); }
  const std::string& name(size_t i) const { return names_[i]; }
  const std::vector<std::string>& names() const { return names_; }

  /// Index of the attribute called `name`, or -1 if absent.
  int Find(const std::string& name) const;

 private:
  std::vector<std::string> names_;
};

/// A columnar relation instance. Cells are dynamically typed Values;
/// missing values are nulls. This is the input format of every FD
/// discovery method in the library.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema)
      : schema_(std::move(schema)), columns_(schema_.size()) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t num_columns() const { return columns_.size(); }

  const Value& cell(size_t row, size_t col) const {
    return columns_[col][row];
  }
  void set_cell(size_t row, size_t col, Value v) {
    columns_[col][row] = std::move(v);
  }

  const std::vector<Value>& column(size_t col) const { return columns_[col]; }

  /// Appends a row. Precondition: row.size() == num_columns().
  void AppendRow(std::vector<Value> row);

  /// Rebinds the attribute names, keeping cell data. Precondition:
  /// schema.size() == num_columns(), or the table holds no rows.
  void ReplaceSchema(Schema schema);

  /// Returns a copy with rows shuffled by `rng` (Alg. 2 shuffles before
  /// building pairs).
  Table ShuffleRows(Rng* rng) const;

  /// Returns a copy restricted to the first `n` rows.
  Table Head(size_t n) const;

  /// Returns a copy restricted to the given columns, in order.
  Table SelectColumns(const std::vector<size_t>& cols) const;

 private:
  Schema schema_;
  std::vector<std::vector<Value>> columns_;
};

/// A dictionary-encoded view of a table: every column becomes an array
/// of int32 codes in [0, cardinality) with kNullCode for missing cells.
/// All discovery algorithms run on this representation — equality of
/// cells is equality of codes, which makes partition refinement (TANE),
/// entropy estimation (RFI) and the FDX pair transform cache friendly.
///
/// Contract: the non-null codes of column c are *dense* in
/// [0, Cardinality(c)) — every value in that range occurs (codes are
/// assigned by a first-appearance counter). The pair transform's
/// counting sort keys on this: Cardinality(c) + 1 buckets (one extra
/// for kNullCode) cover every possible key, so a per-attribute sort
/// pass costs O(n + cardinality) instead of O(n log n).
class EncodedTable {
 public:
  static constexpr int32_t kNullCode = -1;

  /// Encodes `table`. Value order inside each dictionary follows first
  /// appearance; codes are stable for a fixed table.
  static EncodedTable Encode(const Table& table);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return codes_.size(); }

  /// Distinct non-null values in column `col`.
  size_t Cardinality(size_t col) const { return cardinalities_[col]; }

  /// All per-column cardinalities (see the dense-code contract above).
  const std::vector<size_t>& cardinalities() const { return cardinalities_; }

  /// Number of null cells in column `col`.
  size_t NullCount(size_t col) const { return null_counts_[col]; }

  int32_t code(size_t row, size_t col) const { return codes_[col][row]; }
  const std::vector<int32_t>& column_codes(size_t col) const {
    return codes_[col];
  }

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<std::vector<int32_t>> codes_;
  std::vector<size_t> cardinalities_;
  std::vector<size_t> null_counts_;
};

}  // namespace fdx

#endif  // FDX_DATA_TABLE_H_
