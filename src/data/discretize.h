#ifndef FDX_DATA_DISCRETIZE_H_
#define FDX_DATA_DISCRETIZE_H_

#include <cstddef>

#include "data/table.h"
#include "util/status.h"

namespace fdx {

/// Binning strategy for continuous attributes.
enum class BinningKind {
  /// Equal-width bins over [min, max].
  kEqualWidth,
  /// Equal-frequency (quantile) bins.
  kEqualFrequency,
};

/// Options for numeric discretization.
struct DiscretizeOptions {
  BinningKind kind = BinningKind::kEqualFrequency;
  size_t bins = 16;
  /// Columns whose distinct count is at most this are treated as already
  /// categorical and passed through untouched.
  size_t max_categorical_cardinality = 32;
};

/// Replaces continuous numeric columns with bin labels so that the
/// equality-based pair transform (and every other discovery method)
/// sees approximate-equality structure in real-valued data — the
/// "different difference operation per type" of paper §4.2. Nulls stay
/// null; string columns and small-domain numerics pass through.
Result<Table> DiscretizeNumericColumns(const Table& table,
                                       const DiscretizeOptions& options = {});

}  // namespace fdx

#endif  // FDX_DATA_DISCRETIZE_H_
