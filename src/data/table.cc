#include "data/table.h"

#include <cassert>
#include <map>
#include <numeric>
#include <unordered_map>

namespace fdx {

int Schema::Find(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void Table::ReplaceSchema(Schema schema) {
  assert(schema.size() == columns_.size() || num_rows() == 0);
  columns_.resize(schema.size());
  schema_ = std::move(schema);
}

void Table::AppendRow(std::vector<Value> row) {
  assert(row.size() == columns_.size());
  for (size_t c = 0; c < row.size(); ++c) {
    columns_[c].push_back(std::move(row[c]));
  }
}

Table Table::ShuffleRows(Rng* rng) const {
  std::vector<size_t> order(num_rows());
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  Table out(schema_);
  out.columns_.assign(num_columns(), {});
  for (size_t c = 0; c < num_columns(); ++c) {
    out.columns_[c].reserve(num_rows());
    for (size_t r : order) out.columns_[c].push_back(columns_[c][r]);
  }
  return out;
}

Table Table::Head(size_t n) const {
  const size_t rows = std::min(n, num_rows());
  Table out(schema_);
  out.columns_.assign(num_columns(), {});
  for (size_t c = 0; c < num_columns(); ++c) {
    out.columns_[c].assign(columns_[c].begin(), columns_[c].begin() + rows);
  }
  return out;
}

Table Table::SelectColumns(const std::vector<size_t>& cols) const {
  std::vector<std::string> names;
  names.reserve(cols.size());
  for (size_t c : cols) names.push_back(schema_.name(c));
  Table out{Schema(std::move(names))};
  out.columns_.clear();
  for (size_t c : cols) out.columns_.push_back(columns_[c]);
  return out;
}

EncodedTable EncodedTable::Encode(const Table& table) {
  EncodedTable out;
  out.schema_ = table.schema();
  out.num_rows_ = table.num_rows();
  const size_t k = table.num_columns();
  out.codes_.resize(k);
  out.cardinalities_.assign(k, 0);
  out.null_counts_.assign(k, 0);
  for (size_t c = 0; c < k; ++c) {
    // Separate dictionaries per payload type: strings hash directly,
    // numerics key on their double value so 3 == 3.0.
    std::unordered_map<std::string, int32_t> string_dict;
    std::map<double, int32_t> numeric_dict;
    auto& codes = out.codes_[c];
    codes.reserve(out.num_rows_);
    int32_t next = 0;
    for (size_t r = 0; r < out.num_rows_; ++r) {
      const Value& v = table.cell(r, c);
      if (v.is_null()) {
        codes.push_back(kNullCode);
        ++out.null_counts_[c];
        continue;
      }
      int32_t code;
      if (v.type() == ValueType::kString) {
        auto [it, inserted] = string_dict.try_emplace(v.AsString(), next);
        code = it->second;
        if (inserted) ++next;
      } else {
        auto [it, inserted] = numeric_dict.try_emplace(v.ToNumeric(), next);
        code = it->second;
        if (inserted) ++next;
      }
      codes.push_back(code);
    }
    out.cardinalities_[c] = static_cast<size_t>(next);
  }
  return out;
}

}  // namespace fdx
