#include "data/csv.h"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/fault_injection.h"
#include "util/string_util.h"

namespace fdx {

namespace {

/// Splits one CSV record honoring double-quote escaping.
std::vector<std::string> SplitCsvLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == delim) {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += ch;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

bool IsNullToken(const std::string& field, const CsvOptions& options) {
  if (field.empty()) return true;
  for (const auto& token : options.null_tokens) {
    if (field == token) return true;
  }
  return false;
}

/// The single incremental parser behind every CSV entry point. Walks the
/// stream line by line (never buffering the input), emits chunks of at
/// most `chunk_rows` rows to `sink` (0 = one chunk at end-of-stream),
/// and reports errors with 1-based physical line numbers. `stream_name`
/// only decorates the message of a low-level read failure.
Status ParseCsvStream(std::istream& in, const CsvOptions& options,
                      size_t chunk_rows, const CsvChunkSink& sink,
                      const std::string& stream_name) {
  std::string line;
  std::vector<std::string> header;
  Table chunk;
  bool have_schema = false;
  bool emitted_chunk = false;
  bool any_rows = false;
  size_t width = 0;
  size_t line_number = 0;  // 1-based, counting every physical line
  bool first = true;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() && !any_rows && header.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line, options.delimiter);
    if (first) {
      width = fields.size();
      first = false;
      if (options.has_header) {
        std::unordered_set<std::string> seen;
        for (size_t c = 0; c < fields.size(); ++c) {
          if (fields[c].empty()) {
            return Status::InvalidArgument(
                "line " + std::to_string(line_number) +
                ": empty header name in column " + std::to_string(c + 1));
          }
          if (!seen.insert(fields[c]).second) {
            return Status::InvalidArgument(
                "line " + std::to_string(line_number) +
                ": duplicate header name '" + fields[c] + "'");
          }
        }
        header = std::move(fields);
        continue;
      }
      // Headerless: synthesize the names the moment the width is known,
      // so chunks can carry the schema from the first row on.
      for (size_t i = 0; i < width; ++i) {
        header.push_back("col" + std::to_string(i));
      }
    }
    if (fields.size() != width) {
      return Status::IOError("line " + std::to_string(line_number) +
                             ": CSV row with " +
                             std::to_string(fields.size()) +
                             " fields; expected " + std::to_string(width));
    }
    if (!have_schema) {
      chunk = Table{Schema(header)};
      have_schema = true;
    }
    std::vector<Value> row;
    row.reserve(width);
    for (auto& field : fields) {
      std::string trimmed(StripAsciiWhitespace(field));
      row.push_back(IsNullToken(trimmed, options) ? Value::Null()
                                                  : Value::Parse(trimmed));
    }
    chunk.AppendRow(std::move(row));
    any_rows = true;
    if (chunk_rows != 0 && chunk.num_rows() >= chunk_rows) {
      FDX_RETURN_IF_ERROR(sink(std::move(chunk)));
      emitted_chunk = true;
      chunk = Table{Schema(header)};
    }
  }
  if (in.bad()) {
    return Status::IOError("error while reading " + stream_name);
  }
  // Flush the trailing partial chunk. A row-less stream still emits one
  // empty chunk so the sink always learns the schema.
  if (!have_schema) chunk = Table{Schema(std::move(header))};
  if (chunk.num_rows() > 0 || !emitted_chunk) {
    FDX_RETURN_IF_ERROR(sink(std::move(chunk)));
  }
  return Status::OK();
}

}  // namespace

Result<Table> ReadCsv(const std::string& path, const CsvOptions& options) {
  FDX_INJECT_FAULT(kFaultCsvRead,
                   Status::IOError("injected fault: csv.read " + path));
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  Table out;
  FDX_RETURN_IF_ERROR(ParseCsvStream(
      in, options, /*chunk_rows=*/0,
      [&out](Table&& table) {
        out = std::move(table);
        return Status::OK();
      },
      path));
  return out;
}

Result<Table> ReadCsvFromString(const std::string& text,
                                const CsvOptions& options) {
  std::istringstream in(text);
  Table out;
  FDX_RETURN_IF_ERROR(ParseCsvStream(
      in, options, /*chunk_rows=*/0,
      [&out](Table&& table) {
        out = std::move(table);
        return Status::OK();
      },
      "CSV buffer"));
  return out;
}

Status ReadCsvChunked(const std::string& path, const CsvOptions& options,
                      size_t chunk_rows, const CsvChunkSink& sink) {
  FDX_INJECT_FAULT(kFaultCsvRead,
                   Status::IOError("injected fault: csv.read " + path));
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return ParseCsvStream(in, options, chunk_rows, sink, path);
}

Status ReadCsvChunkedFromString(const std::string& text,
                                const CsvOptions& options, size_t chunk_rows,
                                const CsvChunkSink& sink) {
  std::istringstream in(text);
  return ParseCsvStream(in, options, chunk_rows, sink, "CSV buffer");
}

Result<Table> ParseCsv(const std::string& text, const CsvOptions& options) {
  return ReadCsvFromString(text, options);
}

Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  const auto quote = [&](const std::string& s) {
    if (s.find(options.delimiter) == std::string::npos &&
        s.find('"') == std::string::npos) {
      return s;
    }
    std::string quoted = "\"";
    for (char ch : s) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << options.delimiter;
    out << quote(table.schema().name(c));
  }
  out << '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      out << quote(table.cell(r, c).ToString());
    }
    out << '\n';
  }
  return Status::OK();
}

}  // namespace fdx
