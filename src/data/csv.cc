#include "data/csv.h"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/fault_injection.h"
#include "util/string_util.h"

namespace fdx {

namespace {

/// Splits one CSV record honoring double-quote escaping.
std::vector<std::string> SplitCsvLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == delim) {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += ch;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

bool IsNullToken(const std::string& field, const CsvOptions& options) {
  if (field.empty()) return true;
  for (const auto& token : options.null_tokens) {
    if (field == token) return true;
  }
  return false;
}

Result<Table> ParseLines(std::istream& in, const CsvOptions& options) {
  std::string line;
  std::vector<std::string> header;
  std::vector<std::vector<Value>> rows;
  size_t width = 0;
  size_t line_number = 0;  // 1-based, counting every physical line
  bool first = true;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() && rows.empty() && header.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line, options.delimiter);
    if (first) {
      width = fields.size();
      first = false;
      if (options.has_header) {
        std::unordered_set<std::string> seen;
        for (size_t c = 0; c < fields.size(); ++c) {
          if (fields[c].empty()) {
            return Status::InvalidArgument(
                "line " + std::to_string(line_number) +
                ": empty header name in column " + std::to_string(c + 1));
          }
          if (!seen.insert(fields[c]).second) {
            return Status::InvalidArgument(
                "line " + std::to_string(line_number) +
                ": duplicate header name '" + fields[c] + "'");
          }
        }
        header = std::move(fields);
        continue;
      }
    }
    if (fields.size() != width) {
      return Status::IOError("line " + std::to_string(line_number) +
                             ": CSV row with " +
                             std::to_string(fields.size()) +
                             " fields; expected " + std::to_string(width));
    }
    std::vector<Value> row;
    row.reserve(width);
    for (auto& field : fields) {
      std::string trimmed(StripAsciiWhitespace(field));
      row.push_back(IsNullToken(trimmed, options) ? Value::Null()
                                                  : Value::Parse(trimmed));
    }
    rows.push_back(std::move(row));
  }
  if (header.empty()) {
    for (size_t i = 0; i < width; ++i) header.push_back("col" + std::to_string(i));
  }
  Table table{Schema(std::move(header))};
  for (auto& row : rows) table.AppendRow(std::move(row));
  return table;
}

}  // namespace

Result<Table> ReadCsv(const std::string& path, const CsvOptions& options) {
  FDX_INJECT_FAULT(kFaultCsvRead,
                   Status::IOError("injected fault: csv.read " + path));
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) return Status::IOError("error while reading " + path);
  return ReadCsvFromString(contents.str(), options);
}

Result<Table> ReadCsvFromString(const std::string& text,
                                const CsvOptions& options) {
  std::istringstream in(text);
  return ParseLines(in, options);
}

Result<Table> ParseCsv(const std::string& text, const CsvOptions& options) {
  return ReadCsvFromString(text, options);
}

Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  const auto quote = [&](const std::string& s) {
    if (s.find(options.delimiter) == std::string::npos &&
        s.find('"') == std::string::npos) {
      return s;
    }
    std::string quoted = "\"";
    for (char ch : s) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << options.delimiter;
    out << quote(table.schema().name(c));
  }
  out << '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      out << quote(table.cell(r, c).ToString());
    }
    out << '\n';
  }
  return Status::OK();
}

}  // namespace fdx
