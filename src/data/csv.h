#ifndef FDX_DATA_CSV_H_
#define FDX_DATA_CSV_H_

#include <string>

#include "data/table.h"
#include "util/status.h"

namespace fdx {

/// Options for CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Fields equal to any of these (after trimming) become nulls in
  /// addition to the empty string.
  std::vector<std::string> null_tokens = {"NULL", "null", "NA", "?"};
};

/// Reads a CSV file into a Table. Values are type-inferred per cell
/// (integer, double, else string); empty fields and null tokens map to
/// null. Quoted fields with embedded delimiters/quotes are supported.
/// Parse errors cite the 1-based line number; duplicate or empty header
/// names are rejected with kInvalidArgument. Implemented as "read the
/// file, then ReadCsvFromString" so the two paths can never diverge.
Result<Table> ReadCsv(const std::string& path, const CsvOptions& options = {});

/// Parses CSV from an in-memory buffer — the server's ingestion path for
/// uploaded batches (no temp files), with the same type inference, null
/// handling, and 1-based line numbers in error messages as ReadCsv.
Result<Table> ReadCsvFromString(const std::string& text,
                                const CsvOptions& options = {});

/// Historical alias of ReadCsvFromString (used heavily by tests).
Result<Table> ParseCsv(const std::string& text, const CsvOptions& options = {});

/// Writes a table as CSV with a header row.
Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options = {});

}  // namespace fdx

#endif  // FDX_DATA_CSV_H_
