#ifndef FDX_DATA_CSV_H_
#define FDX_DATA_CSV_H_

#include <functional>
#include <string>

#include "data/table.h"
#include "util/status.h"

namespace fdx {

/// Options for CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Fields equal to any of these (after trimming) become nulls in
  /// addition to the empty string.
  std::vector<std::string> null_tokens = {"NULL", "null", "NA", "?"};
};

/// Reads a CSV file into a Table. Values are type-inferred per cell
/// (integer, double, else string); empty fields and null tokens map to
/// null. Quoted fields with embedded delimiters/quotes are supported.
/// Parse errors cite the 1-based line number; duplicate or empty header
/// names are rejected with kInvalidArgument. Every entry point —
/// ReadCsv, ReadCsvFromString, and the chunked readers below — runs the
/// same incremental line parser, so they cannot diverge: identical
/// tables, identical error messages with identical line numbers. ReadCsv
/// streams the file through that parser line by line; it never buffers
/// the file contents.
Result<Table> ReadCsv(const std::string& path, const CsvOptions& options = {});

/// Parses CSV from an in-memory buffer — the server's ingestion path for
/// uploaded batches (no temp files), with the same type inference, null
/// handling, and 1-based line numbers in error messages as ReadCsv.
Result<Table> ReadCsvFromString(const std::string& text,
                                const CsvOptions& options = {});

/// Receives one parsed chunk. Chunks arrive in file order, each carrying
/// the full schema; a non-OK return aborts the read and propagates.
using CsvChunkSink = std::function<Status(Table&&)>;

/// Streaming ingest: parses `path` and hands the rows to `sink` in
/// chunks of at most `chunk_rows` rows (0 means a single chunk), never
/// holding more than one chunk in memory. On success the sink is
/// invoked at least once — a row-less file yields one empty chunk whose
/// schema carries the (possibly empty) header — so callers always learn
/// the schema. On error, chunks already delivered are void: the file
/// failed to parse as a whole, exactly as ReadCsv would report it.
Status ReadCsvChunked(const std::string& path, const CsvOptions& options,
                      size_t chunk_rows, const CsvChunkSink& sink);

/// ReadCsvChunked over an in-memory buffer (tests and the service).
Status ReadCsvChunkedFromString(const std::string& text,
                                const CsvOptions& options, size_t chunk_rows,
                                const CsvChunkSink& sink);

/// Historical alias of ReadCsvFromString (used heavily by tests).
Result<Table> ParseCsv(const std::string& text, const CsvOptions& options = {});

/// Writes a table as CSV with a header row.
Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options = {});

}  // namespace fdx

#endif  // FDX_DATA_CSV_H_
