#include "data/value.h"

#include <charconv>
#include <cstdio>

#include "util/string_util.h"

namespace fdx {

double Value::ToNumeric() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return 0.0;
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return AsString();
  }
  return "";
}

Value Value::Parse(const std::string& text) {
  if (text.empty()) return Value::Null();
  if (IsInteger(text)) {
    int64_t v = 0;
    std::from_chars(text.data(), text.data() + text.size(), v);
    return Value(v);
  }
  if (IsDouble(text)) {
    double v = 0.0;
    std::from_chars(text.data(), text.data() + text.size(), v);
    return Value(v);
  }
  return Value(text);
}

bool Value::EqualsStrict(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (type() != other.type()) {
    // Allow int/double cross-type numeric equality so CSV round trips
    // (e.g. "3" vs "3.0") do not break dependencies.
    if ((type() == ValueType::kInt && other.type() == ValueType::kDouble) ||
        (type() == ValueType::kDouble && other.type() == ValueType::kInt)) {
      return ToNumeric() == other.ToNumeric();
    }
    return false;
  }
  return data_ == other.data_;
}

bool Value::LessThan(const Value& other) const {
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type());
  }
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      return AsInt() < other.AsInt();
    case ValueType::kDouble:
      return AsDouble() < other.AsDouble();
    case ValueType::kString:
      return AsString() < other.AsString();
  }
  return false;
}

}  // namespace fdx
