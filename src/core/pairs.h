#ifndef FDX_CORE_PAIRS_H_
#define FDX_CORE_PAIRS_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "util/rng.h"

namespace fdx {

/// Stable counting sort of `shuffled` by the dictionary codes of one
/// column: `order` receives the permutation that std::stable_sort with
/// key `codes[r]` would produce (kNullCode first, then codes ascending,
/// ties kept in shuffle order). Codes are dense in [0, cardinality)
/// (see EncodedTable), so cardinality + 1 buckets cover every key and
/// the sort is O(n + cardinality) with no comparator calls. `buckets`
/// is caller-owned scratch, reused across calls.
///
/// Row indices are uint32 throughout the pair layer: the order arrays
/// are the hottest streamed data of the transform (every pass walks one
/// per column), and 4-byte indices halve that bandwidth. PrepareTransform
/// rejects tables with more than UINT32_MAX rows.
void StableSortByCodes(const std::vector<int32_t>& codes, size_t cardinality,
                       const std::vector<uint32_t>& shuffled,
                       std::vector<uint32_t>* order,
                       std::vector<uint32_t>* buckets);

/// One sort-and-shift pass of Algorithm 2 for a single attribute: rows
/// sorted by the attribute's codes (radix, shuffle as tie breaker), each
/// sorted position paired with its successor (the last wraps to the
/// first). Pairs are *enumerated*, never materialized: ForEachPair
/// invokes an inline callback straight off the sorted order, so a pass
/// costs no O(n) pair-vector allocation or extra walk.
///
/// The object is reusable scratch: Reset() re-sorts for the next
/// attribute without reallocating.
class AttributePass {
 public:
  /// Sorts for attribute `attr`. With max_pairs in (0, n) the pass emits
  /// max_pairs sampled positions chosen by a seeded reservoir over the
  /// sorted positions (the sampled variant of the transform, §5.4),
  /// emitted in ascending position order; otherwise all n adjacent
  /// pairs. The reservoir needs O(max_pairs) memory and its selection
  /// is a pure function of (n, max_pairs, attr_seed) — independent of
  /// how the rows were chunked — which is what lets the out-of-core
  /// path reproduce the in-memory sample exactly.
  void Reset(const EncodedTable& encoded,
             const std::vector<uint32_t>& shuffled, size_t attr,
             size_t max_pairs, uint64_t attr_seed);

  /// Same pass over a bare code column (dense codes in [0, cardinality),
  /// kNullCode for nulls) — the out-of-core entry point, where there is
  /// no EncodedTable to point at.
  void Reset(const std::vector<int32_t>& codes, size_t cardinality,
             const std::vector<uint32_t>& shuffled, size_t max_pairs,
             uint64_t attr_seed);

  size_t num_pairs() const { return num_pairs_; }
  bool sampled() const { return sampled_; }
  const std::vector<uint32_t>& order() const { return order_; }

  /// Invokes fn(pair_index, row_a, row_b) for every emitted pair, in
  /// emission order (pair_index runs 0..num_pairs()-1). row_a/row_b are
  /// table row indices.
  template <typename Fn>
  void ForEachPair(Fn&& fn) const {
    const size_t n = order_.size();
    if (!sampled_) {
      // Hot loop without the modulo: only the final pair wraps.
      for (size_t j = 0; j + 1 < n; ++j) fn(j, order_[j], order_[j + 1]);
      if (n >= 2) fn(n - 1, order_[n - 1], order_[0]);
      return;
    }
    for (size_t i = 0; i < num_pairs_; ++i) {
      const size_t j = positions_[i];
      const size_t next = j + 1 == n ? 0 : j + 1;
      fn(i, order_[j], order_[next]);
    }
  }

 private:
  std::vector<uint32_t> order_;
  std::vector<uint32_t> buckets_;    ///< counting-sort scratch
  std::vector<uint32_t> positions_;  ///< sampled sorted positions
  size_t num_pairs_ = 0;
  bool sampled_ = false;
};

}  // namespace fdx

#endif  // FDX_CORE_PAIRS_H_
