#include "core/pairs.h"

#include "util/reservoir.h"

namespace fdx {

void StableSortByCodes(const std::vector<int32_t>& codes, size_t cardinality,
                       const std::vector<uint32_t>& shuffled,
                       std::vector<uint32_t>* order,
                       std::vector<uint32_t>* buckets) {
  const size_t n = shuffled.size();
  order->resize(n);
  // Key = code + 1, so kNullCode (-1) lands in bucket 0 and sorts first,
  // exactly like the comparator `codes[a] < codes[b]`.
  buckets->assign(cardinality + 2, 0);
  std::vector<uint32_t>& b = *buckets;
  for (uint32_t r : shuffled) {
    ++b[static_cast<size_t>(codes[r] + 1) + 1];
  }
  for (size_t i = 1; i < b.size(); ++i) b[i] += b[i - 1];
  // Placing elements in shuffle order keeps the shuffle as the tie
  // breaker inside equal keys (counting sort is stable).
  for (uint32_t r : shuffled) {
    (*order)[b[static_cast<size_t>(codes[r] + 1)]++] = r;
  }
}

void AttributePass::Reset(const EncodedTable& encoded,
                          const std::vector<uint32_t>& shuffled, size_t attr,
                          size_t max_pairs, uint64_t attr_seed) {
  Reset(encoded.column_codes(attr), encoded.Cardinality(attr), shuffled,
        max_pairs, attr_seed);
}

void AttributePass::Reset(const std::vector<int32_t>& codes,
                          size_t cardinality,
                          const std::vector<uint32_t>& shuffled,
                          size_t max_pairs, uint64_t attr_seed) {
  StableSortByCodes(codes, cardinality, shuffled, &order_, &buckets_);
  const size_t n = order_.size();
  sampled_ = max_pairs != 0 && max_pairs < n;
  num_pairs_ = n < 2 ? 0 : (sampled_ ? max_pairs : n);
  if (!sampled_) return;
  // Sampled variant: pick max_pairs distinct positions of the sorted
  // sequence (still adjacent pairs, so the distribution matches the
  // exact transform restricted to a subsample). A reservoir keeps the
  // selection O(max_pairs) in memory for out-of-core columns, and the
  // ascending emission order keeps the gathers sequential.
  ReservoirSampler sampler(max_pairs, attr_seed);
  sampler.AddRange(0, static_cast<uint32_t>(n));
  positions_ = sampler.Sorted();
}

}  // namespace fdx
