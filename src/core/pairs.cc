#include "core/pairs.h"

#include <numeric>

namespace fdx {

void StableSortByCodes(const std::vector<int32_t>& codes, size_t cardinality,
                       const std::vector<uint32_t>& shuffled,
                       std::vector<uint32_t>* order,
                       std::vector<uint32_t>* buckets) {
  const size_t n = shuffled.size();
  order->resize(n);
  // Key = code + 1, so kNullCode (-1) lands in bucket 0 and sorts first,
  // exactly like the comparator `codes[a] < codes[b]`.
  buckets->assign(cardinality + 2, 0);
  std::vector<uint32_t>& b = *buckets;
  for (uint32_t r : shuffled) {
    ++b[static_cast<size_t>(codes[r] + 1) + 1];
  }
  for (size_t i = 1; i < b.size(); ++i) b[i] += b[i - 1];
  // Placing elements in shuffle order keeps the shuffle as the tie
  // breaker inside equal keys (counting sort is stable).
  for (uint32_t r : shuffled) {
    (*order)[b[static_cast<size_t>(codes[r] + 1)]++] = r;
  }
}

void AttributePass::Reset(const EncodedTable& encoded,
                          const std::vector<uint32_t>& shuffled, size_t attr,
                          size_t max_pairs, uint64_t attr_seed) {
  StableSortByCodes(encoded.column_codes(attr), encoded.Cardinality(attr),
                    shuffled, &order_, &buckets_);
  const size_t n = order_.size();
  sampled_ = max_pairs != 0 && max_pairs < n;
  num_pairs_ = n < 2 ? 0 : (sampled_ ? max_pairs : n);
  if (!sampled_) return;
  // Sampled variant: pick max_pairs distinct positions of the sorted
  // sequence (still adjacent pairs, so the distribution matches the
  // exact transform restricted to a subsample).
  positions_.resize(n);
  std::iota(positions_.begin(), positions_.end(), 0);
  Rng rng(attr_seed);
  rng.Shuffle(&positions_);
  positions_.resize(max_pairs);
}

}  // namespace fdx
