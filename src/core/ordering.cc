#include "core/ordering.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>
#include <set>

namespace fdx {

namespace {

using AdjacencyList = std::vector<std::set<size_t>>;

AdjacencyList BuildSupportGraph(const Matrix& theta, double zero_tol) {
  const size_t k = theta.rows();
  AdjacencyList adj(k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      if (std::fabs(theta(i, j)) > zero_tol) {
        adj[i].insert(j);
        adj[j].insert(i);
      }
    }
  }
  return adj;
}

/// Exact minimum-degree elimination with fill. Ties break on the lower
/// vertex id for determinism. Returns vertices in elimination order.
std::vector<size_t> MinDegreeElimination(AdjacencyList adj) {
  const size_t k = adj.size();
  std::vector<bool> eliminated(k, false);
  std::vector<size_t> order;
  order.reserve(k);
  for (size_t step = 0; step < k; ++step) {
    size_t best = k;
    size_t best_degree = k + 1;
    for (size_t v = 0; v < k; ++v) {
      if (eliminated[v]) continue;
      if (adj[v].size() < best_degree) {
        best = v;
        best_degree = adj[v].size();
      }
    }
    // Eliminate: connect the remaining neighbors pairwise (fill).
    std::vector<size_t> neighbors(adj[best].begin(), adj[best].end());
    for (size_t a : neighbors) {
      adj[a].erase(best);
      for (size_t b : neighbors) {
        if (a != b) adj[a].insert(b);
      }
    }
    adj[best].clear();
    eliminated[best] = true;
    order.push_back(best);
  }
  return order;
}

/// Approximate minimum degree: like min-degree but scores each vertex by
/// its *external* degree without simulating fill edges, the key
/// simplification AMD makes for speed.
std::vector<size_t> ApproxMinDegree(const AdjacencyList& original) {
  const size_t k = original.size();
  std::vector<bool> eliminated(k, false);
  std::vector<size_t> degree(k, 0);
  for (size_t v = 0; v < k; ++v) degree[v] = original[v].size();
  std::vector<size_t> order;
  order.reserve(k);
  for (size_t step = 0; step < k; ++step) {
    size_t best = k;
    size_t best_degree = k + 1;
    for (size_t v = 0; v < k; ++v) {
      if (!eliminated[v] && degree[v] < best_degree) {
        best = v;
        best_degree = degree[v];
      }
    }
    eliminated[best] = true;
    order.push_back(best);
    for (size_t u : original[best]) {
      if (!eliminated[u] && degree[u] > 0) --degree[u];
    }
  }
  return order;
}

/// COLAMD stand-in: greedy ordering by static column support count.
std::vector<size_t> ColumnCountOrder(const AdjacencyList& adj) {
  const size_t k = adj.size();
  std::vector<size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&adj](size_t a, size_t b) {
    return adj[a].size() < adj[b].size();
  });
  return order;
}

/// BFS-based bisection of the vertex set `vertices` of graph `adj`.
/// Returns (part_a, separator, part_b).
void BisectBfs(const AdjacencyList& adj, const std::vector<size_t>& vertices,
               std::vector<size_t>* part_a, std::vector<size_t>* separator,
               std::vector<size_t>* part_b) {
  std::set<size_t> in_set(vertices.begin(), vertices.end());
  const size_t half = vertices.size() / 2;
  std::set<size_t> side_a;
  std::deque<size_t> frontier;
  for (size_t start : vertices) {
    if (side_a.size() >= half) break;
    if (side_a.count(start)) continue;
    frontier.push_back(start);
    side_a.insert(start);
    while (!frontier.empty() && side_a.size() < half) {
      const size_t v = frontier.front();
      frontier.pop_front();
      for (size_t u : adj[v]) {
        if (in_set.count(u) && !side_a.count(u)) {
          side_a.insert(u);
          frontier.push_back(u);
          if (side_a.size() >= half) break;
        }
      }
    }
    frontier.clear();
  }
  // Separator: side-B vertices adjacent to side A.
  for (size_t v : vertices) {
    if (side_a.count(v)) {
      part_a->push_back(v);
      continue;
    }
    bool touches_a = false;
    for (size_t u : adj[v]) {
      if (side_a.count(u)) {
        touches_a = true;
        break;
      }
    }
    (touches_a ? separator : part_b)->push_back(v);
  }
}

/// Recursive nested dissection. Separator vertices are ordered last (so
/// they are eliminated last). `leaf_min_degree` switches small leaves to
/// min-degree, the NESDIS refinement.
void NestedDissection(const AdjacencyList& adj,
                      const std::vector<size_t>& vertices,
                      bool leaf_min_degree, std::vector<size_t>* order) {
  if (vertices.size() <= 4) {
    if (leaf_min_degree && vertices.size() > 1) {
      // Min-degree restricted to the leaf's induced subgraph.
      AdjacencyList sub(vertices.size());
      for (size_t i = 0; i < vertices.size(); ++i) {
        for (size_t j = 0; j < vertices.size(); ++j) {
          if (i != j && adj[vertices[i]].count(vertices[j])) {
            sub[i].insert(j);
          }
        }
      }
      for (size_t local : MinDegreeElimination(std::move(sub))) {
        order->push_back(vertices[local]);
      }
    } else {
      for (size_t v : vertices) order->push_back(v);
    }
    return;
  }
  std::vector<size_t> part_a, separator, part_b;
  BisectBfs(adj, vertices, &part_a, &separator, &part_b);
  if (part_a.empty() || part_b.empty()) {
    // Degenerate cut (e.g. a clique); fall back to the given order.
    for (size_t v : vertices) order->push_back(v);
    return;
  }
  NestedDissection(adj, part_a, leaf_min_degree, order);
  NestedDissection(adj, part_b, leaf_min_degree, order);
  for (size_t v : separator) order->push_back(v);
}

}  // namespace

Result<OrderingMethod> ParseOrderingMethod(const std::string& name) {
  if (name == "natural") return OrderingMethod::kNatural;
  if (name == "heuristic" || name == "mindegree") {
    return OrderingMethod::kMinDegree;
  }
  if (name == "amd") return OrderingMethod::kAmd;
  if (name == "colamd") return OrderingMethod::kColamd;
  if (name == "metis") return OrderingMethod::kMetis;
  if (name == "nesdis") return OrderingMethod::kNesdis;
  return Status::InvalidArgument("unknown ordering method: " + name);
}

std::string OrderingMethodName(OrderingMethod method) {
  switch (method) {
    case OrderingMethod::kNatural:
      return "natural";
    case OrderingMethod::kMinDegree:
      return "heuristic";
    case OrderingMethod::kAmd:
      return "amd";
    case OrderingMethod::kColamd:
      return "colamd";
    case OrderingMethod::kMetis:
      return "metis";
    case OrderingMethod::kNesdis:
      return "nesdis";
  }
  return "unknown";
}

std::vector<size_t> ComputeOrdering(const Matrix& theta,
                                    OrderingMethod method, double zero_tol) {
  const size_t k = theta.rows();
  std::vector<size_t> perm(k);
  std::iota(perm.begin(), perm.end(), 0);
  if (method == OrderingMethod::kNatural || k <= 1) return perm;

  AdjacencyList adj = BuildSupportGraph(theta, zero_tol);
  std::vector<size_t> elimination;
  switch (method) {
    case OrderingMethod::kMinDegree:
      elimination = MinDegreeElimination(adj);
      break;
    case OrderingMethod::kAmd:
      elimination = ApproxMinDegree(adj);
      break;
    case OrderingMethod::kColamd:
      elimination = ColumnCountOrder(adj);
      break;
    case OrderingMethod::kMetis:
    case OrderingMethod::kNesdis: {
      std::vector<size_t> all(k);
      std::iota(all.begin(), all.end(), 0);
      elimination.reserve(k);
      NestedDissection(adj, all, method == OrderingMethod::kNesdis,
                       &elimination);
      break;
    }
    case OrderingMethod::kNatural:
      elimination = perm;
      break;
  }
  // Elimination position i becomes variable position i. Low-degree
  // vertices (sources and leaves of the support graph) surface early;
  // empirically this orientation reproduces the natural-order quality
  // the paper reports across orderings (Table 9), whereas the reversed
  // placement flips edge directions wholesale.
  return elimination;
}

}  // namespace fdx
