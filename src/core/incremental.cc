#include "core/incremental.h"

#include "core/transform.h"
#include "util/fingerprint.h"

namespace fdx {

IncrementalFdx::IncrementalFdx(Schema schema, FdxOptions options)
    : schema_(std::move(schema)),
      options_(options),
      next_batch_seed_(options.transform.seed),
      ones_(schema_.size(), 0),
      co_counts_(schema_.size() * schema_.size(), 0) {}

Status IncrementalFdx::Append(const Table& batch) {
  const size_t k = schema_.size();
  if (batch.num_columns() != k) {
    return Status::InvalidArgument("batch width does not match schema");
  }
  if (batch.num_rows() < 2) {
    return Status::InvalidArgument("batch needs at least two rows");
  }
  // Per-batch pair transform; distinct seeds decorrelate the shuffles
  // across batches. The time budget applies per Append call — moments
  // are only merged after the transform succeeded in full, so a timed-
  // out append leaves the session consistent.
  const Deadline deadline(options_.time_budget_seconds);
  TransformOptions transform = options_.transform;
  transform.seed = next_batch_seed_;
  if (transform.threads == 0) transform.threads = options_.threads;
  if (transform.deadline == nullptr && options_.time_budget_seconds > 0.0) {
    transform.deadline = &deadline;
  }
  // The packed engine hands back the batch's integer moments directly:
  // no double sample matrix is ever materialized, and the merged counts
  // are identical to scanning one (the indicators are exact 0/1).
  FDX_ASSIGN_OR_RETURN(TransformCounts batch_counts,
                       PairTransformCounts(batch, transform));
  ++next_batch_seed_;
  for (size_t x = 0; x < k; ++x) ones_[x] += batch_counts.counts[x];
  for (size_t c = 0; c < k * k; ++c) {
    co_counts_[c] += batch_counts.co_counts[c];
  }
  total_samples_ += batch_counts.num_samples;
  total_rows_ += batch.num_rows();
  ++total_batches_;
  return Status::OK();
}

Result<Matrix> IncrementalFdx::CurrentCovariance() const {
  const size_t k = schema_.size();
  if (total_samples_ == 0) {
    return Status::InvalidArgument("no batches appended yet");
  }
  const double inv_n = 1.0 / static_cast<double>(total_samples_);
  Matrix cov(k, k);
  for (size_t x = 0; x < k; ++x) {
    const double mean_x = static_cast<double>(ones_[x]) * inv_n;
    for (size_t y = x; y < k; ++y) {
      const double mean_y = static_cast<double>(ones_[y]) * inv_n;
      const double exy =
          static_cast<double>(co_counts_[x * k + y]) * inv_n;
      const double value = exy - mean_x * mean_y;
      cov(x, y) = value;
      cov(y, x) = value;
    }
  }
  return cov;
}

Result<FdxResult> IncrementalFdx::CurrentFds() const {
  // The accumulated moments are unchanged since the last solve, so its
  // result is still exact — answer from the memo without solving.
  if (memo_ != nullptr && memo_batches_ == total_batches_) {
    memo_hits_.fetch_add(1, std::memory_order_relaxed);
    return *memo_;
  }
  // One deadline spans the O(k^2) covariance assembly and the whole
  // structure-learning solve, so the budget semantics match the batch
  // Discover() path; the solve itself runs through the same recovery
  // ladder (ridge escalation -> sequential fallback -> quarantine).
  const Deadline deadline(options_.time_budget_seconds);
  FDX_ASSIGN_OR_RETURN(Matrix cov, CurrentCovariance());
  if (deadline.Expired()) {
    return Status::Timeout(
        "incremental fdx: time budget exhausted assembling covariance");
  }
  const size_t k = schema_.size();
  FdxOptions solve_options = options_;
  const bool seeded = solve_options.reuse_solver_state && has_warm_ &&
                      warm_w_.rows() == k;
  if (seeded) {
    solve_options.glasso.warm_w = &warm_w_;
    solve_options.glasso.warm_theta = &warm_theta_;
  }
  FdxDiscoverer discoverer(solve_options);
  FDX_ASSIGN_OR_RETURN(FdxResult result,
                       discoverer.DiscoverFromCovariance(cov, &deadline));
  result.transform_samples = total_samples_;

  // Capture the solver state for the next call. Degraded runs (fallback
  // or quarantine) leave glasso_w empty and clear the warm state: never
  // seed the next solve from a solution the ladder had to salvage.
  if (solve_options.reuse_solver_state && result.glasso_w.rows() == k) {
    warm_w_ = result.glasso_w;
    warm_theta_ = result.theta;
    has_warm_ = true;
  } else {
    has_warm_ = false;
  }
  const bool warmed = result.diagnostics.solver_warm_start;
  if (!warmed) lineage_.clear();
  lineage_.push_back(total_batches_);
  solves_.fetch_add(1, std::memory_order_relaxed);
  if (warmed) warm_solves_.fetch_add(1, std::memory_order_relaxed);
  if (result.diagnostics.solver_newton_iterations > 0) {
    newton_solves_.fetch_add(1, std::memory_order_relaxed);
  }
  memo_ = std::make_unique<FdxResult>(result);
  memo_batches_ = total_batches_;
  return result;
}

std::string IncrementalFdx::SolveStateKey() const {
  Fingerprint fp;
  fp.UpdateU64(static_cast<uint64_t>(lineage_.size()));
  for (uint64_t entry : lineage_) fp.UpdateU64(entry);
  return fp.Hex();
}

}  // namespace fdx
