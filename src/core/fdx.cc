#include "core/fdx.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/factorization.h"
#include "linalg/lasso.h"
#include "linalg/stats.h"
#include "util/fault_injection.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace fdx {

FdSet GenerateFdsFromAutoregression(const Matrix& b,
                                    const std::vector<size_t>& perm,
                                    double tau, double relative,
                                    double floor, double zero_tol) {
  const size_t k = b.rows();
  FdSet fds;
  for (size_t j = 0; j < k; ++j) {
    // Only positive weights encode FDs: the soft-logic relaxation
    // (Eq. 3) averages the determinants with non-negative coefficients,
    // whereas the sort-and-shift pass structure of Algorithm 2 induces
    // mildly *negative* couplings between unrelated attributes.
    double column_max = 0.0;
    for (size_t i = 0; i < j; ++i) {
      column_max = std::max(column_max, b(i, j));
    }
    if (column_max < std::max(floor, zero_tol)) continue;
    const double threshold =
        std::max({tau, relative * column_max, zero_tol});
    std::vector<size_t> lhs;
    for (size_t i = 0; i < j; ++i) {
      if (b(i, j) > threshold) lhs.push_back(perm[i]);
    }
    if (!lhs.empty()) fds.emplace_back(std::move(lhs), perm[j]);
  }
  return fds;
}

namespace {

/// Output of one structure-learning attempt: the precision estimate in
/// schema order, the autoregression matrix in *permuted* coordinates,
/// and the permutation used.
struct LearnedStructure {
  Matrix theta;                  ///< schema order
  Matrix b;                      ///< permuted coordinates (strictly upper)
  std::vector<size_t> ordering;  ///< perm[i] = schema attribute at pos i
  Matrix glasso_w;               ///< glasso covariance estimate (else empty)
  GlassoStats solver_stats;      ///< glasso internals (else default)
};

void AddEvent(RunDiagnostics* diag, std::string stage, std::string action,
              std::string detail) {
  diag->events.push_back(
      {std::move(stage), std::move(action), std::move(detail)});
}

/// One graphical lasso + U D U^T attempt with an explicit diagonal ridge.
Result<LearnedStructure> TryGlassoOnce(const Matrix& input,
                                       const FdxOptions& options,
                                       double ridge,
                                       const Deadline* deadline) {
  const size_t k = input.rows();
  GlassoOptions glasso_options = options.glasso;
  glasso_options.lambda = options.lambda;
  glasso_options.diagonal_ridge = ridge;
  glasso_options.deadline = deadline;
  if (glasso_options.threads == 0) glasso_options.threads = options.threads;
  FDX_ASSIGN_OR_RETURN(GlassoResult glasso,
                       GraphicalLasso(input, glasso_options));
  LearnedStructure learned;
  learned.theta = glasso.theta;
  learned.glasso_w = std::move(glasso.w);
  learned.solver_stats = std::move(glasso.stats);
  learned.ordering = ComputeOrdering(glasso.theta, options.ordering,
                                     options.zero_tolerance);
  const Matrix permuted = glasso.theta.PermuteSymmetric(learned.ordering);
  FDX_ASSIGN_OR_RETURN(UdutResult udut, UdutFactor(permuted));

  // B = I - U in permuted coordinates.
  learned.b = Matrix(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) learned.b(i, j) = -udut.u(i, j);
  }
  return learned;
}

/// Sequential lasso: order the variables on the correlation support
/// (couplings below 0.1 are noise at the sample sizes we target), then
/// fit each column's regression on its predecessors — the
/// neighborhood-selection view of structure learning.
Result<LearnedStructure> TrySequentialLasso(const Matrix& input,
                                            const FdxOptions& options,
                                            const Deadline* deadline) {
  const size_t k = input.rows();
  LearnedStructure learned;
  learned.ordering = ComputeOrdering(input, options.ordering, 0.1);
  const Matrix permuted = input.PermuteSymmetric(learned.ordering);
  LassoOptions lasso_options;
  lasso_options.lambda = options.lambda;
  lasso_options.deadline = deadline;
  learned.b = Matrix(k, k);
  for (size_t j = 1; j < k; ++j) {
    if (deadline != nullptr && deadline->Expired()) {
      return Status::Timeout("sequential lasso: time budget exhausted");
    }
    FDX_INJECT_FAULT(
        kFaultSeqLassoColumn,
        Status::NumericalError("injected fault: seqlasso.column " +
                               std::to_string(j)));
    Matrix q(j, j);
    Vector c(j, 0.0);
    for (size_t a = 0; a < j; ++a) {
      c[a] = permuted(a, j);
      for (size_t bcol = 0; bcol < j; ++bcol) {
        q(a, bcol) = permuted(a, bcol);
      }
      q(a, a) += options.glasso.diagonal_ridge + 1e-6;
    }
    Vector beta(j, 0.0);
    FDX_RETURN_IF_ERROR(SolveQuadraticLasso(q, c, lasso_options, &beta));
    for (size_t a = 0; a < j; ++a) learned.b(a, j) = beta[a];
  }
  // Report Theta implied by the fitted SEM with unit noise:
  // Theta = (I - B)(I - B)^T, mapped back to schema order.
  Matrix i_minus_b = Matrix::Identity(k).Subtract(learned.b);
  Matrix theta_permuted = i_minus_b.Multiply(i_minus_b.Transpose());
  learned.theta = Matrix(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      learned.theta(learned.ordering[i], learned.ordering[j]) =
          theta_permuted(i, j);
    }
  }
  return learned;
}

/// Recovery steps 1 and 2: the ridge-escalation schedule over graphical
/// lasso, then the fallback to sequential lasso. Only kNumericalError
/// escalates; timeouts and invalid inputs propagate immediately.
Result<LearnedStructure> LearnWithRetries(const Matrix& input,
                                          const FdxOptions& options,
                                          const Deadline* deadline,
                                          RunDiagnostics* diag) {
  const RecoveryPolicy& policy = options.recovery;
  Status last_error;
  if (options.estimator == StructureEstimator::kGraphicalLasso) {
    double ridge = options.glasso.diagonal_ridge;
    const size_t max_attempts =
        policy.enabled ? policy.max_ridge_retries + 1 : 1;
    for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
      Result<LearnedStructure> learned =
          TryGlassoOnce(input, options, ridge, deadline);
      ++diag->glasso_attempts;
      if (learned.ok()) {
        diag->ridge_used = ridge;
        return learned;
      }
      last_error = learned.status();
      if (last_error.code() != StatusCode::kNumericalError) {
        return last_error;
      }
      if (attempt + 1 >= max_attempts) break;
      const double next_ridge =
          ridge > 0.0 ? std::min(ridge * policy.ridge_multiplier,
                                 policy.max_ridge)
                      : policy.max_ridge / 1e4;
      if (next_ridge <= ridge) break;  // already at the cap
      AddEvent(diag, "glasso", "retry_ridge",
               last_error.message() + "; diagonal_ridge -> " +
                   FormatDouble(next_ridge, 8));
      ridge = next_ridge;
    }
    if (!policy.enabled || !policy.allow_estimator_fallback) {
      return last_error;
    }
    AddEvent(diag, "glasso", "fallback_sequential",
             "glasso exhausted after " +
                 std::to_string(diag->glasso_attempts) + " attempt(s): " +
                 last_error.message());
  }
  Result<LearnedStructure> learned =
      TrySequentialLasso(input, options, deadline);
  if (learned.ok()) {
    if (options.estimator == StructureEstimator::kGraphicalLasso) {
      diag->fallback_sequential = true;
    }
    return learned;
  }
  last_error = learned.status();
  if (last_error.code() == StatusCode::kNumericalError) {
    AddEvent(diag, "seqlasso", "failed", last_error.message());
  }
  return last_error;
}

}  // namespace

Result<FdxResult> FdxDiscoverer::Discover(const Table& table) const {
  const Deadline deadline(options_.time_budget_seconds);
  Stopwatch watch;
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  if (k == 0) {
    return Status::InvalidArgument("Discover: table has no columns");
  }
  // Degenerate shapes that cannot carry an FD produce an empty, diagnosed
  // result instead of a transform error: there is nothing to discover,
  // but nothing went wrong either.
  if (n < 2 || k < 2) {
    FdxResult result;
    result.theta = Matrix(k, k);
    result.autoregression = Matrix(k, k);
    result.ordering.resize(k);
    std::iota(result.ordering.begin(), result.ordering.end(), size_t{0});
    AddEvent(&result.diagnostics, "input", "degenerate_table",
             std::to_string(n) + " row(s) x " + std::to_string(k) +
                 " column(s): no FD can exist; returning an empty set");
    return result;
  }
  TransformOptions transform = options_.transform;
  if (transform.threads == 0) transform.threads = options_.threads;
  if (transform.deadline == nullptr && options_.time_budget_seconds > 0.0) {
    transform.deadline = &deadline;
  }
  FDX_ASSIGN_OR_RETURN(TransformedMoments moments,
                       PairTransformMoments(table, transform));
  const double transform_seconds = watch.ElapsedSeconds();
  if (deadline.Expired()) {
    return Status::Timeout("fdx: time budget exhausted after transform");
  }
  FDX_ASSIGN_OR_RETURN(FdxResult result,
                       DiscoverFromCovarianceInternal(moments.cov,
                                                      &deadline));
  result.transform_seconds = transform_seconds;
  result.transform_samples = moments.num_samples;
  result.diagnostics.transform_seconds = transform_seconds;
  return result;
}

Result<FdxResult> FdxDiscoverer::DiscoverFromCovariance(
    const Matrix& covariance) const {
  const Deadline deadline(options_.time_budget_seconds);
  return DiscoverFromCovarianceInternal(covariance, &deadline);
}

Result<FdxResult> FdxDiscoverer::DiscoverFromCovariance(
    const Matrix& covariance, const Deadline* deadline) const {
  if (deadline == nullptr) {
    const Deadline unlimited = Deadline::Unlimited();
    return DiscoverFromCovarianceInternal(covariance, &unlimited);
  }
  return DiscoverFromCovarianceInternal(covariance, deadline);
}

Result<FdxResult> FdxDiscoverer::DiscoverFromCovarianceInternal(
    const Matrix& covariance, const Deadline* deadline) const {
  Stopwatch watch;
  FdxResult result;
  RunDiagnostics& diag = result.diagnostics;
  const size_t k = covariance.rows();
  const RecoveryPolicy& policy = options_.recovery;

  // Up-front degeneracy scan: equality indicators with (near-)zero
  // variance come from all-constant or all-null columns. They are the
  // quarantine candidates of recovery step 3.
  const double variance_floor =
      std::max(options_.zero_tolerance, policy.degenerate_variance_floor);
  std::vector<size_t> degenerate;
  for (size_t i = 0; i < k; ++i) {
    if (covariance(i, i) <= variance_floor) degenerate.push_back(i);
  }
  if (!degenerate.empty()) {
    AddEvent(&diag, "input", "degenerate_attributes",
             std::to_string(degenerate.size()) +
                 " attribute(s) with (near-)constant or all-null "
                 "equality indicators");
  }

  Matrix input = covariance;
  if (options_.normalize_covariance) {
    input = CorrelationFromCovariance(covariance, options_.zero_tolerance);
  }

  LearnedStructure learned;
  Result<LearnedStructure> attempt =
      LearnWithRetries(input, options_, deadline, &diag);
  if (attempt.ok()) {
    learned = std::move(attempt).value();
  } else if (attempt.status().code() == StatusCode::kNumericalError &&
             policy.enabled && policy.allow_quarantine &&
             !degenerate.empty() && degenerate.size() < k) {
    // Recovery step 3: drop the degenerate attributes and re-learn on
    // the remainder; the quarantined attributes get zero rows/columns
    // and never participate in FDs.
    std::vector<size_t> keep;
    keep.reserve(k - degenerate.size());
    {
      size_t next_degenerate = 0;
      for (size_t i = 0; i < k; ++i) {
        if (next_degenerate < degenerate.size() &&
            degenerate[next_degenerate] == i) {
          ++next_degenerate;
        } else {
          keep.push_back(i);
        }
      }
    }
    const size_t m = keep.size();
    Matrix reduced(m, m);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) reduced(i, j) = input(keep[i], keep[j]);
    }
    diag.quarantined = true;
    diag.quarantined_attributes = degenerate;
    AddEvent(&diag, "quarantine", "rerun_without_degenerate",
             attempt.status().message() + "; re-learning on " +
                 std::to_string(m) + " of " + std::to_string(k) +
                 " attributes");
    Result<LearnedStructure> rerun =
        LearnWithRetries(reduced, options_, deadline, &diag);
    if (!rerun.ok()) return rerun.status();
    const LearnedStructure& sub = *rerun;
    // Embed the reduced solution back into full-size artifacts. The
    // quarantined attributes occupy the tail of the permutation with
    // all-zero autoregression columns, so FD generation skips them.
    learned.theta = Matrix(k, k);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) {
        learned.theta(keep[i], keep[j]) = sub.theta(i, j);
      }
    }
    learned.b = Matrix(k, k);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) learned.b(i, j) = sub.b(i, j);
    }
    learned.ordering.reserve(k);
    for (size_t i = 0; i < m; ++i) {
      learned.ordering.push_back(keep[sub.ordering[i]]);
    }
    for (size_t attr : degenerate) learned.ordering.push_back(attr);
  } else {
    return attempt.status();
  }

  // Solver internals of the winning attempt; a quarantined run rebuilds
  // `learned` by hand above and deliberately leaves these empty.
  if (learned.solver_stats.components > 0) {
    diag.solver_components = learned.solver_stats.components;
    diag.solver_component_sizes = learned.solver_stats.component_sizes;
    diag.solver_sweeps = learned.solver_stats.sweeps;
    diag.solver_final_change = learned.solver_stats.final_mean_change;
    diag.solver_active_hit_rate = learned.solver_stats.ActiveHitRate();
    diag.solver_warm_start = learned.solver_stats.warm_start_used;
    diag.solver_backend = learned.solver_stats.SolverBackend();
    diag.solver_newton_iterations = learned.solver_stats.newton_iterations;
    diag.solver_newton_path_stages =
        learned.solver_stats.newton_path_stages;
  }
  result.glasso_w = std::move(learned.glasso_w);
  result.theta = std::move(learned.theta);
  result.ordering = std::move(learned.ordering);
  result.fds = GenerateFdsFromAutoregression(
      learned.b, result.ordering, options_.sparsity_threshold,
      options_.relative_threshold, options_.minimum_column_weight,
      options_.zero_tolerance);

  // Map B back into schema order for the heatmap-style displays.
  result.autoregression = Matrix(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      result.autoregression(result.ordering[i], result.ordering[j]) =
          learned.b(i, j);
    }
  }
  result.learning_seconds = watch.ElapsedSeconds();
  diag.learning_seconds = result.learning_seconds;
  return result;
}

}  // namespace fdx
