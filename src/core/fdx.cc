#include "core/fdx.h"

#include <algorithm>
#include <cmath>

#include "linalg/factorization.h"
#include "linalg/lasso.h"
#include "util/stopwatch.h"

namespace fdx {

FdSet GenerateFdsFromAutoregression(const Matrix& b,
                                    const std::vector<size_t>& perm,
                                    double tau, double relative,
                                    double floor, double zero_tol) {
  const size_t k = b.rows();
  FdSet fds;
  for (size_t j = 0; j < k; ++j) {
    // Only positive weights encode FDs: the soft-logic relaxation
    // (Eq. 3) averages the determinants with non-negative coefficients,
    // whereas the sort-and-shift pass structure of Algorithm 2 induces
    // mildly *negative* couplings between unrelated attributes.
    double column_max = 0.0;
    for (size_t i = 0; i < j; ++i) {
      column_max = std::max(column_max, b(i, j));
    }
    if (column_max < std::max(floor, zero_tol)) continue;
    const double threshold =
        std::max({tau, relative * column_max, zero_tol});
    std::vector<size_t> lhs;
    for (size_t i = 0; i < j; ++i) {
      if (b(i, j) > threshold) lhs.push_back(perm[i]);
    }
    if (!lhs.empty()) fds.emplace_back(std::move(lhs), perm[j]);
  }
  return fds;
}

Result<FdxResult> FdxDiscoverer::Discover(const Table& table) const {
  Stopwatch watch;
  TransformOptions transform = options_.transform;
  if (transform.threads == 0) transform.threads = options_.threads;
  FDX_ASSIGN_OR_RETURN(TransformedMoments moments,
                       PairTransformMoments(table, transform));
  FdxResult partial;
  partial.transform_seconds = watch.ElapsedSeconds();
  partial.transform_samples = moments.num_samples;
  FDX_ASSIGN_OR_RETURN(FdxResult result,
                       DiscoverFromCovariance(moments.cov));
  result.transform_seconds = partial.transform_seconds;
  result.transform_samples = partial.transform_samples;
  return result;
}

Result<FdxResult> FdxDiscoverer::DiscoverFromCovariance(
    const Matrix& covariance) const {
  Stopwatch watch;
  FdxResult result;
  const size_t k = covariance.rows();

  Matrix input = covariance;
  if (options_.normalize_covariance) {
    // Correlation rescaling; constant indicators (zero variance) keep a
    // unit diagonal and zero couplings.
    Vector scale(k, 1.0);
    for (size_t i = 0; i < k; ++i) {
      const double var = covariance(i, i);
      scale[i] = var > options_.zero_tolerance ? 1.0 / std::sqrt(var) : 0.0;
    }
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        input(i, j) = i == j ? 1.0
                             : covariance(i, j) * scale[i] * scale[j];
      }
    }
  }

  Matrix b(k, k);  // autoregression in permuted coordinates
  if (options_.estimator == StructureEstimator::kGraphicalLasso) {
    GlassoOptions glasso_options = options_.glasso;
    glasso_options.lambda = options_.lambda;
    FDX_ASSIGN_OR_RETURN(GlassoResult glasso,
                         GraphicalLasso(input, glasso_options));
    result.theta = glasso.theta;

    result.ordering = ComputeOrdering(glasso.theta, options_.ordering,
                                      options_.zero_tolerance);
    const Matrix permuted = glasso.theta.PermuteSymmetric(result.ordering);
    FDX_ASSIGN_OR_RETURN(UdutResult udut, UdutFactor(permuted));

    // B = I - U in permuted coordinates.
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = i + 1; j < k; ++j) b(i, j) = -udut.u(i, j);
    }
  } else {
    // Sequential lasso: order the variables on the correlation support
    // (couplings below 0.1 are noise at the sample sizes we target),
    // then fit each column's regression on its predecessors.
    result.ordering = ComputeOrdering(input, options_.ordering, 0.1);
    const Matrix permuted = input.PermuteSymmetric(result.ordering);
    LassoOptions lasso_options;
    lasso_options.lambda = options_.lambda;
    for (size_t j = 1; j < k; ++j) {
      Matrix q(j, j);
      Vector c(j, 0.0);
      for (size_t a = 0; a < j; ++a) {
        c[a] = permuted(a, j);
        for (size_t bcol = 0; bcol < j; ++bcol) {
          q(a, bcol) = permuted(a, bcol);
        }
        q(a, a) += options_.glasso.diagonal_ridge + 1e-6;
      }
      Vector beta(j, 0.0);
      FDX_RETURN_IF_ERROR(SolveQuadraticLasso(q, c, lasso_options, &beta));
      for (size_t a = 0; a < j; ++a) b(a, j) = beta[a];
    }
    // Report Theta implied by the fitted SEM with unit noise:
    // Theta = (I - B)(I - B)^T, mapped back to schema order.
    Matrix i_minus_b = Matrix::Identity(k).Subtract(b);
    Matrix theta_permuted = i_minus_b.Multiply(i_minus_b.Transpose());
    result.theta = Matrix(k, k);
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        result.theta(result.ordering[i], result.ordering[j]) =
            theta_permuted(i, j);
      }
    }
  }
  result.fds = GenerateFdsFromAutoregression(
      b, result.ordering, options_.sparsity_threshold,
      options_.relative_threshold, options_.minimum_column_weight,
      options_.zero_tolerance);

  // Map B back into schema order for the heatmap-style displays.
  result.autoregression = Matrix(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      result.autoregression(result.ordering[i], result.ordering[j]) = b(i, j);
    }
  }
  result.learning_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace fdx
