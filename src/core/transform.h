#ifndef FDX_CORE_TRANSFORM_H_
#define FDX_CORE_TRANSFORM_H_

#include <cstdint>

#include "data/table.h"
#include "linalg/matrix.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace fdx {

/// Options of the pair-difference transform (paper Algorithm 2).
struct TransformOptions {
  /// Cap on the number of tuple pairs contributed by each attribute's
  /// sort-and-shift pass. 0 means no cap (the paper's exact Algorithm 2,
  /// n pairs per attribute). The paper notes sampling can speed up this
  /// step (§5.4); a cap keeps the transform linear in min(n, cap) * k.
  size_t max_pairs_per_attribute = 0;
  /// Pool the covariance *within* each sort pass instead of across the
  /// concatenated sample. Algorithm 2's concatenation mixes passes with
  /// different indicator means (the pass's own sort column is almost
  /// always 1), which injects a uniform negative coupling between
  /// unrelated attributes; the pooled estimator
  ///   S = (1/k) * sum_i Cov(pass_i)
  /// removes that artifact at the source. Off by default to stay
  /// faithful to the paper's algorithm (the FD generation step filters
  /// the artifact by sign instead).
  bool pooled_covariance = false;
  uint64_t seed = 7;
  /// Worker threads for the per-attribute passes; 0 picks the `FDX_THREADS`
  /// environment variable or the hardware concurrency. The transform is
  /// bit-identical at every thread count: each attribute derives its own
  /// RNG from a per-attribute fork of `seed`, integer moment counts merge
  /// commutatively, and pooled pass covariances are reduced in attribute
  /// order.
  size_t threads = 0;
  /// Optional wall-clock budget, polled between per-attribute passes (so
  /// a run is over budget by at most one pass). Non-owning; expiry makes
  /// the transform return Status::Timeout.
  const Deadline* deadline = nullptr;
};

/// Materialized transform output: an (n_pairs x k) 0/1 sample matrix of
/// the FDX model variables Z_A = 1(t_i[A] = t_j[A]). Used by tests, the
/// ablation benches, and small inputs.
Result<Matrix> PairTransform(const Table& table,
                             const TransformOptions& options = {});

/// Same pair construction as PairTransform, but streams the samples into
/// the mean vector and covariance matrix without materializing the
/// (n * k) x k sample matrix. Equality indicators are binary, so the
/// cross-moment matrix is an integer co-occurrence count; this keeps the
/// computation exact. This is the production path of FdxDiscoverer.
struct TransformedMoments {
  Vector mean;    ///< Column means of the implicit sample matrix.
  Matrix cov;     ///< Empirical covariance (1/N normalization).
  size_t num_samples = 0;
};
Result<TransformedMoments> PairTransformMoments(
    const Table& table, const TransformOptions& options = {});

}  // namespace fdx

#endif  // FDX_CORE_TRANSFORM_H_
