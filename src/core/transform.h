#ifndef FDX_CORE_TRANSFORM_H_
#define FDX_CORE_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "linalg/bitmatrix.h"
#include "linalg/matrix.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace fdx {

/// Wall-clock breakdown of one transform call, filled when
/// TransformOptions::profile points here. Purely observational (the
/// bench's sort/pack/accumulate report); never influences results.
/// Seconds are summed across attribute passes and threads, so with T
/// threads the total can exceed the call's wall time.
struct TransformProfile {
  double sort_seconds = 0.0;        ///< counting-sort passes
  double pack_seconds = 0.0;        ///< equality-bit packing
  double accumulate_seconds = 0.0;  ///< popcount moment accumulation
};

/// Options of the pair-difference transform (paper Algorithm 2).
struct TransformOptions {
  /// Cap on the number of tuple pairs contributed by each attribute's
  /// sort-and-shift pass. 0 means no cap (the paper's exact Algorithm 2,
  /// n pairs per attribute). The paper notes sampling can speed up this
  /// step (§5.4); a cap keeps the transform linear in min(n, cap) * k.
  size_t max_pairs_per_attribute = 0;
  /// Pool the covariance *within* each sort pass instead of across the
  /// concatenated sample. Algorithm 2's concatenation mixes passes with
  /// different indicator means (the pass's own sort column is almost
  /// always 1), which injects a uniform negative coupling between
  /// unrelated attributes; the pooled estimator
  ///   S = (1/k) * sum_i Cov(pass_i)
  /// removes that artifact at the source. Off by default to stay
  /// faithful to the paper's algorithm (the FD generation step filters
  /// the artifact by sign instead).
  bool pooled_covariance = false;
  uint64_t seed = 7;
  /// Worker threads for the per-attribute passes; 0 picks the `FDX_THREADS`
  /// environment variable or the hardware concurrency. The transform is
  /// bit-identical at every thread count: each attribute derives its own
  /// RNG from a per-attribute fork of `seed`, integer moment counts merge
  /// commutatively, and pooled pass covariances are reduced in attribute
  /// order.
  size_t threads = 0;
  /// Optional wall-clock budget, polled between per-attribute passes (so
  /// a run is over budget by at most one pass). Non-owning; expiry makes
  /// the transform return Status::Timeout.
  const Deadline* deadline = nullptr;
  /// Optional stage-timing sink (see TransformProfile). Non-owning.
  TransformProfile* profile = nullptr;
};

/// The packed transform engine. Samples of the pair transform are
/// equality indicators Z_A = 1(t_i[A] = t_j[A]) — binary — so the
/// engine never touches a double on the hot path:
///
///   1. each attribute pass sorts rows with a stable counting sort on
///      the dictionary codes (O(n + cardinality), shuffle preserved as
///      the tie breaker; see core/pairs.h);
///   2. pairs are enumerated straight off the sorted order and their
///      equality vectors packed into uint64 words (one bit per sample
///      and column, column-major; see linalg/bitmatrix.h);
///   3. moments come out of the words by popcount — counts[x] =
///      popcount(col_x), co_counts[x][y] = popcount(col_x AND col_y) —
///      all-integer, hence bit-identical at any thread count.
///
/// PairTransformPacked returns the packed sample matrix itself (pass
/// p's samples are rows [p * pairs_per_pass, (p+1) * pairs_per_pass));
/// PairTransform unpacks it into the dense 0/1 double matrix for
/// callers that need one; PairTransformCounts and PairTransformMoments
/// stream pass-by-pass and never materialize the full matrix at all.
Result<BitMatrix> PairTransformPacked(const Table& table,
                                      const TransformOptions& options = {});

/// Materialized transform output: an (n_pairs x k) 0/1 sample matrix of
/// the FDX model variables. Used by tests, the ablation benches, and
/// small inputs. Exactly UnpackRows(PairTransformPacked(...)).
Result<Matrix> PairTransform(const Table& table,
                             const TransformOptions& options = {});

/// Raw integer moments of the transform: per-column indicator sums and
/// upper-triangular co-occurrence counts (y >= x at [x * k + y],
/// diagonal = counts). These are additive across batches — the currency
/// of IncrementalFdx — and exact, so merging partial counts in any
/// order reproduces the serial accumulation bitwise.
struct TransformCounts {
  std::vector<uint64_t> counts;     ///< per-column ones
  std::vector<uint64_t> co_counts;  ///< k * k, upper triangle + diagonal
  size_t num_samples = 0;
};
Result<TransformCounts> PairTransformCounts(
    const Table& table, const TransformOptions& options = {});

/// Same pair construction as PairTransform, but streams the samples into
/// the mean vector and covariance matrix without materializing the
/// (n * k) x k sample matrix (packed or dense). Equality indicators are
/// binary, so the cross-moment matrix is an integer co-occurrence count;
/// this keeps the computation exact. This is the production path of
/// FdxDiscoverer.
struct TransformedMoments {
  Vector mean;    ///< Column means of the implicit sample matrix.
  Matrix cov;     ///< Empirical covariance (1/N normalization).
  size_t num_samples = 0;
};
Result<TransformedMoments> PairTransformMoments(
    const Table& table, const TransformOptions& options = {});

}  // namespace fdx

#endif  // FDX_CORE_TRANSFORM_H_
