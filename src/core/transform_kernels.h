#ifndef FDX_CORE_TRANSFORM_KERNELS_H_
#define FDX_CORE_TRANSFORM_KERNELS_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/pairs.h"
#include "core/transform.h"
#include "linalg/matrix.h"
#include "linalg/simd.h"
#include "util/rng.h"

/// Shared internals of the pair-difference transform. Two engines
/// consume these: the in-memory PairTransform* entry points
/// (core/transform.cc) and the out-of-core streaming transform
/// (store/stream_transform.cc). Everything that determines the *result*
/// of a transform — randomness ordering, equality semantics, bit
/// layout, and the integer→double moment expressions — lives here, so
/// the two engines cannot drift apart: bit-identical inputs produce
/// bit-identical moments on either path.
namespace fdx {

/// Equality indicator with strict null semantics: a null matches nothing.
inline uint64_t EqualCodes(int32_t a, int32_t b) {
  return (a != EncodedTable::kNullCode && a == b) ? 1 : 0;
}

/// Number of pairs one attribute pass emits for an n-row table.
inline size_t PairsPerAttribute(size_t n, size_t max_pairs) {
  return (max_pairs == 0 || max_pairs >= n) ? n : max_pairs;
}

/// Per-attribute RNG seeds, forked serially from the parent stream so the
/// sampled pair selection of one attribute never depends on how many
/// passes ran before it (or on which thread runs it).
inline std::vector<uint64_t> ForkAttributeSeeds(Rng* rng, size_t k) {
  std::vector<uint64_t> seeds(k);
  for (size_t attr = 0; attr < k; ++attr) seeds[attr] = rng->engine()();
  return seeds;
}

/// The canonical randomness preamble of every transform: one Rng seeded
/// with `seed` shuffles the row identity permutation, then forks the k
/// per-attribute seeds — in that exact order. Any engine that wants to
/// reproduce a transform must consume the stream this way.
inline void PrepareTransformStreams(uint64_t seed, size_t n, size_t k,
                                    std::vector<uint32_t>* shuffled,
                                    std::vector<uint64_t>* attr_seeds) {
  Rng rng(seed);
  shuffled->resize(n);
  std::iota(shuffled->begin(), shuffled->end(), uint32_t{0});
  rng.Shuffle(shuffled);
  *attr_seeds = ForkAttributeSeeds(&rng, k);
}

/// Sequential bit appender over a column's word array. Bits arrive in
/// index order; whole words are stored once, the trailing partial word
/// on Flush. The destination words must start zeroed (BitMatrix::Reset)
/// or be fully overwritten (the writer covers every word it touches).
class ColumnBitWriter {
 public:
  explicit ColumnBitWriter(uint64_t* words) : words_(words) {}

  inline void Append(uint64_t bit) {
    word_ |= bit << shift_;
    if (++shift_ == 64) {
      *words_++ = word_;
      word_ = 0;
      shift_ = 0;
    }
  }

  /// Appends the low `nbits` bits of `bits` (1..64, LSB first) in one
  /// shot — the bulk entry used by the SIMD pack path, equivalent to
  /// nbits Append calls. Bits above `nbits` must be zero.
  inline void AppendWord(uint64_t bits, unsigned nbits) {
    word_ |= bits << shift_;
    const unsigned avail = 64 - shift_;
    if (nbits >= avail) {
      *words_++ = word_;
      // avail == 64 implies shift_ == 0 and the whole input was stored
      // above; the shift below would be UB, so special-case it.
      word_ = avail == 64 ? 0 : bits >> avail;
      shift_ = nbits - avail;
    } else {
      shift_ += nbits;
    }
  }

  void Flush() {
    if (shift_ != 0) *words_ = word_;
  }

 private:
  uint64_t* words_;
  uint64_t word_ = 0;
  unsigned shift_ = 0;
};

/// Reusable buffers for the vectorized pack path: the gathered code
/// stream and the word-aligned bit buffer the SIMD compare fills before
/// the writer splices it in at the current bit offset. One instance per
/// packing thread, reused across (column, pass) iterations.
struct PackScratch {
  std::vector<int32_t> gathered;
  std::vector<uint64_t> words;
};

/// Appends one pass's equality bits for the column with dictionary codes
/// `codes` to `writer`. The full (uncapped) variant gathers the column's
/// codes into sorted order and packs the adjacent-equality bits through
/// the runtime-dispatched SIMD kernels (scalar fallback included); both
/// produce the exact integer bit stream, so the output is bit-identical
/// at every dispatch level. The sampled variant stays scalar: its pair
/// positions are a sparse subset, not an adjacent sweep. `scratch` may
/// be null (e.g. one-off callers), which forces the carried-load scalar
/// loop.
inline void AppendPassColumnBits(const std::vector<int32_t>& codes,
                                 const AttributePass& pass,
                                 ColumnBitWriter* writer,
                                 PackScratch* scratch = nullptr) {
  if (!pass.sampled()) {
    const std::vector<uint32_t>& order = pass.order();
    const size_t n = order.size();
    if (n < 2) return;
    if (scratch != nullptr && n >= 128) {
      const SimdOps& ops = ActiveSimdOps();
      scratch->gathered.resize(n);
      int32_t* g = scratch->gathered.data();
      ops.gather_codes(codes.data(), order.data(), n, g);
      scratch->words.resize((n - 1) / 64 + 1);
      const size_t packed = ops.pack_adjacent_equal(
          g, n, EncodedTable::kNullCode, scratch->words.data());
      for (size_t w = 0; w < packed / 64; ++w) {
        writer->AppendWord(scratch->words[w], 64);
      }
      for (size_t j = packed; j + 1 < n; ++j) {
        writer->Append(EqualCodes(g[j], g[j + 1]));
      }
      // The wrap pair (order[n-1], order[0]).
      writer->Append(EqualCodes(g[n - 1], g[0]));
      return;
    }
    int32_t prev = codes[order[0]];
    for (size_t j = 0; j + 1 < n; ++j) {
      const int32_t cur = codes[order[j + 1]];
      writer->Append(EqualCodes(prev, cur));
      prev = cur;
    }
    // The wrap pair (order[n-1], order[0]); prev holds codes[order[n-1]].
    writer->Append(EqualCodes(prev, codes[order[0]]));
    return;
  }
  pass.ForEachPair([&](size_t, size_t a, size_t b) {
    writer->Append(EqualCodes(codes[a], codes[b]));
  });
}

/// Pass-local covariance from one pass's integer moments. Used by the
/// pooled estimator: each attribute pass contributes its own covariance,
/// reduced across passes in attribute order.
inline Matrix PassCovarianceFromCounts(const uint64_t* pass_counts,
                                       const uint64_t* pass_co_counts,
                                       size_t k, size_t num_pairs) {
  Matrix cov(k, k);
  const double inv_pass = 1.0 / static_cast<double>(num_pairs);
  for (size_t x = 0; x < k; ++x) {
    const double mean_x = static_cast<double>(pass_counts[x]) * inv_pass;
    for (size_t y = x; y < k; ++y) {
      const double mean_y = static_cast<double>(pass_counts[y]) * inv_pass;
      const double exy =
          static_cast<double>(pass_co_counts[x * k + y]) * inv_pass;
      const double value = exy - mean_x * mean_y;
      cov(x, y) = value;
      cov(y, x) = value;
    }
  }
  return cov;
}

/// Reduces the per-pass pooled covariances in attribute order (the order
/// is part of the determinism contract: floating-point addition is not
/// associative).
inline Matrix ReducePooledCovariance(const std::vector<Matrix>& pass_cov) {
  Matrix pooled;
  size_t pooled_passes = 0;
  for (const Matrix& cov : pass_cov) {
    if (cov.empty()) continue;
    if (pooled.empty()) {
      pooled = Matrix(cov.rows(), cov.cols());
    }
    pooled = pooled.Add(cov);
    ++pooled_passes;
  }
  if (pooled_passes == 0) return pooled;
  return pooled.Scale(1.0 / static_cast<double>(pooled_passes));
}

/// Assembles the final mean/covariance from the accumulated integer
/// moments (the non-pooled estimator). Both engines funnel through these
/// exact expressions so their doubles agree bitwise.
inline TransformedMoments MomentsFromCounts(
    const std::vector<uint64_t>& counts,
    const std::vector<uint64_t>& co_counts, size_t total, size_t k) {
  TransformedMoments moments;
  moments.num_samples = total;
  moments.mean.assign(k, 0.0);
  const double inv_n = 1.0 / static_cast<double>(total);
  for (size_t c = 0; c < k; ++c) {
    moments.mean[c] = static_cast<double>(counts[c]) * inv_n;
  }
  moments.cov = Matrix(k, k);
  for (size_t x = 0; x < k; ++x) {
    for (size_t y = x; y < k; ++y) {
      const double exy = static_cast<double>(co_counts[x * k + y]) * inv_n;
      const double cov = exy - moments.mean[x] * moments.mean[y];
      moments.cov(x, y) = cov;
      moments.cov(y, x) = cov;
    }
  }
  return moments;
}

}  // namespace fdx

#endif  // FDX_CORE_TRANSFORM_KERNELS_H_
