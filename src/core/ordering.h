#ifndef FDX_CORE_ORDERING_H_
#define FDX_CORE_ORDERING_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace fdx {

/// Column (variable) ordering heuristics applied before the U D U^T
/// factorization, mirroring the CHOLMOD orderings swept in paper
/// Table 9. All heuristics operate on the support graph of the sparse
/// precision matrix (vertices = attributes, edges = nonzero partial
/// correlations).
enum class OrderingMethod {
  kNatural,    ///< Keep the schema order ("natural").
  kMinDegree,  ///< Exact minimum-degree elimination (the paper default,
               ///< called "heuristic" in Table 9).
  kAmd,        ///< Approximate minimum degree (external-degree variant).
  kColamd,     ///< Column-count greedy ordering (COLAMD stand-in).
  kMetis,      ///< Nested dissection via BFS bisection (METIS stand-in).
  kNesdis,     ///< Nested dissection with min-degree leaves (NESDIS
               ///< stand-in).
};

/// Parses "natural" / "heuristic" / "mindegree" / "amd" / "colamd" /
/// "metis" / "nesdis".
Result<OrderingMethod> ParseOrderingMethod(const std::string& name);
std::string OrderingMethodName(OrderingMethod method);

/// Computes a permutation `perm` of the k variables: new position i
/// holds original variable perm[i]. `theta` must be square; entries with
/// |theta_ij| > zero_tol define the support graph.
std::vector<size_t> ComputeOrdering(const Matrix& theta,
                                    OrderingMethod method,
                                    double zero_tol = 1e-10);

}  // namespace fdx

#endif  // FDX_CORE_ORDERING_H_
