#include "core/transform.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>

#include "core/pairs.h"
#include "util/thread_pool.h"

namespace fdx {

namespace {

/// Per-attribute RNG seeds, forked serially from the parent stream so the
/// sampled pair selection of one attribute never depends on how many
/// passes ran before it (or on which thread runs it).
std::vector<uint64_t> ForkAttributeSeeds(Rng* rng, size_t k) {
  std::vector<uint64_t> seeds(k);
  for (size_t attr = 0; attr < k; ++attr) seeds[attr] = rng->engine()();
  return seeds;
}

/// Number of pairs one attribute pass emits for an n-row table.
size_t PairsPerAttribute(size_t n, size_t max_pairs) {
  return (max_pairs == 0 || max_pairs >= n) ? n : max_pairs;
}

/// Equality indicator with strict null semantics: a null matches nothing.
inline uint64_t EqualCodes(int32_t a, int32_t b) {
  return (a != EncodedTable::kNullCode && a == b) ? 1 : 0;
}

/// Sequential bit appender over a column's word array. Bits arrive in
/// index order; whole words are stored once, the trailing partial word
/// on Flush. The destination words must start zeroed (BitMatrix::Reset)
/// or be fully overwritten (the writer covers every word it touches).
class ColumnBitWriter {
 public:
  explicit ColumnBitWriter(uint64_t* words) : words_(words) {}

  inline void Append(uint64_t bit) {
    word_ |= bit << shift_;
    if (++shift_ == 64) {
      *words_++ = word_;
      word_ = 0;
      shift_ = 0;
    }
  }

  void Flush() {
    if (shift_ != 0) *words_ = word_;
  }

 private:
  uint64_t* words_;
  uint64_t word_ = 0;
  unsigned shift_ = 0;
};

/// Appends one pass's equality bits for column `col` to `writer`. The
/// full (uncapped) variant streams the sorted order with one gather per
/// pair — the successor row of pair j is the predecessor row of pair
/// j+1, so its code is carried over instead of reloaded.
void AppendPassColumnBits(const EncodedTable& encoded,
                          const AttributePass& pass, size_t col,
                          ColumnBitWriter* writer) {
  const std::vector<int32_t>& codes = encoded.column_codes(col);
  if (!pass.sampled()) {
    const std::vector<uint32_t>& order = pass.order();
    const size_t n = order.size();
    if (n < 2) return;
    int32_t prev = codes[order[0]];
    for (size_t j = 0; j + 1 < n; ++j) {
      const int32_t cur = codes[order[j + 1]];
      writer->Append(EqualCodes(prev, cur));
      prev = cur;
    }
    // The wrap pair (order[n-1], order[0]); prev holds codes[order[n-1]].
    writer->Append(EqualCodes(prev, codes[order[0]]));
    return;
  }
  pass.ForEachPair([&](size_t, size_t a, size_t b) {
    writer->Append(EqualCodes(codes[a], codes[b]));
  });
}

/// Packs one pass's equality bits for every column into `bits`
/// (num_pairs x k, reused across passes).
void PackPassBits(const EncodedTable& encoded, const AttributePass& pass,
                  BitMatrix* bits) {
  const size_t k = encoded.num_columns();
  bits->Reset(pass.num_pairs(), k);
  for (size_t col = 0; col < k; ++col) {
    ColumnBitWriter writer(bits->column_words(col));
    AppendPassColumnBits(encoded, pass, col, &writer);
    writer.Flush();
  }
}

/// Per-thread stage timings, merged into the caller's TransformProfile
/// under a mutex at chunk exit (profiling only; results never depend on
/// it).
struct LocalProfile {
  double sort = 0.0;
  double pack = 0.0;
  double accumulate = 0.0;

  void MergeInto(TransformProfile* profile, std::mutex* mu) const {
    if (profile == nullptr) return;
    std::lock_guard<std::mutex> lock(*mu);
    profile->sort_seconds += sort;
    profile->pack_seconds += pack;
    profile->accumulate_seconds += accumulate;
  }
};

/// Shared preamble of every transform entry point: validates the shape,
/// encodes, shuffles, and forks the per-attribute seeds.
struct TransformSetup {
  EncodedTable encoded;
  std::vector<uint32_t> shuffled;
  std::vector<uint64_t> attr_seeds;
  size_t per_attr = 0;
};

Result<TransformSetup> PrepareTransform(const Table& table,
                                        const TransformOptions& options) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  if (k == 0 || n < 2) {
    return Status::InvalidArgument(
        "pair transform needs >= 2 rows and >= 1 column");
  }
  if (n > UINT32_MAX) {
    // The pair layer streams 4-byte row indices (see core/pairs.h).
    return Status::InvalidArgument("pair transform caps at 2^32 - 1 rows");
  }
  TransformSetup setup;
  setup.encoded = EncodedTable::Encode(table);
  Rng rng(options.seed);
  setup.shuffled.resize(n);
  std::iota(setup.shuffled.begin(), setup.shuffled.end(), uint32_t{0});
  rng.Shuffle(&setup.shuffled);
  setup.attr_seeds = ForkAttributeSeeds(&rng, k);
  setup.per_attr = PairsPerAttribute(n, options.max_pairs_per_attribute);
  return setup;
}

inline bool CheckDeadline(const TransformOptions& options,
                          std::atomic<bool>* expired) {
  if (options.deadline != nullptr &&
      (expired->load(std::memory_order_relaxed) ||
       options.deadline->Expired())) {
    expired->store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

}  // namespace

Result<BitMatrix> PairTransformPacked(const Table& table,
                                      const TransformOptions& options) {
  FDX_ASSIGN_OR_RETURN(TransformSetup setup, PrepareTransform(table, options));
  const size_t k = setup.encoded.num_columns();
  std::atomic<bool> expired{false};
  std::mutex profile_mu;

  // Phase 1: sort every attribute pass (independent counting sorts).
  // The orders are kept so phase 2 can parallelize over *output columns*
  // instead of passes: one writer per column bit-vector, no word shared
  // between threads, bit-identical at any thread count.
  std::vector<AttributePass> passes(k);
  ParallelFor(0, k, options.threads, [&](size_t lo, size_t hi) {
    LocalProfile local;
    Stopwatch watch;
    for (size_t attr = lo; attr < hi; ++attr) {
      if (CheckDeadline(options, &expired)) break;
      watch.Reset();
      passes[attr].Reset(setup.encoded, setup.shuffled, attr,
                         options.max_pairs_per_attribute,
                         setup.attr_seeds[attr]);
      local.sort += watch.ElapsedSeconds();
    }
    local.MergeInto(options.profile, &profile_mu);
  });
  if (expired.load(std::memory_order_relaxed)) {
    return Status::Timeout("pair transform: time budget exhausted");
  }

  // Phase 2: pack the equality bits, one column per writer. Column c's
  // bit r is sample r = pass * per_attr + pair_index, so each column is
  // appended sequentially across all passes.
  BitMatrix bits(setup.per_attr * k, k);
  ParallelFor(0, k, options.threads, [&](size_t lo, size_t hi) {
    LocalProfile local;
    Stopwatch watch;
    for (size_t col = lo; col < hi; ++col) {
      if (CheckDeadline(options, &expired)) break;
      watch.Reset();
      ColumnBitWriter writer(bits.column_words(col));
      for (size_t attr = 0; attr < k; ++attr) {
        AppendPassColumnBits(setup.encoded, passes[attr], col, &writer);
      }
      writer.Flush();
      local.pack += watch.ElapsedSeconds();
    }
    local.MergeInto(options.profile, &profile_mu);
  });
  if (expired.load(std::memory_order_relaxed)) {
    return Status::Timeout("pair transform: time budget exhausted");
  }
  return bits;
}

Result<Matrix> PairTransform(const Table& table,
                             const TransformOptions& options) {
  FDX_ASSIGN_OR_RETURN(BitMatrix bits, PairTransformPacked(table, options));
  Matrix out(bits.rows(), bits.cols());
  ParallelFor(0, bits.rows(), options.threads, [&](size_t lo, size_t hi) {
    bits.UnpackRows(lo, hi, &out);
  });
  return out;
}

namespace {

/// The streaming accumulation core shared by PairTransformCounts and
/// PairTransformMoments: runs every attribute pass (sort, pack,
/// popcount) without materializing more than one pass of bits per
/// thread, merging integer counts commutatively. When `pass_cov` is
/// non-null (pooled covariance), each pass additionally produces its
/// own double covariance from its integer pass moments, stored per
/// attribute and reduced in attribute order by the caller.
Status AccumulatePasses(const TransformSetup& setup,
                        const TransformOptions& options,
                        std::vector<uint64_t>* counts,
                        std::vector<uint64_t>* co_counts, size_t* total,
                        std::vector<Matrix>* pass_cov) {
  const size_t k = setup.encoded.num_columns();
  const size_t num_chunks =
      std::min(ResolveThreadCount(options.threads), k);
  std::vector<std::vector<uint64_t>> chunk_counts(
      num_chunks, std::vector<uint64_t>(k, 0));
  std::vector<std::vector<uint64_t>> chunk_co_counts(
      num_chunks, std::vector<uint64_t>(k * k, 0));
  std::vector<size_t> chunk_totals(num_chunks, 0);
  std::atomic<bool> expired{false};
  std::mutex profile_mu;

  ParallelForChunks(
      0, k, num_chunks, options.threads,
      [&](size_t chunk, size_t lo, size_t hi) {
        AttributePass pass;
        BitMatrix bits;
        LocalProfile local;
        Stopwatch watch;
        std::vector<uint64_t> pass_counts(k, 0);
        std::vector<uint64_t> pass_co_counts(k * k, 0);
        for (size_t attr = lo; attr < hi; ++attr) {
          if (CheckDeadline(options, &expired)) break;
          watch.Reset();
          pass.Reset(setup.encoded, setup.shuffled, attr,
                     options.max_pairs_per_attribute,
                     setup.attr_seeds[attr]);
          local.sort += watch.ElapsedSeconds();
          watch.Reset();
          PackPassBits(setup.encoded, pass, &bits);
          local.pack += watch.ElapsedSeconds();
          watch.Reset();
          std::fill(pass_counts.begin(), pass_counts.end(), 0);
          std::fill(pass_co_counts.begin(), pass_co_counts.end(), 0);
          bits.AccumulateMoments(pass_counts.data(), pass_co_counts.data());
          for (size_t c = 0; c < k; ++c) {
            chunk_counts[chunk][c] += pass_counts[c];
          }
          for (size_t c = 0; c < k * k; ++c) {
            chunk_co_counts[chunk][c] += pass_co_counts[c];
          }
          chunk_totals[chunk] += pass.num_pairs();
          local.accumulate += watch.ElapsedSeconds();
          if (pass_cov != nullptr && pass.num_pairs() > 0) {
            // Pass-local covariance from the pass's integer moments;
            // summed across passes after the join.
            Matrix cov(k, k);
            const double inv_pass =
                1.0 / static_cast<double>(pass.num_pairs());
            for (size_t x = 0; x < k; ++x) {
              const double mean_x =
                  static_cast<double>(pass_counts[x]) * inv_pass;
              for (size_t y = x; y < k; ++y) {
                const double mean_y =
                    static_cast<double>(pass_counts[y]) * inv_pass;
                const double exy =
                    static_cast<double>(pass_co_counts[x * k + y]) * inv_pass;
                const double value = exy - mean_x * mean_y;
                cov(x, y) = value;
                cov(y, x) = value;
              }
            }
            (*pass_cov)[attr] = std::move(cov);
          }
        }
        local.MergeInto(options.profile, &profile_mu);
      });

  if (expired.load(std::memory_order_relaxed)) {
    return Status::Timeout("pair transform: time budget exhausted");
  }
  counts->assign(k, 0);
  co_counts->assign(k * k, 0);
  *total = 0;
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    for (size_t c = 0; c < k; ++c) (*counts)[c] += chunk_counts[chunk][c];
    for (size_t c = 0; c < k * k; ++c) {
      (*co_counts)[c] += chunk_co_counts[chunk][c];
    }
    *total += chunk_totals[chunk];
  }
  if (*total == 0) {
    return Status::InvalidArgument("pair transform produced no samples");
  }
  return Status::OK();
}

}  // namespace

Result<TransformCounts> PairTransformCounts(const Table& table,
                                            const TransformOptions& options) {
  FDX_ASSIGN_OR_RETURN(TransformSetup setup, PrepareTransform(table, options));
  TransformCounts out;
  FDX_RETURN_IF_ERROR(AccumulatePasses(setup, options, &out.counts,
                                       &out.co_counts, &out.num_samples,
                                       /*pass_cov=*/nullptr));
  return out;
}

Result<TransformedMoments> PairTransformMoments(
    const Table& table, const TransformOptions& options) {
  FDX_ASSIGN_OR_RETURN(TransformSetup setup, PrepareTransform(table, options));
  const size_t k = setup.encoded.num_columns();
  std::vector<Matrix> pass_cov;
  if (options.pooled_covariance) pass_cov.assign(k, Matrix());
  std::vector<uint64_t> counts;
  std::vector<uint64_t> co_counts;
  size_t total = 0;
  FDX_RETURN_IF_ERROR(AccumulatePasses(
      setup, options, &counts, &co_counts, &total,
      options.pooled_covariance ? &pass_cov : nullptr));

  TransformedMoments moments;
  moments.num_samples = total;
  moments.mean.assign(k, 0.0);
  const double inv_n = 1.0 / static_cast<double>(total);
  for (size_t c = 0; c < k; ++c) {
    moments.mean[c] = static_cast<double>(counts[c]) * inv_n;
  }
  if (options.pooled_covariance) {
    Matrix pooled_cov(k, k);
    size_t pooled_passes = 0;
    for (size_t attr = 0; attr < k; ++attr) {
      if (pass_cov[attr].empty()) continue;
      pooled_cov = pooled_cov.Add(pass_cov[attr]);
      ++pooled_passes;
    }
    moments.cov =
        pooled_cov.Scale(1.0 / static_cast<double>(pooled_passes));
    return moments;
  }
  moments.cov = Matrix(k, k);
  for (size_t x = 0; x < k; ++x) {
    for (size_t y = x; y < k; ++y) {
      const double exy = static_cast<double>(co_counts[x * k + y]) * inv_n;
      const double cov = exy - moments.mean[x] * moments.mean[y];
      moments.cov(x, y) = cov;
      moments.cov(y, x) = cov;
    }
  }
  return moments;
}

}  // namespace fdx
