#include "core/transform.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>

#include "core/pairs.h"
#include "core/transform_kernels.h"
#include "util/thread_pool.h"

namespace fdx {

namespace {

/// Packs one pass's equality bits for every column into `bits`
/// (num_pairs x k, reused across passes).
void PackPassBits(const EncodedTable& encoded, const AttributePass& pass,
                  BitMatrix* bits, PackScratch* scratch) {
  const size_t k = encoded.num_columns();
  bits->Reset(pass.num_pairs(), k);
  for (size_t col = 0; col < k; ++col) {
    ColumnBitWriter writer(bits->column_words(col));
    AppendPassColumnBits(encoded.column_codes(col), pass, &writer, scratch);
    writer.Flush();
  }
}

/// Per-thread stage timings, merged into the caller's TransformProfile
/// under a mutex at chunk exit (profiling only; results never depend on
/// it).
struct LocalProfile {
  double sort = 0.0;
  double pack = 0.0;
  double accumulate = 0.0;

  void MergeInto(TransformProfile* profile, std::mutex* mu) const {
    if (profile == nullptr) return;
    std::lock_guard<std::mutex> lock(*mu);
    profile->sort_seconds += sort;
    profile->pack_seconds += pack;
    profile->accumulate_seconds += accumulate;
  }
};

/// Shared preamble of every transform entry point: validates the shape,
/// encodes, shuffles, and forks the per-attribute seeds.
struct TransformSetup {
  EncodedTable encoded;
  std::vector<uint32_t> shuffled;
  std::vector<uint64_t> attr_seeds;
  size_t per_attr = 0;
};

Result<TransformSetup> PrepareTransform(const Table& table,
                                        const TransformOptions& options) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  if (k == 0 || n < 2) {
    return Status::InvalidArgument(
        "pair transform needs >= 2 rows and >= 1 column");
  }
  if (n > UINT32_MAX) {
    // The pair layer streams 4-byte row indices (see core/pairs.h).
    return Status::InvalidArgument("pair transform caps at 2^32 - 1 rows");
  }
  TransformSetup setup;
  setup.encoded = EncodedTable::Encode(table);
  PrepareTransformStreams(options.seed, n, k, &setup.shuffled,
                          &setup.attr_seeds);
  setup.per_attr = PairsPerAttribute(n, options.max_pairs_per_attribute);
  return setup;
}

inline bool CheckDeadline(const TransformOptions& options,
                          std::atomic<bool>* expired) {
  if (options.deadline != nullptr &&
      (expired->load(std::memory_order_relaxed) ||
       options.deadline->Expired())) {
    expired->store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

}  // namespace

Result<BitMatrix> PairTransformPacked(const Table& table,
                                      const TransformOptions& options) {
  FDX_ASSIGN_OR_RETURN(TransformSetup setup, PrepareTransform(table, options));
  const size_t k = setup.encoded.num_columns();
  std::atomic<bool> expired{false};
  std::mutex profile_mu;

  // Phase 1: sort every attribute pass (independent counting sorts).
  // The orders are kept so phase 2 can parallelize over *output columns*
  // instead of passes: one writer per column bit-vector, no word shared
  // between threads, bit-identical at any thread count.
  std::vector<AttributePass> passes(k);
  ParallelFor(0, k, options.threads, [&](size_t lo, size_t hi) {
    LocalProfile local;
    Stopwatch watch;
    for (size_t attr = lo; attr < hi; ++attr) {
      if (CheckDeadline(options, &expired)) break;
      watch.Reset();
      passes[attr].Reset(setup.encoded, setup.shuffled, attr,
                         options.max_pairs_per_attribute,
                         setup.attr_seeds[attr]);
      local.sort += watch.ElapsedSeconds();
    }
    local.MergeInto(options.profile, &profile_mu);
  });
  if (expired.load(std::memory_order_relaxed)) {
    return Status::Timeout("pair transform: time budget exhausted");
  }

  // Phase 2: pack the equality bits, one column per writer. Column c's
  // bit r is sample r = pass * per_attr + pair_index, so each column is
  // appended sequentially across all passes.
  BitMatrix bits(setup.per_attr * k, k);
  ParallelFor(0, k, options.threads, [&](size_t lo, size_t hi) {
    LocalProfile local;
    Stopwatch watch;
    PackScratch scratch;
    for (size_t col = lo; col < hi; ++col) {
      if (CheckDeadline(options, &expired)) break;
      watch.Reset();
      ColumnBitWriter writer(bits.column_words(col));
      for (size_t attr = 0; attr < k; ++attr) {
        AppendPassColumnBits(setup.encoded.column_codes(col), passes[attr],
                             &writer, &scratch);
      }
      writer.Flush();
      local.pack += watch.ElapsedSeconds();
    }
    local.MergeInto(options.profile, &profile_mu);
  });
  if (expired.load(std::memory_order_relaxed)) {
    return Status::Timeout("pair transform: time budget exhausted");
  }
  return bits;
}

Result<Matrix> PairTransform(const Table& table,
                             const TransformOptions& options) {
  FDX_ASSIGN_OR_RETURN(BitMatrix bits, PairTransformPacked(table, options));
  Matrix out(bits.rows(), bits.cols());
  ParallelFor(0, bits.rows(), options.threads, [&](size_t lo, size_t hi) {
    bits.UnpackRows(lo, hi, &out);
  });
  return out;
}

namespace {

/// The streaming accumulation core shared by PairTransformCounts and
/// PairTransformMoments: runs every attribute pass (sort, pack,
/// popcount) without materializing more than one pass of bits per
/// thread, merging integer counts commutatively. When `pass_cov` is
/// non-null (pooled covariance), each pass additionally produces its
/// own double covariance from its integer pass moments, stored per
/// attribute and reduced in attribute order by the caller.
Status AccumulatePasses(const TransformSetup& setup,
                        const TransformOptions& options,
                        std::vector<uint64_t>* counts,
                        std::vector<uint64_t>* co_counts, size_t* total,
                        std::vector<Matrix>* pass_cov) {
  const size_t k = setup.encoded.num_columns();
  const size_t num_chunks =
      std::min(ResolveThreadCount(options.threads), k);
  std::vector<std::vector<uint64_t>> chunk_counts(
      num_chunks, std::vector<uint64_t>(k, 0));
  std::vector<std::vector<uint64_t>> chunk_co_counts(
      num_chunks, std::vector<uint64_t>(k * k, 0));
  std::vector<size_t> chunk_totals(num_chunks, 0);
  std::atomic<bool> expired{false};
  std::mutex profile_mu;

  ParallelForChunks(
      0, k, num_chunks, options.threads,
      [&](size_t chunk, size_t lo, size_t hi) {
        AttributePass pass;
        BitMatrix bits;
        LocalProfile local;
        Stopwatch watch;
        PackScratch scratch;
        std::vector<uint64_t> pass_counts(k, 0);
        std::vector<uint64_t> pass_co_counts(k * k, 0);
        for (size_t attr = lo; attr < hi; ++attr) {
          if (CheckDeadline(options, &expired)) break;
          watch.Reset();
          pass.Reset(setup.encoded, setup.shuffled, attr,
                     options.max_pairs_per_attribute,
                     setup.attr_seeds[attr]);
          local.sort += watch.ElapsedSeconds();
          watch.Reset();
          PackPassBits(setup.encoded, pass, &bits, &scratch);
          local.pack += watch.ElapsedSeconds();
          watch.Reset();
          std::fill(pass_counts.begin(), pass_counts.end(), 0);
          std::fill(pass_co_counts.begin(), pass_co_counts.end(), 0);
          bits.AccumulateMoments(pass_counts.data(), pass_co_counts.data());
          for (size_t c = 0; c < k; ++c) {
            chunk_counts[chunk][c] += pass_counts[c];
          }
          for (size_t c = 0; c < k * k; ++c) {
            chunk_co_counts[chunk][c] += pass_co_counts[c];
          }
          chunk_totals[chunk] += pass.num_pairs();
          local.accumulate += watch.ElapsedSeconds();
          if (pass_cov != nullptr && pass.num_pairs() > 0) {
            // Pass-local covariance from the pass's integer moments;
            // summed across passes after the join.
            (*pass_cov)[attr] = PassCovarianceFromCounts(
                pass_counts.data(), pass_co_counts.data(), k,
                pass.num_pairs());
          }
        }
        local.MergeInto(options.profile, &profile_mu);
      });

  if (expired.load(std::memory_order_relaxed)) {
    return Status::Timeout("pair transform: time budget exhausted");
  }
  counts->assign(k, 0);
  co_counts->assign(k * k, 0);
  *total = 0;
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    for (size_t c = 0; c < k; ++c) (*counts)[c] += chunk_counts[chunk][c];
    for (size_t c = 0; c < k * k; ++c) {
      (*co_counts)[c] += chunk_co_counts[chunk][c];
    }
    *total += chunk_totals[chunk];
  }
  if (*total == 0) {
    return Status::InvalidArgument("pair transform produced no samples");
  }
  return Status::OK();
}

}  // namespace

Result<TransformCounts> PairTransformCounts(const Table& table,
                                            const TransformOptions& options) {
  FDX_ASSIGN_OR_RETURN(TransformSetup setup, PrepareTransform(table, options));
  TransformCounts out;
  FDX_RETURN_IF_ERROR(AccumulatePasses(setup, options, &out.counts,
                                       &out.co_counts, &out.num_samples,
                                       /*pass_cov=*/nullptr));
  return out;
}

Result<TransformedMoments> PairTransformMoments(
    const Table& table, const TransformOptions& options) {
  FDX_ASSIGN_OR_RETURN(TransformSetup setup, PrepareTransform(table, options));
  const size_t k = setup.encoded.num_columns();
  std::vector<Matrix> pass_cov;
  if (options.pooled_covariance) pass_cov.assign(k, Matrix());
  std::vector<uint64_t> counts;
  std::vector<uint64_t> co_counts;
  size_t total = 0;
  FDX_RETURN_IF_ERROR(AccumulatePasses(
      setup, options, &counts, &co_counts, &total,
      options.pooled_covariance ? &pass_cov : nullptr));

  TransformedMoments moments = MomentsFromCounts(counts, co_counts, total, k);
  if (options.pooled_covariance) {
    moments.cov = ReducePooledCovariance(pass_cov);
  }
  return moments;
}

}  // namespace fdx
