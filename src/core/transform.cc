#include "core/transform.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <utility>

#include "util/thread_pool.h"

namespace fdx {

namespace {

/// Per-attribute RNG seeds, forked serially from the parent stream so the
/// sampled pair selection of one attribute never depends on how many
/// passes ran before it (or on which thread runs it).
std::vector<uint64_t> ForkAttributeSeeds(Rng* rng, size_t k) {
  std::vector<uint64_t> seeds(k);
  for (size_t attr = 0; attr < k; ++attr) seeds[attr] = rng->engine()();
  return seeds;
}

/// Number of pairs one attribute pass emits for an n-row table.
size_t PairsPerAttribute(size_t n, size_t max_pairs) {
  return (max_pairs == 0 || max_pairs >= n) ? n : max_pairs;
}

/// Builds the per-attribute circularly-shifted pair list of Algorithm 2:
/// rows are sorted by attribute `attr` and each row is paired with its
/// successor (wrapping around). Returns pairs of row indices.
std::vector<std::pair<size_t, size_t>> PairsForAttribute(
    const EncodedTable& encoded, const std::vector<size_t>& shuffled,
    size_t attr, size_t max_pairs, uint64_t attr_seed) {
  std::vector<size_t> order = shuffled;
  const auto& codes = encoded.column_codes(attr);
  // Stable sort keeps the shuffle as the tie breaker inside equal keys,
  // so pairs within a key group vary across attributes.
  std::stable_sort(order.begin(), order.end(),
                   [&codes](size_t a, size_t b) { return codes[a] < codes[b]; });
  const size_t n = order.size();
  std::vector<std::pair<size_t, size_t>> pairs;
  if (n < 2) return pairs;
  if (max_pairs == 0 || max_pairs >= n) {
    pairs.reserve(n);
    // Hot loop without the modulo: only the final pair wraps.
    for (size_t j = 0; j + 1 < n; ++j) {
      pairs.emplace_back(order[j], order[j + 1]);
    }
    pairs.emplace_back(order[n - 1], order[0]);
    return pairs;
  }
  // Sampled variant: pick max_pairs distinct positions of the sorted
  // sequence (still adjacent pairs, so the distribution matches the
  // exact transform restricted to a subsample).
  pairs.reserve(max_pairs);
  std::vector<size_t> positions(n);
  std::iota(positions.begin(), positions.end(), 0);
  Rng rng(attr_seed);
  rng.Shuffle(&positions);
  for (size_t i = 0; i < max_pairs; ++i) {
    const size_t j = positions[i];
    const size_t next = j + 1 == n ? 0 : j + 1;
    pairs.emplace_back(order[j], order[next]);
  }
  return pairs;
}

/// Equality indicator with strict null semantics: a null matches nothing.
inline uint8_t EqualCodes(int32_t a, int32_t b) {
  return (a != EncodedTable::kNullCode && a == b) ? 1 : 0;
}

}  // namespace

Result<Matrix> PairTransform(const Table& table,
                             const TransformOptions& options) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  if (k == 0 || n < 2) {
    return Status::InvalidArgument(
        "pair transform needs >= 2 rows and >= 1 column");
  }
  const EncodedTable encoded = EncodedTable::Encode(table);
  Rng rng(options.seed);
  std::vector<size_t> shuffled(n);
  std::iota(shuffled.begin(), shuffled.end(), 0);
  rng.Shuffle(&shuffled);
  const std::vector<uint64_t> attr_seeds = ForkAttributeSeeds(&rng, k);

  // Every pass emits the same pair count, so each attribute owns a fixed
  // row range of the output; passes fill their ranges concurrently.
  const size_t per_attr =
      PairsPerAttribute(n, options.max_pairs_per_attribute);
  Matrix out(per_attr * k, k);
  std::atomic<bool> expired{false};
  ParallelFor(0, k, options.threads, [&](size_t lo, size_t hi) {
    for (size_t attr = lo; attr < hi; ++attr) {
      if (options.deadline != nullptr &&
          (expired.load(std::memory_order_relaxed) ||
           options.deadline->Expired())) {
        expired.store(true, std::memory_order_relaxed);
        return;
      }
      const auto pairs =
          PairsForAttribute(encoded, shuffled, attr,
                            options.max_pairs_per_attribute, attr_seeds[attr]);
      size_t row = attr * per_attr;
      for (const auto& [a, b] : pairs) {
        double* out_row = out.RowPtr(row++);
        for (size_t c = 0; c < k; ++c) {
          out_row[c] = EqualCodes(encoded.code(a, c), encoded.code(b, c));
        }
      }
    }
  });
  if (expired.load(std::memory_order_relaxed)) {
    return Status::Timeout("pair transform: time budget exhausted");
  }
  return out;
}

Result<TransformedMoments> PairTransformMoments(
    const Table& table, const TransformOptions& options) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  if (k == 0 || n < 2) {
    return Status::InvalidArgument(
        "pair transform needs >= 2 rows and >= 1 column");
  }
  const EncodedTable encoded = EncodedTable::Encode(table);
  Rng rng(options.seed);
  std::vector<size_t> shuffled(n);
  std::iota(shuffled.begin(), shuffled.end(), 0);
  rng.Shuffle(&shuffled);
  const std::vector<uint64_t> attr_seeds = ForkAttributeSeeds(&rng, k);

  // Per-chunk integer accumulators: sums of counts commute exactly, so
  // the merged moments are independent of the chunking. The pooled pass
  // covariances are doubles, so they are kept per *attribute* and reduced
  // in attribute order, which reproduces the serial accumulation bitwise.
  const size_t num_chunks =
      std::min(ResolveThreadCount(options.threads), k);
  std::vector<std::vector<uint64_t>> chunk_counts(
      num_chunks, std::vector<uint64_t>(k, 0));
  std::vector<std::vector<uint64_t>> chunk_co_counts(
      num_chunks, std::vector<uint64_t>(k * k, 0));
  std::vector<size_t> chunk_totals(num_chunks, 0);
  std::vector<Matrix> pass_cov;
  if (options.pooled_covariance) pass_cov.assign(k, Matrix());
  std::atomic<bool> expired{false};

  ParallelForChunks(
      0, k, num_chunks, options.threads,
      [&](size_t chunk, size_t lo, size_t hi) {
        std::vector<uint64_t>& counts = chunk_counts[chunk];
        std::vector<uint64_t>& co_counts = chunk_co_counts[chunk];
        std::vector<uint64_t> pass_counts;
        std::vector<uint64_t> pass_co_counts;
        if (options.pooled_covariance) {
          pass_counts.assign(k, 0);
          pass_co_counts.assign(k * k, 0);
        }
        std::vector<size_t> ones;
        ones.reserve(k);
        for (size_t attr = lo; attr < hi; ++attr) {
          if (options.deadline != nullptr &&
              (expired.load(std::memory_order_relaxed) ||
               options.deadline->Expired())) {
            expired.store(true, std::memory_order_relaxed);
            return;
          }
          const auto pairs = PairsForAttribute(
              encoded, shuffled, attr, options.max_pairs_per_attribute,
              attr_seeds[attr]);
          if (options.pooled_covariance) {
            std::fill(pass_counts.begin(), pass_counts.end(), 0);
            std::fill(pass_co_counts.begin(), pass_co_counts.end(), 0);
          }
          for (const auto& [a, b] : pairs) {
            ones.clear();
            for (size_t c = 0; c < k; ++c) {
              if (EqualCodes(encoded.code(a, c), encoded.code(b, c))) {
                ones.push_back(c);
              }
            }
            for (size_t x : ones) {
              ++counts[x];
              if (options.pooled_covariance) ++pass_counts[x];
              for (size_t y : ones) {
                if (y < x) continue;
                ++co_counts[x * k + y];
                if (options.pooled_covariance) ++pass_co_counts[x * k + y];
              }
            }
          }
          chunk_totals[chunk] += pairs.size();
          if (options.pooled_covariance && !pairs.empty()) {
            // Pass-local covariance; summed across passes after the join.
            Matrix cov(k, k);
            const double inv_pass =
                1.0 / static_cast<double>(pairs.size());
            for (size_t x = 0; x < k; ++x) {
              const double mean_x =
                  static_cast<double>(pass_counts[x]) * inv_pass;
              for (size_t y = x; y < k; ++y) {
                const double mean_y =
                    static_cast<double>(pass_counts[y]) * inv_pass;
                const double exy =
                    static_cast<double>(pass_co_counts[x * k + y]) * inv_pass;
                const double value = exy - mean_x * mean_y;
                cov(x, y) = value;
                cov(y, x) = value;
              }
            }
            pass_cov[attr] = std::move(cov);
          }
        }
      });

  if (expired.load(std::memory_order_relaxed)) {
    return Status::Timeout("pair transform: time budget exhausted");
  }

  std::vector<uint64_t> counts(k, 0);
  std::vector<uint64_t> co_counts(k * k, 0);
  size_t total = 0;
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    for (size_t c = 0; c < k; ++c) counts[c] += chunk_counts[chunk][c];
    for (size_t c = 0; c < k * k; ++c) {
      co_counts[c] += chunk_co_counts[chunk][c];
    }
    total += chunk_totals[chunk];
  }
  if (total == 0) {
    return Status::InvalidArgument("pair transform produced no samples");
  }

  TransformedMoments moments;
  moments.num_samples = total;
  moments.mean.assign(k, 0.0);
  const double inv_n = 1.0 / static_cast<double>(total);
  for (size_t c = 0; c < k; ++c) {
    moments.mean[c] = static_cast<double>(counts[c]) * inv_n;
  }
  if (options.pooled_covariance) {
    Matrix pooled_cov(k, k);
    size_t pooled_passes = 0;
    for (size_t attr = 0; attr < k; ++attr) {
      if (pass_cov[attr].empty()) continue;
      pooled_cov = pooled_cov.Add(pass_cov[attr]);
      ++pooled_passes;
    }
    moments.cov =
        pooled_cov.Scale(1.0 / static_cast<double>(pooled_passes));
    return moments;
  }
  moments.cov = Matrix(k, k);
  for (size_t x = 0; x < k; ++x) {
    for (size_t y = x; y < k; ++y) {
      const double exy = static_cast<double>(co_counts[x * k + y]) * inv_n;
      const double cov = exy - moments.mean[x] * moments.mean[y];
      moments.cov(x, y) = cov;
      moments.cov(y, x) = cov;
    }
  }
  return moments;
}

}  // namespace fdx
