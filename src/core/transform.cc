#include "core/transform.h"

#include <algorithm>
#include <numeric>

namespace fdx {

namespace {

/// Builds the per-attribute circularly-shifted pair list of Algorithm 2:
/// rows are sorted by attribute `attr` and each row is paired with its
/// successor (wrapping around). Returns pairs of row indices.
std::vector<std::pair<size_t, size_t>> PairsForAttribute(
    const EncodedTable& encoded, const std::vector<size_t>& shuffled,
    size_t attr, size_t max_pairs, Rng* rng) {
  std::vector<size_t> order = shuffled;
  const auto& codes = encoded.column_codes(attr);
  // Stable sort keeps the shuffle as the tie breaker inside equal keys,
  // so pairs within a key group vary across attributes.
  std::stable_sort(order.begin(), order.end(),
                   [&codes](size_t a, size_t b) { return codes[a] < codes[b]; });
  const size_t n = order.size();
  std::vector<std::pair<size_t, size_t>> pairs;
  if (n < 2) return pairs;
  if (max_pairs == 0 || max_pairs >= n) {
    pairs.reserve(n);
    for (size_t j = 0; j < n; ++j) {
      pairs.emplace_back(order[j], order[(j + 1) % n]);
    }
    return pairs;
  }
  // Sampled variant: pick max_pairs distinct positions of the sorted
  // sequence (still adjacent pairs, so the distribution matches the
  // exact transform restricted to a subsample).
  pairs.reserve(max_pairs);
  std::vector<size_t> positions(n);
  std::iota(positions.begin(), positions.end(), 0);
  rng->Shuffle(&positions);
  for (size_t i = 0; i < max_pairs; ++i) {
    const size_t j = positions[i];
    pairs.emplace_back(order[j], order[(j + 1) % n]);
  }
  return pairs;
}

/// Equality indicator with strict null semantics: a null matches nothing.
inline uint8_t EqualCodes(int32_t a, int32_t b) {
  return (a != EncodedTable::kNullCode && a == b) ? 1 : 0;
}

}  // namespace

Result<Matrix> PairTransform(const Table& table,
                             const TransformOptions& options) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  if (k == 0 || n < 2) {
    return Status::InvalidArgument(
        "pair transform needs >= 2 rows and >= 1 column");
  }
  const EncodedTable encoded = EncodedTable::Encode(table);
  Rng rng(options.seed);
  std::vector<size_t> shuffled(n);
  std::iota(shuffled.begin(), shuffled.end(), 0);
  rng.Shuffle(&shuffled);

  std::vector<std::vector<std::pair<size_t, size_t>>> all_pairs;
  size_t total = 0;
  for (size_t attr = 0; attr < k; ++attr) {
    all_pairs.push_back(PairsForAttribute(
        encoded, shuffled, attr, options.max_pairs_per_attribute, &rng));
    total += all_pairs.back().size();
  }
  Matrix out(total, k);
  size_t row = 0;
  for (const auto& pairs : all_pairs) {
    for (const auto& [a, b] : pairs) {
      double* out_row = out.RowPtr(row++);
      for (size_t c = 0; c < k; ++c) {
        out_row[c] = EqualCodes(encoded.code(a, c), encoded.code(b, c));
      }
    }
  }
  return out;
}

Result<TransformedMoments> PairTransformMoments(
    const Table& table, const TransformOptions& options) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  if (k == 0 || n < 2) {
    return Status::InvalidArgument(
        "pair transform needs >= 2 rows and >= 1 column");
  }
  const EncodedTable encoded = EncodedTable::Encode(table);
  Rng rng(options.seed);
  std::vector<size_t> shuffled(n);
  std::iota(shuffled.begin(), shuffled.end(), 0);
  rng.Shuffle(&shuffled);

  std::vector<uint64_t> counts(k, 0);          // per-column ones (global)
  std::vector<uint64_t> co_counts(k * k, 0);   // upper-triangular co-occ.
  std::vector<uint64_t> pass_counts(k, 0);
  std::vector<uint64_t> pass_co_counts(k * k, 0);
  std::vector<size_t> ones;
  ones.reserve(k);
  size_t total = 0;
  size_t pooled_passes = 0;
  Matrix pooled_cov(k, k);
  for (size_t attr = 0; attr < k; ++attr) {
    const auto pairs = PairsForAttribute(
        encoded, shuffled, attr, options.max_pairs_per_attribute, &rng);
    if (options.pooled_covariance) {
      std::fill(pass_counts.begin(), pass_counts.end(), 0);
      std::fill(pass_co_counts.begin(), pass_co_counts.end(), 0);
    }
    for (const auto& [a, b] : pairs) {
      ones.clear();
      for (size_t c = 0; c < k; ++c) {
        if (EqualCodes(encoded.code(a, c), encoded.code(b, c))) {
          ones.push_back(c);
        }
      }
      for (size_t x : ones) {
        ++counts[x];
        if (options.pooled_covariance) ++pass_counts[x];
        for (size_t y : ones) {
          if (y < x) continue;
          ++co_counts[x * k + y];
          if (options.pooled_covariance) ++pass_co_counts[x * k + y];
        }
      }
      ++total;
    }
    if (options.pooled_covariance && !pairs.empty()) {
      // Pass-local covariance accumulated into the pooled average.
      const double inv_pass = 1.0 / static_cast<double>(pairs.size());
      for (size_t x = 0; x < k; ++x) {
        const double mean_x = static_cast<double>(pass_counts[x]) * inv_pass;
        for (size_t y = x; y < k; ++y) {
          const double mean_y =
              static_cast<double>(pass_counts[y]) * inv_pass;
          const double exy =
              static_cast<double>(pass_co_counts[x * k + y]) * inv_pass;
          const double value = exy - mean_x * mean_y;
          pooled_cov(x, y) += value;
          if (x != y) pooled_cov(y, x) += value;
        }
      }
      ++pooled_passes;
    }
  }
  if (total == 0) {
    return Status::InvalidArgument("pair transform produced no samples");
  }

  TransformedMoments moments;
  moments.num_samples = total;
  moments.mean.assign(k, 0.0);
  const double inv_n = 1.0 / static_cast<double>(total);
  for (size_t c = 0; c < k; ++c) {
    moments.mean[c] = static_cast<double>(counts[c]) * inv_n;
  }
  if (options.pooled_covariance) {
    moments.cov =
        pooled_cov.Scale(1.0 / static_cast<double>(pooled_passes));
    return moments;
  }
  moments.cov = Matrix(k, k);
  for (size_t x = 0; x < k; ++x) {
    for (size_t y = x; y < k; ++y) {
      const double exy = static_cast<double>(co_counts[x * k + y]) * inv_n;
      const double cov = exy - moments.mean[x] * moments.mean[y];
      moments.cov(x, y) = cov;
      moments.cov(y, x) = cov;
    }
  }
  return moments;
}

}  // namespace fdx
