#ifndef FDX_CORE_FDX_H_
#define FDX_CORE_FDX_H_

#include <cstdint>

#include "core/ordering.h"
#include "core/transform.h"
#include "data/table.h"
#include "fd/fd.h"
#include "linalg/glasso.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace fdx {

/// Which sparse structure-learning engine produces the autoregression
/// matrix B.
enum class StructureEstimator {
  /// Graphical lasso + U D U^T factorization (paper Algorithm 1).
  kGraphicalLasso,
  /// Sequential lasso regressions: under the chosen variable order,
  /// each Z_j is lasso-regressed on its predecessors, giving B's j-th
  /// column directly. This is the neighborhood-selection view of
  /// structure learning (Meinshausen & Buehlmann 2006, the paper's
  /// reference [32]) specialized to the triangular SEM, and the most
  /// literal reading of the title's "sparse regression".
  kSequentialLasso,
};

/// Options of the FDX discoverer (paper Algorithm 1).
struct FdxOptions {
  /// Structure-learning engine.
  StructureEstimator estimator = StructureEstimator::kGraphicalLasso;
  /// Graphical-lasso L1 penalty; controls the sparsity of the estimated
  /// precision matrix. Applied on the *correlation* scale (see
  /// `normalize_covariance`); the default was calibrated on the
  /// known-structure benchmarks (Table 4).
  double lambda = 0.06;
  /// Absolute sparsity threshold tau on B_ij when reading FDs off the
  /// autoregression matrix (the hyper-parameter swept in paper
  /// Table 8). Applied on top of the adaptive rule below.
  double sparsity_threshold = 0.0;
  /// Adaptive column rule: an entry B_ij qualifies only if it reaches
  /// this fraction of the largest entry in its column. Noise shrinks
  /// all of a dependent attribute's soft-logic weights *jointly* (a
  /// true FD with |X| determinants carries weight ~1/|X| before
  /// shrinkage), so a relative cut separates determinants from
  /// factorization fill-in across noise regimes where no absolute tau
  /// can.
  double relative_threshold = 0.6;
  /// Columns whose largest weight is below this floor produce no FD.
  double minimum_column_weight = 0.08;
  /// Entries at or below this magnitude are numerical zeros.
  double zero_tolerance = 1e-8;
  /// Rescale the transformed covariance to a correlation matrix before
  /// graphical lasso. Equality indicators of high-cardinality attributes
  /// have tiny variances; the rescaling makes `lambda` a scale-free
  /// knob across datasets (partial correlations are unaffected).
  bool normalize_covariance = true;
  /// Column ordering applied before the U D U^T factorization
  /// (paper Table 9; default is the minimum-degree "heuristic").
  OrderingMethod ordering = OrderingMethod::kMinDegree;
  /// Pair-transform options (Algorithm 2); `max_pairs_per_attribute`
  /// trades accuracy for speed on very tall tables.
  TransformOptions transform;
  /// Graphical-lasso iteration controls.
  GlassoOptions glasso;
  /// Worker threads for the pipeline's parallel stages (currently the
  /// pair transform). 0 picks the `FDX_THREADS` environment variable or
  /// the hardware concurrency; `transform.threads` wins when non-zero.
  /// Discovery results are bit-identical at every thread count.
  size_t threads = 0;
};

/// Full output of a discovery run, including intermediate artifacts so
/// downstream data-preparation tooling (Figures 3 and 5) can inspect the
/// learned structure.
struct FdxResult {
  FdSet fds;                 ///< Discovered FDs, one per dependent attribute.
  Matrix theta;              ///< Sparse precision estimate (schema order).
  Matrix autoregression;     ///< B = I - U, mapped back to schema order.
  std::vector<size_t> ordering;  ///< Variable order used by the factorization.
  double transform_seconds = 0.0;
  double learning_seconds = 0.0;
  size_t transform_samples = 0;
};

/// FDX: FD discovery via structure learning over the pair-difference
/// model (paper Algorithm 1):
///   1. PairTransformMoments  — Algorithm 2 + covariance estimation;
///   2. GraphicalLasso        — sparse inverse covariance Theta;
///   3. ComputeOrdering + UdutFactor — Theta = U D U^T, B = I - U;
///   4. GenerateFds           — Algorithm 3 with threshold tau.
class FdxDiscoverer {
 public:
  explicit FdxDiscoverer(FdxOptions options = {}) : options_(options) {}

  const FdxOptions& options() const { return options_; }

  /// Runs the full pipeline on a (possibly noisy) table.
  Result<FdxResult> Discover(const Table& table) const;

  /// Runs structure learning + FD generation on an externally supplied
  /// covariance (used by ablations that bypass the pair transform).
  Result<FdxResult> DiscoverFromCovariance(const Matrix& covariance) const;

 private:
  FdxOptions options_;
};

/// Algorithm 3: reads FDs off a strictly-upper-triangular autoregression
/// matrix expressed in permuted coordinates. `perm[i]` is the original
/// attribute at permuted position i. An entry B_ij becomes an LHS
/// membership when it is positive, at least `max(tau, floor * rel, ...)`
/// — concretely: B_ij > tau, B_ij >= relative * max_column_j, and
/// max_column_j >= floor.
FdSet GenerateFdsFromAutoregression(const Matrix& b,
                                    const std::vector<size_t>& perm,
                                    double tau, double relative,
                                    double floor, double zero_tol);

}  // namespace fdx

#endif  // FDX_CORE_FDX_H_
