#ifndef FDX_CORE_FDX_H_
#define FDX_CORE_FDX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/ordering.h"
#include "core/transform.h"
#include "data/table.h"
#include "fd/fd.h"
#include "linalg/glasso.h"
#include "linalg/matrix.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace fdx {

/// Which sparse structure-learning engine produces the autoregression
/// matrix B.
enum class StructureEstimator {
  /// Graphical lasso + U D U^T factorization (paper Algorithm 1).
  kGraphicalLasso,
  /// Sequential lasso regressions: under the chosen variable order,
  /// each Z_j is lasso-regressed on its predecessors, giving B's j-th
  /// column directly. This is the neighborhood-selection view of
  /// structure learning (Meinshausen & Buehlmann 2006, the paper's
  /// reference [32]) specialized to the triangular SEM, and the most
  /// literal reading of the title's "sparse regression".
  kSequentialLasso,
};

/// How Discover() salvages a run when structure learning hits a
/// numerical failure (a diverging glasso sweep, a non-positive U D U^T
/// pivot). The escalation ladder, in order:
///   1. retry graphical lasso with a diagonal ridge grown by
///      `ridge_multiplier` per attempt (up to `max_ridge`);
///   2. fall back from kGraphicalLasso to kSequentialLasso;
///   3. quarantine degenerate attributes (near-constant / all-null
///      equality indicators) and re-run on the remainder.
/// Every step taken is recorded in FdxResult::diagnostics. Timeouts and
/// invalid inputs are never retried — only kNumericalError escalates.
struct RecoveryPolicy {
  /// Master switch; disabled reproduces the historical fail-fast
  /// behaviour (first numerical error aborts the run).
  bool enabled = true;
  /// Ridge retries after the initial attempt (so N+1 glasso attempts).
  size_t max_ridge_retries = 3;
  /// Growth factor of the diagonal ridge between attempts.
  double ridge_multiplier = 10.0;
  /// Hard cap on the escalated ridge; retries stop once it is reached.
  double max_ridge = 1e-2;
  /// Allow step 2 (estimator fallback to sequential lasso).
  bool allow_estimator_fallback = true;
  /// Allow step 3 (quarantine degenerate attributes and re-run).
  bool allow_quarantine = true;
  /// Indicator-variance floor below which an attribute counts as
  /// degenerate for the up-front scan and the quarantine step.
  double degenerate_variance_floor = 1e-9;
};

/// One recovery action taken while salvaging a failing run.
struct RecoveryEvent {
  std::string stage;   ///< "input", "glasso", "seqlasso", "quarantine"
  std::string action;  ///< e.g. "retry_ridge", "fallback_sequential"
  std::string detail;  ///< human-readable context (error text, ridge)
};

/// Execution record of one Discover() run: what failed, what the
/// recovery ladder did about it, and how long each stage took. Surfaced
/// through eval/report rendering, the CLI's JSON output, and tests.
struct RunDiagnostics {
  /// Graphical-lasso attempts, including ridge retries (0 when the
  /// sequential estimator was configured directly).
  size_t glasso_attempts = 0;
  /// Diagonal ridge of the successful glasso attempt (0 if none won).
  double ridge_used = 0.0;
  /// True when the run fell back from glasso to sequential lasso.
  bool fallback_sequential = false;
  /// True when degenerate attributes were quarantined and the run was
  /// re-learned on the remainder.
  bool quarantined = false;
  /// Schema indices of quarantined attributes (empty rows/columns in the
  /// returned matrices; they never participate in FDs).
  std::vector<size_t> quarantined_attributes;
  /// Ordered log of every recovery step taken.
  std::vector<RecoveryEvent> events;
  /// Stage timings (mirrors of the FdxResult fields, kept here so the
  /// diagnostics block is self-contained when serialized).
  double transform_seconds = 0.0;
  double learning_seconds = 0.0;

  /// Solver internals of the winning graphical-lasso attempt (all zero /
  /// empty when sequential lasso produced the result or the run was
  /// quarantined). `solver_components > 0` marks the block populated.
  size_t solver_components = 0;
  std::vector<size_t> solver_component_sizes;
  size_t solver_sweeps = 0;
  double solver_final_change = 0.0;
  /// Fraction of inner-lasso passes served by the active set.
  double solver_active_hit_rate = 0.0;
  /// True when the winning attempt was seeded from a previous solve.
  bool solver_warm_start = false;
  /// Backend(s) the per-component dispatch actually ran: "cd", "newton",
  /// or "cd+newton" (empty when the solver block is unpopulated).
  std::string solver_backend;
  /// Newton work counters, zero on pure-CD runs: outer Newton iterations
  /// summed over dense blocks and lambda-path continuation stages run.
  size_t solver_newton_iterations = 0;
  size_t solver_newton_path_stages = 0;

  /// True when a recovery action actually fired (retry, fallback, or
  /// quarantine) — the result is still valid but was produced on a
  /// degraded path worth surfacing to the operator. Purely informational
  /// events (e.g. a degenerate attribute noted up front on an otherwise
  /// clean run) do not count.
  bool Degraded() const {
    return fallback_sequential || quarantined || glasso_attempts > 1;
  }
};

/// Options of the FDX discoverer (paper Algorithm 1).
struct FdxOptions {
  /// Structure-learning engine.
  StructureEstimator estimator = StructureEstimator::kGraphicalLasso;
  /// Graphical-lasso L1 penalty; controls the sparsity of the estimated
  /// precision matrix. Applied on the *correlation* scale (see
  /// `normalize_covariance`); the default was calibrated on the
  /// known-structure benchmarks (Table 4).
  double lambda = 0.06;
  /// Absolute sparsity threshold tau on B_ij when reading FDs off the
  /// autoregression matrix (the hyper-parameter swept in paper
  /// Table 8). Applied on top of the adaptive rule below.
  double sparsity_threshold = 0.0;
  /// Adaptive column rule: an entry B_ij qualifies only if it reaches
  /// this fraction of the largest entry in its column. Noise shrinks
  /// all of a dependent attribute's soft-logic weights *jointly* (a
  /// true FD with |X| determinants carries weight ~1/|X| before
  /// shrinkage), so a relative cut separates determinants from
  /// factorization fill-in across noise regimes where no absolute tau
  /// can.
  double relative_threshold = 0.6;
  /// Columns whose largest weight is below this floor produce no FD.
  double minimum_column_weight = 0.08;
  /// Entries at or below this magnitude are numerical zeros.
  double zero_tolerance = 1e-8;
  /// Rescale the transformed covariance to a correlation matrix before
  /// graphical lasso. Equality indicators of high-cardinality attributes
  /// have tiny variances; the rescaling makes `lambda` a scale-free
  /// knob across datasets (partial correlations are unaffected).
  bool normalize_covariance = true;
  /// Column ordering applied before the U D U^T factorization
  /// (paper Table 9; default is the minimum-degree "heuristic").
  OrderingMethod ordering = OrderingMethod::kMinDegree;
  /// Pair-transform options (Algorithm 2); `max_pairs_per_attribute`
  /// trades accuracy for speed on very tall tables.
  TransformOptions transform;
  /// Graphical-lasso iteration controls.
  GlassoOptions glasso;
  /// Worker threads for the pipeline's parallel stages (currently the
  /// pair transform). 0 picks the `FDX_THREADS` environment variable or
  /// the hardware concurrency; `transform.threads` wins when non-zero.
  /// Discovery results are bit-identical at every thread count.
  size_t threads = 0;
  /// Wall-clock budget for the whole Discover() call (transform +
  /// structure learning), in seconds; non-positive means unlimited. On
  /// expiry Discover returns Status::Timeout, matching the budget
  /// semantics of the TANE/PYRO/RFI baselines.
  double time_budget_seconds = 0.0;
  /// Let chained solves (IncrementalFdx::Append, repeated fdxd discover
  /// jobs on a growing session) warm-start graphical lasso from the
  /// previous solution. Warm starts change only the solver's initial
  /// point, never its fixed point, so results stay within the solver
  /// tolerance of a cold run; disable to force every solve cold.
  bool reuse_solver_state = true;
  /// Failure-recovery ladder for numerical errors (see RecoveryPolicy).
  RecoveryPolicy recovery;
};

/// Full output of a discovery run, including intermediate artifacts so
/// downstream data-preparation tooling (Figures 3 and 5) can inspect the
/// learned structure.
struct FdxResult {
  FdSet fds;                 ///< Discovered FDs, one per dependent attribute.
  Matrix theta;              ///< Sparse precision estimate (schema order).
  Matrix autoregression;     ///< B = I - U, mapped back to schema order.
  std::vector<size_t> ordering;  ///< Variable order used by the factorization.
  double transform_seconds = 0.0;
  double learning_seconds = 0.0;
  size_t transform_samples = 0;
  /// Estimated covariance W of the winning graphical-lasso attempt, on
  /// the (normalized) scale the solver ran on. Together with `theta` it
  /// is the warm-start seed for the next solve of a perturbed problem.
  /// Empty when sequential lasso produced the result or the run was
  /// quarantined — never warm-start from a degraded solution.
  Matrix glasso_w;
  /// What happened during the run: retries, fallbacks, quarantines.
  RunDiagnostics diagnostics;
};

/// FDX: FD discovery via structure learning over the pair-difference
/// model (paper Algorithm 1):
///   1. PairTransformMoments  — Algorithm 2 + covariance estimation;
///   2. GraphicalLasso        — sparse inverse covariance Theta;
///   3. ComputeOrdering + UdutFactor — Theta = U D U^T, B = I - U;
///   4. GenerateFds           — Algorithm 3 with threshold tau.
class FdxDiscoverer {
 public:
  explicit FdxDiscoverer(FdxOptions options = {}) : options_(options) {}

  const FdxOptions& options() const { return options_; }

  /// Runs the full pipeline on a (possibly noisy) table.
  Result<FdxResult> Discover(const Table& table) const;

  /// Runs structure learning + FD generation on an externally supplied
  /// covariance (used by ablations that bypass the pair transform).
  Result<FdxResult> DiscoverFromCovariance(const Matrix& covariance) const;

  /// Same, under a caller-owned deadline that may already cover earlier
  /// work (IncrementalFdx charges its covariance assembly against the
  /// same budget). A null deadline means unlimited.
  Result<FdxResult> DiscoverFromCovariance(const Matrix& covariance,
                                           const Deadline* deadline) const;

 private:
  /// Shared implementation; `deadline` spans the caller's whole run.
  Result<FdxResult> DiscoverFromCovarianceInternal(
      const Matrix& covariance, const Deadline* deadline) const;

  FdxOptions options_;
};

/// Algorithm 3: reads FDs off a strictly-upper-triangular autoregression
/// matrix expressed in permuted coordinates. `perm[i]` is the original
/// attribute at permuted position i. An entry B_ij becomes an LHS
/// membership when it is positive, at least `max(tau, floor * rel, ...)`
/// — concretely: B_ij > tau, B_ij >= relative * max_column_j, and
/// max_column_j >= floor.
FdSet GenerateFdsFromAutoregression(const Matrix& b,
                                    const std::vector<size_t>& perm,
                                    double tau, double relative,
                                    double floor, double zero_tol);

}  // namespace fdx

#endif  // FDX_CORE_FDX_H_
