#ifndef FDX_CORE_INCREMENTAL_H_
#define FDX_CORE_INCREMENTAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fdx.h"
#include "data/table.h"
#include "util/status.h"

namespace fdx {

/// Incremental FD discovery over a growing relation (the dynamic
/// setting of DynFD, paper §6). The pair-transform moments are additive
/// across *batches*: each appended batch contributes its own
/// sort-and-shift tuple pairs, whose equality indicators accumulate
/// into global co-occurrence counts. A batch rides the bit-packed
/// transform engine end to end (PairTransformCounts): its integer
/// moments come straight out of the popcount kernels, with no per-batch
/// double sample matrix. Re-estimating FDs after an append therefore
/// costs one O(k^2) covariance assembly plus structure learning — no
/// rescan of previous data.
///
/// The batch-local pairing is an approximation of Algorithm 2 run on
/// the union (pairs never span batches); it converges to the same
/// moments as batches grow, and inherits the exact semantics for a
/// single batch.
class IncrementalFdx {
 public:
  explicit IncrementalFdx(Schema schema, FdxOptions options = {});

  const Schema& schema() const { return schema_; }
  const FdxOptions& options() const { return options_; }
  size_t total_rows() const { return total_rows_; }
  size_t total_samples() const { return total_samples_; }
  size_t total_batches() const { return total_batches_; }

  /// Accumulates one batch. The batch must match the schema width and
  /// contain at least two rows (a single row forms no pair).
  /// `options.time_budget_seconds` caps the batch's pair transform; an
  /// expired budget returns Status::Timeout and leaves the accumulated
  /// moments untouched.
  Status Append(const Table& batch);

  /// Runs structure learning on the accumulated moments and returns the
  /// current FD estimate. Requires at least one appended batch. Honors
  /// `options.time_budget_seconds` across the covariance assembly and
  /// the whole solve, and walks the same recovery ladder as the batch
  /// discoverer (ridge escalation -> sequential fallback -> quarantine),
  /// surfacing what happened in FdxResult::diagnostics.
  Result<FdxResult> CurrentFds() const;

  /// The accumulated covariance (for diagnostics / tests).
  Result<Matrix> CurrentCovariance() const;

  /// Solver-reuse counters (see FdxOptions::reuse_solver_state).
  /// `solves()` counts completed structure-learning solves,
  /// `warm_solves()` the subset that were warm-started from the previous
  /// solution, and `memo_hits()` the CurrentFds() calls answered from
  /// the memoized result without solving at all (no batch appended since
  /// the last solve). Atomics so aggregators may read them without the
  /// owner's lock.
  uint64_t solves() const { return solves_.load(std::memory_order_relaxed); }
  uint64_t warm_solves() const {
    return warm_solves_.load(std::memory_order_relaxed);
  }
  uint64_t memo_hits() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }
  /// Subset of solves() whose winning glasso attempt ran the Newton
  /// backend on at least one component (see GlassoSolver).
  uint64_t newton_solves() const {
    return newton_solves_.load(std::memory_order_relaxed);
  }

  /// Fingerprint of the solve lineage: the batch count at every solve in
  /// the current warm-start chain (a cold solve restarts the chain).
  /// Cache layers append this to content-addressed keys so a payload
  /// produced by a warm-started solve can never alias one produced by a
  /// cold solve of the same data — warm starts are tolerance-equal, not
  /// bit-equal.
  std::string SolveStateKey() const;

 private:
  Schema schema_;
  FdxOptions options_;
  size_t total_rows_ = 0;
  size_t total_samples_ = 0;
  size_t total_batches_ = 0;
  uint64_t next_batch_seed_ = 0;
  std::vector<uint64_t> ones_;       ///< per-column indicator sums
  std::vector<uint64_t> co_counts_;  ///< upper-triangular co-occurrences

  // Solver state chained across CurrentFds() calls. Mutable: CurrentFds
  // is logically const (it never changes the accumulated moments), and
  // callers already serialize access the way they must for Append().
  mutable Matrix warm_w_;      ///< previous solve's W (normalized scale)
  mutable Matrix warm_theta_;  ///< previous solve's Theta
  mutable bool has_warm_ = false;
  mutable std::unique_ptr<FdxResult> memo_;  ///< last result, if current
  mutable size_t memo_batches_ = 0;
  mutable std::vector<uint64_t> lineage_;    ///< batch count at each solve
  mutable std::atomic<uint64_t> solves_{0};
  mutable std::atomic<uint64_t> warm_solves_{0};
  mutable std::atomic<uint64_t> memo_hits_{0};
  mutable std::atomic<uint64_t> newton_solves_{0};
};

}  // namespace fdx

#endif  // FDX_CORE_INCREMENTAL_H_
