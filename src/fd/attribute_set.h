#ifndef FDX_FD_ATTRIBUTE_SET_H_
#define FDX_FD_ATTRIBUTE_SET_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace fdx {

/// A set of attribute indices as a 128-bit mask. The lattice-search
/// baselines (TANE, PYRO) key their per-level tables on attribute sets;
/// 128 bits cover every dataset in the evaluation (max 190 columns are
/// only swept by FDX, which does not use this type).
class AttributeSet {
 public:
  static constexpr size_t kMaxAttributes = 128;

  AttributeSet() : lo_(0), hi_(0) {}

  static AttributeSet Single(size_t i) {
    AttributeSet s;
    s.Add(i);
    return s;
  }

  static AttributeSet FromIndices(const std::vector<size_t>& indices) {
    AttributeSet s;
    for (size_t i : indices) s.Add(i);
    return s;
  }

  void Add(size_t i) {
    if (i < 64) {
      lo_ |= (uint64_t{1} << i);
    } else {
      hi_ |= (uint64_t{1} << (i - 64));
    }
  }

  void Remove(size_t i) {
    if (i < 64) {
      lo_ &= ~(uint64_t{1} << i);
    } else {
      hi_ &= ~(uint64_t{1} << (i - 64));
    }
  }

  bool Contains(size_t i) const {
    return i < 64 ? (lo_ >> i) & 1 : (hi_ >> (i - 64)) & 1;
  }

  bool Empty() const { return lo_ == 0 && hi_ == 0; }

  size_t Count() const {
    return static_cast<size_t>(__builtin_popcountll(lo_) +
                               __builtin_popcountll(hi_));
  }

  AttributeSet Union(const AttributeSet& other) const {
    AttributeSet s;
    s.lo_ = lo_ | other.lo_;
    s.hi_ = hi_ | other.hi_;
    return s;
  }

  AttributeSet Intersect(const AttributeSet& other) const {
    AttributeSet s;
    s.lo_ = lo_ & other.lo_;
    s.hi_ = hi_ & other.hi_;
    return s;
  }

  AttributeSet Without(size_t i) const {
    AttributeSet s = *this;
    s.Remove(i);
    return s;
  }

  bool IsSubsetOf(const AttributeSet& other) const {
    return (lo_ & ~other.lo_) == 0 && (hi_ & ~other.hi_) == 0;
  }

  /// Member indices in increasing order.
  std::vector<size_t> ToIndices() const {
    std::vector<size_t> out;
    uint64_t lo = lo_;
    while (lo) {
      out.push_back(static_cast<size_t>(__builtin_ctzll(lo)));
      lo &= lo - 1;
    }
    uint64_t hi = hi_;
    while (hi) {
      out.push_back(static_cast<size_t>(__builtin_ctzll(hi)) + 64);
      hi &= hi - 1;
    }
    return out;
  }

  bool operator==(const AttributeSet& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_;
  }
  bool operator<(const AttributeSet& other) const {
    return hi_ != other.hi_ ? hi_ < other.hi_ : lo_ < other.lo_;
  }

  size_t Hash() const {
    uint64_t h = lo_ * 0x9e3779b97f4a7c15ull;
    h ^= (hi_ + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
    return static_cast<size_t>(h);
  }

 private:
  uint64_t lo_;
  uint64_t hi_;
};

struct AttributeSetHash {
  size_t operator()(const AttributeSet& s) const { return s.Hash(); }
};

}  // namespace fdx

#endif  // FDX_FD_ATTRIBUTE_SET_H_
