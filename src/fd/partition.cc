#include "fd/partition.h"

#include <algorithm>
#include <unordered_map>

namespace fdx {

StrippedPartition StrippedPartition::FromColumn(const EncodedTable& table,
                                                size_t col) {
  const auto& codes = table.column_codes(col);
  std::unordered_map<int32_t, std::vector<int32_t>> groups;
  groups.reserve(table.Cardinality(col) * 2 + 1);
  for (size_t r = 0; r < codes.size(); ++r) {
    const int32_t code = codes[r];
    if (code == EncodedTable::kNullCode) continue;  // nulls are singletons
    groups[code].push_back(static_cast<int32_t>(r));
  }
  std::vector<std::vector<int32_t>> clusters;
  clusters.reserve(groups.size());
  for (auto& [code, rows] : groups) {
    if (rows.size() >= 2) clusters.push_back(std::move(rows));
  }
  // Deterministic order regardless of hash iteration.
  std::sort(clusters.begin(), clusters.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return StrippedPartition(std::move(clusters), table.num_rows());
}

StrippedPartition StrippedPartition::Multiply(const StrippedPartition& a,
                                              const StrippedPartition& b) {
  const size_t n = a.num_rows_;
  std::vector<int32_t> owner(n, -1);
  for (size_t i = 0; i < a.clusters_.size(); ++i) {
    for (int32_t t : a.clusters_[i]) owner[t] = static_cast<int32_t>(i);
  }
  std::vector<std::vector<int32_t>> buckets(a.clusters_.size());
  std::vector<std::vector<int32_t>> out;
  for (const auto& cluster : b.clusters_) {
    // Distribute this cluster's rows over the owning a-clusters.
    for (int32_t t : cluster) {
      if (owner[t] >= 0) buckets[owner[t]].push_back(t);
    }
    // Harvest buckets with >= 2 rows, then reset the touched buckets.
    for (int32_t t : cluster) {
      const int32_t o = owner[t];
      if (o < 0) continue;
      if (buckets[o].size() >= 2) out.push_back(std::move(buckets[o]));
      buckets[o].clear();
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& x, const auto& y) { return x[0] < y[0]; });
  return StrippedPartition(std::move(out), n);
}

size_t StrippedPartition::StrippedSize() const {
  size_t total = 0;
  for (const auto& c : clusters_) total += c.size();
  return total;
}

double StrippedPartition::KeyError() const {
  if (num_rows_ == 0) return 0.0;
  return static_cast<double>(StrippedSize() - NumClusters()) /
         static_cast<double>(num_rows_);
}

double StrippedPartition::FdError(
    const StrippedPartition& rhs_refinement) const {
  if (num_rows_ == 0) return 0.0;
  // TANE's e(X -> A) routine: every cluster of pi_{XA} is contained in
  // exactly one cluster of pi_X, and its first row indexes it.
  std::vector<int32_t> cluster_size(num_rows_, 0);
  for (const auto& c : rhs_refinement.clusters_) {
    cluster_size[c[0]] = static_cast<int32_t>(c.size());
  }
  size_t violations = 0;
  for (const auto& c : clusters_) {
    int32_t best = 1;
    for (int32_t t : c) best = std::max(best, cluster_size[t]);
    violations += c.size() - static_cast<size_t>(best);
  }
  return static_cast<double>(violations) / static_cast<double>(num_rows_);
}

}  // namespace fdx
