#ifndef FDX_FD_CFD_H_
#define FDX_FD_CFD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"
#include "util/status.h"

namespace fdx {

/// A *constant* conditional functional dependency: a pattern of
/// attribute-value conditions that (approximately) determines one value
/// of a dependent attribute, e.g.
///   (State = "AL", MeasureCode = "AMI-2") => Stateavg = "AL_AMI-2".
/// Constant CFDs are the tableau rows of Fan et al.'s conditional FDs
/// restricted to constant patterns; discovering them is the CTane
/// fragment most used by cleaning pipelines (paper §6, [4, 13]).
struct ConditionalFd {
  std::vector<size_t> lhs_attrs;   ///< Condition attributes (sorted).
  std::vector<Value> lhs_values;   ///< Parallel condition values.
  size_t rhs_attr = 0;
  Value rhs_value;
  /// Fraction of table rows matching the LHS pattern.
  double support = 0.0;
  /// P(rhs = rhs_value | LHS pattern matches).
  double confidence = 0.0;

  /// Renders e.g. "(State=AL, Code=AMI-2) => Stateavg=AL_AMI-2".
  std::string ToString(const Schema& schema) const;
};

/// Options for constant-CFD discovery.
struct CfdOptions {
  double min_support = 0.05;
  double min_confidence = 0.95;
  size_t max_lhs_size = 2;
  /// Cap on the result list; discovery stops early once reached.
  size_t max_results = 10000;
  /// Wall-clock budget in seconds; 0 = unlimited.
  double time_budget_seconds = 0.0;
};

/// Levelwise (CTane-style) discovery of minimal constant CFDs: patterns
/// are grown only while frequent, and a dependency is reported only if
/// no sub-pattern already implies the same consequence. Null cells
/// match no pattern.
Result<std::vector<ConditionalFd>> DiscoverConstantCfds(
    const Table& table, const CfdOptions& options = {});

}  // namespace fdx

#endif  // FDX_FD_CFD_H_
