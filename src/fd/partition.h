#ifndef FDX_FD_PARTITION_H_
#define FDX_FD_PARTITION_H_

#include <cstdint>
#include <vector>

#include "data/table.h"

namespace fdx {

/// A *stripped partition* (Huhtala et al., TANE): the equivalence classes
/// of rows that agree on an attribute set, with singleton classes
/// removed. Partitions are the core data structure of the lattice-search
/// baselines; partition product implements attribute-set union.
class StrippedPartition {
 public:
  StrippedPartition() = default;
  StrippedPartition(std::vector<std::vector<int32_t>> clusters,
                    size_t num_rows)
      : clusters_(std::move(clusters)), num_rows_(num_rows) {}

  /// Partition by a single column. Null cells are singletons (a missing
  /// value agrees with nothing), hence stripped away.
  static StrippedPartition FromColumn(const EncodedTable& table, size_t col);

  /// Product of two partitions: the partition of the union of their
  /// attribute sets. Linear in the stripped sizes (TANE Alg. "product").
  static StrippedPartition Multiply(const StrippedPartition& a,
                                    const StrippedPartition& b);

  const std::vector<std::vector<int32_t>>& clusters() const {
    return clusters_;
  }
  size_t num_rows() const { return num_rows_; }

  /// Number of stripped (size >= 2) clusters.
  size_t NumClusters() const { return clusters_.size(); }

  /// Sum of stripped cluster sizes, ||pi|| in TANE notation.
  size_t StrippedSize() const;

  /// TANE's e(X) measure: (||pi|| - |pi|) / n, the minimum fraction of
  /// rows to remove so that X becomes a superkey.
  double KeyError() const;

  /// True if every row is alone in its class, i.e. the attribute set is
  /// a superkey.
  bool IsSuperKey() const { return clusters_.empty(); }

  /// g3 error of the FD (this -> refined): the minimum fraction of rows
  /// to remove so that every cluster of *this maps into a single cluster
  /// of `rhs_refinement`, where `rhs_refinement` must be the partition of
  /// this partition's attributes plus the RHS attribute.
  double FdError(const StrippedPartition& rhs_refinement) const;

 private:
  std::vector<std::vector<int32_t>> clusters_;
  size_t num_rows_ = 0;
};

}  // namespace fdx

#endif  // FDX_FD_PARTITION_H_
