#include "fd/fd.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "util/string_util.h"

namespace fdx {

FunctionalDependency::FunctionalDependency(std::vector<size_t> lhs_in,
                                           size_t rhs_in)
    : lhs(std::move(lhs_in)), rhs(rhs_in) {
  std::sort(lhs.begin(), lhs.end());
  lhs.erase(std::unique(lhs.begin(), lhs.end()), lhs.end());
  lhs.erase(std::remove(lhs.begin(), lhs.end(), rhs), lhs.end());
}

std::string FunctionalDependency::ToString(const Schema& schema) const {
  std::vector<std::string> parts;
  parts.reserve(lhs.size());
  for (size_t a : lhs) parts.push_back(schema.name(a));
  return Join(parts, ",") + " -> " + schema.name(rhs);
}

std::string FdSetToString(const FdSet& fds, const Schema& schema) {
  std::string out;
  for (const auto& fd : fds) {
    out += fd.ToString(schema);
    out += '\n';
  }
  return out;
}

Result<FunctionalDependency> ParseFd(const Schema& schema,
                                     const std::string& text) {
  const size_t arrow = text.find("->");
  if (arrow == std::string::npos) {
    return Status::InvalidArgument("FD must contain '->'");
  }
  const std::string rhs_name(
      StripAsciiWhitespace(text.substr(arrow + 2)));
  const int rhs = schema.Find(rhs_name);
  if (rhs < 0) {
    return Status::InvalidArgument("unknown attribute: " + rhs_name);
  }
  std::vector<size_t> lhs;
  for (const std::string& part : Split(text.substr(0, arrow), ',')) {
    const std::string name(StripAsciiWhitespace(part));
    if (name.empty()) continue;
    const int index = schema.Find(name);
    if (index < 0) {
      return Status::InvalidArgument("unknown attribute: " + name);
    }
    if (index == rhs) {
      return Status::InvalidArgument("trivial FD: " + name + " -> " + name);
    }
    lhs.push_back(static_cast<size_t>(index));
  }
  if (lhs.empty()) {
    return Status::InvalidArgument("FD needs at least one LHS attribute");
  }
  return FunctionalDependency(std::move(lhs), static_cast<size_t>(rhs));
}

std::vector<std::pair<size_t, size_t>> FdEdges(const FdSet& fds) {
  std::set<std::pair<size_t, size_t>> edges;
  for (const auto& fd : fds) {
    for (size_t x : fd.lhs) edges.emplace(x, fd.rhs);
  }
  return {edges.begin(), edges.end()};
}

namespace {

FdScore ScoreEdges(const FdSet& discovered, const FdSet& ground_truth,
                   bool directed) {
  const auto got = FdEdges(discovered);
  const auto want = FdEdges(ground_truth);
  std::set<std::pair<size_t, size_t>> want_set(want.begin(), want.end());
  std::set<std::pair<size_t, size_t>> got_set(got.begin(), got.end());
  if (!directed) {
    for (const auto& e : want) want_set.emplace(e.second, e.first);
    for (const auto& e : got) got_set.emplace(e.second, e.first);
  }
  FdScore score;
  score.discovered_edges = got.size();
  score.true_edges = want.size();
  for (const auto& e : got) {
    if (want_set.count(e) > 0) ++score.correct_edges;
  }
  size_t recalled = 0;
  for (const auto& e : want) {
    if (got_set.count(e) > 0) ++recalled;
  }
  if (want.empty() && got.empty()) {
    score.precision = score.recall = score.f1 = 1.0;
    return score;
  }
  score.precision = got.empty() ? 0.0
                                : static_cast<double>(score.correct_edges) /
                                      static_cast<double>(got.size());
  score.recall = want.empty() ? 0.0
                              : static_cast<double>(recalled) /
                                    static_cast<double>(want.size());
  score.f1 = (score.precision + score.recall) > 0.0
                 ? 2.0 * score.precision * score.recall /
                       (score.precision + score.recall)
                 : 0.0;
  return score;
}

}  // namespace

FdScore ScoreFds(const FdSet& discovered, const FdSet& ground_truth) {
  return ScoreEdges(discovered, ground_truth, /*directed=*/true);
}

FdScore ScoreFdsUndirected(const FdSet& discovered,
                           const FdSet& ground_truth) {
  return ScoreEdges(discovered, ground_truth, /*directed=*/false);
}

namespace {

/// Hash of the LHS code tuple of one row; rows with nulls in the LHS get
/// excluded (they identify no group).
struct LhsKey {
  std::vector<int32_t> codes;
  bool operator==(const LhsKey& other) const { return codes == other.codes; }
};

struct LhsKeyHash {
  size_t operator()(const LhsKey& key) const {
    size_t h = 1469598103934665603ull;
    for (int32_t c : key.codes) {
      h ^= static_cast<size_t>(c) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

bool FdHoldsExactly(const EncodedTable& table,
                    const FunctionalDependency& fd) {
  return FdG3Error(table, fd) == 0.0;
}

double FdG3Error(const EncodedTable& table, const FunctionalDependency& fd) {
  const size_t n = table.num_rows();
  if (n == 0) return 0.0;
  // For each LHS group, count occurrences of each RHS code; rows beyond
  // the majority RHS per group violate the FD.
  std::unordered_map<LhsKey, std::unordered_map<int32_t, size_t>, LhsKeyHash>
      groups;
  size_t considered = 0;
  for (size_t r = 0; r < n; ++r) {
    LhsKey key;
    key.codes.reserve(fd.lhs.size());
    bool has_null = false;
    for (size_t a : fd.lhs) {
      const int32_t code = table.code(r, a);
      if (code == EncodedTable::kNullCode) {
        has_null = true;
        break;
      }
      key.codes.push_back(code);
    }
    const int32_t rhs_code = table.code(r, fd.rhs);
    if (has_null || rhs_code == EncodedTable::kNullCode) continue;
    ++considered;
    groups[std::move(key)][rhs_code] += 1;
  }
  if (considered == 0) return 0.0;
  size_t kept = 0;
  for (const auto& [key, counts] : groups) {
    size_t best = 0;
    for (const auto& [code, count] : counts) best = std::max(best, count);
    kept += best;
  }
  return static_cast<double>(considered - kept) /
         static_cast<double>(considered);
}

}  // namespace fdx
