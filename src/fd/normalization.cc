#include "fd/normalization.h"

#include <algorithm>
#include <deque>
#include <set>

namespace fdx {

AttributeSet Closure(const AttributeSet& attrs, const FdSet& fds) {
  AttributeSet closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& fd : fds) {
      if (closure.Contains(fd.rhs)) continue;
      bool lhs_covered = true;
      for (size_t a : fd.lhs) {
        if (!closure.Contains(a)) {
          lhs_covered = false;
          break;
        }
      }
      if (lhs_covered) {
        closure.Add(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

bool Implies(const FdSet& fds, const FunctionalDependency& fd) {
  return Closure(AttributeSet::FromIndices(fd.lhs), fds).Contains(fd.rhs);
}

std::vector<AttributeSet> CandidateKeys(size_t num_attributes,
                                        const FdSet& fds, size_t max_keys) {
  AttributeSet all;
  for (size_t a = 0; a < num_attributes; ++a) all.Add(a);

  // Attributes never on any RHS must be in every key; they seed the
  // search. BFS over supersets, keeping minimal covers only.
  AttributeSet mandatory = all;
  for (const auto& fd : fds) mandatory.Remove(fd.rhs);

  std::vector<AttributeSet> keys;
  std::set<AttributeSet> visited;
  std::deque<AttributeSet> frontier = {mandatory};
  while (!frontier.empty() && keys.size() < max_keys) {
    const AttributeSet candidate = frontier.front();
    frontier.pop_front();
    if (visited.count(candidate) > 0) continue;
    visited.insert(candidate);
    // Skip supersets of found keys (not minimal).
    bool superset = false;
    for (const auto& key : keys) {
      if (key.IsSubsetOf(candidate)) {
        superset = true;
        break;
      }
    }
    if (superset) continue;
    if (Closure(candidate, fds) == all) {
      keys.push_back(candidate);
      continue;
    }
    for (size_t a = 0; a < num_attributes; ++a) {
      if (!candidate.Contains(a)) {
        AttributeSet extended = candidate;
        extended.Add(a);
        frontier.push_back(extended);
      }
    }
  }
  return keys;
}

FdSet MinimalCover(const FdSet& fds, size_t num_attributes) {
  (void)num_attributes;
  // 1. Remove extraneous LHS attributes: a in X is extraneous for
  //    X -> Y if (X - a) -> Y is still implied by the full set.
  FdSet reduced;
  for (const auto& fd : fds) {
    std::vector<size_t> lhs = fd.lhs;
    bool shrunk = true;
    while (shrunk && lhs.size() > 1) {
      shrunk = false;
      for (size_t i = 0; i < lhs.size(); ++i) {
        std::vector<size_t> smaller;
        for (size_t j = 0; j < lhs.size(); ++j) {
          if (j != i) smaller.push_back(lhs[j]);
        }
        if (Implies(fds, FunctionalDependency(smaller, fd.rhs))) {
          lhs = std::move(smaller);
          shrunk = true;
          break;
        }
      }
    }
    reduced.emplace_back(lhs, fd.rhs);
  }
  // Deduplicate.
  std::sort(reduced.begin(), reduced.end(),
            [](const FunctionalDependency& a, const FunctionalDependency& b) {
              if (a.rhs != b.rhs) return a.rhs < b.rhs;
              return a.lhs < b.lhs;
            });
  reduced.erase(std::unique(reduced.begin(), reduced.end()), reduced.end());
  // 2. Remove redundant FDs: drop fd if the rest still implies it.
  FdSet cover;
  for (size_t i = 0; i < reduced.size(); ++i) {
    FdSet rest = cover;
    rest.insert(rest.end(), reduced.begin() + i + 1, reduced.end());
    if (!Implies(rest, reduced[i])) cover.push_back(reduced[i]);
  }
  return cover;
}

std::string DecomposedRelation::ToString(const Schema& schema,
                                         size_t index) const {
  std::string out = "R" + std::to_string(index) + "(";
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.name(attributes[i]);
  }
  out += ")";
  return out;
}

namespace {

/// Projects `fds` onto an attribute subset: FDs X -> A with X and A
/// inside the subset, using closures so transitive dependencies project
/// too (computed over single and pairwise LHS only, which suffices for
/// the BCNF check of the dependencies FDX emits).
FdSet ProjectFds(const FdSet& fds, const AttributeSet& attrs) {
  FdSet projected;
  for (const auto& fd : fds) {
    if (!attrs.Contains(fd.rhs)) continue;
    bool inside = true;
    for (size_t a : fd.lhs) {
      if (!attrs.Contains(a)) {
        inside = false;
        break;
      }
    }
    if (inside) projected.push_back(fd);
  }
  return projected;
}

/// Finds a BCNF violation inside `attrs`: an FD (restricted to attrs)
/// whose LHS closure does not cover all of attrs. Returns true and
/// fills `violation`.
bool FindViolation(const AttributeSet& attrs, const FdSet& fds,
                   FunctionalDependency* violation) {
  const FdSet local = ProjectFds(fds, attrs);
  for (const auto& fd : local) {
    const AttributeSet closure =
        Closure(AttributeSet::FromIndices(fd.lhs), local);
    // Violation: LHS is not a superkey of this fragment.
    bool covers = true;
    for (size_t a : attrs.ToIndices()) {
      if (!closure.Contains(a)) {
        covers = false;
        break;
      }
    }
    if (!covers) {
      *violation = fd;
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<DecomposedRelation> DecomposeBcnf(size_t num_attributes,
                                              const FdSet& fds) {
  AttributeSet all;
  for (size_t a = 0; a < num_attributes; ++a) all.Add(a);
  std::vector<DecomposedRelation> done;
  std::deque<AttributeSet> pending = {all};
  while (!pending.empty()) {
    const AttributeSet attrs = pending.front();
    pending.pop_front();
    FunctionalDependency violation;
    if (attrs.Count() <= 2 || !FindViolation(attrs, fds, &violation)) {
      DecomposedRelation relation;
      relation.attributes = attrs.ToIndices();
      done.push_back(std::move(relation));
      continue;
    }
    // Split into (X+, restricted to attrs) and (attrs - (X+ - X)).
    const FdSet local = ProjectFds(fds, attrs);
    const AttributeSet x = AttributeSet::FromIndices(violation.lhs);
    const AttributeSet x_closure = Closure(x, local).Intersect(attrs);
    AttributeSet remainder = attrs;
    for (size_t a : x_closure.ToIndices()) {
      if (!x.Contains(a)) remainder.Remove(a);
    }
    DecomposedRelation split;
    split.attributes = x_closure.ToIndices();
    split.cause = violation;
    // The closure fragment is in BCNF w.r.t. X by construction only if
    // no *other* violation hides inside; re-queue both parts.
    pending.push_back(x_closure);
    pending.push_back(remainder);
    (void)split;
  }
  // Deduplicate fragments (splits can repeat under equivalent keys) and
  // drop fragments subsumed by others.
  std::vector<DecomposedRelation> unique_done;
  std::set<std::vector<size_t>> seen;
  for (auto& relation : done) {
    if (seen.insert(relation.attributes).second) {
      unique_done.push_back(std::move(relation));
    }
  }
  return unique_done;
}

bool IsBcnf(const std::vector<DecomposedRelation>& decomposition,
            const FdSet& fds) {
  for (const auto& relation : decomposition) {
    const AttributeSet attrs =
        AttributeSet::FromIndices(relation.attributes);
    FunctionalDependency violation;
    if (attrs.Count() > 2 && FindViolation(attrs, fds, &violation)) {
      return false;
    }
  }
  return true;
}

}  // namespace fdx
