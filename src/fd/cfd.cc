#include "fd/cfd.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "util/stopwatch.h"

namespace fdx {

namespace {

/// A pattern = sorted (attribute, code) conditions plus its matching
/// rows (vertical representation; intersection implements extension).
struct Pattern {
  std::vector<std::pair<size_t, int32_t>> conditions;
  std::vector<int32_t> rows;
};

/// Consequence key for minimality tracking: (rhs attribute, rhs code).
using Consequence = std::pair<size_t, int32_t>;

/// Set of consequences already implied by some sub-pattern; keyed by
/// the pattern's condition list.
using ImpliedMap =
    std::map<std::vector<std::pair<size_t, int32_t>>, std::set<Consequence>>;

/// Collects consequences implied by every proper sub-pattern of
/// `conditions` (only one level down is needed: implication is
/// transitive through the levelwise order).
std::set<Consequence> InheritedConsequences(
    const std::vector<std::pair<size_t, int32_t>>& conditions,
    const ImpliedMap& implied) {
  std::set<Consequence> out;
  if (conditions.size() <= 1) return out;
  for (size_t skip = 0; skip < conditions.size(); ++skip) {
    std::vector<std::pair<size_t, int32_t>> sub;
    for (size_t i = 0; i < conditions.size(); ++i) {
      if (i != skip) sub.push_back(conditions[i]);
    }
    const auto it = implied.find(sub);
    if (it != implied.end()) out.insert(it->second.begin(), it->second.end());
  }
  return out;
}

}  // namespace

std::string ConditionalFd::ToString(const Schema& schema) const {
  std::string out = "(";
  for (size_t i = 0; i < lhs_attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.name(lhs_attrs[i]) + "=" + lhs_values[i].ToString();
  }
  out += ") => " + schema.name(rhs_attr) + "=" + rhs_value.ToString();
  return out;
}

Result<std::vector<ConditionalFd>> DiscoverConstantCfds(
    const Table& table, const CfdOptions& options) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  if (k < 2 || n == 0) {
    return Status::InvalidArgument("need at least two columns and a row");
  }
  if (options.min_support <= 0.0 || options.min_confidence <= 0.0) {
    return Status::InvalidArgument("support/confidence must be positive");
  }
  const EncodedTable encoded = EncodedTable::Encode(table);
  Deadline deadline(options.time_budget_seconds);
  const size_t min_rows = std::max<size_t>(
      1, static_cast<size_t>(options.min_support * static_cast<double>(n)));

  // Reverse dictionaries (code -> Value) for rendering results.
  std::vector<std::unordered_map<int32_t, Value>> decode(k);
  for (size_t c = 0; c < k; ++c) {
    for (size_t r = 0; r < n; ++r) {
      const int32_t code = encoded.code(r, c);
      if (code != EncodedTable::kNullCode) {
        decode[c].try_emplace(code, table.cell(r, c));
      }
    }
  }

  std::vector<ConditionalFd> results;
  ImpliedMap implied;

  // Evaluates one pattern: finds confident consequences, records them,
  // and appends the minimal ones to `results`.
  auto evaluate = [&](const Pattern& pattern) {
    const std::set<Consequence> inherited =
        InheritedConsequences(pattern.conditions, implied);
    std::set<Consequence>& own = implied[pattern.conditions];
    own = inherited;
    std::set<size_t> lhs_attrs;
    for (const auto& [attr, code] : pattern.conditions) {
      lhs_attrs.insert(attr);
    }
    for (size_t y = 0; y < k; ++y) {
      if (lhs_attrs.count(y) > 0) continue;
      // Distribution of y over the pattern's rows.
      std::unordered_map<int32_t, size_t> counts;
      size_t non_null = 0;
      for (int32_t r : pattern.rows) {
        const int32_t code = encoded.code(static_cast<size_t>(r), y);
        if (code == EncodedTable::kNullCode) continue;
        ++counts[code];
        ++non_null;
      }
      if (non_null < min_rows) continue;
      int32_t best_code = 0;
      size_t best_count = 0;
      for (const auto& [code, count] : counts) {
        if (count > best_count || (count == best_count && code < best_code)) {
          best_count = count;
          best_code = code;
        }
      }
      const double confidence = static_cast<double>(best_count) /
                                static_cast<double>(non_null);
      if (confidence < options.min_confidence) continue;
      const Consequence consequence{y, best_code};
      if (inherited.count(consequence) > 0) {
        own.insert(consequence);  // implied, propagate but do not emit
        continue;
      }
      own.insert(consequence);
      ConditionalFd cfd;
      for (const auto& [attr, code] : pattern.conditions) {
        cfd.lhs_attrs.push_back(attr);
        cfd.lhs_values.push_back(decode[attr].at(code));
      }
      cfd.rhs_attr = y;
      cfd.rhs_value = decode[y].at(best_code);
      cfd.support = static_cast<double>(pattern.rows.size()) /
                    static_cast<double>(n);
      cfd.confidence = confidence;
      results.push_back(std::move(cfd));
    }
  };

  // Level 1: frequent single conditions.
  std::vector<Pattern> level;
  for (size_t a = 0; a < k; ++a) {
    std::unordered_map<int32_t, std::vector<int32_t>> groups;
    for (size_t r = 0; r < n; ++r) {
      const int32_t code = encoded.code(r, a);
      if (code != EncodedTable::kNullCode) {
        groups[code].push_back(static_cast<int32_t>(r));
      }
    }
    for (auto& [code, rows] : groups) {
      if (rows.size() < min_rows) continue;
      Pattern pattern;
      pattern.conditions = {{a, code}};
      pattern.rows = std::move(rows);
      level.push_back(std::move(pattern));
    }
  }
  std::sort(level.begin(), level.end(),
            [](const Pattern& a, const Pattern& b) {
              return a.conditions < b.conditions;
            });

  for (size_t depth = 1; depth <= options.max_lhs_size; ++depth) {
    for (const Pattern& pattern : level) {
      // Singles are carried across levels for the join step; evaluate
      // each pattern exactly once, at its own depth.
      if (pattern.conditions.size() != depth) continue;
      if (deadline.Expired()) {
        return Status::Timeout("CFD discovery budget exceeded");
      }
      evaluate(pattern);
      if (results.size() >= options.max_results) return results;
    }
    if (depth == options.max_lhs_size) break;
    // Join step: extend each pattern with frequent single conditions on
    // strictly larger attributes (canonical order avoids duplicates).
    std::vector<Pattern> next;
    for (const Pattern& pattern : level) {
      if (pattern.conditions.size() != depth) continue;
      const size_t last_attr = pattern.conditions.back().first;
      for (const Pattern& single : level) {
        if (single.conditions.size() != 1) continue;
        if (single.conditions[0].first <= last_attr) continue;
        if (deadline.Expired()) {
          return Status::Timeout("CFD discovery budget exceeded");
        }
        // Row intersection (both lists sorted by construction).
        Pattern extended;
        std::set_intersection(pattern.rows.begin(), pattern.rows.end(),
                              single.rows.begin(), single.rows.end(),
                              std::back_inserter(extended.rows));
        if (extended.rows.size() < min_rows) continue;
        extended.conditions = pattern.conditions;
        extended.conditions.push_back(single.conditions[0]);
        next.push_back(std::move(extended));
      }
    }
    // Keep the frequent singles around for future joins.
    for (Pattern& pattern : level) {
      if (pattern.conditions.size() == 1) next.push_back(std::move(pattern));
    }
    std::sort(next.begin(), next.end(),
              [](const Pattern& a, const Pattern& b) {
                return a.conditions < b.conditions;
              });
    level = std::move(next);
  }
  return results;
}

}  // namespace fdx
