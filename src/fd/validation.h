#ifndef FDX_FD_VALIDATION_H_
#define FDX_FD_VALIDATION_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "fd/fd.h"
#include "util/status.h"

namespace fdx {

/// A group of rows that agree on an FD's LHS but disagree on its RHS —
/// the unit of evidence data-cleaning systems consume (HoloClean-style
/// "violations in context").
struct FdViolation {
  /// Rows of the offending LHS group (all rows, including agreeing ones).
  std::vector<size_t> rows;
  /// The majority RHS value's code within the group.
  int32_t majority_code = 0;
  /// Rows whose RHS deviates from the majority (subset of `rows`).
  std::vector<size_t> deviating_rows;
};

/// Per-FD validation report.
struct FdValidationReport {
  FunctionalDependency fd;
  double g3_error = 0.0;            ///< Fraction of rows to remove.
  size_t groups = 0;                ///< LHS groups considered.
  size_t violating_groups = 0;      ///< Groups with >1 RHS value.
  std::vector<FdViolation> violations;  ///< Capped by options.
};

/// Options for validation.
struct ValidationOptions {
  /// Cap on materialized violations per FD (reports stay small even on
  /// heavily corrupted data); 0 keeps everything.
  size_t max_violations = 100;
  /// Repair gating (SuggestRepairs only): groups smaller than this
  /// carry too little evidence for a majority vote.
  size_t min_group_size = 3;
  /// Repair gating: the majority value must cover at least this
  /// fraction of the group, otherwise the group is left for a human
  /// (or a probabilistic cleaner) to resolve.
  double min_majority_fraction = 0.6;
};

/// Validates one FD against a table: exact g3 error plus the violating
/// groups with their majority values. Null LHS/RHS cells are excluded
/// (a missing value can neither support nor violate a dependency).
Result<FdValidationReport> ValidateFd(const EncodedTable& table,
                                      const FunctionalDependency& fd,
                                      const ValidationOptions& options = {});

/// Validates a whole FD set.
Result<std::vector<FdValidationReport>> ValidateFds(
    const EncodedTable& table, const FdSet& fds,
    const ValidationOptions& options = {});

/// A suggested cell repair: set `row`'s value of attribute `column` to
/// the value at `donor_row` (the group's majority witness).
struct CellRepair {
  size_t row = 0;
  size_t column = 0;
  size_t donor_row = 0;
};

/// Majority-vote repair suggestions for every violation of `fd`: each
/// deviating row's RHS is repaired to the group majority. This is the
/// light-weight flavor of FD-driven cleaning the paper positions FDX
/// for (§1, §5.5); a full probabilistic cleaner would weigh evidence
/// across constraints.
Result<std::vector<CellRepair>> SuggestRepairs(
    const EncodedTable& table, const FunctionalDependency& fd,
    const ValidationOptions& options = {});

/// Applies repairs to a copy of the table.
Table ApplyRepairs(const Table& table,
                   const std::vector<CellRepair>& repairs);

}  // namespace fdx

#endif  // FDX_FD_VALIDATION_H_
