#ifndef FDX_FD_FD_H_
#define FDX_FD_FD_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/table.h"

namespace fdx {

/// A functional dependency X -> Y over attribute indices of a schema.
/// `lhs` is kept sorted and duplicate free; `rhs` never appears in `lhs`
/// (non-trivial FDs only).
struct FunctionalDependency {
  std::vector<size_t> lhs;
  size_t rhs = 0;

  FunctionalDependency() = default;
  FunctionalDependency(std::vector<size_t> lhs_in, size_t rhs_in);

  /// Renders e.g. "City,State -> Zip" using schema names.
  std::string ToString(const Schema& schema) const;

  bool operator==(const FunctionalDependency& other) const {
    return rhs == other.rhs && lhs == other.lhs;
  }
};

/// A collection of discovered FDs (at most one per RHS for parsimonious
/// methods like FDX; possibly many for enumeration methods like TANE).
using FdSet = std::vector<FunctionalDependency>;

/// Renders an FdSet one FD per line.
std::string FdSetToString(const FdSet& fds, const Schema& schema);

/// Parses "A,B -> C" (attribute names, whitespace tolerated) against a
/// schema. Fails on unknown names, empty sides, or a trivial FD.
Result<FunctionalDependency> ParseFd(const Schema& schema,
                                     const std::string& text);

/// The (determinant, dependent) attribute edges of an FD set: FD X -> Y
/// contributes the edges {(x, Y) : x in X}. Duplicate edges collapse.
/// This is the unit the paper scores on (§5.1 Metrics).
std::vector<std::pair<size_t, size_t>> FdEdges(const FdSet& fds);

/// Edge-based scores of a discovered FD set against the ground truth.
struct FdScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t discovered_edges = 0;
  size_t true_edges = 0;
  size_t correct_edges = 0;
};

/// Computes edge precision/recall/F1 exactly as defined in §5.1:
/// precision = |discovered ∩ true| / |discovered|,
/// recall    = |discovered ∩ true| / |true|.
/// Empty discovered set yields precision 0 (and F1 0) unless the truth
/// is empty too, in which case all scores are 1.
FdScore ScoreFds(const FdSet& discovered, const FdSet& ground_truth);

/// Direction-insensitive variant: a discovered edge (x, y) counts as
/// correct if either (x, y) or (y, x) participates in a true FD, and a
/// true edge counts as recalled if discovered in either orientation.
/// The pair-difference model is symmetric in each tuple pair, so edge
/// *orientation* is only identifiable through multi-determinant
/// structure; the paper's ordering-insensitive results (Table 9)
/// indicate this is the counting its evaluation uses, and the benchmark
/// drivers report it.
FdScore ScoreFdsUndirected(const FdSet& discovered,
                           const FdSet& ground_truth);

/// True if `fd` holds exactly on `table` under strict value equality
/// (nulls match nothing). Exhaustive check used by tests and validators.
bool FdHoldsExactly(const EncodedTable& table, const FunctionalDependency& fd);

/// Fraction of rows that must be removed for `fd` to hold (the g3 error
/// of Huhtala et al.); 0 means the FD holds exactly.
double FdG3Error(const EncodedTable& table, const FunctionalDependency& fd);

}  // namespace fdx

#endif  // FDX_FD_FD_H_
