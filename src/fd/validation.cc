#include "fd/validation.h"

#include <algorithm>
#include <unordered_map>

namespace fdx {

namespace {

struct LhsKey {
  std::vector<int32_t> codes;
  bool operator==(const LhsKey& other) const { return codes == other.codes; }
};

struct LhsKeyHash {
  size_t operator()(const LhsKey& key) const {
    size_t h = 1469598103934665603ull;
    for (int32_t c : key.codes) {
      h ^= static_cast<size_t>(static_cast<uint32_t>(c)) +
           0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// Groups rows by their (null-free) LHS codes.
std::unordered_map<LhsKey, std::vector<size_t>, LhsKeyHash> GroupByLhs(
    const EncodedTable& table, const FunctionalDependency& fd) {
  std::unordered_map<LhsKey, std::vector<size_t>, LhsKeyHash> groups;
  const size_t n = table.num_rows();
  LhsKey key;
  for (size_t r = 0; r < n; ++r) {
    key.codes.clear();
    bool has_null = false;
    for (size_t a : fd.lhs) {
      const int32_t code = table.code(r, a);
      if (code == EncodedTable::kNullCode) {
        has_null = true;
        break;
      }
      key.codes.push_back(code);
    }
    if (has_null || table.code(r, fd.rhs) == EncodedTable::kNullCode) {
      continue;
    }
    groups[key].push_back(r);
  }
  return groups;
}

/// Builds the violation record of one group, or returns false if the
/// group is consistent.
bool AnalyzeGroup(const EncodedTable& table, size_t rhs,
                  const std::vector<size_t>& rows, FdViolation* violation) {
  std::unordered_map<int32_t, size_t> counts;
  for (size_t r : rows) ++counts[table.code(r, rhs)];
  if (counts.size() <= 1) return false;
  int32_t majority = 0;
  size_t best = 0;
  for (const auto& [code, count] : counts) {
    if (count > best || (count == best && code < majority)) {
      best = count;
      majority = code;
    }
  }
  violation->rows = rows;
  violation->majority_code = majority;
  for (size_t r : rows) {
    if (table.code(r, rhs) != majority) violation->deviating_rows.push_back(r);
  }
  return true;
}

}  // namespace

Result<FdValidationReport> ValidateFd(const EncodedTable& table,
                                      const FunctionalDependency& fd,
                                      const ValidationOptions& options) {
  if (fd.rhs >= table.num_columns()) {
    return Status::InvalidArgument("FD RHS out of range");
  }
  for (size_t a : fd.lhs) {
    if (a >= table.num_columns()) {
      return Status::InvalidArgument("FD LHS attribute out of range");
    }
  }
  FdValidationReport report;
  report.fd = fd;
  const auto groups = GroupByLhs(table, fd);
  report.groups = groups.size();
  size_t considered = 0;
  size_t kept = 0;
  for (const auto& [key, rows] : groups) {
    considered += rows.size();
    FdViolation violation;
    if (AnalyzeGroup(table, fd.rhs, rows, &violation)) {
      ++report.violating_groups;
      kept += rows.size() - violation.deviating_rows.size();
      if (options.max_violations == 0 ||
          report.violations.size() < options.max_violations) {
        report.violations.push_back(std::move(violation));
      }
    } else {
      kept += rows.size();
    }
  }
  report.g3_error =
      considered == 0
          ? 0.0
          : static_cast<double>(considered - kept) /
                static_cast<double>(considered);
  // Deterministic ordering for reproducible reports.
  std::sort(report.violations.begin(), report.violations.end(),
            [](const FdViolation& a, const FdViolation& b) {
              return a.rows[0] < b.rows[0];
            });
  return report;
}

Result<std::vector<FdValidationReport>> ValidateFds(
    const EncodedTable& table, const FdSet& fds,
    const ValidationOptions& options) {
  std::vector<FdValidationReport> reports;
  reports.reserve(fds.size());
  for (const auto& fd : fds) {
    FDX_ASSIGN_OR_RETURN(FdValidationReport report,
                         ValidateFd(table, fd, options));
    reports.push_back(std::move(report));
  }
  return reports;
}

Result<std::vector<CellRepair>> SuggestRepairs(
    const EncodedTable& table, const FunctionalDependency& fd,
    const ValidationOptions& options) {
  FDX_ASSIGN_OR_RETURN(FdValidationReport report,
                       ValidateFd(table, fd, options));
  std::vector<CellRepair> repairs;
  for (const auto& violation : report.violations) {
    // Gate on evidence strength: tiny or split groups make majority
    // voting a coin flip (corrupted LHS cells shuffle rows into wrong
    // groups, so over-eager repairs break clean cells).
    if (violation.rows.size() < options.min_group_size) continue;
    const double majority_fraction =
        static_cast<double>(violation.rows.size() -
                            violation.deviating_rows.size()) /
        static_cast<double>(violation.rows.size());
    if (majority_fraction < options.min_majority_fraction) continue;
    // Donor: any row carrying the majority code.
    size_t donor = violation.rows[0];
    for (size_t r : violation.rows) {
      if (table.code(r, fd.rhs) == violation.majority_code) {
        donor = r;
        break;
      }
    }
    for (size_t r : violation.deviating_rows) {
      repairs.push_back({r, fd.rhs, donor});
    }
  }
  return repairs;
}

Table ApplyRepairs(const Table& table,
                   const std::vector<CellRepair>& repairs) {
  Table out = table;
  for (const auto& repair : repairs) {
    out.set_cell(repair.row, repair.column,
                 table.cell(repair.donor_row, repair.column));
  }
  return out;
}

}  // namespace fdx
