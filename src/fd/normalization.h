#ifndef FDX_FD_NORMALIZATION_H_
#define FDX_FD_NORMALIZATION_H_

#include <string>
#include <vector>

#include "fd/attribute_set.h"
#include "data/table.h"
#include "fd/fd.h"
#include "util/status.h"

namespace fdx {

/// Classical FD reasoning on top of discovered dependencies — the
/// database-normalization application the paper's introduction leads
/// with ("FDs are used in database normalization to reduce data
/// redundancy and improve data integrity").

/// Closure of `attrs` under `fds` (Armstrong's axioms via the standard
/// fixpoint): every attribute functionally determined by `attrs`.
AttributeSet Closure(const AttributeSet& attrs, const FdSet& fds);

/// True if X -> Y is implied by `fds` (Y in closure of X).
bool Implies(const FdSet& fds, const FunctionalDependency& fd);

/// All candidate keys of a relation with `num_attributes` attributes
/// under `fds`: minimal attribute sets whose closure covers everything.
/// Exponential in the worst case; `max_keys` caps the search.
std::vector<AttributeSet> CandidateKeys(size_t num_attributes,
                                        const FdSet& fds,
                                        size_t max_keys = 64);

/// A minimal cover of `fds`: singleton RHS (already our representation),
/// no extraneous LHS attributes, no redundant FDs.
FdSet MinimalCover(const FdSet& fds, size_t num_attributes);

/// One relation of a decomposition.
struct DecomposedRelation {
  std::vector<size_t> attributes;  ///< Sorted attribute indices.
  FunctionalDependency cause;      ///< The violating FD that split it off
                                   ///< (meaningful for all but the last).
  /// Renders e.g. "R1(City, State, Zip)".
  std::string ToString(const Schema& schema, size_t index) const;
};

/// BCNF decomposition of the schema under `fds` by the textbook
/// algorithm: while some relation has an FD X -> A with X not a
/// superkey of that relation, split it into (X, A) and (R - A).
/// Lossless by construction; dependency preservation is not guaranteed
/// (inherent to BCNF).
std::vector<DecomposedRelation> DecomposeBcnf(size_t num_attributes,
                                              const FdSet& fds);

/// True if every relation in `decomposition` is in BCNF w.r.t. the
/// projected dependencies of `fds`.
bool IsBcnf(const std::vector<DecomposedRelation>& decomposition,
            const FdSet& fds);

}  // namespace fdx

#endif  // FDX_FD_NORMALIZATION_H_
