#ifndef FDX_SYNTH_GENERATOR_H_
#define FDX_SYNTH_GENERATOR_H_

#include <cstdint>

#include "data/table.h"
#include "fd/fd.h"
#include "util/rng.h"
#include "util/status.h"

namespace fdx {

/// Configuration of the paper's synthetic data generator (§5.1,
/// "Synthetic Data Generation" and Table 2).
struct SyntheticConfig {
  size_t num_tuples = 1000;      ///< t
  size_t num_attributes = 12;    ///< r
  /// Domain cardinality of the LHS cartesian product (and of the RHS);
  /// a value is drawn uniformly from [domain_min, domain_max] per group.
  size_t domain_min = 64;        ///< d lower bound
  size_t domain_max = 216;       ///< d upper bound
  double noise_rate = 0.01;      ///< n: fraction of flipped FD cells
  /// Correlation strength rho is drawn uniformly from [0, rho_max] for
  /// non-FD groups (paper: 0.85).
  double rho_max = 0.85;
  uint64_t seed = 42;
};

/// Table 2 presets.
SyntheticConfig SmallTuples(SyntheticConfig config);
SyntheticConfig LargeTuples(SyntheticConfig config);
SyntheticConfig SmallAttributes(SyntheticConfig config, Rng* rng);
SyntheticConfig LargeAttributes(SyntheticConfig config, Rng* rng);
SyntheticConfig SmallDomain(SyntheticConfig config);
SyntheticConfig LargeDomain(SyntheticConfig config);

/// A generated instance: the clean table, the noisy table produced by
/// the cell-flip channel, and the planted ground-truth FDs (only the FD
/// groups; correlation groups are distractors the discovery methods must
/// reject).
struct SyntheticDataset {
  Table clean;
  Table noisy;
  FdSet true_fds;
};

/// Generates one instance following the paper's process:
///  1. attributes take a global order and are split into consecutive
///     groups of size 2..4 (LHS of size 1..3 plus one RHS);
///  2. alternating groups carry an exact FD phi: dom(X) -> dom(Y) or a
///     correlation P(Y = phi(X) | X) = rho with rho ~ U[0, rho_max];
///  3. noise flips cells of FD-participating attributes to a different
///     domain value with probability `noise_rate`.
Result<SyntheticDataset> GenerateSynthetic(const SyntheticConfig& config);

/// Flips each cell of the listed columns with probability `rate` to a
/// different value drawn from that column's observed domain. Exposed for
/// reuse by the benchmark drivers (Figure 7 noise sweeps).
Table FlipCells(const Table& table, const std::vector<size_t>& columns,
                double rate, Rng* rng);

/// Deletes (nulls out) each cell with probability `rate`; models the
/// naturally-missing-values corruption of the real-world experiments.
Table PunchHoles(const Table& table, double rate, Rng* rng);

}  // namespace fdx

#endif  // FDX_SYNTH_GENERATOR_H_
