#include "synth/generator.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace fdx {

namespace {

/// Deterministic mixing of a tuple of codes into a pseudo-random RHS
/// value; implements the random assignment phi: dom(X) -> dom(Y) without
/// materializing the (possibly huge) domain.
uint64_t MixCodes(const std::vector<int64_t>& codes, uint64_t salt) {
  uint64_t h = 0x9e3779b97f4a7c15ull ^ salt;
  for (int64_t c : codes) {
    h ^= static_cast<uint64_t>(c) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
  }
  return h;
}

}  // namespace

SyntheticConfig SmallTuples(SyntheticConfig config) {
  config.num_tuples = 1000;
  return config;
}

SyntheticConfig LargeTuples(SyntheticConfig config) {
  config.num_tuples = 100000;
  return config;
}

SyntheticConfig SmallAttributes(SyntheticConfig config, Rng* rng) {
  config.num_attributes = static_cast<size_t>(rng->NextInt(8, 16));
  return config;
}

SyntheticConfig LargeAttributes(SyntheticConfig config, Rng* rng) {
  config.num_attributes = static_cast<size_t>(rng->NextInt(40, 80));
  return config;
}

SyntheticConfig SmallDomain(SyntheticConfig config) {
  config.domain_min = 64;
  config.domain_max = 216;
  return config;
}

SyntheticConfig LargeDomain(SyntheticConfig config) {
  config.domain_min = 1000;
  config.domain_max = 1728;
  return config;
}

Result<SyntheticDataset> GenerateSynthetic(const SyntheticConfig& config) {
  if (config.num_attributes < 2) {
    return Status::InvalidArgument("need at least two attributes");
  }
  if (config.domain_min < 2 || config.domain_max < config.domain_min) {
    return Status::InvalidArgument("bad domain cardinality range");
  }
  Rng rng(config.seed);

  // 1. Split the globally ordered attributes into consecutive groups of
  // size 2..4 (LHS size 1..3 plus the RHS attribute).
  struct Group {
    std::vector<size_t> lhs;
    size_t rhs;
    bool is_fd;
    double rho;        // correlation strength for non-FD groups
    uint64_t salt;     // seed of phi
    size_t rhs_domain;
  };
  std::vector<Group> groups;
  std::vector<size_t> attr_domain(config.num_attributes, 2);
  size_t next = 0;
  size_t group_index = 0;
  while (next < config.num_attributes) {
    size_t size = static_cast<size_t>(rng.NextInt(2, 4));
    size = std::min(size, config.num_attributes - next);
    if (size < 2) {
      // A trailing loner joins the previous group's LHS.
      if (!groups.empty()) {
        groups.back().lhs.push_back(next);
        attr_domain[next] = static_cast<size_t>(std::max<int64_t>(
            2, rng.NextInt(2, 12)));
      }
      break;
    }
    Group group;
    for (size_t i = 0; i + 1 < size; ++i) group.lhs.push_back(next + i);
    group.rhs = next + size - 1;
    group.is_fd = (group_index % 2 == 0);  // half FDs, half correlations
    group.rho = rng.NextDouble(0.0, config.rho_max);
    group.salt = rng.engine()();
    // 2. Domain cardinality: draw v, give the RHS domain v and factor v
    // across the LHS attributes (paper: the cartesian product of the LHS
    // domains corresponds to v).
    const size_t v = static_cast<size_t>(
        rng.NextInt(static_cast<int64_t>(config.domain_min),
                     static_cast<int64_t>(config.domain_max)));
    group.rhs_domain = v;
    const double per_attr =
        std::pow(static_cast<double>(v),
                 1.0 / static_cast<double>(group.lhs.size()));
    for (size_t a : group.lhs) {
      attr_domain[a] =
          std::max<size_t>(2, static_cast<size_t>(std::llround(per_attr)));
    }
    attr_domain[group.rhs] = v;
    groups.push_back(std::move(group));
    next += size;
    ++group_index;
  }

  // Schema and ground truth.
  std::vector<std::string> names;
  for (size_t i = 0; i < config.num_attributes; ++i) {
    names.push_back("A" + std::to_string(i));
  }
  SyntheticDataset out;
  Table clean{Schema(names)};
  for (const auto& group : groups) {
    if (group.is_fd) out.true_fds.emplace_back(group.lhs, group.rhs);
  }

  // 3. Sample tuples group by group.
  std::vector<Value> row(config.num_attributes);
  std::vector<int64_t> lhs_codes;
  for (size_t t = 0; t < config.num_tuples; ++t) {
    for (const auto& group : groups) {
      lhs_codes.clear();
      for (size_t a : group.lhs) {
        const int64_t code =
            rng.NextInt(0, static_cast<int64_t>(attr_domain[a]) - 1);
        lhs_codes.push_back(code);
        row[a] = Value(code);
      }
      const int64_t mapped = static_cast<int64_t>(
          MixCodes(lhs_codes, group.salt) % group.rhs_domain);
      int64_t y = mapped;
      if (!group.is_fd && !rng.NextBernoulli(group.rho)) {
        // Uniform over the other values: P(Y != r0 | X) spread evenly.
        y = rng.NextInt(0, static_cast<int64_t>(group.rhs_domain) - 2);
        if (y >= mapped) ++y;
      }
      row[group.rhs] = Value(y);
    }
    clean.AppendRow(row);
  }

  // 4. Noise: flip only cells of attributes participating in true FDs.
  std::set<size_t> fd_attrs;
  for (const auto& fd : out.true_fds) {
    fd_attrs.insert(fd.rhs);
    fd_attrs.insert(fd.lhs.begin(), fd.lhs.end());
  }
  Rng noise_rng = rng.Fork();
  out.noisy = FlipCells(clean, {fd_attrs.begin(), fd_attrs.end()},
                        config.noise_rate, &noise_rng);
  out.clean = std::move(clean);
  return out;
}

Table FlipCells(const Table& table, const std::vector<size_t>& columns,
                double rate, Rng* rng) {
  Table out = table;
  if (rate <= 0.0) return out;
  for (size_t c : columns) {
    // Observed domain of the column.
    std::vector<Value> domain;
    {
      std::set<std::string> seen;
      for (size_t r = 0; r < table.num_rows(); ++r) {
        const Value& v = table.cell(r, c);
        if (v.is_null()) continue;
        if (seen.insert(v.ToString()).second) domain.push_back(v);
      }
    }
    if (domain.size() < 2) continue;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (!rng->NextBernoulli(rate)) continue;
      const Value& current = out.cell(r, c);
      // Draw a replacement different from the current value.
      for (int attempt = 0; attempt < 8; ++attempt) {
        const Value& candidate = domain[rng->NextUint64(domain.size())];
        if (!candidate.EqualsStrict(current)) {
          out.set_cell(r, c, candidate);
          break;
        }
      }
    }
  }
  return out;
}

Table PunchHoles(const Table& table, double rate, Rng* rng) {
  Table out = table;
  if (rate <= 0.0) return out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (rng->NextBernoulli(rate)) out.set_cell(r, c, Value::Null());
    }
  }
  return out;
}

}  // namespace fdx
