#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

namespace fdx {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_sibling_.empty()) {
    if (has_sibling_.back()) out_ += ',';
    has_sibling_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  has_sibling_.push_back(false);
}

void JsonWriter::EndObject() {
  out_ += '}';
  has_sibling_.pop_back();
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  has_sibling_.push_back(false);
}

void JsonWriter::EndArray() {
  out_ += ']';
  has_sibling_.pop_back();
}

void JsonWriter::Key(const std::string& name) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
}

void JsonWriter::Number(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
}

void JsonWriter::Integer(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

std::string JsonWriter::Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

}  // namespace fdx
