#ifndef FDX_UTIL_STATUS_H_
#define FDX_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace fdx {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of a lightweight status object instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kNumericalError,
  kTimeout,
  kInternal,
  /// Transient capacity exhaustion: the caller should back off and retry
  /// (the HTTP-429 analogue used by the service's bounded job queue).
  kUnavailable,
};

/// A Status describes the outcome of a fallible operation. Cheap to copy
/// in the OK case; carries a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: empty table".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status. Modeled after
/// arrow::Result; keeps fallible constructors out of the public API.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error Status keeps
  /// call sites terse: `return value;` / `return Status::IOError(...)`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Error status; OK() when the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Value accessors. Precondition: ok().
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status from an expression returning Status.
#define FDX_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::fdx::Status _fdx_status = (expr);        \
    if (!_fdx_status.ok()) return _fdx_status; \
  } while (false)

/// Assigns the value of a Result expression or propagates its error.
#define FDX_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto FDX_CONCAT_(_fdx_result, __LINE__) = (expr);      \
  if (!FDX_CONCAT_(_fdx_result, __LINE__).ok())          \
    return FDX_CONCAT_(_fdx_result, __LINE__).status();  \
  lhs = std::move(FDX_CONCAT_(_fdx_result, __LINE__)).value()

#define FDX_CONCAT_IMPL_(a, b) a##b
#define FDX_CONCAT_(a, b) FDX_CONCAT_IMPL_(a, b)

}  // namespace fdx

#endif  // FDX_UTIL_STATUS_H_
