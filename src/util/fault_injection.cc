#include "util/fault_injection.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/string_util.h"

namespace fdx {

namespace {

/// When an armed point fires.
enum class FireMode {
  kAlways,      ///< every visit
  kExactVisit,  ///< the N-th visit only
  kFromVisit,   ///< the N-th visit and every later one
  kEveryNth,    ///< every N-th visit (N, 2N, 3N, ...)
};

struct FaultPoint {
  FireMode mode = FireMode::kAlways;
  uint64_t visit = 0;                  ///< N of the grammar (1-based)
  std::atomic<uint64_t> visits{0};     ///< visits since arming
};

/// Registry state. The armed flag is the release-mode fast path; the map
/// is only read or written under the mutex (armed-path performance is
/// irrelevant — a triggered check sits next to an O(k^2) sweep).
struct Registry {
  std::atomic<bool> armed{false};
  std::atomic<bool> env_checked{false};  ///< FDX_FAULTS parsed or superseded
  std::mutex mu;
  std::unordered_map<std::string, std::unique_ptr<FaultPoint>> points;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Parses one `point[:schedule]` element into the registry map. Assumes
/// the caller holds the mutex.
Status ParseElement(const std::string& element, Registry* registry) {
  std::string trimmed(StripAsciiWhitespace(element));
  if (trimmed.empty()) {
    return Status::InvalidArgument("FDX_FAULTS: empty fault element");
  }
  auto point = std::make_unique<FaultPoint>();
  std::string name = trimmed;
  const size_t colon = trimmed.find(':');
  if (colon != std::string::npos) {
    name = trimmed.substr(0, colon);
    std::string schedule = trimmed.substr(colon + 1);
    if (name.empty() || schedule.empty()) {
      return Status::InvalidArgument("FDX_FAULTS: malformed element '" +
                                     trimmed + "'");
    }
    if (schedule != "*") {
      if (schedule.back() == '+') {
        point->mode = FireMode::kFromVisit;
        schedule.pop_back();
      } else if (schedule.back() == '%') {
        point->mode = FireMode::kEveryNth;
        schedule.pop_back();
      } else {
        point->mode = FireMode::kExactVisit;
      }
      char* end = nullptr;
      const unsigned long long n = std::strtoull(schedule.c_str(), &end, 10);
      if (schedule.empty() || end == nullptr || *end != '\0' || n == 0) {
        return Status::InvalidArgument(
            "FDX_FAULTS: schedule must be *, N, N+, or N% in '" + trimmed +
            "'");
      }
      point->visit = n;
    }
  }
  registry->points[name] = std::move(point);
  return Status::OK();
}

Status ArmLocked(const std::string& spec, Registry* registry) {
  registry->points.clear();
  registry->armed.store(false, std::memory_order_release);
  std::string trimmed(StripAsciiWhitespace(spec));
  if (trimmed.empty()) return Status::OK();
  size_t start = 0;
  while (start <= trimmed.size()) {
    const size_t comma = trimmed.find(',', start);
    const size_t end = comma == std::string::npos ? trimmed.size() : comma;
    Status parsed = ParseElement(trimmed.substr(start, end - start), registry);
    if (!parsed.ok()) {
      registry->points.clear();
      return parsed;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  registry->armed.store(!registry->points.empty(),
                        std::memory_order_release);
  return Status::OK();
}

/// Arms from the FDX_FAULTS environment variable exactly once, unless a
/// programmatic ArmFaults/DisarmFaults call already took ownership. A
/// malformed env spec is ignored (a fault-injection knob must never turn
/// into a crash of its own).
void MaybeArmFromEnv(Registry* registry) {
  if (registry->env_checked.load(std::memory_order_acquire)) return;
  const char* spec = std::getenv("FDX_FAULTS");
  if (spec != nullptr && spec[0] != '\0') (void)ArmLocked(spec, registry);
  registry->env_checked.store(true, std::memory_order_release);
}

}  // namespace

Status ArmFaults(const std::string& spec) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  // Programmatic arming supersedes the environment.
  registry.env_checked.store(true, std::memory_order_release);
  return ArmLocked(spec, &registry);
}

void DisarmFaults() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.env_checked.store(true, std::memory_order_release);
  registry.points.clear();
  registry.armed.store(false, std::memory_order_release);
}

bool FaultsArmed() {
  Registry& registry = GetRegistry();
  if (registry.armed.load(std::memory_order_acquire)) return true;
  if (registry.env_checked.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(registry.mu);
  MaybeArmFromEnv(&registry);
  return registry.armed.load(std::memory_order_acquire);
}

bool FaultTriggered(const char* point) {
  Registry& registry = GetRegistry();
  // Fast path: nothing armed and the environment already consulted —
  // a single relaxed/acquire load pair, no locking.
  if (!registry.armed.load(std::memory_order_acquire)) {
    if (registry.env_checked.load(std::memory_order_acquire)) return false;
    std::lock_guard<std::mutex> lock(registry.mu);
    MaybeArmFromEnv(&registry);
    if (!registry.armed.load(std::memory_order_acquire)) return false;
  }
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(point);
  if (it == registry.points.end()) return false;
  FaultPoint& fault = *it->second;
  const uint64_t visit =
      fault.visits.fetch_add(1, std::memory_order_relaxed) + 1;
  switch (fault.mode) {
    case FireMode::kAlways:
      return true;
    case FireMode::kExactVisit:
      return visit == fault.visit;
    case FireMode::kFromVisit:
      return visit >= fault.visit;
    case FireMode::kEveryNth:
      return visit % fault.visit == 0;
  }
  return false;
}

uint64_t FaultVisits(const std::string& point) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(point);
  if (it == registry.points.end()) return 0;
  return it->second->visits.load(std::memory_order_relaxed);
}

std::vector<std::string> ArmedFaultPoints() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.points.size());
  for (const auto& [name, point] : registry.points) names.push_back(name);
  return names;
}

}  // namespace fdx
