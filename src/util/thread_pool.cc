#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <utility>

namespace fdx {

size_t DefaultThreadCount() {
  if (const char* env = std::getenv("FDX_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

size_t ResolveThreadCount(size_t requested) {
  return requested == 0 ? DefaultThreadCount() : requested;
}

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  // Workers beyond the caller: the calling thread always participates in
  // ParallelFor, so a machine with H hardware threads wants H - 1 helpers.
  static ThreadPool* pool = new ThreadPool(DefaultThreadCount() - 1);
  return *pool;
}

namespace {

/// Shared state of one ParallelFor invocation. Helpers submitted to the
/// pool and the calling thread both claim chunks from `next_chunk`; the
/// last finisher wakes the caller.
struct ParallelForState {
  size_t begin = 0;
  size_t items = 0;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t, size_t)>* body = nullptr;

  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> done_chunks{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // first exception, guarded by mu

  /// Claims and runs chunks until none are left.
  void Drain() {
    for (;;) {
      const size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      // Even split: the first (items % num_chunks) chunks get one extra.
      const size_t base = items / num_chunks;
      const size_t extra = items % num_chunks;
      const size_t lo =
          begin + chunk * base + (chunk < extra ? chunk : extra);
      const size_t hi = lo + base + (chunk < extra ? 1 : 0);
      try {
        (*body)(chunk, lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
      if (done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ParallelForChunks(
    size_t begin, size_t end, size_t num_chunks, size_t threads,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (end <= begin) return;
  const size_t items = end - begin;
  if (num_chunks > items) num_chunks = items;
  if (num_chunks == 0) num_chunks = 1;
  threads = ResolveThreadCount(threads);

  if (num_chunks == 1 || threads == 1) {
    // Inline, still chunked: results match the concurrent execution
    // exactly because chunk boundaries ignore the thread count.
    const size_t base = items / num_chunks;
    const size_t extra = items % num_chunks;
    size_t lo = begin;
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      const size_t hi = lo + base + (chunk < extra ? 1 : 0);
      body(chunk, lo, hi);
      lo = hi;
    }
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->begin = begin;
  state->items = items;
  state->num_chunks = num_chunks;
  state->body = &body;

  ThreadPool& pool = ThreadPool::Shared();
  const size_t helpers_wanted =
      (threads < num_chunks ? threads : num_chunks) - 1;
  const size_t helpers =
      helpers_wanted < pool.size() ? helpers_wanted : pool.size();
  for (size_t i = 0; i < helpers; ++i) {
    pool.Submit([state] { state->Drain(); });
  }
  state->Drain();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->done_chunks.load(std::memory_order_acquire) ==
             state->num_chunks;
    });
  }
  // `body` outlives the wait above; helpers that wake later only see an
  // exhausted chunk cursor and return without touching it.
  if (state->error) std::rethrow_exception(state->error);
}

void ParallelFor(size_t begin, size_t end, size_t threads,
                 const std::function<void(size_t, size_t)>& body) {
  const size_t chunks = ResolveThreadCount(threads);
  ParallelForChunks(begin, end, chunks, threads,
                    [&body](size_t, size_t lo, size_t hi) { body(lo, hi); });
}

}  // namespace fdx
