#ifndef FDX_UTIL_RESERVOIR_H_
#define FDX_UTIL_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace fdx {

/// Deterministic reservoir sampler (Vitter's Algorithm R) over a stream
/// of uint32 items. Holds at most `budget` items at any moment, so
/// selecting a bounded pair sample from an out-of-core column costs
/// O(budget) memory no matter how many rows stream past.
///
/// Determinism contract: the reservoir after `Add`-ing items
/// x_0..x_{m-1} (in that order) is a pure function of (budget, seed, m,
/// items) — one RNG draw per item beyond the first `budget`. In
/// particular it does NOT depend on how the stream was sliced into
/// chunks, which is what makes the sampled streaming transform
/// reproduce the in-memory selection bit for bit at any chunk size.
///
/// With budget == 0 the sampler keeps nothing; with budget >= stream
/// length it keeps everything (and draws nothing from the RNG).
class ReservoirSampler {
 public:
  ReservoirSampler(size_t budget, uint64_t seed);

  /// Feeds one stream item.
  void Add(uint32_t item);

  /// Feeds the half-open range [lo, hi) in ascending order — the common
  /// "sample positions 0..n-1" case without materializing the iota.
  void AddRange(uint32_t lo, uint32_t hi);

  /// Items offered so far.
  uint64_t stream_size() const { return seen_; }

  /// Current reservoir contents, in slot order (implementation detail;
  /// use Sorted() for a canonical view).
  const std::vector<uint32_t>& items() const { return reservoir_; }

  /// The selection in ascending item order. Canonical: two samplers
  /// that saw the same (budget, seed, stream) agree element-wise.
  std::vector<uint32_t> Sorted() const;

 private:
  size_t budget_;
  Rng rng_;
  uint64_t seen_ = 0;
  std::vector<uint32_t> reservoir_;
};

}  // namespace fdx

#endif  // FDX_UTIL_RESERVOIR_H_
