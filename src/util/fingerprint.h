#ifndef FDX_UTIL_FINGERPRINT_H_
#define FDX_UTIL_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace fdx {

/// Streaming 128-bit content fingerprint (two independent FNV-1a lanes
/// over a length-prefixed byte stream). Used by the service's result
/// cache to key discovery results by dataset content: equal streams
/// produce equal digests, and the length prefixes make the framing
/// unambiguous ("ab" + "c" never collides with "a" + "bc").
///
/// This is a content hash, not a cryptographic one — cache keys only
/// need collision resistance against accidental collisions, and 128
/// bits of FNV keeps the hot path allocation- and dependency-free.
class Fingerprint {
 public:
  Fingerprint();

  /// Mixes `len` raw bytes into the digest, framed by their length.
  void Update(const void* data, size_t len);

  /// Mixes a string (length-prefixed, so field boundaries survive).
  void UpdateString(const std::string& text);

  /// Mixes an integer (fixed 8-byte little-endian encoding).
  void UpdateU64(uint64_t value);

  /// Mixes a double by bit pattern (so -0.0 and 0.0 stay distinct and
  /// the digest never depends on locale or formatting).
  void UpdateDouble(double value);

  /// Current digest as 32 lowercase hex characters.
  std::string Hex() const;

  /// Low lane of the digest (for tests and cheap comparisons).
  uint64_t lo() const { return lo_; }
  uint64_t hi() const { return hi_; }

 private:
  void Mix(const unsigned char* bytes, size_t len);

  uint64_t lo_;
  uint64_t hi_;
};

}  // namespace fdx

#endif  // FDX_UTIL_FINGERPRINT_H_
