#include "util/reservoir.h"

#include <algorithm>

namespace fdx {

ReservoirSampler::ReservoirSampler(size_t budget, uint64_t seed)
    : budget_(budget), rng_(seed) {
  reservoir_.reserve(budget);
}

void ReservoirSampler::Add(uint32_t item) {
  if (budget_ == 0) {
    ++seen_;
    return;
  }
  if (reservoir_.size() < budget_) {
    reservoir_.push_back(item);
    ++seen_;
    return;
  }
  // Classic Algorithm R: item i (0-based) replaces a uniformly random
  // slot with probability budget / (i + 1).
  const uint64_t j = rng_.NextUint64(seen_ + 1);
  if (j < budget_) reservoir_[static_cast<size_t>(j)] = item;
  ++seen_;
}

void ReservoirSampler::AddRange(uint32_t lo, uint32_t hi) {
  for (uint32_t item = lo; item < hi; ++item) Add(item);
}

std::vector<uint32_t> ReservoirSampler::Sorted() const {
  std::vector<uint32_t> out = reservoir_;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fdx
