#include "util/fingerprint.h"

#include <cstdio>
#include <cstring>

namespace fdx {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;
/// Second lane starts from a different offset so the two 64-bit streams
/// are decorrelated; both use the standard FNV prime.
constexpr uint64_t kFnvOffset2 = 14695981039346656037ull;

}  // namespace

Fingerprint::Fingerprint() : lo_(kFnvOffset), hi_(kFnvOffset2) {}

void Fingerprint::Mix(const unsigned char* bytes, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    lo_ = (lo_ ^ bytes[i]) * kFnvPrime;
    hi_ = (hi_ ^ bytes[i]) * kFnvPrime;
    hi_ ^= hi_ >> 29;  // extra diffusion keeps the lanes independent
  }
}

void Fingerprint::Update(const void* data, size_t len) {
  unsigned char frame[8];
  for (size_t i = 0; i < 8; ++i) {
    frame[i] = static_cast<unsigned char>((static_cast<uint64_t>(len) >>
                                           (8 * i)) & 0xff);
  }
  Mix(frame, sizeof(frame));
  Mix(static_cast<const unsigned char*>(data), len);
}

void Fingerprint::UpdateString(const std::string& text) {
  Update(text.data(), text.size());
}

void Fingerprint::UpdateU64(uint64_t value) {
  unsigned char bytes[8];
  for (size_t i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xff);
  }
  Update(bytes, sizeof(bytes));
}

void Fingerprint::UpdateDouble(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  UpdateU64(bits);
}

std::string Fingerprint::Hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi_),
                static_cast<unsigned long long>(lo_));
  return buf;
}

}  // namespace fdx
