#include "util/rng.h"

#include <cassert>

namespace fdx {

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace fdx
