#include "util/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace fdx {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

sockaddr_in LoopbackAddress(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr = LoopbackAddress(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Errno("connect to 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

Status Socket::SendAll(const std::string& data) {
  if (fd_ < 0) return Status::IOError("send on closed socket");
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::ReadLine(std::string* line, size_t max_bytes) {
  line->clear();
  for (;;) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return Status::OK();
    }
    if (buffer_.size() > max_bytes) {
      return Status::InvalidArgument("line exceeds " +
                                     std::to_string(max_bytes) + " bytes");
    }
    if (fd_ < 0) return Status::NotFound("end of stream");
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      if (!buffer_.empty()) {  // final unterminated line
        *line = std::move(buffer_);
        buffer_.clear();
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return Status::OK();
      }
      return Status::NotFound("end of stream");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket::~ListenSocket() { Close(); }

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Result<ListenSocket> ListenSocket::BindLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddress(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Errno("bind 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    const Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status status = Errno("getsockname");
    ::close(fd);
    return status;
  }
  return ListenSocket(fd, ntohs(addr.sin_port));
}

Result<Socket> ListenSocket::Accept() {
  if (fd_ < 0) return Status::Unavailable("listener shut down");
  for (;;) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
      const int one = 1;
      ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(conn);
    }
    if (errno == EINTR) continue;
    // EINVAL is what a shutdown() listener reports; treat every other
    // error the same way — the accept loop only needs "stop or retry".
    return Status::Unavailable("listener shut down: " +
                               std::string(std::strerror(errno)));
  }
}

void ListenSocket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace fdx
