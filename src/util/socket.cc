#include "util/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <utility>

#include "util/fault_injection.h"

namespace fdx {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

sockaddr_in LoopbackAddress(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

Status SetFdNonBlocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int updated =
      nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, updated) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

void SetNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

bool IsTransientAcceptErrno(int error) {
  switch (error) {
    case ECONNABORTED:  // peer gave up during the handshake
    case EMFILE:        // process fd limit — frees up as conns close
    case ENFILE:        // system fd limit
    case ENOBUFS:
    case ENOMEM:
    case EPERM:         // firewall said no to this one peer
    case EPROTO:
    case EINTR:
      return true;
    default:
      return false;
  }
}

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::ConnectLoopback(uint16_t port, double timeout_seconds) {
  if (timeout_seconds <= 0.0) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    sockaddr_in addr = LoopbackAddress(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const Status status =
          Errno("connect to 127.0.0.1:" + std::to_string(port));
      ::close(fd);
      return status;
    }
    SetNoDelay(fd);
    return Socket(fd);
  }

  // Deadline-bounded connect: non-blocking connect + poll for
  // writability, then restore blocking mode for the caller.
  FDX_ASSIGN_OR_RETURN(Socket sock, ConnectLoopbackAsync(port));
  pollfd pfd{};
  pfd.fd = sock.fd();
  pfd.events = POLLOUT;
  const int timeout_ms = static_cast<int>(timeout_seconds * 1000.0);
  int polled;
  do {
    polled = ::poll(&pfd, 1, timeout_ms < 1 ? 1 : timeout_ms);
  } while (polled < 0 && errno == EINTR);
  if (polled < 0) return Errno("poll(connect)");
  if (polled == 0) {
    return Status::Timeout("connect to 127.0.0.1:" + std::to_string(port) +
                           " timed out after " +
                           std::to_string(timeout_seconds) + "s");
  }
  FDX_RETURN_IF_ERROR(sock.FinishConnect());
  FDX_RETURN_IF_ERROR(sock.SetNonBlocking(false));
  return sock;
}

Result<Socket> Socket::ConnectLoopbackAsync(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  FDX_RETURN_IF_ERROR(sock.SetNonBlocking(true));
  sockaddr_in addr = LoopbackAddress(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    return Errno("connect to 127.0.0.1:" + std::to_string(port));
  }
  SetNoDelay(fd);
  return sock;
}

Status Socket::FinishConnect() {
  int error = 0;
  socklen_t len = sizeof(error);
  if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &error, &len) != 0) {
    return Errno("getsockopt(SO_ERROR)");
  }
  if (error != 0) {
    return Status::IOError(std::string("connect: ") + std::strerror(error));
  }
  return Status::OK();
}

Status Socket::SetNonBlocking(bool nonblocking) {
  if (fd_ < 0) return Status::IOError("socket closed");
  return SetFdNonBlocking(fd_, nonblocking);
}

Status Socket::SetReadTimeout(double seconds) {
  if (fd_ < 0) return Status::IOError("socket closed");
  timeval tv{};
  if (seconds > 0.0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - tv.tv_sec) * 1e6);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

Status Socket::SendAll(const std::string& data) {
  if (fd_ < 0) return Status::IOError("send on closed socket");
  size_t sent = 0;
  while (sent < data.size()) {
    if (FaultsArmed() && FaultTriggered(kFaultConnDrop)) {
      return Status::IOError("send: injected connection drop");
    }
    size_t chunk = data.size() - sent;
    if (FaultsArmed() && FaultTriggered(kFaultSocketWriteShort)) chunk = 1;
    const ssize_t n = ::send(fd_, data.data() + sent, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<IoOutcome> Socket::SendRaw(const char* data, size_t size) {
  if (fd_ < 0) return Status::IOError("send on closed socket");
  IoOutcome outcome;
  if (FaultsArmed()) {
    if (FaultTriggered(kFaultConnDrop)) {
      outcome.closed = true;
      return outcome;
    }
    if (FaultTriggered(kFaultSocketWriteEagain)) {
      outcome.would_block = true;
      return outcome;
    }
    if (size > 1 && FaultTriggered(kFaultSocketWriteShort)) size = 1;
  }
  for (;;) {
    const ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (n >= 0) {
      outcome.bytes = static_cast<size_t>(n);
      return outcome;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      outcome.would_block = true;
      return outcome;
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      outcome.closed = true;
      return outcome;
    }
    return Errno("send");
  }
}

Result<IoOutcome> Socket::RecvRaw(char* buf, size_t size) {
  if (fd_ < 0) return Status::IOError("recv on closed socket");
  IoOutcome outcome;
  if (FaultsArmed()) {
    if (FaultTriggered(kFaultConnDrop)) {
      outcome.closed = true;
      return outcome;
    }
    if (size > 1 && FaultTriggered(kFaultSocketReadShort)) size = 1;
  }
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, size, 0);
    if (n > 0) {
      outcome.bytes = static_cast<size_t>(n);
      return outcome;
    }
    if (n == 0) {
      outcome.closed = true;
      return outcome;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      outcome.would_block = true;
      return outcome;
    }
    if (errno == ECONNRESET) {
      outcome.closed = true;
      return outcome;
    }
    return Errno("recv");
  }
}

Status Socket::ReadLine(std::string* line, size_t max_bytes) {
  line->clear();
  for (;;) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return Status::OK();
    }
    if (buffer_.size() > max_bytes) {
      return Status::InvalidArgument("line exceeds " +
                                     std::to_string(max_bytes) + " bytes");
    }
    if (fd_ < 0) return Status::NotFound("end of stream");
    if (FaultsArmed() && FaultTriggered(kFaultConnDrop)) {
      buffer_.clear();
      return Status::NotFound("end of stream (injected connection drop)");
    }
    char chunk[4096];
    size_t want = sizeof(chunk);
    if (FaultsArmed() && FaultTriggered(kFaultSocketReadShort)) want = 1;
    const ssize_t n = ::recv(fd_, chunk, want, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Only reachable with SO_RCVTIMEO armed (blocking reads without
        // a timeout never see EAGAIN): the deadline expired.
        return Status::Timeout("read timed out");
      }
      return Errno("recv");
    }
    if (n == 0) {
      if (!buffer_.empty()) {  // final unterminated line
        *line = std::move(buffer_);
        buffer_.clear();
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return Status::OK();
      }
      return Status::NotFound("end of stream");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket::~ListenSocket() { Close(); }

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Result<ListenSocket> ListenSocket::BindLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddress(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Errno("bind 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return status;
  }
  // The event loop serves thousands of concurrent connects; ask for a
  // deep backlog (the kernel clamps to somaxconn).
  if (::listen(fd, 4096) != 0) {
    const Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status status = Errno("getsockname");
    ::close(fd);
    return status;
  }
  return ListenSocket(fd, ntohs(addr.sin_port));
}

Status ListenSocket::SetNonBlocking(bool nonblocking) {
  if (fd_ < 0) return Status::IOError("listener closed");
  return SetFdNonBlocking(fd_, nonblocking);
}

Result<Socket> ListenSocket::Accept() {
  if (fd_ < 0) return Status::Unavailable("listener shut down");
  for (;;) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
      SetNoDelay(conn);
      return Socket(conn);
    }
    if (errno == EINTR) continue;
    if (IsTransientAcceptErrno(errno)) {
      // Not fatal: the caller should back off briefly and re-Accept —
      // EMFILE clears when a connection closes, ECONNABORTED affects
      // only the one handshake that died.
      return Status::IOError("transient accept failure: " +
                             std::string(std::strerror(errno)));
    }
    // EINVAL is what a shutdown() listener reports; everything else
    // non-transient (EBADF, ...) equally means "stop accepting".
    return Status::Unavailable("listener shut down: " +
                               std::string(std::strerror(errno)));
  }
}

ListenSocket::AcceptOutcome ListenSocket::AcceptNonBlocking(
    Socket* out, std::string* error) {
  if (fd_ < 0) {
    *error = "listener closed";
    return AcceptOutcome::kShutdown;
  }
  for (;;) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
      SetNoDelay(conn);
      *out = Socket(conn);
      return AcceptOutcome::kAccepted;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return AcceptOutcome::kWouldBlock;
    }
    *error = std::strerror(errno);
    return IsTransientAcceptErrno(errno) ? AcceptOutcome::kRetryable
                                         : AcceptOutcome::kShutdown;
  }
}

void ListenSocket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace fdx
