#ifndef FDX_UTIL_STOPWATCH_H_
#define FDX_UTIL_STOPWATCH_H_

#include <chrono>

namespace fdx {

/// Wall-clock stopwatch used to report end-to-end experiment runtimes,
/// matching the paper's measurement methodology (§5.1).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed wall-clock seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft deadline. Long-running discovery algorithms (RFI, PYRO) poll
/// this to honor the benchmark time budget the way the paper caps runs
/// at eight hours.
class Deadline {
 public:
  /// A deadline `seconds` from now; non-positive means unlimited.
  explicit Deadline(double seconds) : budget_seconds_(seconds) {}

  /// Unlimited deadline.
  static Deadline Unlimited() { return Deadline(0.0); }

  bool Expired() const {
    return budget_seconds_ > 0.0 && watch_.ElapsedSeconds() > budget_seconds_;
  }

  double budget_seconds() const { return budget_seconds_; }

  /// Seconds left before expiry: 0 once expired, budget_seconds() for
  /// an unlimited deadline (callers treat non-positive budgets as "no
  /// limit", so the convention carries through).
  double remaining_seconds() const {
    if (budget_seconds_ <= 0.0) return budget_seconds_;
    const double left = budget_seconds_ - watch_.ElapsedSeconds();
    return left > 0.0 ? left : 0.0;
  }

 private:
  double budget_seconds_;
  Stopwatch watch_;
};

}  // namespace fdx

#endif  // FDX_UTIL_STOPWATCH_H_
