#ifndef FDX_UTIL_SOCKET_H_
#define FDX_UTIL_SOCKET_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace fdx {

/// Thin RAII wrappers over loopback TCP sockets — everything the fdxd
/// daemon and its clients need and nothing more. Connections are bound
/// to 127.0.0.1 only (the service is a local sidecar, not a network
/// server), writes suppress SIGPIPE so a vanished peer surfaces as a
/// Status instead of killing the process, and reads are buffered for
/// the daemon's line-delimited framing. Blocking calls serve the legacy
/// thread-per-connection path and the CLI clients; the non-blocking
/// surface (SetNonBlocking + RecvRaw/SendRaw/AcceptNonBlocking) is what
/// the epoll event loop and the fdxload engine are built on.

/// Outcome of one non-blocking read or write attempt.
struct IoOutcome {
  size_t bytes = 0;         ///< bytes actually transferred
  bool would_block = false; ///< EAGAIN/EWOULDBLOCK: retry on readiness
  bool closed = false;      ///< EOF (reads) or peer reset (both)
};

/// A connected stream socket. Movable, closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to 127.0.0.1:`port`. A positive `timeout_seconds` bounds
  /// the connect itself (kTimeout on expiry); 0 blocks indefinitely.
  static Result<Socket> ConnectLoopback(uint16_t port,
                                        double timeout_seconds = 0.0);

  /// Starts a non-blocking connect to 127.0.0.1:`port`. The socket is
  /// left non-blocking; once it polls writable, call FinishConnect() to
  /// learn whether the handshake succeeded. (`fdxload` opens thousands
  /// of connections this way without a thread per socket.)
  static Result<Socket> ConnectLoopbackAsync(uint16_t port);

  /// Resolves a ConnectLoopbackAsync handshake after writability:
  /// OK, or the connect error (SO_ERROR) as a Status.
  Status FinishConnect();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Switches O_NONBLOCK on or off.
  Status SetNonBlocking(bool nonblocking);

  /// Arms SO_RCVTIMEO: a blocked ReadLine past the deadline returns
  /// kTimeout instead of hanging forever. <= 0 clears the timeout.
  Status SetReadTimeout(double seconds);

  /// Writes all of `data` (retrying short writes; EPIPE-safe). Blocking
  /// sockets only — on a non-blocking socket use SendRaw.
  Status SendAll(const std::string& data);

  /// One non-blocking send attempt. Peer-gone errors (EPIPE/ECONNRESET)
  /// report `closed`, not an error Status.
  Result<IoOutcome> SendRaw(const char* data, size_t size);

  /// One non-blocking recv attempt into `buf`.
  Result<IoOutcome> RecvRaw(char* buf, size_t size);

  /// Reads up to and including the next '\n'; returns the line without
  /// the terminator (a trailing '\r' is also stripped). A clean EOF with
  /// no pending bytes yields kNotFound ("end of stream"); `max_bytes`
  /// bounds a single line to keep a hostile peer from ballooning memory.
  /// With SetReadTimeout armed, an idle wait surfaces as kTimeout.
  Status ReadLine(std::string* line, size_t max_bytes = 64 * 1024 * 1024);

  /// Half-closes or fully shuts down the connection (wakes a blocked
  /// reader on the other side — and on *this* side, which is how the
  /// daemon unblocks connection threads during teardown).
  void ShutdownBoth();

  /// Half-closes the receive side only: a blocked ReadLine on *this*
  /// socket wakes with EOF, but writes keep working. The daemon's
  /// teardown uses this so a response already being sent for a drained
  /// job still reaches the client.
  void ShutdownRead();

  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received but not yet returned
};

/// True for accept(2) errno values that indicate a transient condition
/// (aborted handshake, fd or buffer exhaustion) rather than a dead
/// listener — the accept loop must retry these, not exit. Exposed so
/// both I/O paths and the tests agree on the classification.
bool IsTransientAcceptErrno(int error);

/// A listening loopback socket.
class ListenSocket {
 public:
  /// Outcome of one non-blocking accept attempt.
  enum class AcceptOutcome {
    kAccepted,    ///< *out holds the new connection
    kWouldBlock,  ///< nothing pending; wait for readiness
    kRetryable,   ///< transient error (EMFILE/ECONNABORTED/...): carry on
    kShutdown,    ///< listener shut down or unusable: stop accepting
  };

  ListenSocket() = default;
  ~ListenSocket();

  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Binds and listens on 127.0.0.1:`port`; port 0 picks an ephemeral
  /// port (read it back with port()).
  static Result<ListenSocket> BindLoopback(uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  uint16_t port() const { return port_; }

  /// Switches O_NONBLOCK on the listener (for the event loop).
  Status SetNonBlocking(bool nonblocking);

  /// Blocks for the next connection. Transient failures (see
  /// IsTransientAcceptErrno) come back as kIOError — the caller should
  /// back off briefly and call again. After Shutdown() every pending
  /// and future Accept returns kUnavailable ("listener shut down").
  Result<Socket> Accept();

  /// One non-blocking accept attempt; `*error` carries detail for the
  /// kRetryable / kShutdown outcomes.
  AcceptOutcome AcceptNonBlocking(Socket* out, std::string* error);

  /// Wakes any blocked Accept and refuses new connections. The fd stays
  /// open (and is only released by the destructor / Close), so there is
  /// no close/accept race on fd reuse.
  void Shutdown();

  void Close();

 private:
  explicit ListenSocket(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace fdx

#endif  // FDX_UTIL_SOCKET_H_
