#ifndef FDX_UTIL_SOCKET_H_
#define FDX_UTIL_SOCKET_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace fdx {

/// Thin RAII wrappers over loopback TCP sockets — everything the fdxd
/// daemon and its clients need and nothing more. Connections are bound
/// to 127.0.0.1 only (the service is a local sidecar, not a network
/// server), writes suppress SIGPIPE so a vanished peer surfaces as a
/// Status instead of killing the process, and reads are buffered for
/// the daemon's line-delimited framing.

/// A connected stream socket. Movable, closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to 127.0.0.1:`port`.
  static Result<Socket> ConnectLoopback(uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all of `data` (retrying short writes; EPIPE-safe).
  Status SendAll(const std::string& data);

  /// Reads up to and including the next '\n'; returns the line without
  /// the terminator (a trailing '\r' is also stripped). A clean EOF with
  /// no pending bytes yields kNotFound ("end of stream"); `max_bytes`
  /// bounds a single line to keep a hostile peer from ballooning memory.
  Status ReadLine(std::string* line, size_t max_bytes = 64 * 1024 * 1024);

  /// Half-closes or fully shuts down the connection (wakes a blocked
  /// reader on the other side — and on *this* side, which is how the
  /// daemon unblocks connection threads during teardown).
  void ShutdownBoth();

  /// Half-closes the receive side only: a blocked ReadLine on *this*
  /// socket wakes with EOF, but writes keep working. The daemon's
  /// teardown uses this so a response already being sent for a drained
  /// job still reaches the client.
  void ShutdownRead();

  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received but not yet returned
};

/// A listening loopback socket.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket();

  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Binds and listens on 127.0.0.1:`port`; port 0 picks an ephemeral
  /// port (read it back with port()).
  static Result<ListenSocket> BindLoopback(uint16_t port);

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

  /// Blocks for the next connection. After Shutdown() every pending and
  /// future Accept returns kUnavailable ("listener shut down").
  Result<Socket> Accept();

  /// Wakes any blocked Accept and refuses new connections. The fd stays
  /// open (and is only released by the destructor / Close), so there is
  /// no close/accept race on fd reuse.
  void Shutdown();

  void Close();

 private:
  explicit ListenSocket(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace fdx

#endif  // FDX_UTIL_SOCKET_H_
