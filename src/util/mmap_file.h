#ifndef FDX_UTIL_MMAP_FILE_H_
#define FDX_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace fdx {

/// Read-only memory-mapped file. The chunk store's fast read path maps
/// chunk files instead of copying them through read(2): column slices
/// are consumed straight out of the page cache, and pages are released
/// with `madvise(MADV_DONTNEED)` as soon as a slice has been decoded so
/// a bounded-memory scan never accumulates mapped residency. Mapped
/// pages are file-backed and clean (the mapping is PROT_READ), which
/// means the kernel can reclaim them at any time — `ResidentBytes`
/// reports how many are currently resident so RSS-ceiling accounting
/// can subtract them from the polled process figure.
///
/// Movable, not copyable; the destructor unmaps.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only and advises MADV_SEQUENTIAL (chunk columns
  /// are contiguous slices, read front to back). Empty files map to a
  /// valid zero-length object (data() == nullptr, size() == 0).
  static Result<MmapFile> Open(const std::string& path);

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr; }

  /// Tells the kernel the byte range [offset, offset + length) is done
  /// with: resident pages are dropped (clean, file-backed — nothing is
  /// lost, a later touch faults them back in). The range is shrunk to
  /// whole pages so neighbouring data that is still live is never
  /// dropped by accident. Safe to call concurrently with readers of
  /// other ranges.
  void AdviseDontNeed(size_t offset, size_t length) const;

  /// Bytes of this mapping currently resident in memory (mincore scan);
  /// 0 when unmapped or on mincore failure.
  uint64_t ResidentBytes() const;

 private:
  char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace fdx

#endif  // FDX_UTIL_MMAP_FILE_H_
