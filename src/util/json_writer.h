#ifndef FDX_UTIL_JSON_WRITER_H_
#define FDX_UTIL_JSON_WRITER_H_

#include <string>
#include <vector>

namespace fdx {

/// Minimal JSON emitter used by the CLI's machine-readable output.
/// Produces compact, valid JSON; callers drive the nesting explicitly.
///
///   JsonWriter json;
///   json.BeginObject();
///   json.Key("fds");
///   json.BeginArray();
///   ...
///   json.EndArray();
///   json.EndObject();
///   std::string out = json.TakeString();
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Writes an object key; must be followed by a value or container.
  void Key(const std::string& name);

  void String(const std::string& value);
  void Number(double value);
  void Integer(int64_t value);
  void Bool(bool value);
  void Null();

  /// Finishes and returns the document.
  std::string TakeString() { return std::move(out_); }

  /// Escapes a string per RFC 8259: quotes, backslashes, the named
  /// control escapes (\n \r \t \b \f), \u00XX for the rest of C0, and
  /// byte-exact passthrough of everything >= 0x20 (UTF-8 sequences
  /// survive untouched). The service protocol round-trips arbitrary
  /// cell values through this, so the guarantee is load-bearing.
  static std::string Escape(const std::string& text);

 private:
  /// Emits a comma if the previous sibling requires one.
  void MaybeComma();

  std::string out_;
  std::vector<bool> has_sibling_;  ///< per nesting level
  bool pending_key_ = false;
};

}  // namespace fdx

#endif  // FDX_UTIL_JSON_WRITER_H_
