#include "util/json_parser.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace fdx {

namespace {
constexpr size_t kMaxDepth = 128;
}  // namespace

/// Recursive-descent parser over the raw text. Positions in error
/// messages are 0-based byte offsets into the line — protocol messages
/// are single lines, so byte offsets are the useful coordinate.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    FDX_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ConsumeLiteral(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Error(std::string("expected '") + literal + "'");
      }
      ++pos_;
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
        FDX_RETURN_IF_ERROR(ConsumeLiteral("true"));
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return Status::OK();
      case 'f':
        FDX_RETURN_IF_ERROR(ConsumeLiteral("false"));
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return Status::OK();
      case 'n':
        FDX_RETURN_IF_ERROR(ConsumeLiteral("null"));
        out->kind_ = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    ++pos_;  // '{'
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      FDX_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      FDX_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      // Last duplicate wins, matching common parser behaviour.
      bool replaced = false;
      for (auto& member : out->members_) {
        if (member.first == key) {
          member.second = std::move(value);
          replaced = true;
          break;
        }
      }
      if (!replaced) out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    ++pos_;  // '['
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      FDX_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  static void AppendUtf8(uint32_t code_point, std::string* out) {
    if (code_point < 0x80) {
      out->push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (code_point >> 6)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
    } else if (code_point < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (code_point >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (code_point >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
    }
  }

  Status ParseHex4(uint32_t* value) {
    *value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return Error("truncated \\u escape");
      const char ch = text_[pos_++];
      *value <<= 4;
      if (ch >= '0' && ch <= '9') {
        *value |= static_cast<uint32_t>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        *value |= static_cast<uint32_t>(ch - 'a' + 10);
      } else if (ch >= 'A' && ch <= 'F') {
        *value |= static_cast<uint32_t>(ch - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const unsigned char ch = static_cast<unsigned char>(text_[pos_]);
      if (ch == '"') {
        ++pos_;
        return Status::OK();
      }
      if (ch < 0x20) return Error("unescaped control character in string");
      if (ch != '\\') {
        out->push_back(static_cast<char>(ch));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t code_point = 0;
          FDX_RETURN_IF_ERROR(ParseHex4(&code_point));
          if (code_point >= 0xd800 && code_point <= 0xdbff) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("lone high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            FDX_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xdc00 || low > 0xdfff) {
              return Error("invalid low surrogate");
            }
            code_point =
                0x10000 + ((code_point - 0xd800) << 10) + (low - 0xdc00);
          } else if (code_point >= 0xdc00 && code_point <= 0xdfff) {
            return Error("lone low surrogate");
          }
          AppendUtf8(code_point, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
      pos_ = start;
      return Error("invalid number '" + token + "'");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  JsonParser parser(text);
  return parser.Parse();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_number() ? value->number_value()
                                                : fallback;
}

bool JsonValue::BoolOr(const std::string& key, bool fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_bool() ? value->bool_value() : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_string() ? value->string_value()
                                                : fallback;
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue value;
  value.kind_ = Kind::kBool;
  value.bool_ = v;
  return value;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue value;
  value.kind_ = Kind::kNumber;
  value.number_ = v;
  return value;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue value;
  value.kind_ = Kind::kString;
  value.string_ = std::move(v);
  return value;
}

}  // namespace fdx
