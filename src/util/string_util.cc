#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace fdx {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool IsInteger(std::string_view text) {
  if (text.empty()) return false;
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool IsDouble(std::string_view text) {
  if (text.empty()) return false;
  double value = 0.0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  return ec == std::errc() && ptr == text.data() + text.size();
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

}  // namespace fdx
