#ifndef FDX_UTIL_RNG_H_
#define FDX_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace fdx {

/// Deterministic pseudo-random number generator used everywhere in the
/// library. Every stochastic component takes an explicit seed so that
/// experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t NextUint64(uint64_t n) {
    std::uniform_int_distribution<uint64_t> dist(0, n - 1);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal draw.
  double NextGaussian() {
    std::normal_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Draws an index from an unnormalized discrete distribution.
  /// Precondition: weights non-empty with a positive total mass.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffles the given indices in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = NextUint64(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Fork a child generator with a derived seed; lets components consume
  /// randomness without perturbing the parent stream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace fdx

#endif  // FDX_UTIL_RNG_H_
