#include "util/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace fdx {
namespace {

std::string ErrnoText(const char* what, const std::string& path) {
  return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: '" + path + "'");
    }
    return Status::IOError(ErrnoText("cannot open", path));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      errno = saved;
      return Status::IOError(ErrnoText("cannot read", path));
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Result<std::string> ReadFileSlice(const std::string& path, uint64_t offset,
                                  uint64_t length) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: '" + path + "'");
    }
    return Status::IOError(ErrnoText("cannot open", path));
  }
  std::string out;
  out.resize(length);
  size_t got = 0;
  while (got < length) {
    ssize_t n = ::pread(fd, out.data() + got, length - got,
                        static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      errno = saved;
      return Status::IOError(ErrnoText("cannot read", path));
    }
    if (n == 0) {
      ::close(fd);
      return Status::IOError("short read from '" + path + "': wanted " +
                             std::to_string(length) + " bytes at offset " +
                             std::to_string(offset) + ", file ended after " +
                             std::to_string(got));
    }
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  return out;
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  // The temp file must live in the same directory as the target so the
  // final rename is atomic (same filesystem).
  std::string tmp = path + ".tmp." + std::to_string(::getpid());
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IOError(ErrnoText("cannot create", tmp));
  size_t off = 0;
  while (off < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      errno = saved;
      return Status::IOError(ErrnoText("cannot write", tmp));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = saved;
    return Status::IOError(ErrnoText("cannot fsync", tmp));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError(ErrnoText("cannot close", tmp));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    return Status::IOError(ErrnoText("cannot rename into", path));
  }
  return Status::OK();
}

Status EnsureDirectory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + path +
                           "': " + ec.message());
  }
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoText("cannot remove", path));
  }
  return Status::OK();
}

Status RemoveDirectoryRecursive(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
  if (ec) {
    return Status::IOError("cannot remove directory '" + path +
                           "': " + ec.message());
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDirectory(const std::string& path) {
  std::error_code ec;
  std::filesystem::directory_iterator it(path, ec);
  if (ec) {
    return Status::IOError("cannot list directory '" + path +
                           "': " + ec.message());
  }
  std::vector<std::string> names;
  for (const auto& entry : it) {
    std::error_code type_ec;
    if (entry.is_regular_file(type_ec) && !type_ec) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

uint64_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total = 0, resident = 0;
  int matched = std::fscanf(f, "%llu %llu", &total, &resident);
  std::fclose(f);
  if (matched != 2) return 0;
  return static_cast<uint64_t>(resident) *
         static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
}

}  // namespace fdx
