#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace fdx {
namespace {

size_t PageSize() {
  static const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

}  // namespace

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: '" + path + "'");
    }
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::IOError("cannot stat '" + path +
                           "': " + std::strerror(saved));
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ == 0) {
    ::close(fd);
    return file;
  }
  void* mapped =
      ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference to the file; the fd is done.
  int saved = errno;
  ::close(fd);
  if (mapped == MAP_FAILED) {
    file.size_ = 0;
    return Status::IOError("cannot mmap '" + path +
                           "': " + std::strerror(saved));
  }
  file.data_ = static_cast<char*>(mapped);
  (void)::madvise(file.data_, file.size_, MADV_SEQUENTIAL);
  return file;
}

void MmapFile::AdviseDontNeed(size_t offset, size_t length) const {
  if (data_ == nullptr || length == 0 || offset >= size_) return;
  const size_t page = PageSize();
  // Round the start up and the end down: only pages wholly inside the
  // range are dropped, so bytes shared with a neighbouring live range
  // survive.
  const size_t end = std::min(size_, offset + length);
  const size_t lo = (offset + page - 1) / page * page;
  const size_t hi = end / page * page;
  if (lo >= hi) return;
  (void)::madvise(data_ + lo, hi - lo, MADV_DONTNEED);
}

uint64_t MmapFile::ResidentBytes() const {
  if (data_ == nullptr) return 0;
  const size_t page = PageSize();
  const size_t pages = (size_ + page - 1) / page;
  std::vector<unsigned char> vec(pages);
  if (::mincore(data_, size_, vec.data()) != 0) return 0;
  uint64_t resident = 0;
  for (unsigned char byte : vec) {
    if (byte & 1) ++resident;
  }
  return resident * page;
}

}  // namespace fdx
