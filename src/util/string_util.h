#ifndef FDX_UTIL_STRING_UTIL_H_
#define FDX_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fdx {

/// Splits `text` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

/// True if `text` parses fully as a decimal integer.
bool IsInteger(std::string_view text);

/// True if `text` parses fully as a floating-point number.
bool IsDouble(std::string_view text);

/// Formats a double with fixed precision (used by report tables).
std::string FormatDouble(double value, int precision);

}  // namespace fdx

#endif  // FDX_UTIL_STRING_UTIL_H_
