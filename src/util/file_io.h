#ifndef FDX_UTIL_FILE_IO_H_
#define FDX_UTIL_FILE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fdx {

/// Small filesystem helpers for the durability layer. All paths are
/// taken as-is (no tilde or environment expansion).

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Reads exactly `length` bytes starting at `offset`. Fails with
/// kIOError if the file ends early — callers use this for fixed-layout
/// binary files (chunk stores) where a short read means corruption.
Result<std::string> ReadFileSlice(const std::string& path, uint64_t offset,
                                  uint64_t length);

/// Durable write: writes `contents` to a temporary file in the target's
/// directory, fsyncs it, then renames it over `path`. Readers never see
/// a torn file — they observe either the old contents or the new ones.
Status WriteFileAtomic(const std::string& path, const std::string& contents);

/// Creates `path` (and missing parents) as a directory. Succeeds if the
/// directory already exists.
Status EnsureDirectory(const std::string& path);

/// Removes a file; missing files are not an error.
Status RemoveFile(const std::string& path);

/// Removes a directory tree; a missing root is not an error.
Status RemoveDirectoryRecursive(const std::string& path);

/// Names of regular files directly inside `path` (not recursive),
/// sorted for determinism.
Result<std::vector<std::string>> ListDirectory(const std::string& path);

/// Resident set size of this process in bytes (Linux /proc/self/statm);
/// returns 0 when unavailable.
uint64_t CurrentRssBytes();

}  // namespace fdx

#endif  // FDX_UTIL_FILE_IO_H_
