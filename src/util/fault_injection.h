#ifndef FDX_UTIL_FAULT_INJECTION_H_
#define FDX_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fdx {

/// Deterministic fault injection for exercising failure-recovery paths.
///
/// The library declares *fault points* — named places where a numerical
/// or I/O failure can plausibly occur (a glasso sweep, a factorization
/// pivot, a CSV read). A test (or an operator, via the `FDX_FAULTS`
/// environment variable) arms a subset of them; armed points then fail
/// deterministically on a chosen visit, which lets the recovery chain,
/// timeout paths, and runner error capture be tested without hunting for
/// pathological inputs.
///
/// Spec grammar (comma-separated list):
///   point         fire on every visit
///   point:*       same as above
///   point:N       fire on the N-th visit only (1-based)
///   point:N+      fire on the N-th visit and every later one
///   point:N%      fire on every N-th visit (N, 2N, 3N, ...)
///
/// Example: `FDX_FAULTS=glasso.sweep,seqlasso.column:1` makes every
/// graphical-lasso attempt diverge and the first sequential-lasso column
/// solve fail, driving a Discover() run down the full recovery chain.
///
/// When nothing is armed the per-point check is a single relaxed atomic
/// load — safe to leave compiled into release builds. Visit counters are
/// atomic, so points may be hit from worker threads.

/// Registered fault-point names (kept in one place so tests and docs
/// don't drift from the call sites).
inline constexpr char kFaultGlassoSweep[] = "glasso.sweep";
inline constexpr char kFaultUdutPivot[] = "udut.pivot";
inline constexpr char kFaultLassoSolve[] = "lasso.solve";
inline constexpr char kFaultSeqLassoColumn[] = "seqlasso.column";
inline constexpr char kFaultCsvRead[] = "csv.read";
inline constexpr char kFaultServiceAccept[] = "service.accept";
inline constexpr char kFaultServiceEnqueue[] = "service.enqueue";
/// Socket-level chaos points (see util/socket.cc). Short reads/writes
/// clamp one transfer to a single byte; `socket.write.eagain` reports a
/// spurious would-block to non-blocking writers; `conn.drop` makes the
/// operation behave as if the peer vanished (reset/EOF). Prefer the
/// `:N%` schedule for the sustained modes — an always-firing EAGAIN
/// never lets a writer make progress.
/// Chunk-store I/O points. `store.mmap` fails the attempt to map a
/// chunk file (the store falls back to the pread path and counts the
/// fallback); `store.decompress` fails a chunk-payload decompression
/// (no fallback exists — the error surfaces loudly).
inline constexpr char kFaultStoreMmap[] = "store.mmap";
inline constexpr char kFaultStoreDecompress[] = "store.decompress";
inline constexpr char kFaultSocketReadShort[] = "socket.read.short";
inline constexpr char kFaultSocketWriteShort[] = "socket.write.short";
inline constexpr char kFaultSocketWriteEagain[] = "socket.write.eagain";
inline constexpr char kFaultConnDrop[] = "conn.drop";

/// Arms the faults described by `spec` (see grammar above), replacing any
/// previously armed set. An empty spec disarms everything. Counters reset.
Status ArmFaults(const std::string& spec);

/// Disarms all fault points and clears their visit counters.
void DisarmFaults();

/// True when at least one fault point is armed (programmatically or via
/// the `FDX_FAULTS` environment variable, which is read lazily on the
/// first triggered-check after startup).
bool FaultsArmed();

/// Records a visit to `point` and reports whether the armed schedule says
/// this visit must fail. Always false (and counts nothing) when no faults
/// are armed.
bool FaultTriggered(const char* point);

/// Number of visits `point` has received since it was armed. 0 for
/// unarmed points (visits are only counted while armed).
uint64_t FaultVisits(const std::string& point);

/// Names of the currently armed points (for diagnostics and tests).
std::vector<std::string> ArmedFaultPoints();

/// Injects a failure at a named point: evaluates to a `return status;`
/// when the point is armed and scheduled to fire. The status expression
/// is only evaluated on the failing visit.
#define FDX_INJECT_FAULT(point, status_expr)                  \
  do {                                                        \
    if (::fdx::FaultTriggered(point)) return (status_expr);   \
  } while (false)

}  // namespace fdx

#endif  // FDX_UTIL_FAULT_INJECTION_H_
