#ifndef FDX_UTIL_EPOLL_H_
#define FDX_UTIL_EPOLL_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace fdx {

/// Thin RAII wrapper over a Linux epoll instance plus an eventfd wakeup
/// channel — the readiness substrate of the fdxd event loop. Each
/// registered fd carries a caller-chosen 64-bit tag that comes back in
/// the ready events, so the loop can map events to connections without
/// a side table. One extra fd (the eventfd) is registered internally
/// under kWakeupTag: Notify() from any thread makes a blocked Wait()
/// return, which is how worker threads hand completed responses back to
/// the I/O thread.
class Epoll {
 public:
  /// Tag reserved for the internal wakeup eventfd; never returned to
  /// callers (Wait() swallows it after draining the eventfd counter).
  static constexpr uint64_t kWakeupTag = ~uint64_t{0};

  struct Event {
    uint64_t tag = 0;
    bool readable = false;   ///< EPOLLIN
    bool writable = false;   ///< EPOLLOUT
    bool hangup = false;     ///< EPOLLHUP | EPOLLERR | EPOLLRDHUP
  };

  Epoll() = default;
  ~Epoll();

  Epoll(Epoll&& other) noexcept;
  Epoll& operator=(Epoll&& other) noexcept;
  Epoll(const Epoll&) = delete;
  Epoll& operator=(const Epoll&) = delete;

  /// Creates the epoll instance and its wakeup eventfd.
  static Result<Epoll> Create();

  bool valid() const { return epoll_fd_ >= 0; }

  /// Registers `fd` (level-triggered). `want_write` additionally arms
  /// EPOLLOUT; EPOLLIN and EPOLLRDHUP are always armed.
  Status Add(int fd, uint64_t tag, bool want_write = false);

  /// Re-arms `fd`'s interest set. The event loop disarms reads to
  /// backpressure a connection whose pipeline queue is full, and arms
  /// EPOLLOUT while its write buffer has pending bytes. EPOLLRDHUP
  /// stays armed either way so hangups are always seen.
  Status Modify(int fd, uint64_t tag, bool want_read, bool want_write);

  /// Deregisters `fd`. Safe to call for fds the kernel already dropped.
  void Remove(int fd);

  /// Blocks up to `timeout_ms` (-1: forever) and appends ready events to
  /// `*events` (cleared first). The wakeup eventfd is drained and never
  /// reported. Returns the number of external events delivered.
  Result<size_t> Wait(int timeout_ms, std::vector<Event>* events);

  /// Wakes a concurrent (or the next) Wait(). Async-signal-unsafe but
  /// thread-safe; cheap enough to call per completed job.
  void Notify();

 private:
  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
};

}  // namespace fdx

#endif  // FDX_UTIL_EPOLL_H_
