#ifndef FDX_UTIL_THREAD_POOL_H_
#define FDX_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fdx {

/// Number of worker threads the library uses when a caller asks for the
/// default (`threads == 0`): the `FDX_THREADS` environment variable if it
/// is set to a positive integer, otherwise `std::thread::hardware_
/// concurrency()`. Always at least 1. Reads the environment on every
/// call so tests (and long-lived hosts) can adjust it at runtime.
size_t DefaultThreadCount();

/// Maps a requested thread count to an effective one: 0 means "use the
/// default" (see DefaultThreadCount); anything else is returned as-is.
size_t ResolveThreadCount(size_t requested);

/// A fixed-size pool of worker threads consuming a FIFO task queue.
/// Tasks must not throw (wrap bodies that can). The pool is intentionally
/// work-stealing free: ParallelFor (below) hands out deterministic
/// contiguous chunks through a shared atomic cursor, so scheduling order
/// never influences results.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is allowed and spawns none; Submit
  /// is then illegal, but ParallelFor degrades to inline execution).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution. Precondition: size() > 0.
  void Submit(std::function<void()> task);

  /// The process-wide pool, lazily created with DefaultThreadCount()
  /// workers (sized once, at first use).
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `body(chunk_begin, chunk_end)` over [begin, end) split into at
/// most `threads` contiguous, near-equal chunks (`threads == 0` resolves
/// via DefaultThreadCount). Chunk boundaries depend only on the range and
/// the chunk count, never on scheduling. Blocks until every chunk has
/// finished; the first exception thrown by `body` is rethrown in the
/// caller. The calling thread participates in the work, so the function
/// makes progress even when the shared pool is busy or empty (no nested-
/// parallelism deadlock). With one chunk (or an empty range) the body
/// runs inline with no synchronization.
void ParallelFor(size_t begin, size_t end, size_t threads,
                 const std::function<void(size_t, size_t)>& body);

/// Variant passing the chunk index as well: `body(chunk, chunk_begin,
/// chunk_end)` with `chunk` in [0, num_chunks). `num_chunks` is honored
/// exactly (capped to the number of items), which makes per-chunk
/// accumulator patterns deterministic for a *fixed* chunk count no matter
/// how many threads execute them; `threads` only bounds concurrency.
void ParallelForChunks(size_t begin, size_t end, size_t num_chunks,
                       size_t threads,
                       const std::function<void(size_t, size_t, size_t)>& body);

}  // namespace fdx

#endif  // FDX_UTIL_THREAD_POOL_H_
