#include "util/epoll.h"

#include <cerrno>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <utility>

namespace fdx {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Epoll::~Epoll() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
}

Epoll::Epoll(Epoll&& other) noexcept
    : epoll_fd_(other.epoll_fd_), wakeup_fd_(other.wakeup_fd_) {
  other.epoll_fd_ = -1;
  other.wakeup_fd_ = -1;
}

Epoll& Epoll::operator=(Epoll&& other) noexcept {
  if (this != &other) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
    epoll_fd_ = other.epoll_fd_;
    wakeup_fd_ = other.wakeup_fd_;
    other.epoll_fd_ = -1;
    other.wakeup_fd_ = -1;
  }
  return *this;
}

Result<Epoll> Epoll::Create() {
  Epoll ep;
  ep.epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep.epoll_fd_ < 0) return Errno("epoll_create1");
  ep.wakeup_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (ep.wakeup_fd_ < 0) return Errno("eventfd");
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = kWakeupTag;
  if (::epoll_ctl(ep.epoll_fd_, EPOLL_CTL_ADD, ep.wakeup_fd_, &event) != 0) {
    return Errno("epoll_ctl(wakeup)");
  }
  return ep;
}

Status Epoll::Add(int fd, uint64_t tag, bool want_write) {
  epoll_event event{};
  event.events = EPOLLIN | EPOLLRDHUP | (want_write ? EPOLLOUT : 0u);
  event.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    return Errno("epoll_ctl(add)");
  }
  return Status::OK();
}

Status Epoll::Modify(int fd, uint64_t tag, bool want_read, bool want_write) {
  epoll_event event{};
  event.events = (want_read ? EPOLLIN : 0u) | EPOLLRDHUP |
                 (want_write ? EPOLLOUT : 0u);
  event.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
    return Errno("epoll_ctl(mod)");
  }
  return Status::OK();
}

void Epoll::Remove(int fd) {
  // A closed fd is auto-removed by the kernel; EBADF/ENOENT here are
  // expected in teardown races and deliberately ignored.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

Result<size_t> Epoll::Wait(int timeout_ms, std::vector<Event>* events) {
  events->clear();
  epoll_event ready[64];
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, ready, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return Errno("epoll_wait");
  for (int i = 0; i < n; ++i) {
    if (ready[i].data.u64 == kWakeupTag) {
      uint64_t drained = 0;
      // Non-blocking eventfd: one read clears the counter.
      while (::read(wakeup_fd_, &drained, sizeof(drained)) > 0) {
      }
      continue;
    }
    Event event;
    event.tag = ready[i].data.u64;
    event.readable = (ready[i].events & EPOLLIN) != 0;
    event.writable = (ready[i].events & EPOLLOUT) != 0;
    event.hangup =
        (ready[i].events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0;
    events->push_back(event);
  }
  return events->size();
}

void Epoll::Notify() {
  const uint64_t one = 1;
  // EAGAIN (counter saturated) still leaves Wait() wakeable; short
  // writes cannot happen on an eventfd.
  [[maybe_unused]] ssize_t n = ::write(wakeup_fd_, &one, sizeof(one));
}

}  // namespace fdx
