#ifndef FDX_UTIL_JSON_PARSER_H_
#define FDX_UTIL_JSON_PARSER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace fdx {

/// Parsed JSON document tree — the decoding half of the service
/// protocol (util/json_writer is the encoding half). Strict RFC 8259
/// subset: UTF-8 input, \uXXXX escapes (including surrogate pairs),
/// doubles for all numbers, duplicate object keys keep the last value.
/// Object member order is preserved for diagnostics, lookup is by key.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  /// Parses a complete document; trailing non-whitespace is an error,
  /// as is nesting deeper than 128 levels (a framing guard — protocol
  /// messages are shallow).
  static Result<JsonValue> Parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors. Preconditions: matching kind().
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; null for non-objects and missing keys.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience getters with fallbacks (missing or wrong-typed members
  /// return the fallback — the protocol treats both as "not supplied").
  double NumberOr(const std::string& key, double fallback) const;
  bool BoolOr(const std::string& key, bool fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;

  /// Builders (used by tests).
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace fdx

#endif  // FDX_UTIL_JSON_PARSER_H_
