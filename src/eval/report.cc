#include "eval/report.h"

#include <algorithm>

namespace fdx {

std::string ReportTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : "";
      line += cell;
      line.append(widths[i] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : 0, '-');
  out += '\n';
  for (const auto& row : rows_) out += render(row);
  return out;
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

}  // namespace fdx
