#include "eval/report.h"

#include <algorithm>

#include "util/string_util.h"

namespace fdx {

namespace {

std::string AttributeLabel(const std::vector<std::string>& names,
                           size_t index) {
  if (index < names.size()) return names[index];
  return "#" + std::to_string(index);
}

}  // namespace

std::string ReportTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : "";
      line += cell;
      line.append(widths[i] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : 0, '-');
  out += '\n';
  for (const auto& row : rows_) out += render(row);
  return out;
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

std::string RenderRunDiagnostics(
    const RunDiagnostics& diagnostics,
    const std::vector<std::string>& attribute_names) {
  if (!diagnostics.Degraded() && diagnostics.events.empty()) return "";
  std::string out = diagnostics.Degraded()
                        ? "Run diagnostics (degraded run):\n"
                        : "Run diagnostics:\n";
  if (diagnostics.glasso_attempts > 0) {
    out += "  glasso attempts: " +
           std::to_string(diagnostics.glasso_attempts) +
           " (ridge used: " + FormatDouble(diagnostics.ridge_used, 8) +
           ")\n";
  }
  if (diagnostics.solver_components > 0) {
    out += "  solver: " + std::to_string(diagnostics.solver_components) +
           " component(s), " + std::to_string(diagnostics.solver_sweeps) +
           " sweep(s), active-set hit rate " +
           FormatDouble(diagnostics.solver_active_hit_rate, 3) +
           (diagnostics.solver_warm_start ? ", warm-started" : "") + "\n";
    if (!diagnostics.solver_backend.empty()) {
      out += "  solver backend: " + diagnostics.solver_backend;
      if (diagnostics.solver_newton_iterations > 0) {
        out += " (" + std::to_string(diagnostics.solver_newton_iterations) +
               " newton iteration(s)";
        if (diagnostics.solver_newton_path_stages > 0) {
          out += ", " +
                 std::to_string(diagnostics.solver_newton_path_stages) +
                 " path stage(s)";
        }
        out += ")";
      }
      out += '\n';
    }
  }
  if (diagnostics.fallback_sequential) {
    out += "  fell back to the sequential-lasso estimator\n";
  }
  if (diagnostics.quarantined) {
    out += "  quarantined attributes:";
    for (size_t attr : diagnostics.quarantined_attributes) {
      out += " " + AttributeLabel(attribute_names, attr);
    }
    out += '\n';
  }
  for (const RecoveryEvent& event : diagnostics.events) {
    out += "  [" + event.stage + "] " + event.action + ": " + event.detail +
           '\n';
  }
  return out;
}

void WriteRunDiagnosticsJson(JsonWriter* json,
                             const RunDiagnostics& diagnostics,
                             const std::vector<std::string>& attribute_names,
                             bool include_timings) {
  json->BeginObject();
  json->Key("degraded");
  json->Bool(diagnostics.Degraded());
  json->Key("glasso_attempts");
  json->Integer(static_cast<int64_t>(diagnostics.glasso_attempts));
  json->Key("ridge_used");
  json->Number(diagnostics.ridge_used);
  json->Key("fallback_sequential");
  json->Bool(diagnostics.fallback_sequential);
  json->Key("quarantined");
  json->Bool(diagnostics.quarantined);
  json->Key("quarantined_attributes");
  json->BeginArray();
  for (size_t attr : diagnostics.quarantined_attributes) {
    json->String(AttributeLabel(attribute_names, attr));
  }
  json->EndArray();
  if (include_timings) {
    json->Key("transform_seconds");
    json->Number(diagnostics.transform_seconds);
    json->Key("learning_seconds");
    json->Number(diagnostics.learning_seconds);
  }
  if (diagnostics.solver_components > 0) {
    // Graphical-lasso internals of the winning attempt. Deterministic
    // counters only (no wall times): this block flows into cacheable
    // response payloads, which must be byte-stable per solve lineage.
    json->Key("solver");
    json->BeginObject();
    json->Key("components");
    json->Integer(static_cast<int64_t>(diagnostics.solver_components));
    json->Key("component_sizes");
    json->BeginArray();
    for (size_t size : diagnostics.solver_component_sizes) {
      json->Integer(static_cast<int64_t>(size));
    }
    json->EndArray();
    json->Key("sweeps");
    json->Integer(static_cast<int64_t>(diagnostics.solver_sweeps));
    json->Key("final_mean_change");
    json->Number(diagnostics.solver_final_change);
    json->Key("active_hit_rate");
    json->Number(diagnostics.solver_active_hit_rate);
    json->Key("warm_start");
    json->Bool(diagnostics.solver_warm_start);
    json->Key("backend");
    json->String(diagnostics.solver_backend);
    json->Key("newton_iterations");
    json->Integer(static_cast<int64_t>(diagnostics.solver_newton_iterations));
    json->Key("newton_path_stages");
    json->Integer(static_cast<int64_t>(diagnostics.solver_newton_path_stages));
    json->EndObject();
  }
  json->Key("events");
  json->BeginArray();
  for (const RecoveryEvent& event : diagnostics.events) {
    json->BeginObject();
    json->Key("stage");
    json->String(event.stage);
    json->Key("action");
    json->String(event.action);
    json->Key("detail");
    json->String(event.detail);
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

}  // namespace fdx
