#ifndef FDX_EVAL_REPORT_H_
#define FDX_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace fdx {

/// Fixed-width text table used by every benchmark binary to print
/// paper-style result tables.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders with aligned columns; missing cells render empty.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Median of a sample; 0 for an empty one. The paper reports medians for
/// all synthetic sweeps (§5.1 Metrics).
double Median(std::vector<double> values);

}  // namespace fdx

#endif  // FDX_EVAL_REPORT_H_
