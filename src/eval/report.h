#ifndef FDX_EVAL_REPORT_H_
#define FDX_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "core/fdx.h"
#include "util/json_writer.h"

namespace fdx {

/// Fixed-width text table used by every benchmark binary to print
/// paper-style result tables.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders with aligned columns; missing cells render empty.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Median of a sample; 0 for an empty one. The paper reports medians for
/// all synthetic sweeps (§5.1 Metrics).
double Median(std::vector<double> values);

/// Renders a run's diagnostics as a short human-readable block (empty
/// string when the run was clean, so callers can print unconditionally).
/// `attribute_names` maps quarantined indices to names; pass an empty
/// vector to print raw indices.
std::string RenderRunDiagnostics(
    const RunDiagnostics& diagnostics,
    const std::vector<std::string>& attribute_names = {});

/// Serializes the diagnostics as a JSON object value (the caller is
/// responsible for the surrounding key). Always emitted, including for
/// clean runs, so downstream consumers get a stable schema. Pass
/// `include_timings = false` to drop the wall-clock fields — the
/// service's result cache requires byte-identical responses for
/// identical (data, options), and stage timings are the one
/// non-deterministic part of a diagnostics block.
void WriteRunDiagnosticsJson(
    JsonWriter* json, const RunDiagnostics& diagnostics,
    const std::vector<std::string>& attribute_names = {},
    bool include_timings = true);

}  // namespace fdx

#endif  // FDX_EVAL_REPORT_H_
