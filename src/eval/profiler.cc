#include "eval/profiler.h"

#include <set>

#include "data/discretize.h"
#include "eval/report.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace fdx {

Result<TableProfile> ProfileTable(const Table& table,
                                  const ProfilerOptions& options) {
  if (table.num_columns() == 0 || table.num_rows() < 2) {
    return Status::InvalidArgument("nothing to profile");
  }
  Stopwatch watch;
  // Discretization only feeds the equality-based FD discovery; keys and
  // inclusion dependencies must see the raw values (binning an id
  // column would destroy its uniqueness).
  Table fd_input = table;
  if (options.discretize_numeric) {
    auto binned = DiscretizeNumericColumns(table, options.discretize);
    if (binned.ok()) fd_input = *std::move(binned);
  }
  TableProfile profile;

  // Column statistics on the original values.
  const EncodedTable encoded = EncodedTable::Encode(table);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    TableProfile::ColumnStats stats;
    stats.name = table.schema().name(c);
    stats.distinct_values = encoded.Cardinality(c);
    stats.null_count = encoded.NullCount(c);
    profile.columns.push_back(std::move(stats));
  }

  // FDs via FDX on the (possibly binned) input, validated against the
  // same input their equality semantics refer to.
  FdxDiscoverer discoverer(options.fdx);
  if (auto fds = discoverer.Discover(fd_input); fds.ok()) {
    const EncodedTable fd_encoded = EncodedTable::Encode(fd_input);
    if (auto reports = ValidateFds(fd_encoded, fds->fds); reports.ok()) {
      profile.fds = *std::move(reports);
    }
    std::set<size_t> fd_attrs;
    for (const auto& fd : fds->fds) {
      fd_attrs.insert(fd.rhs);
      fd_attrs.insert(fd.lhs.begin(), fd.lhs.end());
    }
    for (size_t c : fd_attrs) profile.columns[c].participates_in_fd = true;
  }

  // Keys, conditional FDs, inclusion dependencies: best effort on the
  // raw table.
  if (auto keys = DiscoverUccs(table, options.keys); keys.ok()) {
    profile.keys = *std::move(keys);
  }
  if (auto cfds = DiscoverConstantCfds(table, options.cfds); cfds.ok()) {
    profile.cfds = *std::move(cfds);
  }
  if (auto inds = DiscoverInclusionDependencies(table, options.inds);
      inds.ok()) {
    profile.inds = *std::move(inds);
  }
  profile.seconds = watch.ElapsedSeconds();
  return profile;
}

std::string RenderProfile(const TableProfile& profile,
                          const Schema& schema) {
  std::string out;
  ReportTable columns({"attribute", "distinct", "nulls", "in FD"});
  for (const auto& stats : profile.columns) {
    columns.AddRow({stats.name, std::to_string(stats.distinct_values),
                    std::to_string(stats.null_count),
                    stats.participates_in_fd ? "yes" : "no"});
  }
  out += "Columns:\n" + columns.ToString();

  out += "\nFunctional dependencies (FDX):\n";
  if (profile.fds.empty()) out += "  (none)\n";
  for (const auto& report : profile.fds) {
    out += "  " + report.fd.ToString(schema) +
           "  [g3=" + FormatDouble(report.g3_error, 4) + "]\n";
  }

  out += "\nMinimal keys:\n";
  if (profile.keys.empty()) out += "  (none up to the size cap)\n";
  for (const auto& key : profile.keys) {
    out += "  {";
    for (size_t i = 0; i < key.attributes.size(); ++i) {
      if (i > 0) out += ", ";
      out += schema.name(key.attributes[i]);
    }
    out += "}\n";
  }

  out += "\nConditional FDs (top 10):\n";
  if (profile.cfds.empty()) out += "  (none)\n";
  for (size_t i = 0; i < profile.cfds.size() && i < 10; ++i) {
    out += "  " + profile.cfds[i].ToString(schema) + "\n";
  }

  out += "\nInclusion dependencies:\n";
  if (profile.inds.empty()) out += "  (none)\n";
  for (const auto& ind : profile.inds) {
    out += "  " + ind.ToString(schema) + "\n";
  }
  out += "\nProfile took " + FormatDouble(profile.seconds, 3) + "s\n";
  return out;
}

}  // namespace fdx
