#include "eval/runner.h"

#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace fdx {

std::vector<MethodId> AllMethods() {
  return {MethodId::kFdx,   MethodId::kGl,    MethodId::kPyro,
          MethodId::kTane,  MethodId::kCords, MethodId::kRfi30,
          MethodId::kRfi50, MethodId::kRfi100};
}

std::string MethodName(MethodId method) {
  switch (method) {
    case MethodId::kFdx:
      return "FDX";
    case MethodId::kGl:
      return "GL";
    case MethodId::kPyro:
      return "PYRO";
    case MethodId::kTane:
      return "TANE";
    case MethodId::kCords:
      return "CORDS";
    case MethodId::kRfi30:
      return "RFI(.3)";
    case MethodId::kRfi50:
      return "RFI(.5)";
    case MethodId::kRfi100:
      return "RFI(1.0)";
  }
  return "?";
}

namespace {

RunOutcome FromResult(Result<FdSet> result, double seconds) {
  RunOutcome outcome;
  outcome.seconds = seconds;
  if (result.ok()) {
    outcome.ok = true;
    outcome.fds = std::move(result).value();
  } else {
    outcome.timeout = result.status().code() == StatusCode::kTimeout;
    outcome.error = result.status().ToString();
  }
  return outcome;
}

}  // namespace

RunOutcome RunMethod(MethodId method, const Table& table,
                     const RunnerConfig& config) {
  Stopwatch watch;
  switch (method) {
    case MethodId::kFdx: {
      FdxOptions fdx_options = config.fdx;
      if (fdx_options.threads == 0) fdx_options.threads = config.threads;
      // FDX honors the same per-run budget as the baselines so the
      // runtime tables compare like with like.
      if (fdx_options.time_budget_seconds <= 0.0) {
        fdx_options.time_budget_seconds = config.time_budget_seconds;
      }
      FdxDiscoverer discoverer(fdx_options);
      Result<FdxResult> result = discoverer.Discover(table);
      RunOutcome outcome;
      outcome.seconds = watch.ElapsedSeconds();
      if (result.ok()) {
        outcome.ok = true;
        outcome.fds = std::move(result->fds);
      } else {
        outcome.timeout = result.status().code() == StatusCode::kTimeout;
        outcome.error = result.status().ToString();
      }
      return outcome;
    }
    case MethodId::kGl: {
      GlBaselineOptions options;
      options.seed = config.seed;
      return FromResult(DiscoverGlBaseline(table, options),
                        watch.ElapsedSeconds());
    }
    case MethodId::kPyro: {
      PyroOptions options;
      options.max_error = config.expected_error;
      options.time_budget_seconds = config.time_budget_seconds;
      options.seed = config.seed;
      Result<FdSet> result = DiscoverPyro(table, options);
      return FromResult(std::move(result), watch.ElapsedSeconds());
    }
    case MethodId::kTane: {
      TaneOptions options;
      options.max_error = config.expected_error;
      options.time_budget_seconds = config.time_budget_seconds;
      Result<FdSet> result = DiscoverTane(table, options);
      return FromResult(std::move(result), watch.ElapsedSeconds());
    }
    case MethodId::kCords: {
      CordsOptions options;
      options.seed = config.seed;
      return FromResult(DiscoverCords(table, options),
                        watch.ElapsedSeconds());
    }
    case MethodId::kRfi30:
    case MethodId::kRfi50:
    case MethodId::kRfi100: {
      RfiOptions options;
      options.alpha = method == MethodId::kRfi30
                          ? 0.3
                          : (method == MethodId::kRfi50 ? 0.5 : 1.0);
      options.max_lhs_size = config.rfi_max_lhs;
      options.time_budget_seconds = config.time_budget_seconds;
      options.seed = config.seed;
      Result<FdSet> result = DiscoverRfi(table, options);
      return FromResult(std::move(result), watch.ElapsedSeconds());
    }
  }
  RunOutcome outcome;
  outcome.error = "unknown method";
  return outcome;
}

std::vector<RunOutcome> RunMethodsParallel(
    const std::vector<MethodTask>& tasks, const RunnerConfig& config) {
  std::vector<RunOutcome> outcomes(tasks.size());
  const size_t threads = ResolveThreadCount(config.threads);
  RunnerConfig cell_config = config;
  if (threads > 1) {
    // Cells already saturate the workers; keep each cell single-threaded
    // inside (identical results — FDX is thread-count invariant).
    cell_config.threads = 1;
    cell_config.fdx.threads = 1;
    cell_config.fdx.transform.threads = 1;
  }
  ParallelFor(0, tasks.size(), threads, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      outcomes[i] = RunMethod(tasks[i].method, *tasks[i].table, cell_config);
    }
  });
  return outcomes;
}

}  // namespace fdx
