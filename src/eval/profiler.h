#ifndef FDX_EVAL_PROFILER_H_
#define FDX_EVAL_PROFILER_H_

#include <string>

#include "baselines/inclusion.h"
#include "baselines/ucc.h"
#include "core/fdx.h"
#include "data/discretize.h"
#include "data/table.h"
#include "fd/cfd.h"
#include "fd/validation.h"
#include "util/status.h"

namespace fdx {

/// One-call data profiling: the constraint families a preparation
/// pipeline consumes (keys, FDs, conditional FDs, inclusion
/// dependencies), each validated against the instance. This facade is
/// the "deployed as a profiling tool in data preparation pipelines"
/// story of the paper's §1/§5.5 in library form.
struct ProfilerOptions {
  FdxOptions fdx;
  UccOptions keys;
  CfdOptions cfds;
  IndOptions inds;
  /// Discretize *continuous* numeric columns before FD discovery so
  /// real-valued attributes participate (see data/discretize.h). Only
  /// columns whose distinct count exceeds `discretize.
  /// max_categorical_cardinality` are binned; large categoricals keep
  /// their exact equality semantics.
  bool discretize_numeric = true;
  DiscretizeOptions discretize{BinningKind::kEqualFrequency, 16, 256};
};

/// The profile of one table.
struct TableProfile {
  /// Per-attribute basic statistics.
  struct ColumnStats {
    std::string name;
    size_t distinct_values = 0;
    size_t null_count = 0;
    bool participates_in_fd = false;
  };
  std::vector<ColumnStats> columns;
  /// FDX's dependencies with their instance-level validation errors.
  std::vector<FdValidationReport> fds;
  std::vector<Ucc> keys;
  std::vector<ConditionalFd> cfds;
  std::vector<InclusionDependency> inds;
  double seconds = 0.0;
};

/// Runs the full profile. Individual discovery failures (e.g. a table
/// too wide for one family) degrade gracefully to empty sections; only
/// an unusable input fails the call.
Result<TableProfile> ProfileTable(const Table& table,
                                  const ProfilerOptions& options = {});

/// Renders the profile as a human-readable report.
std::string RenderProfile(const TableProfile& profile, const Schema& schema);

}  // namespace fdx

#endif  // FDX_EVAL_PROFILER_H_
