#include "eval/afd_ranking.h"

#include <algorithm>

#include "baselines/info_theory.h"
#include "util/rng.h"

namespace fdx {

Result<std::vector<AfdCandidate>> RankUnaryAfds(
    const Table& table, const AfdRankingOptions& options) {
  const size_t k = table.num_columns();
  const size_t n = table.num_rows();
  if (k < 2 || n == 0) {
    return Status::InvalidArgument("need at least two columns and a row");
  }
  const EncodedTable encoded = EncodedTable::Encode(table);
  Rng rng(options.seed);

  // Per-attribute entropies, reused across pairs.
  std::vector<double> entropy(k, 0.0);
  for (size_t a = 0; a < k; ++a) {
    entropy[a] = Entropy(encoded, AttributeSet::Single(a));
  }

  std::vector<AfdCandidate> candidates;
  for (size_t x = 0; x < k; ++x) {
    // Soft-key determinants carry no semantics (CORDS's filter).
    const double distinct_fraction =
        n == 0 ? 0.0
               : static_cast<double>(encoded.Cardinality(x)) /
                     static_cast<double>(n);
    if (distinct_fraction > options.soft_key_fraction) continue;
    const AttributeSet lhs = AttributeSet::Single(x);
    for (size_t y = 0; y < k; ++y) {
      if (x == y || entropy[y] <= 0.0) continue;
      AfdCandidate candidate;
      candidate.fd = FunctionalDependency({x}, y);
      candidate.g3_error = FdG3Error(encoded, candidate.fd);
      candidate.strength = 1.0 - candidate.g3_error;
      const double mi = MutualInformation(encoded, lhs, y);
      candidate.fraction_of_information = mi / entropy[y];
      const double bias =
          PermutationBias(encoded, lhs, y, options.permutations, &rng);
      candidate.reliable_fraction = (mi - bias) / entropy[y];
      if (candidate.reliable_fraction >= options.min_reliable_fraction) {
        candidates.push_back(std::move(candidate));
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const AfdCandidate& a, const AfdCandidate& b) {
              if (a.reliable_fraction != b.reliable_fraction) {
                return a.reliable_fraction > b.reliable_fraction;
              }
              if (a.fd.rhs != b.fd.rhs) return a.fd.rhs < b.fd.rhs;
              return a.fd.lhs < b.fd.lhs;
            });
  return candidates;
}

}  // namespace fdx
