#ifndef FDX_EVAL_AFD_RANKING_H_
#define FDX_EVAL_AFD_RANKING_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "fd/fd.h"
#include "util/status.h"

namespace fdx {

/// One candidate unary approximate FD scored under every dependency
/// measure the paper's §2 discusses, so their disagreements are visible
/// side by side: the constraint view (g3), the information-theoretic
/// view (fraction of information, with and without RFI's bias
/// correction), and the co-occurrence view (CORDS-style strength).
struct AfdCandidate {
  FunctionalDependency fd;
  double g3_error = 0.0;
  /// F(X, Y) = I(X; Y) / H(Y) in [0, 1]; 1 means an exact FD.
  double fraction_of_information = 0.0;
  /// RFI's bias-corrected fraction (can be negative for spurious FDs).
  double reliable_fraction = 0.0;
  /// CORDS-style majority-mass strength, = 1 - g3 of the unary FD.
  double strength = 0.0;
};

/// Options for the ranking sweep.
struct AfdRankingOptions {
  /// Candidates with reliable fraction below this are dropped.
  double min_reliable_fraction = 0.0;
  /// Monte-Carlo permutations for the bias correction.
  size_t permutations = 3;
  /// Skip determinants that are (soft) keys: distinct count above this
  /// fraction of the rows.
  double soft_key_fraction = 0.9;
  uint64_t seed = 47;
};

/// Scores every ordered attribute pair (X -> Y) and returns the
/// surviving candidates sorted by reliable fraction, descending. This
/// is the "profiler summary" a practitioner reads before trusting any
/// single measure.
Result<std::vector<AfdCandidate>> RankUnaryAfds(
    const Table& table, const AfdRankingOptions& options = {});

}  // namespace fdx

#endif  // FDX_EVAL_AFD_RANKING_H_
