#ifndef FDX_EVAL_RUNNER_H_
#define FDX_EVAL_RUNNER_H_

#include <string>
#include <vector>

#include "baselines/cords.h"
#include "baselines/gl_baseline.h"
#include "baselines/pyro.h"
#include "baselines/rfi.h"
#include "baselines/tane.h"
#include "core/fdx.h"
#include "data/table.h"
#include "fd/fd.h"

namespace fdx {

/// Identifier of a discovery method as reported in the paper's tables.
enum class MethodId {
  kFdx,
  kGl,
  kPyro,
  kTane,
  kCords,
  kRfi30,   ///< RFI with alpha = 0.3
  kRfi50,   ///< RFI with alpha = 0.5
  kRfi100,  ///< RFI with alpha = 1.0
};

/// All methods in the paper's column order
/// (FDX, GL, PYRO, TANE, CORDS, RFI(.3), RFI(.5), RFI(1.0)).
std::vector<MethodId> AllMethods();
std::string MethodName(MethodId method);

/// Per-run tuning knobs shared across methods.
struct RunnerConfig {
  /// Expected noise rate, passed to the error thresholds of TANE/PYRO
  /// (the paper sets their error hyper-parameter to the noise level).
  double expected_error = 0.01;
  /// Wall-clock budget per run, honored by every method including FDX
  /// (via FdxOptions::time_budget_seconds); expired runs report timeout.
  double time_budget_seconds = 60.0;
  /// FDX options (lambda, threshold, ordering, transform caps).
  FdxOptions fdx;
  /// RFI LHS cap (0 = unbounded, the original algorithm).
  size_t rfi_max_lhs = 0;
  uint64_t seed = 1;
  /// Worker threads for RunMethodsParallel fan-out (and, through
  /// `fdx.threads`, for FDX's internal stages when running a single
  /// method). 0 picks the `FDX_THREADS` environment variable or the
  /// hardware concurrency.
  size_t threads = 0;
};

/// Outcome of one discovery run.
struct RunOutcome {
  bool ok = false;
  bool timeout = false;
  FdSet fds;
  double seconds = 0.0;
  std::string error;
};

/// Runs one method on a table under the shared configuration. Never
/// crashes on method failure; errors are reported in the outcome.
RunOutcome RunMethod(MethodId method, const Table& table,
                     const RunnerConfig& config);

/// One (method, dataset) cell of a benchmark sweep. The table pointer is
/// non-owning and must outlive the RunMethodsParallel call.
struct MethodTask {
  MethodId method;
  const Table* table = nullptr;
};

/// Runs every cell under the shared configuration, fanning the cells out
/// over `config.threads` workers (each cell keeps the per-run time
/// budget). Outcomes are returned in task order regardless of scheduling.
/// When the fan-out itself is parallel, each cell's internal FDX stages
/// are pinned to one thread to avoid oversubscription — this does not
/// change results, because FDX discovery is bit-identical at every
/// thread count.
std::vector<RunOutcome> RunMethodsParallel(const std::vector<MethodTask>& tasks,
                                           const RunnerConfig& config);

}  // namespace fdx

#endif  // FDX_EVAL_RUNNER_H_
