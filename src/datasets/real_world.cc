#include "datasets/real_world.h"

#include <array>
#include <cassert>
#include <set>

#include "synth/generator.h"
#include "util/rng.h"

namespace fdx {

namespace {

/// Looks up attribute indices by name; generator-internal, so missing
/// names are programming errors.
size_t Col(const Schema& schema, const std::string& name) {
  const int idx = schema.Find(name);
  assert(idx >= 0);
  return static_cast<size_t>(idx);
}

FunctionalDependency Fd(const Schema& schema,
                        const std::vector<std::string>& lhs,
                        const std::string& rhs) {
  std::vector<size_t> lhs_idx;
  for (const auto& name : lhs) lhs_idx.push_back(Col(schema, name));
  return FunctionalDependency(lhs_idx, Col(schema, rhs));
}

}  // namespace

RealWorldDataset MakeHospitalDataset(uint64_t seed) {
  Rng rng(seed);
  constexpr size_t kProviders = 60;
  constexpr size_t kMeasures = 20;
  constexpr size_t kCities = 25;
  constexpr size_t kRows = 1000;

  // Provider-level master data.
  struct Provider {
    std::string number, name, address, city, state, zip, county, phone,
        type, owner, emergency;
  };
  const std::array<const char*, 5> owners = {"government", "proprietary",
                                             "voluntary", "church", "state"};
  std::vector<std::string> county_of_city(kCities);
  for (size_t c = 0; c < kCities; ++c) {
    county_of_city[c] = "county_" + std::to_string(c / 2);
  }
  std::vector<Provider> providers(kProviders);
  for (size_t p = 0; p < kProviders; ++p) {
    const size_t city = rng.NextUint64(kCities);
    providers[p].number = std::to_string(10000 + p);
    providers[p].name = "hospital_" + std::to_string(p);
    providers[p].address = std::to_string(100 + p) + " main st";
    providers[p].city = "city_" + std::to_string(city);
    providers[p].state = rng.NextBernoulli(0.89) ? "AL" : "AK";
    providers[p].zip = std::to_string(35000 + p);
    providers[p].county = county_of_city[city];
    providers[p].phone = "256" + std::to_string(1000000 + p * 37);
    providers[p].type = "acute care hospital";
    providers[p].owner = owners[rng.NextUint64(owners.size())];
    providers[p].emergency = rng.NextBernoulli(0.7) ? "yes" : "no";
  }
  // Measure-level master data.
  struct Measure {
    std::string code, name, condition;
  };
  const std::array<const char*, 5> conditions = {
      "heart attack", "heart failure", "pneumonia", "surgical infection",
      "children asthma"};
  std::vector<Measure> measures(kMeasures);
  for (size_t m = 0; m < kMeasures; ++m) {
    measures[m].code = "AMI-" + std::to_string(m);
    measures[m].name = "measure name " + std::to_string(m);
    measures[m].condition = conditions[m % conditions.size()];
  }

  Schema schema({"ProviderNumber", "HospitalName", "Address1", "City",
                 "State", "ZipCode", "CountyName", "PhoneNumber",
                 "HospitalType", "HospitalOwner", "EmergencyService",
                 "Condition", "MeasureCode", "MeasureName", "Score",
                 "Sample", "Stateavg"});
  Table table(schema);
  for (size_t r = 0; r < kRows; ++r) {
    const Provider& p = providers[rng.NextUint64(kProviders)];
    const Measure& m = measures[rng.NextUint64(kMeasures)];
    std::vector<Value> row;
    row.emplace_back(p.number);
    row.emplace_back(p.name);
    row.emplace_back(p.address);
    row.emplace_back(p.city);
    row.emplace_back(p.state);
    row.emplace_back(p.zip);
    row.emplace_back(p.county);
    row.emplace_back(p.phone);
    row.emplace_back(p.type);
    row.emplace_back(p.owner);
    row.emplace_back(p.emergency);
    row.emplace_back(m.condition);
    row.emplace_back(m.code);
    row.emplace_back(m.name);
    row.emplace_back(std::to_string(rng.NextInt(0, 100)) + "%");
    row.emplace_back(static_cast<int64_t>(rng.NextInt(10, 900)));
    row.emplace_back(p.state + "_" + m.code);
    table.AppendRow(std::move(row));
  }
  Rng holes = rng.Fork();
  RealWorldDataset out;
  out.name = "Hospital";
  out.table = PunchHoles(table, 0.02, &holes);
  out.embedded_fds = {
      Fd(schema, {"ProviderNumber"}, "HospitalName"),
      Fd(schema, {"ProviderNumber"}, "Address1"),
      Fd(schema, {"ProviderNumber"}, "City"),
      Fd(schema, {"ProviderNumber"}, "ZipCode"),
      Fd(schema, {"ProviderNumber"}, "PhoneNumber"),
      Fd(schema, {"ProviderNumber"}, "HospitalOwner"),
      Fd(schema, {"ProviderNumber"}, "EmergencyService"),
      Fd(schema, {"City"}, "CountyName"),
      Fd(schema, {"MeasureCode"}, "MeasureName"),
      Fd(schema, {"MeasureCode"}, "Condition"),
      Fd(schema, {"State", "MeasureCode"}, "Stateavg"),
  };
  return out;
}

RealWorldDataset MakeAustralianDataset(uint64_t seed) {
  Rng rng(seed);
  constexpr size_t kRows = 690;
  std::vector<std::string> names;
  for (size_t i = 1; i <= 15; ++i) names.push_back("A" + std::to_string(i));
  Schema schema(names);
  Table table(schema);
  // Attribute cardinalities roughly matching the UCI dataset: a mix of
  // binary flags, small categoricals and continuous-ish numerics.
  const std::array<int64_t, 14> cardinality = {2, 40, 30, 3,  14, 9, 25,
                                               2, 2,  17, 2,  3,  20, 50};
  for (size_t r = 0; r < kRows; ++r) {
    std::vector<Value> row(15);
    for (size_t a = 0; a < 14; ++a) {
      row[a] = Value(rng.NextInt(0, cardinality[a] - 1));
    }
    // A8 is the dominant predictor of the class A15 (paper Fig. 5a);
    // a small flip rate keeps it an approximate, not syntactic, FD.
    int64_t label = row[7].AsInt();
    if (rng.NextBernoulli(0.02)) label = 1 - label;
    row[14] = Value(label);
    // A6 loosely tracks A5 (a correlated, non-FD pair).
    if (rng.NextBernoulli(0.6)) {
      row[5] = Value(row[4].AsInt() % 9);
    }
    table.AppendRow(std::move(row));
  }
  Rng holes = rng.Fork();
  RealWorldDataset out;
  out.name = "Australian";
  out.table = PunchHoles(table, 0.01, &holes);
  out.embedded_fds = {Fd(schema, {"A8"}, "A15")};
  return out;
}

RealWorldDataset MakeMammographicDataset(uint64_t seed) {
  Rng rng(seed);
  constexpr size_t kRows = 830;
  Schema schema({"rads", "age", "shape", "margin", "density", "severity"});
  Table table(schema);
  for (size_t r = 0; r < kRows; ++r) {
    const int64_t shape = rng.NextInt(1, 4);
    const int64_t margin = rng.NextInt(1, 5);
    // Severity is (approximately) a function of mass shape and margin,
    // the clinically documented dependency of paper §5.5.
    int64_t severity = (shape >= 3 || margin >= 4) ? 1 : 0;
    if (rng.NextBernoulli(0.03)) severity = 1 - severity;
    // The BI-RADS assessment follows severity (an approximate FD; a few
    // borderline assessments deviate).
    int64_t rads = severity == 1 ? 5 : 3;
    if (rng.NextBernoulli(0.04)) rads = severity == 1 ? 4 : 2;
    std::vector<Value> row(6);
    row[0] = Value(rads);
    row[1] = Value(rng.NextInt(18, 90));
    row[2] = Value(shape);
    row[3] = Value(margin);
    row[4] = Value(rng.NextInt(1, 4));
    row[5] = Value(severity);
    table.AppendRow(std::move(row));
  }
  Rng holes = rng.Fork();
  RealWorldDataset out;
  out.name = "Mammographic";
  out.table = PunchHoles(table, 0.03, &holes);
  out.embedded_fds = {
      Fd(schema, {"shape", "margin"}, "severity"),
      Fd(schema, {"severity"}, "rads"),
  };
  return out;
}

RealWorldDataset MakeNypdDataset(uint64_t seed) {
  Rng rng(seed);
  constexpr size_t kRows = 34382;
  constexpr size_t kPrecincts = 77;
  constexpr size_t kOffenses = 30;
  constexpr size_t kPdCodes = 120;
  const std::array<const char*, 5> boroughs = {"MANHATTAN", "BROOKLYN",
                                               "QUEENS", "BRONX",
                                               "STATEN ISLAND"};
  const std::array<const char*, 3> law_cats = {"FELONY", "MISDEMEANOR",
                                               "VIOLATION"};
  const std::array<const char*, 8> premises = {
      "STREET", "RESIDENCE", "APT HOUSE", "COMMERCIAL",
      "TRANSIT",  "PARK",      "STORE",     "OTHER"};
  // Hierarchy master data.
  std::vector<std::string> borough_of_precinct(kPrecincts);
  std::vector<std::string> lat_of_precinct(kPrecincts),
      lon_of_precinct(kPrecincts);
  for (size_t p = 0; p < kPrecincts; ++p) {
    borough_of_precinct[p] = boroughs[p % boroughs.size()];
    lat_of_precinct[p] = "40." + std::to_string(500000 + p * 1237);
    lon_of_precinct[p] = "-73." + std::to_string(700000 + p * 991);
  }
  std::vector<std::string> ofns_of_ky(kOffenses), law_of_ky(kOffenses);
  for (size_t o = 0; o < kOffenses; ++o) {
    ofns_of_ky[o] = "OFFENSE DESC " + std::to_string(o);
    law_of_ky[o] = law_cats[o % law_cats.size()];
  }
  std::vector<std::string> pd_desc_of_pd(kPdCodes);
  for (size_t p = 0; p < kPdCodes; ++p) {
    pd_desc_of_pd[p] = "PD DESC " + std::to_string(p);
  }

  Schema schema({"CMPLNT_NUM", "CMPLNT_FR_DT", "CMPLNT_FR_TM",
                 "CMPLNT_TO_DT", "CMPLNT_TO_TM", "RPT_DT", "ADDR_PCT_CD",
                 "KY_CD", "OFNS_DESC", "PD_CD", "PD_DESC",
                 "CRM_ATPT_CPTD_CD", "LAW_CAT_CD", "BORO_NM",
                 "PREM_TYP_DESC", "Latitude", "Longitude"});
  Table table(schema);
  for (size_t r = 0; r < kRows; ++r) {
    const size_t precinct = rng.NextUint64(kPrecincts);
    const size_t ky = rng.NextUint64(kOffenses);
    const size_t pd = rng.NextUint64(kPdCodes);
    const int64_t month = rng.NextInt(1, 12);
    const int64_t day = rng.NextInt(1, 28);
    const std::string date = "2015-" + std::to_string(month) + "-" +
                             std::to_string(day);
    std::vector<Value> row;
    row.emplace_back(static_cast<int64_t>(100000000 + r));
    row.emplace_back(date);
    row.emplace_back(std::to_string(rng.NextInt(0, 23)) + ":" +
                     std::to_string(rng.NextInt(0, 59)));
    row.emplace_back(date);  // CMPLNT_TO_DT mirrors FR_DT in most rows
    row.emplace_back(std::to_string(rng.NextInt(0, 23)) + ":" +
                     std::to_string(rng.NextInt(0, 59)));
    row.emplace_back(date);
    row.emplace_back(static_cast<int64_t>(precinct));
    row.emplace_back(static_cast<int64_t>(100 + ky));
    row.emplace_back(ofns_of_ky[ky]);
    row.emplace_back(static_cast<int64_t>(200 + pd));
    row.emplace_back(pd_desc_of_pd[pd]);
    row.emplace_back(std::string(rng.NextBernoulli(0.9) ? "COMPLETED"
                                                        : "ATTEMPTED"));
    row.emplace_back(law_of_ky[ky]);
    row.emplace_back(borough_of_precinct[precinct]);
    row.emplace_back(std::string(premises[rng.NextUint64(premises.size())]));
    row.emplace_back(lat_of_precinct[precinct]);
    row.emplace_back(lon_of_precinct[precinct]);
    table.AppendRow(std::move(row));
  }
  Rng holes = rng.Fork();
  RealWorldDataset out;
  out.name = "NYPD";
  out.table = PunchHoles(table, 0.03, &holes);
  out.embedded_fds = {
      Fd(schema, {"KY_CD"}, "OFNS_DESC"),
      Fd(schema, {"KY_CD"}, "LAW_CAT_CD"),
      Fd(schema, {"PD_CD"}, "PD_DESC"),
      Fd(schema, {"ADDR_PCT_CD"}, "BORO_NM"),
      Fd(schema, {"ADDR_PCT_CD"}, "Latitude"),
      Fd(schema, {"ADDR_PCT_CD"}, "Longitude"),
      Fd(schema, {"CMPLNT_FR_DT"}, "CMPLNT_TO_DT"),
  };
  return out;
}

RealWorldDataset MakeThoracicDataset(uint64_t seed) {
  Rng rng(seed);
  constexpr size_t kRows = 470;
  Schema schema({"DGN", "PRE4", "PRE5", "PRE6", "PRE7", "PRE8", "PRE9",
                 "PRE10", "PRE11", "PRE14", "PRE17", "PRE19", "PRE25",
                 "PRE30", "PRE32", "AGE", "Risk1Yr"});
  Table table(schema);
  for (size_t r = 0; r < kRows; ++r) {
    const int64_t dgn = rng.NextInt(1, 7);
    std::vector<Value> row(17);
    row[0] = Value("DGN" + std::to_string(dgn));
    row[1] = Value(rng.NextInt(15, 60));             // FVC bucketed
    row[2] = Value(rng.NextInt(10, 50));             // FEV1 bucketed
    // Performance status loosely follows diagnosis (planted approximate
    // FD: DGN -> PRE6).
    int64_t pre6 = dgn % 3;
    if (rng.NextBernoulli(0.05)) pre6 = rng.NextInt(0, 2);
    row[3] = Value("PRZ" + std::to_string(pre6));
    for (size_t b = 4; b <= 8; ++b) {
      row[b] = Value(std::string(rng.NextBernoulli(0.15) ? "T" : "F"));
    }
    const int64_t size = rng.NextInt(11, 14);  // tumor size class OC11-14
    row[9] = Value("OC" + std::to_string(size));
    // Planted: large tumor implies preoperative chemo flag (PRE17).
    row[10] = Value(std::string(size >= 13 || rng.NextBernoulli(0.02) ? "T"
                                                                       : "F"));
    for (size_t b = 11; b <= 14; ++b) {
      row[b] = Value(std::string(rng.NextBernoulli(0.1) ? "T" : "F"));
    }
    row[15] = Value(rng.NextInt(21, 87));
    row[16] = Value(std::string(rng.NextBernoulli(0.15) ? "T" : "F"));
    table.AppendRow(std::move(row));
  }
  Rng holes = rng.Fork();
  RealWorldDataset out;
  out.name = "Thoracic";
  out.table = PunchHoles(table, 0.02, &holes);
  out.embedded_fds = {
      Fd(schema, {"DGN"}, "PRE6"),
      Fd(schema, {"PRE14"}, "PRE17"),
  };
  return out;
}

RealWorldDataset MakeTicTacToeDataset(uint64_t seed) {
  Rng rng(seed);
  Schema schema({"top_left", "top_middle", "top_right", "middle_left",
                 "middle_middle", "middle_right", "bottom_left",
                 "bottom_middle", "bottom_right", "class"});
  static constexpr int kLines[8][3] = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8},
                                       {0, 3, 6}, {1, 4, 7}, {2, 5, 8},
                                       {0, 4, 8}, {2, 4, 6}};
  auto winner = [](const std::array<char, 9>& board) -> char {
    for (const auto& line : kLines) {
      const char a = board[line[0]];
      if (a != 'b' && a == board[line[1]] && a == board[line[2]]) return a;
    }
    return 'b';
  };
  // Simulate random games to completion ('x' moves first); collect
  // distinct terminal boards, as in the UCI dataset (958 endgames).
  std::set<std::array<char, 9>> boards;
  size_t attempts = 0;
  while (boards.size() < 958 && attempts < 2000000) {
    ++attempts;
    std::array<char, 9> board;
    board.fill('b');
    char player = 'x';
    while (winner(board) == 'b') {
      std::vector<size_t> open;
      for (size_t i = 0; i < 9; ++i) {
        if (board[i] == 'b') open.push_back(i);
      }
      if (open.empty()) break;
      board[open[rng.NextUint64(open.size())]] = player;
      player = (player == 'x') ? 'o' : 'x';
    }
    boards.insert(board);
  }
  Table table(schema);
  for (const auto& board : boards) {
    std::vector<Value> row(10);
    for (size_t i = 0; i < 9; ++i) row[i] = Value(std::string(1, board[i]));
    row[9] = Value(std::string(winner(board) == 'x' ? "positive"
                                                    : "negative"));
    table.AppendRow(std::move(row));
  }
  RealWorldDataset out;
  out.name = "Tic-Tac-Toe";
  out.table = std::move(table);
  // The outcome depends on the whole board; there is no compact FD.
  std::vector<size_t> all_squares;
  for (size_t i = 0; i < 9; ++i) all_squares.push_back(i);
  out.embedded_fds = {FunctionalDependency(all_squares, 9)};
  return out;
}

std::vector<RealWorldDataset> MakeAllRealWorldDatasets() {
  std::vector<RealWorldDataset> out;
  out.push_back(MakeAustralianDataset());
  out.push_back(MakeHospitalDataset());
  out.push_back(MakeMammographicDataset());
  out.push_back(MakeNypdDataset());
  out.push_back(MakeThoracicDataset());
  out.push_back(MakeTicTacToeDataset());
  return out;
}

}  // namespace fdx
