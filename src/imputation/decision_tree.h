#ifndef FDX_IMPUTATION_DECISION_TREE_H_
#define FDX_IMPUTATION_DECISION_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "imputation/classifier.h"
#include "util/rng.h"

namespace fdx {

/// Hyper-parameters of the categorical decision tree.
struct DecisionTreeOptions {
  size_t max_depth = 8;
  size_t min_samples_split = 4;
  /// If > 0, at every node only a random subset of this many features is
  /// considered (used by the forest for decorrelation).
  size_t feature_subsample = 0;
};

/// A decision tree on categorical codes with multiway splits chosen by
/// information gain. Missing codes route to the majority child.
class DecisionTreeClassifier : public Classifier {
 public:
  explicit DecisionTreeClassifier(DecisionTreeOptions options = {},
                                  uint64_t seed = 31)
      : options_(options), rng_(seed) {}

  Status Train(const CategoricalDataset& data) override;
  int32_t Predict(const std::vector<int32_t>& row) const override;

 private:
  struct Node {
    int32_t feature = -1;             ///< -1 for leaves.
    int32_t majority = 0;             ///< Leaf label / missing fallback.
    std::vector<int32_t> children;    ///< child index per feature value.
  };

  /// Recursively grows a subtree over `indices`; returns its node index.
  size_t Grow(const CategoricalDataset& data,
              const std::vector<size_t>& indices, size_t depth);

  DecisionTreeOptions options_;
  Rng rng_;
  std::vector<Node> nodes_;
  size_t num_classes_ = 0;
};

/// Hyper-parameters of the bagged tree ensemble, the library's
/// XGBoost-class substitute for the Table 7 experiments (see DESIGN.md
/// substitution #4).
struct RandomForestOptions {
  size_t num_trees = 16;
  DecisionTreeOptions tree;
};

/// Bootstrap-aggregated decision trees with per-node feature
/// subsampling; majority vote prediction.
class RandomForestClassifier : public Classifier {
 public:
  explicit RandomForestClassifier(RandomForestOptions options = {},
                                  uint64_t seed = 37)
      : options_(options), seed_(seed) {}

  Status Train(const CategoricalDataset& data) override;
  int32_t Predict(const std::vector<int32_t>& row) const override;

 private:
  RandomForestOptions options_;
  uint64_t seed_;
  std::vector<std::unique_ptr<DecisionTreeClassifier>> trees_;
  size_t num_classes_ = 0;
};

}  // namespace fdx

#endif  // FDX_IMPUTATION_DECISION_TREE_H_
