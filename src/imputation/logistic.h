#ifndef FDX_IMPUTATION_LOGISTIC_H_
#define FDX_IMPUTATION_LOGISTIC_H_

#include <cstdint>
#include <vector>

#include "imputation/classifier.h"

namespace fdx {

/// Hyper-parameters of the multinomial logistic model.
struct LogisticOptions {
  size_t epochs = 25;
  double learning_rate = 0.2;
  double l2 = 1e-4;
  /// One-hot encoding keeps at most this many values per feature; the
  /// rest share an "other" bucket (caps the dimensionality on columns
  /// like complaint ids).
  size_t max_values_per_feature = 50;
  uint64_t seed = 41;
};

/// Multinomial logistic regression (softmax) over one-hot encoded
/// categorical features, trained with shuffled SGD. This is the
/// attention-free stand-in for the paper's AimNet imputer (DESIGN.md
/// substitution #4): a learned linear attribute-to-attribute dependency
/// model.
class LogisticClassifier : public Classifier {
 public:
  explicit LogisticClassifier(LogisticOptions options = {})
      : options_(options) {}

  Status Train(const CategoricalDataset& data) override;
  int32_t Predict(const std::vector<int32_t>& row) const override;

 private:
  /// Active one-hot dimensions of a feature row.
  void ActiveDimensions(const std::vector<int32_t>& row,
                        std::vector<size_t>* dims) const;

  LogisticOptions options_;
  std::vector<size_t> offset_;       ///< Per-feature one-hot offset.
  std::vector<size_t> bucket_size_;  ///< Values kept per feature (+other).
  size_t dims_ = 0;
  size_t num_classes_ = 0;
  std::vector<double> weights_;  ///< (dims + 1 bias) x num_classes.
};

}  // namespace fdx

#endif  // FDX_IMPUTATION_LOGISTIC_H_
