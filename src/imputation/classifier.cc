#include "imputation/classifier.h"

namespace fdx {

double MacroF1(const std::vector<int32_t>& truth,
               const std::vector<int32_t>& predicted, size_t num_classes) {
  if (truth.empty() || num_classes == 0) return 0.0;
  std::vector<size_t> tp(num_classes, 0), fp(num_classes, 0),
      fn(num_classes, 0);
  for (size_t i = 0; i < truth.size(); ++i) {
    const int32_t t = truth[i];
    const int32_t p = predicted[i];
    if (t == p) {
      ++tp[t];
    } else {
      ++fn[t];
      if (p >= 0 && static_cast<size_t>(p) < num_classes) ++fp[p];
    }
  }
  double total = 0.0;
  size_t present = 0;
  for (size_t c = 0; c < num_classes; ++c) {
    if (tp[c] + fn[c] == 0) continue;  // class absent from the truth
    ++present;
    const double precision =
        tp[c] + fp[c] > 0
            ? static_cast<double>(tp[c]) / static_cast<double>(tp[c] + fp[c])
            : 0.0;
    const double recall =
        static_cast<double>(tp[c]) / static_cast<double>(tp[c] + fn[c]);
    if (precision + recall > 0.0) {
      total += 2.0 * precision * recall / (precision + recall);
    }
  }
  return present > 0 ? total / static_cast<double>(present) : 0.0;
}

}  // namespace fdx
