#include "imputation/logistic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.h"

namespace fdx {

void LogisticClassifier::ActiveDimensions(const std::vector<int32_t>& row,
                                          std::vector<size_t>* dims) const {
  dims->clear();
  for (size_t f = 0; f < row.size(); ++f) {
    const int32_t code = row[f];
    if (code == CategoricalDataset::kMissing) continue;  // missing: no dim
    const size_t kept = bucket_size_[f] - 1;  // minus the "other" bucket
    const size_t local =
        static_cast<size_t>(code) < kept ? static_cast<size_t>(code) : kept;
    dims->push_back(offset_[f] + local);
  }
  dims->push_back(dims_);  // bias
}

Status LogisticClassifier::Train(const CategoricalDataset& data) {
  if (data.rows.empty() || data.num_classes == 0) {
    return Status::InvalidArgument("empty training set");
  }
  const size_t d = data.cardinalities.size();
  num_classes_ = data.num_classes;
  offset_.assign(d, 0);
  bucket_size_.assign(d, 0);
  dims_ = 0;
  for (size_t f = 0; f < d; ++f) {
    offset_[f] = dims_;
    bucket_size_[f] =
        std::min(data.cardinalities[f], options_.max_values_per_feature) + 1;
    dims_ += bucket_size_[f];
  }
  weights_.assign((dims_ + 1) * num_classes_, 0.0);

  Rng rng(options_.seed);
  std::vector<size_t> order(data.rows.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<size_t> active;
  std::vector<double> logits(num_classes_);
  double lr = options_.learning_rate;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t i : order) {
      ActiveDimensions(data.rows[i], &active);
      std::fill(logits.begin(), logits.end(), 0.0);
      for (size_t dim : active) {
        const double* w = &weights_[dim * num_classes_];
        for (size_t c = 0; c < num_classes_; ++c) logits[c] += w[c];
      }
      // Softmax.
      const double max_logit =
          *std::max_element(logits.begin(), logits.end());
      double total = 0.0;
      for (size_t c = 0; c < num_classes_; ++c) {
        logits[c] = std::exp(logits[c] - max_logit);
        total += logits[c];
      }
      const int32_t label = data.labels[i];
      for (size_t c = 0; c < num_classes_; ++c) {
        const double p = logits[c] / total;
        const double gradient = p - (static_cast<int32_t>(c) == label);
        for (size_t dim : active) {
          double& w = weights_[dim * num_classes_ + c];
          w -= lr * (gradient + options_.l2 * w);
        }
      }
    }
    lr *= 0.9;  // simple decay schedule
  }
  return Status::OK();
}

int32_t LogisticClassifier::Predict(const std::vector<int32_t>& row) const {
  if (weights_.empty()) return 0;
  std::vector<size_t> active;
  ActiveDimensions(row, &active);
  std::vector<double> logits(num_classes_, 0.0);
  for (size_t dim : active) {
    const double* w = &weights_[dim * num_classes_];
    for (size_t c = 0; c < num_classes_; ++c) logits[c] += w[c];
  }
  return static_cast<int32_t>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

}  // namespace fdx
