#include "imputation/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fdx {

namespace {

double EntropyOfCounts(const std::vector<size_t>& counts, size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log(p);
  }
  return h;
}

int32_t MajorityLabel(const CategoricalDataset& data,
                      const std::vector<size_t>& indices) {
  std::vector<size_t> counts(data.num_classes, 0);
  for (size_t i : indices) ++counts[data.labels[i]];
  return static_cast<int32_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

}  // namespace

Status DecisionTreeClassifier::Train(const CategoricalDataset& data) {
  if (data.rows.empty() || data.num_classes == 0) {
    return Status::InvalidArgument("empty training set");
  }
  nodes_.clear();
  num_classes_ = data.num_classes;
  std::vector<size_t> indices(data.rows.size());
  std::iota(indices.begin(), indices.end(), 0);
  Grow(data, indices, 0);
  return Status::OK();
}

size_t DecisionTreeClassifier::Grow(const CategoricalDataset& data,
                                    const std::vector<size_t>& indices,
                                    size_t depth) {
  const size_t node_index = nodes_.size();
  nodes_.emplace_back();
  nodes_[node_index].majority = MajorityLabel(data, indices);

  // Stop: depth, size, or purity.
  bool pure = true;
  for (size_t i : indices) {
    if (data.labels[i] != data.labels[indices[0]]) {
      pure = false;
      break;
    }
  }
  if (pure || depth >= options_.max_depth ||
      indices.size() < options_.min_samples_split) {
    return node_index;
  }

  // Candidate features (optionally a random subset).
  const size_t d = data.cardinalities.size();
  std::vector<size_t> features(d);
  std::iota(features.begin(), features.end(), 0);
  if (options_.feature_subsample > 0 && options_.feature_subsample < d) {
    rng_.Shuffle(&features);
    features.resize(options_.feature_subsample);
  }

  // Pick the split with the best information gain.
  std::vector<size_t> parent_counts(data.num_classes, 0);
  for (size_t i : indices) ++parent_counts[data.labels[i]];
  const double parent_entropy = EntropyOfCounts(parent_counts, indices.size());
  double best_gain = 1e-9;
  int32_t best_feature = -1;
  for (size_t f : features) {
    const size_t arity = data.cardinalities[f] + 1;  // +1 missing bucket
    std::vector<std::vector<size_t>> counts(
        arity, std::vector<size_t>(data.num_classes, 0));
    std::vector<size_t> totals(arity, 0);
    for (size_t i : indices) {
      const int32_t code = data.rows[i][f];
      const size_t bucket =
          code == CategoricalDataset::kMissing
              ? arity - 1
              : static_cast<size_t>(code);
      ++counts[bucket][data.labels[i]];
      ++totals[bucket];
    }
    double child_entropy = 0.0;
    for (size_t v = 0; v < arity; ++v) {
      if (totals[v] == 0) continue;
      child_entropy += static_cast<double>(totals[v]) /
                       static_cast<double>(indices.size()) *
                       EntropyOfCounts(counts[v], totals[v]);
    }
    const double gain = parent_entropy - child_entropy;
    if (gain > best_gain) {
      best_gain = gain;
      best_feature = static_cast<int32_t>(f);
    }
  }
  if (best_feature < 0) return node_index;

  // Partition and grow children (missing codes stay on the majority
  // path, i.e. no dedicated child; Predict falls back to majority).
  const size_t arity = data.cardinalities[best_feature];
  std::vector<std::vector<size_t>> buckets(arity);
  for (size_t i : indices) {
    const int32_t code = data.rows[i][best_feature];
    if (code != CategoricalDataset::kMissing &&
        static_cast<size_t>(code) < arity) {
      buckets[code].push_back(i);
    }
  }
  nodes_[node_index].feature = best_feature;
  nodes_[node_index].children.assign(arity, -1);
  for (size_t v = 0; v < arity; ++v) {
    if (buckets[v].empty()) continue;
    const size_t child = Grow(data, buckets[v], depth + 1);
    nodes_[node_index].children[v] = static_cast<int32_t>(child);
  }
  return node_index;
}

int32_t DecisionTreeClassifier::Predict(
    const std::vector<int32_t>& row) const {
  if (nodes_.empty()) return 0;
  size_t node = 0;
  while (true) {
    const Node& current = nodes_[node];
    if (current.feature < 0) return current.majority;
    const int32_t code = row[current.feature];
    if (code == CategoricalDataset::kMissing ||
        static_cast<size_t>(code) >= current.children.size() ||
        current.children[code] < 0) {
      return current.majority;
    }
    node = static_cast<size_t>(current.children[code]);
  }
}

Status RandomForestClassifier::Train(const CategoricalDataset& data) {
  if (data.rows.empty()) return Status::InvalidArgument("empty training set");
  trees_.clear();
  num_classes_ = data.num_classes;
  Rng rng(seed_);
  DecisionTreeOptions tree_options = options_.tree;
  if (tree_options.feature_subsample == 0) {
    tree_options.feature_subsample = std::max<size_t>(
        1, static_cast<size_t>(
               std::sqrt(static_cast<double>(data.cardinalities.size()))));
  }
  for (size_t t = 0; t < options_.num_trees; ++t) {
    // Bootstrap sample.
    CategoricalDataset bagged;
    bagged.cardinalities = data.cardinalities;
    bagged.num_classes = data.num_classes;
    bagged.rows.reserve(data.rows.size());
    bagged.labels.reserve(data.rows.size());
    for (size_t i = 0; i < data.rows.size(); ++i) {
      const size_t pick = rng.NextUint64(data.rows.size());
      bagged.rows.push_back(data.rows[pick]);
      bagged.labels.push_back(data.labels[pick]);
    }
    auto tree =
        std::make_unique<DecisionTreeClassifier>(tree_options, rng.engine()());
    FDX_RETURN_IF_ERROR(tree->Train(bagged));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

int32_t RandomForestClassifier::Predict(
    const std::vector<int32_t>& row) const {
  if (trees_.empty()) return 0;
  std::vector<size_t> votes(num_classes_, 0);
  for (const auto& tree : trees_) {
    const int32_t label = tree->Predict(row);
    if (label >= 0 && static_cast<size_t>(label) < num_classes_) {
      ++votes[label];
    }
  }
  return static_cast<int32_t>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

}  // namespace fdx
