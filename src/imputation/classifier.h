#ifndef FDX_IMPUTATION_CLASSIFIER_H_
#define FDX_IMPUTATION_CLASSIFIER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/status.h"

namespace fdx {

/// A categorical training set: every feature is a dictionary code in
/// [0, cardinality); `kMissing` marks missing cells. Labels are class
/// codes in [0, num_classes).
struct CategoricalDataset {
  static constexpr int32_t kMissing = -1;

  std::vector<std::vector<int32_t>> rows;  ///< n x d feature codes.
  std::vector<size_t> cardinalities;       ///< Per-feature domain sizes.
  std::vector<int32_t> labels;             ///< n class codes.
  size_t num_classes = 0;
};

/// Interface of the imputation models used by the Table 7 experiments.
/// Both substitutes for the paper's AimNet / XGBoost implement it; the
/// harness is model agnostic (the paper's point is precisely that the
/// FD-participation signal transfers across model families).
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Fits the model. Precondition: consistent dataset dimensions.
  virtual Status Train(const CategoricalDataset& data) = 0;

  /// Predicts the class of one feature row.
  virtual int32_t Predict(const std::vector<int32_t>& row) const = 0;
};

/// Macro-averaged F1 of predictions vs truth over `num_classes` classes.
/// Classes absent from the truth are skipped.
double MacroF1(const std::vector<int32_t>& truth,
               const std::vector<int32_t>& predicted, size_t num_classes);

}  // namespace fdx

#endif  // FDX_IMPUTATION_CLASSIFIER_H_
