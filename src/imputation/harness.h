#ifndef FDX_IMPUTATION_HARNESS_H_
#define FDX_IMPUTATION_HARNESS_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "data/table.h"
#include "imputation/classifier.h"
#include "util/status.h"

namespace fdx {

/// How cells of the target attribute are corrupted before imputation.
enum class CorruptionKind {
  /// Missing completely at random: a uniform fraction of cells.
  kRandom,
  /// Systematic: cells are removed only in rows whose value of a
  /// conditioning attribute falls into a fixed subset — the
  /// value-dependent corruption pattern of the paper's Table 7.
  kSystematic,
};

/// Configuration of one imputation experiment.
struct ImputationConfig {
  CorruptionKind corruption = CorruptionKind::kRandom;
  double missing_fraction = 0.2;
  /// Rows retained from the input (0 = all); large tables are
  /// subsampled to keep the model-training benches tractable.
  size_t max_rows = 0;
  uint64_t seed = 71;
};

/// Outcome: macro-F1 on the corrupted cells.
struct ImputationScore {
  double macro_f1 = 0.0;
  size_t evaluated_cells = 0;
};

/// Factory for a fresh classifier (models are single-use per target).
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

/// Corrupts the target attribute per `config`, trains `factory`'s model
/// on the surviving rows (features: all other attributes), imputes the
/// corrupted cells and scores them against the hidden truth.
Result<ImputationScore> EvaluateImputation(const Table& table,
                                           size_t target_column,
                                           const ClassifierFactory& factory,
                                           const ImputationConfig& config);

}  // namespace fdx

#endif  // FDX_IMPUTATION_HARNESS_H_
