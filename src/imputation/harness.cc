#include "imputation/harness.h"

#include <numeric>
#include <set>

#include "util/rng.h"

namespace fdx {

Result<ImputationScore> EvaluateImputation(const Table& table,
                                           size_t target_column,
                                           const ClassifierFactory& factory,
                                           const ImputationConfig& config) {
  if (target_column >= table.num_columns()) {
    return Status::InvalidArgument("target column out of range");
  }
  Rng rng(config.seed);
  Table working = table;
  if (config.max_rows > 0 && table.num_rows() > config.max_rows) {
    working = table.ShuffleRows(&rng).Head(config.max_rows);
  }
  const EncodedTable encoded = EncodedTable::Encode(working);
  const size_t n = encoded.num_rows();
  const size_t k = encoded.num_columns();
  if (encoded.Cardinality(target_column) < 2) {
    return Status::InvalidArgument("target column is (near-)constant");
  }

  // Rows with an observed target are usable.
  std::vector<size_t> usable;
  for (size_t r = 0; r < n; ++r) {
    if (encoded.code(r, target_column) != EncodedTable::kNullCode) {
      usable.push_back(r);
    }
  }
  if (usable.size() < 20) {
    return Status::InvalidArgument("too few observed target cells");
  }

  // Choose the corrupted (held-out) rows.
  std::vector<size_t> corrupted;
  if (config.corruption == CorruptionKind::kRandom) {
    std::vector<size_t> shuffled = usable;
    rng.Shuffle(&shuffled);
    const size_t count = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(usable.size()) *
                               config.missing_fraction));
    corrupted.assign(shuffled.begin(),
                     shuffled.begin() + std::min(count, shuffled.size()));
  } else {
    // Systematic: condition on the first attribute other than the
    // target; rows whose conditioning value hashes into a fixed band
    // lose their target. Mirrors value-correlated error channels.
    const size_t cond = target_column == 0 ? 1 : 0;
    const uint64_t salt = rng.engine()();
    for (size_t r : usable) {
      const int32_t code = encoded.code(r, cond);
      const uint64_t h =
          (static_cast<uint64_t>(static_cast<uint32_t>(code)) + salt) *
          0x9e3779b97f4a7c15ull;
      if (static_cast<double>(h >> 11) /
              static_cast<double>(uint64_t{1} << 53) <
          config.missing_fraction) {
        corrupted.push_back(r);
      }
    }
    if (corrupted.empty()) {
      // Degenerate conditioning column; fall back to random.
      std::vector<size_t> shuffled = usable;
      rng.Shuffle(&shuffled);
      corrupted.assign(shuffled.begin(),
                       shuffled.begin() + usable.size() / 5 + 1);
    }
  }
  std::set<size_t> corrupted_set(corrupted.begin(), corrupted.end());
  if (corrupted_set.size() >= usable.size()) {
    return Status::InvalidArgument("corruption left no training rows");
  }

  // Assemble the categorical dataset: features are every other column.
  CategoricalDataset train;
  train.num_classes = encoded.Cardinality(target_column);
  for (size_t c = 0; c < k; ++c) {
    if (c != target_column) train.cardinalities.push_back(encoded.Cardinality(c));
  }
  auto features_of = [&](size_t r) {
    std::vector<int32_t> row;
    row.reserve(k - 1);
    for (size_t c = 0; c < k; ++c) {
      if (c != target_column) row.push_back(encoded.code(r, c));
    }
    return row;
  };
  for (size_t r : usable) {
    if (corrupted_set.count(r) > 0) continue;
    train.rows.push_back(features_of(r));
    train.labels.push_back(encoded.code(r, target_column));
  }

  std::unique_ptr<Classifier> model = factory();
  FDX_RETURN_IF_ERROR(model->Train(train));

  std::vector<int32_t> truth, predicted;
  truth.reserve(corrupted_set.size());
  for (size_t r : corrupted_set) {
    truth.push_back(encoded.code(r, target_column));
    predicted.push_back(model->Predict(features_of(r)));
  }
  ImputationScore score;
  score.macro_f1 = MacroF1(truth, predicted, train.num_classes);
  score.evaluated_cells = truth.size();
  return score;
}

}  // namespace fdx
