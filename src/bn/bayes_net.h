#ifndef FDX_BN_BAYES_NET_H_
#define FDX_BN_BAYES_NET_H_

#include <string>
#include <vector>

#include "data/table.h"
#include "fd/fd.h"
#include "util/rng.h"
#include "util/status.h"

namespace fdx {

/// A node of a discrete Bayesian network: a categorical variable with a
/// conditional probability table over its parents' joint configurations.
struct BayesNode {
  std::string name;
  std::vector<std::string> states;
  std::vector<size_t> parents;  ///< Indices of parent nodes.
  /// cpt[config][state] = P(state | parent configuration). The parent
  /// configuration index is mixed-radix with the FIRST parent as the
  /// most significant digit.
  std::vector<std::vector<double>> cpt;
};

/// A discrete Bayesian network with ancestral sampling. The benchmark
/// generators of the paper (§5.1, Table 1) are instances of this class;
/// ground-truth FDs are the parent sets of non-root nodes.
class BayesNet {
 public:
  /// Adds a node; parents must already exist (insertion order is the
  /// topological order used by the sampler). Returns the node index.
  Result<size_t> AddNode(const std::string& name,
                         std::vector<std::string> states,
                         const std::vector<std::string>& parent_names);

  size_t num_nodes() const { return nodes_.size(); }
  const BayesNode& node(size_t i) const { return nodes_[i]; }

  /// Total number of parent->child edges.
  size_t NumEdges() const;

  /// Number of configurations of node i's parents.
  size_t NumParentConfigs(size_t i) const;

  /// Fills every CPT pseudo-randomly such that each non-root node is an
  /// *approximate function* of its parents: for every parent
  /// configuration one child state receives probability 1 - epsilon and
  /// the rest share epsilon. Root nodes get a random, moderately skewed
  /// marginal. This realizes the paper's "networks that exhibit
  /// deterministic dependencies"; see DESIGN.md substitution #1.
  void FillFunctionalCpts(double epsilon, Rng* rng);

  /// Sets node `i`'s CPT explicitly (row count must equal the parent
  /// configuration count; rows must have the node's arity). Used by the
  /// text-format loader.
  Status SetCpt(size_t i, std::vector<std::vector<double>> cpt);

  /// Validates that all CPTs are present and normalized.
  Status Validate() const;

  /// Draws `n` tuples by ancestral sampling; one attribute per node,
  /// values are the state labels.
  Result<Table> Sample(size_t n, Rng* rng) const;

  /// Ground-truth FDs: parents(Y) -> Y for every node with parents.
  FdSet GroundTruthFds() const;

  /// Schema matching Sample()'s output.
  Schema MakeSchema() const;

 private:
  std::vector<BayesNode> nodes_;
};

}  // namespace fdx

#endif  // FDX_BN_BAYES_NET_H_
