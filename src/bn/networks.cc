#include "bn/networks.h"

#include <cassert>

namespace fdx {

namespace {

/// States helper: n generic state labels.
std::vector<std::string> States(size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back("s" + std::to_string(i));
  return out;
}

std::vector<std::string> YesNo() { return {"yes", "no"}; }

/// AddNode that asserts success; network construction is static data.
void MustAdd(BayesNet* net, const std::string& name,
             std::vector<std::string> states,
             const std::vector<std::string>& parents) {
  auto result = net->AddNode(name, std::move(states), parents);
  assert(result.ok());
  (void)result;
}

}  // namespace

BayesNet MakeAsiaNetwork(double epsilon, uint64_t seed) {
  BayesNet net;
  MustAdd(&net, "asia", YesNo(), {});
  MustAdd(&net, "smoke", YesNo(), {});
  MustAdd(&net, "tub", YesNo(), {"asia"});
  MustAdd(&net, "lung", YesNo(), {"smoke"});
  MustAdd(&net, "bronc", YesNo(), {"smoke"});
  MustAdd(&net, "either", YesNo(), {"tub", "lung"});
  MustAdd(&net, "xray", YesNo(), {"either"});
  MustAdd(&net, "dysp", YesNo(), {"bronc", "either"});
  Rng rng(seed);
  net.FillFunctionalCpts(epsilon, &rng);
  return net;
}

BayesNet MakeCancerNetwork(double epsilon, uint64_t seed) {
  BayesNet net;
  MustAdd(&net, "Pollution", {"low", "high"}, {});
  MustAdd(&net, "Smoker", YesNo(), {});
  MustAdd(&net, "Cancer", {"true", "false"}, {"Pollution", "Smoker"});
  MustAdd(&net, "Xray", {"positive", "negative"}, {"Cancer"});
  MustAdd(&net, "Dyspnoea", YesNo(), {"Cancer"});
  Rng rng(seed);
  net.FillFunctionalCpts(epsilon, &rng);
  return net;
}

BayesNet MakeEarthquakeNetwork(double epsilon, uint64_t seed) {
  BayesNet net;
  MustAdd(&net, "Burglary", {"true", "false"}, {});
  MustAdd(&net, "Earthquake", {"true", "false"}, {});
  MustAdd(&net, "Alarm", {"true", "false"}, {"Burglary", "Earthquake"});
  MustAdd(&net, "JohnCalls", {"true", "false"}, {"Alarm"});
  MustAdd(&net, "MaryCalls", {"true", "false"}, {"Alarm"});
  Rng rng(seed);
  net.FillFunctionalCpts(epsilon, &rng);
  return net;
}

BayesNet MakeChildNetwork(double epsilon, uint64_t seed) {
  BayesNet net;
  MustAdd(&net, "BirthAsphyxia", YesNo(), {});
  MustAdd(&net, "Disease", States(6), {"BirthAsphyxia"});
  MustAdd(&net, "Sick", YesNo(), {"Disease"});
  MustAdd(&net, "Age", States(3), {"Disease", "Sick"});
  MustAdd(&net, "LVH", YesNo(), {"Disease"});
  MustAdd(&net, "DuctFlow", States(3), {"Disease"});
  MustAdd(&net, "CardiacMixing", States(4), {"Disease"});
  MustAdd(&net, "LungParench", States(3), {"Disease"});
  MustAdd(&net, "LungFlow", States(3), {"Disease"});
  MustAdd(&net, "LVHreport", YesNo(), {"LVH"});
  MustAdd(&net, "HypDistrib", YesNo(), {"DuctFlow", "CardiacMixing"});
  MustAdd(&net, "HypoxiaInO2", States(3), {"CardiacMixing", "LungParench"});
  MustAdd(&net, "CO2", States(3), {"LungParench"});
  MustAdd(&net, "ChestXray", States(5), {"LungParench", "LungFlow"});
  MustAdd(&net, "Grunting", YesNo(), {"LungParench", "Sick"});
  MustAdd(&net, "LowerBodyO2", States(3), {"HypDistrib", "HypoxiaInO2"});
  MustAdd(&net, "RUQO2", States(3), {"HypoxiaInO2"});
  MustAdd(&net, "CO2Report", YesNo(), {"CO2"});
  MustAdd(&net, "XrayReport", States(5), {"ChestXray"});
  MustAdd(&net, "GruntingReport", YesNo(), {"Grunting"});
  Rng rng(seed);
  net.FillFunctionalCpts(epsilon, &rng);
  return net;
}

BayesNet MakeAlarmNetwork(double epsilon, uint64_t seed) {
  BayesNet net;
  // Roots and upstream causes first (insertion order = topological).
  MustAdd(&net, "HYPOVOLEMIA", YesNo(), {});
  MustAdd(&net, "LVFAILURE", YesNo(), {});
  MustAdd(&net, "ERRLOWOUTPUT", YesNo(), {});
  MustAdd(&net, "ERRCAUTER", YesNo(), {});
  MustAdd(&net, "INSUFFANESTH", YesNo(), {});
  MustAdd(&net, "ANAPHYLAXIS", YesNo(), {});
  MustAdd(&net, "KINKEDTUBE", YesNo(), {});
  MustAdd(&net, "FIO2", States(2), {});
  MustAdd(&net, "PULMEMBOLUS", YesNo(), {});
  MustAdd(&net, "INTUBATION", States(3), {});
  MustAdd(&net, "DISCONNECT", YesNo(), {});
  MustAdd(&net, "MINVOLSET", States(3), {});
  // Intermediate layer.
  MustAdd(&net, "HISTORY", YesNo(), {"LVFAILURE"});
  MustAdd(&net, "LVEDVOLUME", States(3), {"HYPOVOLEMIA", "LVFAILURE"});
  MustAdd(&net, "CVP", States(3), {"LVEDVOLUME"});
  MustAdd(&net, "PCWP", States(3), {"LVEDVOLUME"});
  MustAdd(&net, "STROKEVOLUME", States(3), {"HYPOVOLEMIA", "LVFAILURE"});
  MustAdd(&net, "TPR", States(3), {"ANAPHYLAXIS"});
  MustAdd(&net, "PAP", States(3), {"PULMEMBOLUS"});
  MustAdd(&net, "SHUNT", States(2), {"INTUBATION", "PULMEMBOLUS"});
  MustAdd(&net, "VENTMACH", States(4), {"MINVOLSET"});
  MustAdd(&net, "VENTTUBE", States(4), {"DISCONNECT", "VENTMACH"});
  MustAdd(&net, "PRESS", States(4), {"INTUBATION", "KINKEDTUBE", "VENTTUBE"});
  MustAdd(&net, "VENTLUNG", States(4), {"INTUBATION", "KINKEDTUBE", "VENTTUBE"});
  MustAdd(&net, "MINVOL", States(4), {"INTUBATION", "VENTLUNG"});
  MustAdd(&net, "VENTALV", States(4), {"INTUBATION", "VENTLUNG"});
  MustAdd(&net, "PVSAT", States(3), {"FIO2", "VENTALV"});
  MustAdd(&net, "ARTCO2", States(3), {"VENTALV"});
  MustAdd(&net, "EXPCO2", States(4), {"ARTCO2", "VENTLUNG"});
  MustAdd(&net, "SAO2", States(3), {"PVSAT", "SHUNT"});
  MustAdd(&net, "CATECHOL", States(2),
          {"ARTCO2", "INSUFFANESTH", "SAO2", "TPR"});
  MustAdd(&net, "HR", States(3), {"CATECHOL"});
  MustAdd(&net, "HRBP", States(3), {"ERRLOWOUTPUT", "HR"});
  MustAdd(&net, "HREKG", States(3), {"ERRCAUTER", "HR"});
  MustAdd(&net, "HRSAT", States(3), {"ERRCAUTER", "HR"});
  MustAdd(&net, "CO", States(3), {"HR", "STROKEVOLUME"});
  MustAdd(&net, "BP", States(3), {"CO", "TPR"});
  Rng rng(seed);
  net.FillFunctionalCpts(epsilon, &rng);
  return net;
}

std::vector<BenchmarkNetwork> MakeAllBenchmarkNetworks(double epsilon) {
  std::vector<BenchmarkNetwork> out;
  out.push_back({"Alarm", MakeAlarmNetwork(epsilon)});
  out.push_back({"Asia", MakeAsiaNetwork(epsilon)});
  out.push_back({"Cancer", MakeCancerNetwork(epsilon)});
  out.push_back({"Child", MakeChildNetwork(epsilon)});
  out.push_back({"Earthquake", MakeEarthquakeNetwork(epsilon)});
  return out;
}

}  // namespace fdx
